#!/usr/bin/env python
"""Thread-scaling study: measured on this host + modeled on the paper's
machine.

Part 1 measures the parallel KRP and parallel 1-step MTTKRP on this host
over a range of thread counts (on a single-core container the numbers show
the threading machinery's overhead rather than speedup — the code paths
are identical either way).

Part 2 evaluates the calibrated analytical model of the paper's 12-core
Xeon at the paper's full workload sizes, printing the same series as
Figures 4 and 5 along with the speedup bands the paper reports.

Run:  python examples/scaling_study.py
"""

import os

import numpy as np

from repro.bench.timing import median_time
from repro.core.dispatch import mttkrp
from repro.core.krp_parallel import khatri_rao_parallel
from repro.data.workloads import fig5_shape, krp_dims, scaled_shape
from repro.machine.model import paper_machine
from repro.machine.predict import predict_algorithm_time, predict_krp_time
from repro.tensor.generate import random_factors, random_tensor
from repro.util import prod


def measured_part() -> None:
    cores = os.cpu_count() or 1
    threads = sorted({1, 2, 4, min(8, max(cores, 2))})
    print(f"== measured on this host ({cores} core(s)) ==")

    dims = krp_dims(3, 1_000_000)
    rng = np.random.default_rng(0)
    mats = [rng.random((d, 25)) for d in dims]
    out = np.empty((prod(dims), 25))
    print(f"\nparallel KRP, Z=3, {out.shape[0]} rows x 25:")
    base = None
    for T in threads:
        t = median_time(
            lambda: khatri_rao_parallel(mats, num_threads=T, out=out),
            repeats=3,
        )
        base = base or t
        print(f"  T={T:2d}: {t * 1e3:8.2f} ms  (speedup {base / t:4.2f}x)")

    shape = scaled_shape(fig5_shape(4), 2_000_000 / prod(fig5_shape(4)))
    X = random_tensor(shape, rng=1)
    U = random_factors(shape, 25, rng=2)
    print(f"\nparallel 1-step MTTKRP, shape {shape}, mode 1:")
    base = None
    for T in threads:
        t = median_time(
            lambda: mttkrp(X, U, 1, method="onestep", num_threads=T),
            repeats=3,
        )
        base = base or t
        print(f"  T={T:2d}: {t * 1e3:8.2f} ms  (speedup {base / t:4.2f}x)")


def modeled_part() -> None:
    m = paper_machine()
    print(f"\n== modeled: {m.name}, paper-scale workloads ==")

    print("\nKRP (Fig. 4 analog), J=2e7 rows, C=25:")
    for Z in (2, 3, 4):
        dims = krp_dims(Z)
        t1 = predict_krp_time(m, dims, 25, 1)
        t12 = predict_krp_time(m, dims, 25, 12)
        print(f"  Z={Z}: {t1:5.2f}s -> {t12:5.2f}s at 12T "
              f"(speedup {t1 / t12:4.1f}x; paper band 6.6-8.3x)")

    print("\nMTTKRP (Fig. 5 analog), C=25, internal mode:")
    for N in (3, 4, 5, 6):
        shape = fig5_shape(N)
        n = 1
        rows = []
        for algo in ("onestep", "twostep", "gemm-baseline"):
            t1, _ = predict_algorithm_time(m, shape, n, 25, 1, algo)
            t12, _ = predict_algorithm_time(m, shape, n, 25, 12, algo)
            rows.append(f"{algo}: {t1:5.2f}/{t12:5.2f}s ({t1 / t12:4.1f}x)")
        print(f"  N={N} ({shape[0]}^{N}): " + "   ".join(rows))
    print("\npaper bands: 1-step speedup 8-12x, 2-step 6-8x, both 2-4.7x")
    print("faster than the baseline at 12 threads for N > 3.")


def main() -> None:
    measured_part()
    modeled_part()


if __name__ == "__main__":
    main()
