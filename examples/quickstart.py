#!/usr/bin/env python
"""Quickstart: tensors, Khatri-Rao products, MTTKRP, and CP-ALS.

Builds a small dense tensor, runs every MTTKRP algorithm on it, checks they
agree, and fits a CP decomposition — a five-minute tour of the public API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DenseTensor,
    cp_als,
    khatri_rao,
    mttkrp,
    random_factors,
    random_tensor,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Dense tensors live in the paper's "natural" layout: a flat buffer
    #    with mode 0 varying fastest.  Construction from a numpy array is
    #    transparent; indexing semantics are unchanged.
    # ------------------------------------------------------------------
    X = random_tensor((60, 70, 80), rng=0)
    print(f"tensor: {X}")
    print(f"  mode-0 unfolding (zero-copy view): {X.unfold_mode0().shape}")
    print(f"  X_(0:1) multi-mode unfolding:      {X.unfold_front(1).shape}")

    # ------------------------------------------------------------------
    # 2. Khatri-Rao products (Algorithm 1 of the paper).
    # ------------------------------------------------------------------
    rank = 10
    U = random_factors(X.shape, rank, rng=1)
    K = khatri_rao([U[2], U[0]])  # rows: (i2 slow, i0 fast), like X_(1) cols
    print(f"\nKRP of U2 (krp) U0: {K.shape}")

    # ------------------------------------------------------------------
    # 3. MTTKRP: the paper's three algorithms, one entry point.
    #    method="auto" applies the paper's policy (1-step for external
    #    modes, 2-step for internal modes).
    # ------------------------------------------------------------------
    results = {}
    for method in ("auto", "onestep", "twostep", "baseline"):
        results[method] = mttkrp(X, U, n=1, method=method)
    print("\nMTTKRP mode 1 via all algorithms:")
    for method, M in results.items():
        agrees = np.allclose(M, results["auto"])
        print(f"  {method:9s} -> {M.shape}, agrees with auto: {agrees}")

    # ------------------------------------------------------------------
    # 4. CP-ALS on a planted low-rank tensor: the model should be
    #    recovered nearly exactly.
    # ------------------------------------------------------------------
    from repro import from_kruskal

    truth = random_factors((40, 50, 60), 5, rng=2)
    low_rank = from_kruskal(truth)
    result = cp_als(low_rank, rank=5, n_iter_max=100, tol=1e-10, rng=3)
    print(
        f"\nCP-ALS on an exact rank-5 tensor: fit={result.final_fit:.6f} "
        f"after {result.iterations} iterations "
        f"({result.mean_iteration_time * 1e3:.1f} ms/iter)"
    )

    # ------------------------------------------------------------------
    # 5. DenseTensor interoperates with numpy when needed.
    # ------------------------------------------------------------------
    arr = np.arange(24.0).reshape(2, 3, 4)
    T = DenseTensor(arr)
    assert T[1, 2, 3] == arr[1, 2, 3]
    print("\nquickstart complete")


if __name__ == "__main__":
    main()
