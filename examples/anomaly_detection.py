#!/usr/bin/env python
"""Anomaly detection with CP residuals (the introduction's application).

The paper's introduction motivates CP "in anomaly detection (identifying
data points that are not explained by the model)".  Workflow:

1. generate a connectivity tensor with planted structure;
2. corrupt a few *subjects* (e.g. motion artifacts in their scans);
3. fit a low-rank CP model to the corrupted data;
4. score each subject by the relative residual of its slice and flag
   robust-z outliers.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

from repro.cpd.anomaly import anomaly_scores, detect_anomalies
from repro.cpd.cp_als import cp_als
from repro.data.fmri import synthetic_fmri
from repro.tensor.dense import DenseTensor

RANK = 3
BAD_SUBJECTS = (2, 9)
SUBJECT_MODE = 1


def main() -> None:
    data = synthetic_fmri(48, 14, 30, rank=RANK, snr_db=28.0, rng=0)
    arr = data.tensor.to_ndarray().copy()
    rng = np.random.default_rng(1)
    # Corrupt two subjects with heavy, structure-free noise ("failed scans").
    for s in BAD_SUBJECTS:
        slab = arr[:, s]
        noise = rng.standard_normal(slab.shape)
        noise = 0.5 * (noise + np.swapaxes(noise, -1, -2))  # keep symmetry
        arr[:, s] += 1.5 * np.linalg.norm(slab) / np.linalg.norm(noise) * noise
    X = DenseTensor(arr)
    print(f"connectivity tensor {X.shape}; subjects {BAD_SUBJECTS} corrupted\n")

    res = cp_als(X, RANK, n_iter_max=120, tol=1e-9, rng=2)
    print(f"CP-ALS fit on corrupted data: {res.final_fit:.4f}")

    scores = anomaly_scores(X, res.model, SUBJECT_MODE)
    print("\nsubject  anomaly score (robust z)")
    for s, score in enumerate(scores):
        marker = "  <-- flagged" if score > 3.5 else ""
        print(f"{s:7d}  {score:12.2f}{marker}")

    found = detect_anomalies(X, res.model, SUBJECT_MODE)
    print(f"\ndetected: {sorted(found.tolist())}  (planted: {sorted(BAD_SUBJECTS)})")
    assert set(found) == set(BAD_SUBJECTS), "detection missed a planted anomaly"
    print("all planted anomalies recovered, no false positives")


if __name__ == "__main__":
    main()
