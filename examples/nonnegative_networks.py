#!/usr/bin/env python
"""Nonnegative network extraction + HOSVD compression on the fMRI tensor.

Two extensions of the paper's application pipeline, both built on the same
MTTKRP/TTM kernels:

1. **Nonnegative CP (HALS)** — brain-network loadings, task activations
   and subject expressions are all naturally nonnegative, so constraining
   the model usually yields cleaner, more interpretable components than
   unconstrained CP-ALS.  Compare recovery of the planted networks.
2. **Compress-then-decompose (CANDELINC via ST-HOSVD)** — compress the
   tensor to a small Tucker core first, run CP on the core, and expand.
   For low-multilinear-rank data this gives near-identical models at a
   fraction of the per-iteration cost.

Run:  python examples/nonnegative_networks.py
"""

import numpy as np

from repro.bench.timing import median_time
from repro.cpd.cp_als import cp_als
from repro.cpd.diagnostics import factor_match_score
from repro.cpd.kruskal import KruskalTensor
from repro.cpd.nncp import cp_nnhals
from repro.cpd.tucker import hosvd
from repro.data.fmri import synthetic_fmri

RANK = 4


def main() -> None:
    data = synthetic_fmri(60, 16, 40, rank=RANK, snr_db=18.0, rng=0)
    X = data.tensor
    truth = data.ground_truth
    print(f"fMRI tensor {X.shape}, planted rank {RANK}, 18 dB SNR\n")

    # ------------------------------------------------------------------
    # Unconstrained vs nonnegative CP.
    # ------------------------------------------------------------------
    als = cp_als(X, RANK, n_iter_max=150, tol=1e-9, rng=1)
    nn = cp_nnhals(X, RANK, n_iter_max=150, tol=1e-9, rng=1)
    fms_als = factor_match_score(als.model, truth, weight_penalty=False)
    fms_nn = factor_match_score(nn.model, truth, weight_penalty=False)
    print("model           fit      FMS vs truth   negative entries")
    neg_als = sum(int((f < 0).sum()) for f in als.model.factors)
    neg_nn = sum(int((f < 0).sum()) for f in nn.model.factors)
    print(f"CP-ALS       {als.final_fit:7.4f}   {fms_als:10.3f}   {neg_als:10d}")
    print(f"NN-HALS      {nn.final_fit:7.4f}   {fms_nn:10.3f}   {neg_nn:10d}")
    print("(the planted networks are nonnegative: NN-HALS returns feasible,"
          "\n sign-unambiguous components; its lower fit is expected — the"
          "\n nonnegative model cannot absorb the signed noise that"
          "\n unconstrained ALS fits)\n")

    # ------------------------------------------------------------------
    # Compress-then-decompose.
    # ------------------------------------------------------------------
    ranks = (RANK + 2, RANK + 2, RANK + 2, RANK + 2)
    T = hosvd(X, ranks)
    rel_err = float(
        np.linalg.norm(T.full().data - X.data) / np.linalg.norm(X.data)
    )
    print(f"ST-HOSVD to core {T.ranks}: compression "
          f"{T.compression_ratio():.0f}x, relative error {rel_err:.3f}")

    t_full = median_time(
        lambda: cp_als(X, RANK, n_iter_max=1, tol=0.0, rng=2), repeats=3
    )
    t_core = median_time(
        lambda: cp_als(T.core, RANK, n_iter_max=1, tol=0.0, rng=2),
        repeats=3,
    )
    res_core = cp_als(T.core, RANK, n_iter_max=150, tol=1e-10, rng=3)
    expanded = KruskalTensor(
        [f @ g for f, g in zip(T.factors, res_core.model.factors)],
        res_core.model.weights,
    )
    fms_core = factor_match_score(expanded, truth, weight_penalty=False)
    print(f"CP on full tensor: {t_full * 1e3:7.2f} ms/iter")
    print(f"CP on Tucker core: {t_core * 1e3:7.2f} ms/iter "
          f"({t_full / t_core:.0f}x faster)")
    print(f"expanded-core model FMS vs truth: {fms_core:.3f} "
          f"(vs {fms_als:.3f} on the full tensor)")


if __name__ == "__main__":
    main()
