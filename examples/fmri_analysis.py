#!/usr/bin/env python
"""The paper's application (Section 3): extracting brain networks from a
dynamic-connectivity fMRI tensor with CP-ALS.

Pipeline (all synthetic, see DESIGN.md for the substitution argument):

1. generate a time x subject x region x region correlation tensor from
   planted networks (+ noise);
2. decompose the 4-way tensor with CP-ALS using the paper's per-mode
   MTTKRP policy;
3. repeat on the paper's symmetric 3-way linearization
   (time x subject x region-pair);
4. verify the planted networks are recovered (factor match score) and
   compare per-iteration runtime against the Tensor-Toolbox-style
   reference — the Figure 7 measurement in miniature.

Run:  python examples/fmri_analysis.py
"""

import numpy as np

from repro.cpd.cp_als import cp_als
from repro.cpd.diagnostics import congruence_matrix, factor_match_score
from repro.data.fmri import synthetic_fmri
from repro.reference.tensor_toolbox import cp_als_ttb
from repro.tensor.generate import random_factors

N_TIME, N_SUBJECTS, N_REGIONS = 60, 16, 40
RANK = 4
SNR_DB = 25.0


def main() -> None:
    print("generating synthetic fMRI connectivity tensor "
          f"({N_TIME} x {N_SUBJECTS} x {N_REGIONS} x {N_REGIONS}, "
          f"rank {RANK}, {SNR_DB:.0f} dB SNR)")
    data = synthetic_fmri(
        N_TIME, N_SUBJECTS, N_REGIONS, rank=RANK, snr_db=SNR_DB, rng=0
    )

    # ------------------------------------------------------------------
    # 4-way decomposition.
    # ------------------------------------------------------------------
    res4 = cp_als(data.tensor, RANK, n_iter_max=150, tol=1e-9, rng=1)
    fms4 = factor_match_score(
        res4.model, data.ground_truth, weight_penalty=False
    )
    print(f"\n4-way CP-ALS: fit={res4.final_fit:.4f} "
          f"({res4.iterations} iters, "
          f"{res4.mean_iteration_time * 1e3:.1f} ms/iter)")
    print(f"  factor match score vs planted networks: {fms4:.3f}")

    # Which estimated component corresponds to which planted network?
    C = np.abs(congruence_matrix(res4.model, data.ground_truth))
    matches = C.argmax(axis=0)
    print("  per-network best congruence:",
          ", ".join(f"net{c}->est{matches[c]} ({C[matches[c], c]:.2f})"
                    for c in range(RANK)))

    # ------------------------------------------------------------------
    # 3-way (symmetric linearization, the paper's second analysis).
    # ------------------------------------------------------------------
    X3 = data.to_3way()
    print(f"\nsymmetric linearization: {data.tensor.shape} -> {X3.shape} "
          f"({data.tensor.size / X3.size:.2f}x fewer entries)")
    res3 = cp_als(X3, RANK, n_iter_max=150, tol=1e-9, rng=2)
    print(f"3-way CP-ALS: fit={res3.final_fit:.4f} "
          f"({res3.mean_iteration_time * 1e3:.1f} ms/iter)")

    # Time and subject factors should agree between the two analyses.
    sub_model_4 = type(res4.model)(
        [res4.model.factors[0], res4.model.factors[1]], res4.model.weights
    )
    sub_model_3 = type(res3.model)(
        [res3.model.factors[0], res3.model.factors[1]], res3.model.weights
    )
    agreement = factor_match_score(
        sub_model_4, sub_model_3, weight_penalty=False
    )
    print(f"  time/subject factor agreement (4-way vs 3-way): {agreement:.3f}")

    # ------------------------------------------------------------------
    # Runtime comparison against the Tensor-Toolbox-style reference
    # (Figure 7's per-iteration measurement, reduced scale).
    # ------------------------------------------------------------------
    print("\nper-iteration time, ours vs Tensor-Toolbox-style (3 iters):")
    init = random_factors(data.tensor.shape, RANK, rng=3)
    ours = cp_als(data.tensor, RANK, n_iter_max=3, tol=0.0, init=init)
    ttb = cp_als_ttb(data.tensor, RANK, n_iter_max=3, tol=0.0, init=init)
    t_ours = ours.mean_iteration_time
    t_ttb = ttb.mean_iteration_time
    print(f"  ours: {t_ours * 1e3:7.1f} ms/iter")
    print(f"  TTB : {t_ttb * 1e3:7.1f} ms/iter  "
          f"(speedup {t_ttb / t_ours:.1f}x)")
    # Identical math -> identical fits.
    assert np.allclose(ours.fits, ttb.fits, atol=1e-7)
    print("  (both drivers produced identical fit trajectories)")


if __name__ == "__main__":
    main()
