#!/usr/bin/env python
"""Predicting missing entries with CP-WOPT (the introduction's application).

The paper's introduction motivates CP with "predicting missing or future
data" (Acar et al.).  This example:

1. generates a synthetic connectivity tensor with planted structure;
2. hides a large fraction of entries (as if some scan sessions failed);
3. fits CP-WOPT to the observed entries only (every gradient is an
   all-modes MTTKRP of the masked residual — the dimension tree applies);
4. evaluates prediction quality on the *held-out* entries, across
   observation fractions.

Run:  python examples/missing_data.py
"""

import numpy as np

from repro.cpd.diagnostics import factor_match_score
from repro.cpd.missing import cp_wopt, random_mask
from repro.data.fmri import synthetic_fmri

RANK = 3


def main() -> None:
    data = synthetic_fmri(40, 10, 24, rank=RANK, snr_db=30.0, rng=0)
    X = data.to_3way()
    print(f"3-way connectivity tensor {X.shape}, planted rank {RANK}\n")
    print(f"{'observed':>9}  {'obs fit':>8}  {'held-out rel err':>16}  "
          f"{'FMS (time/subj)':>15}")

    truth = data.ground_truth
    sub_truth = type(truth)(
        [truth.factors[0], truth.factors[1]], truth.weights
    )

    for frac in (0.8, 0.5, 0.3, 0.15, 0.05):
        mask = random_mask(X.shape, frac, rng=1)
        res = cp_wopt(X, mask, RANK, n_iter_max=500, rng=2)
        rec = res.model.full()
        held = mask.data == 0.0
        rel_err = float(
            np.linalg.norm(rec.data[held] - X.data[held])
            / np.linalg.norm(X.data[held])
        )
        est = res.model
        sub_est = type(est)([est.factors[0], est.factors[1]], est.weights)
        fms = factor_match_score(sub_est, sub_truth, weight_penalty=False)
        print(f"{frac:9.0%}  {res.fits[-1]:8.4f}  {rel_err:16.4f}  "
              f"{fms:15.3f}")

    print("\nreading the table: with a rank-3 model, even ~15% of entries "
          "determine\nthe tensor — held-out error stays near the noise "
          "floor until observations\nbecome too sparse to constrain the "
          "factors.")


if __name__ == "__main__":
    main()
