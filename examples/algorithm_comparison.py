#!/usr/bin/env python
"""Compare the MTTKRP algorithms mode by mode with phase breakdowns.

Reproduces the *structure* of the paper's Figures 5 and 6 at a reduced
scale: for an N-way tensor, time the 1-step algorithm, the 2-step
algorithm (internal modes), the full straightforward baseline (explicit
reorder + KRP + GEMM), and the DGEMM-only lower bound — then print the
per-phase split that explains the differences.

Run:  python examples/algorithm_comparison.py [N] [entries]
      e.g. python examples/algorithm_comparison.py 5 3000000
"""

import sys

from repro.bench.timing import median_time
from repro.core.dispatch import mttkrp
from repro.core.mttkrp_baseline import mttkrp_gemm_lower_bound
from repro.data.workloads import fig5_shape, scaled_shape
from repro.tensor.generate import random_factors, random_tensor
from repro.util import human_count, prod
from repro.util.timing import PhaseTimer

PHASES = ["reorder", "full_krp", "lr_krp", "gemm", "gemv", "reduce"]


def main() -> None:
    N = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    entries = int(sys.argv[2]) if len(sys.argv) > 2 else 3_000_000
    base = fig5_shape(N)
    shape = scaled_shape(base, entries / prod(base))
    C = 25

    print(f"tensor {shape} ({human_count(prod(shape))} entries), C={C}\n")
    X = random_tensor(shape, rng=0)
    U = random_factors(shape, C, rng=1)

    header = f"{'mode':>4}  {'algorithm':13}  {'median(s)':>10}  " + "  ".join(
        f"{p:>9}" for p in PHASES
    )
    print(header)
    print("-" * len(header))

    for n in range(N):
        algos = ["onestep"]
        if 0 < n < N - 1:
            algos.append("twostep")
        algos += ["baseline", "gemm-lb"]
        for algo in algos:
            timer = PhaseTimer()
            if algo == "gemm-lb":
                scratch: dict = {}
                seconds = median_time(
                    lambda: mttkrp_gemm_lower_bound(
                        X, U, n, num_threads=1, _scratch=scratch
                    ),
                    repeats=3,
                )
                mttkrp_gemm_lower_bound(
                    X, U, n, num_threads=1, timers=timer, _scratch=scratch
                )
            else:
                seconds = median_time(
                    lambda: mttkrp(X, U, n, method=algo, num_threads=1),
                    repeats=3,
                )
                mttkrp(X, U, n, method=algo, num_threads=1, timers=timer)
            snap = timer.snapshot()
            cells = "  ".join(
                f"{snap.get(p, 0.0):9.4f}" if p in snap
                else f"{'-':>9}"
                for p in PHASES
            )
            print(f"{n:>4}  {algo:13}  {seconds:10.4f}  {cells}")
        print()

    print("reading the table:")
    print(" * 'baseline' pays a 'reorder' phase the view-based algorithms")
    print("   never pay — that is the paper's central point;")
    print(" * 'gemm-lb' is the paper's Baseline series: the GEMM alone,")
    print("   charging neither reorder nor KRP formation;")
    print(" * the 2-step algorithm concentrates its time in one large,")
    print("   well-shaped GEMM (plus a small multi-TTV 'gemv' phase).")


if __name__ == "__main__":
    main()
