#!/usr/bin/env python
"""Rank selection with multiple random starts — the workflow the paper's
Section 3 motivates ("the need to discover the optimal rank ... and employ
multiple random starts to ensure uniqueness, reliability, and
reproducibility").

For a synthetic connectivity tensor with a known planted rank, sweep
candidate CP ranks, run several random starts per rank, and report fit
statistics plus a stability score (pairwise factor match between starts).
The planted rank shows up as the elbow of the fit curve combined with high
cross-start stability.

Run:  python examples/rank_selection.py
"""

import itertools

import numpy as np

from repro.cpd.cp_als import cp_als
from repro.cpd.diagnostics import factor_match_score
from repro.data.fmri import synthetic_fmri

TRUE_RANK = 3
N_STARTS = 4
CANDIDATES = (1, 2, 3, 4, 5)


def main() -> None:
    data = synthetic_fmri(40, 10, 24, rank=TRUE_RANK, snr_db=22.0, rng=0)
    X = data.to_3way()
    print(f"3-way connectivity tensor {X.shape}, planted rank {TRUE_RANK}\n")
    print(f"{'rank':>4}  {'best fit':>9}  {'mean fit':>9}  "
          f"{'stability':>9}")

    best_by_rank = {}
    for rank in CANDIDATES:
        runs = [
            cp_als(X, rank, n_iter_max=80, tol=1e-8, rng=100 + s)
            for s in range(N_STARTS)
        ]
        fits = np.array([r.final_fit for r in runs])
        # Stability: mean pairwise FMS across starts.  A rank that fits
        # noise gives unstable components; the true rank is reproducible.
        pairs = list(itertools.combinations(range(N_STARTS), 2))
        stability = float(
            np.mean(
                [
                    factor_match_score(
                        runs[a].model, runs[b].model, weight_penalty=False
                    )
                    for a, b in pairs
                ]
            )
        ) if pairs else 1.0
        best_by_rank[rank] = runs[int(fits.argmax())]
        print(f"{rank:>4}  {fits.max():9.4f}  {fits.mean():9.4f}  "
              f"{stability:9.3f}")

    # Recovery check at the planted rank.
    truth3 = data.ground_truth  # 4-way truth; compare time/subject factors
    est = best_by_rank[TRUE_RANK].model
    sub_est = type(est)([est.factors[0], est.factors[1]], est.weights)
    sub_truth = type(truth3)(
        [truth3.factors[0], truth3.factors[1]], truth3.weights
    )
    fms = factor_match_score(sub_est, sub_truth, weight_penalty=False)
    print(f"\ntime/subject factor recovery at rank {TRUE_RANK}: "
          f"FMS={fms:.3f}")
    print("expected pattern: fit rises until the planted rank, then "
          "plateaus while stability drops — the classic rank-selection "
          "signature.")


if __name__ == "__main__":
    main()
