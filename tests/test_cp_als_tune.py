"""``cp_als(tune=True)``: tuned runs are replayable, validated, and lean.

The contract under test: tuning happens once before the iteration loop,
its picks are recorded in ``result.tuning`` as replayable method specs,
the tuned run's iterates are bit-identical to an untuned run given the
same per-mode methods, the workspace arena allocates nothing after the
first run warms it up, and everything holds under the runtime sanitizer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizer import sanitize
from repro.core.dispatch import MTTKRP_METHODS
from repro.cpd.cp_als import cp_als
from repro.parallel.workspace import Workspace
from repro.tensor.generate import random_tensor
from repro.tune import reset_cache

pytestmark = pytest.mark.tune

SHAPE = (6, 5, 4, 3)
RANK = 2


@pytest.fixture(autouse=True)
def _fresh_in_memory_cache(monkeypatch):
    monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
    reset_cache()
    yield
    reset_cache()


@pytest.fixture
def tensor():
    return random_tensor(SHAPE, rng=11)


class TestTunedRun:
    def test_tuning_records_populated(self, tensor):
        result = cp_als(tensor, RANK, n_iter_max=2, tol=0.0, rng=0, tune=True)
        assert result.tuning is not None
        assert len(result.tuning) == tensor.ndim
        for record in result.tuning:
            assert record.method in MTTKRP_METHODS
            assert record.source in ("measured", "degenerate", "prior")

    def test_untuned_run_has_no_tuning(self, tensor):
        result = cp_als(tensor, RANK, n_iter_max=1, tol=0.0, rng=0)
        assert result.tuning is None

    def test_bit_identical_to_explicit_per_mode_replay(self, tensor):
        """Acceptance: a tuned run equals an untuned run whose per-mode
        ``method`` list is exactly the recorded picks."""
        tuned = cp_als(tensor, RANK, n_iter_max=3, tol=0.0, rng=0, tune=True)
        labels = [r.label for r in tuned.tuning]
        replay = cp_als(
            tensor, RANK, n_iter_max=3, tol=0.0, rng=0, method=labels
        )
        assert tuned.fits == replay.fits
        for a, b in zip(tuned.model.factors, replay.model.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(tuned.model.weights, replay.model.weights)

    def test_second_tuned_run_hits_the_cache(self, tensor):
        import repro.obs as obs

        cp_als(tensor, RANK, n_iter_max=1, tol=0.0, rng=0, tune=True)
        tracer = obs.enable()
        try:
            cp_als(tensor, RANK, n_iter_max=1, tol=0.0, rng=0, tune=True)
        finally:
            obs.disable()
        assert obs.counter_total(tracer, "tune.measure") == 0
        assert obs.counter_total(tracer, "tune.cache_hit") == tensor.ndim


class TestValidation:
    def test_tune_requires_per_mode_strategy(self, tensor):
        with pytest.raises(ValueError, match="per-mode"):
            cp_als(tensor, RANK, n_iter_max=1, rng=0, tune=True,
                   mode_strategy="dimtree")

    def test_method_list_wrong_length_raises(self, tensor):
        with pytest.raises(ValueError, match="per-mode methods"):
            cp_als(tensor, RANK, n_iter_max=1, rng=0,
                   method=["onestep", "baseline"])

    def test_method_list_with_dimtree_strategy_raises(self, tensor):
        with pytest.raises(ValueError, match="per-mode"):
            cp_als(tensor, RANK, n_iter_max=1, rng=0,
                   method=["onestep"] * tensor.ndim,
                   mode_strategy="dimtree")

    def test_explicit_method_list_works(self, tensor):
        methods = ["onestep", "twostep:left", "dimtree", "baseline"]
        result = cp_als(
            tensor, RANK, n_iter_max=2, tol=0.0, rng=0, method=methods
        )
        reference = cp_als(
            tensor, RANK, n_iter_max=2, tol=0.0, rng=0, method="onestep"
        )
        assert result.fits == pytest.approx(reference.fits, abs=1e-12)


class TestWorkspaceHygiene:
    def test_no_allocations_after_warm_up(self, tensor):
        """Acceptance: the second identical tuned run allocates nothing —
        tuning is a cache hit and the iteration buffers are reused."""
        ws = Workspace()
        cp_als(tensor, RANK, n_iter_max=2, tol=0.0, rng=0, tune=True,
               workspace=ws)
        warm = ws.stats.allocations
        cp_als(tensor, RANK, n_iter_max=2, tol=0.0, rng=0, tune=True,
               workspace=ws)
        assert ws.stats.allocations == warm
        ws.close()

    def test_measurement_scratch_released_after_tuning(self, tensor):
        ws = Workspace()
        cp_als(tensor, RANK, n_iter_max=1, tol=0.0, rng=0, tune=True,
               workspace=ws)
        assert not any(n.startswith("tune.") for n in ws._buffers)
        ws.close()

    def test_external_workspace_not_closed(self, tensor):
        ws = Workspace()
        cp_als(tensor, RANK, n_iter_max=1, tol=0.0, rng=0, tune=True,
               workspace=ws)
        ws.buffer("still-open", (2,))  # raises if cp_als closed it
        ws.close()


class TestSanitized:
    def test_tuned_run_is_clean_under_sanitizer(self, tensor):
        with sanitize():
            result = cp_als(
                tensor, RANK, n_iter_max=2, tol=0.0, rng=0, tune=True
            )
        assert np.isfinite(result.final_fit)
        assert result.tuning is not None

    def test_autotune_clean_under_sanitizer(self, tensor):
        from repro.tensor.generate import random_factors
        from repro.tune import autotune

        factors = random_factors(tensor.shape, RANK, rng=1)
        with sanitize():
            record = autotune(tensor, factors, 1, num_threads=2, repeats=1)
        assert record.method in MTTKRP_METHODS
