"""Executor abstraction and shared-memory arena (process backend).

Worker kernels must live at module level: the process backend pickles a
reference to the function, and the forked/spawned child resolves it by
importing this module.
"""

import contextlib
import os

import numpy as np
import pytest

import repro.obs as obs
from repro.parallel.backend import (
    Executor,
    ProcessExecutor,
    ThreadExecutor,
    get_executor,
    shutdown_all_executors,
)
from repro.parallel.config import set_backend, use_backend
from repro.parallel.pool import WorkerError
from repro.parallel.reduction import parallel_reduce
from repro.parallel.shm import ShmArena, ShmHandle, attach
from repro.tensor.dense import DenseTensor


# --------------------------------------------------------------------- #
# module-level kernels (picklable for the process backend)
# --------------------------------------------------------------------- #


def k_fill_ranges(worker, start, stop, out):
    out[start:stop] = np.arange(start, stop)


def k_mark_worker(worker, start, stop, out):
    out[start:stop] = worker


def k_square_tensor_rows(worker, start, stop, tensor, out):
    arr = tensor.unfold_mode0()
    out[start:stop] = (arr[start:stop] ** 2).sum(axis=1)


def k_raise_on_worker(worker, start, stop, bad):
    if worker in bad:
        raise ValueError(f"boom from {worker}")


def k_write_pid(worker, start, stop, out):
    out[worker] = os.getpid()


def k_traced(worker, start, stop, out):
    tracer = obs.get_tracer()
    with tracer.span("inner_work", worker=worker):
        out[start:stop] = 1.0
    tracer.add_counter("items_done", stop - start)


def k_unpicklable_closure():  # placeholder; real test uses a lambda
    pass


class TestShmArena:
    def test_allocate_zeroed_and_owned(self):
        arena = ShmArena()
        try:
            view, handle = arena.allocate((4, 3))
            assert view.shape == (4, 3)
            np.testing.assert_array_equal(view, 0.0)
            assert handle.writable
            assert arena.owns(view)
            assert not arena.owns(np.zeros((4, 3)))
        finally:
            arena.close()

    def test_export_caches_by_identity(self):
        arena = ShmArena()
        try:
            a = np.arange(12.0).reshape(3, 4)
            h1 = arena.export(a)
            h2 = arena.export(a)
            assert h1 is h2
            assert arena.num_segments == 1
            # A distinct array gets a distinct segment.
            b = a.copy()
            arena.export(b)
            assert arena.num_segments == 2
            del b
        finally:
            arena.close()

    def test_export_eviction_on_array_death(self):
        arena = ShmArena()
        try:
            a = np.arange(6.0)
            arena.export(a)
            assert arena.num_segments == 1
            del a
            import gc

            gc.collect()
            assert arena.num_segments == 0
        finally:
            arena.close()

    def test_export_preserves_fortran_order(self):
        # Regression: C-ordering the copy changes worker-side strides, and
        # stride-dependent BLAS paths then diverge by 1 ulp from the
        # parent (broke cp_als bit-parity between backends).
        arena = ShmArena()
        cache = {}
        try:
            f_arr = np.asfortranarray(np.arange(12.0).reshape(3, 4))
            handle = arena.export(f_arr)
            assert handle.order == "F"
            view = attach(handle, cache)
            assert view.flags.f_contiguous and not view.flags.c_contiguous
            assert view.strides == f_arr.strides
            np.testing.assert_array_equal(view, f_arr)

            c_arr = np.arange(12.0).reshape(3, 4)
            assert arena.export(c_arr).order == "C"
        finally:
            arena.close()
            del view
            for seg, _ in cache.values():
                with contextlib.suppress(BufferError):
                    seg.close()

    def test_attach_respects_writable_flag(self):
        arena = ShmArena()
        cache = {}
        try:
            view, handle = arena.allocate((5,))
            src = np.arange(5.0)  # kept alive: eviction unlinks the segment
            ro_handle = arena.export(src)
            w = attach(handle, cache)
            w[...] = 7.0
            np.testing.assert_array_equal(view, 7.0)
            r = attach(ro_handle, cache)
            with pytest.raises(ValueError):
                r[0] = 1.0
        finally:
            arena.close()
            del w, r
            for seg, _ in cache.values():
                with contextlib.suppress(BufferError):
                    seg.close()

    def test_close_idempotent_with_live_views(self):
        arena = ShmArena()
        view, _ = arena.allocate((8,))
        view[...] = 3.0
        arena.close()
        arena.close()
        # The live view keeps the mapping alive after close/unlink.
        np.testing.assert_array_equal(view, 3.0)

    def test_handle_nbytes(self):
        h = ShmHandle("x", (3, 4), "<f8")
        assert h.nbytes == 96


class TestExecutorAPI:
    def test_thread_executor_basics(self):
        ex = ThreadExecutor(2)
        out = ex.allocate_shared((10,))
        ex.parallel_for(k_fill_ranges, 10, args=(out,))
        np.testing.assert_array_equal(out, np.arange(10.0))
        assert ex.owns_shared(out)
        assert ex.owns_shared(np.zeros(3))  # threads share everything
        assert ex.backend == "thread"

    def test_allocate_private_shape_and_validation(self):
        ex = ThreadExecutor(2)
        buf = ex.allocate_private(3, (4, 2))
        assert buf.shape == (3, 4, 2)
        np.testing.assert_array_equal(buf, 0.0)
        with pytest.raises(ValueError):
            ex.allocate_private(0, (4,))

    def test_reduce_matches_sum(self, rng):
        ex = ThreadExecutor(2)
        buffers = rng.standard_normal((5, 6, 2))
        expected = buffers.sum(axis=0)
        np.testing.assert_allclose(ex.reduce(buffers.copy()), expected)

    def test_parallel_reduce_accepts_executor(self, rng):
        buffers = rng.standard_normal((4, 3))
        expected = buffers.sum(axis=0)
        np.testing.assert_allclose(
            parallel_reduce(buffers.copy(), ThreadExecutor(2)), expected
        )


class TestProcessExecutor:
    def test_single_worker_runs_inline(self):
        with ProcessExecutor(1) as ex:
            out = ex.allocate_shared((6,))
            ex.parallel_for(k_write_pid, 1, args=(out,))
            assert out[0] == os.getpid()

    def test_workers_are_separate_processes(self):
        with ProcessExecutor(2) as ex:
            out = ex.allocate_shared((2,))
            ex.parallel_for(k_write_pid, 2, args=(out,))
        pids = set(out.astype(int))
        assert os.getpid() not in pids
        assert len(pids) == 2

    def test_shared_writes_visible(self):
        with ProcessExecutor(2) as ex:
            out = ex.allocate_shared((20,))
            ex.parallel_for(k_fill_ranges, 20, args=(out,))
            np.testing.assert_array_equal(out, np.arange(20.0))

    def test_dense_tensor_marshalled_zero_copy_views(self, rng):
        X = DenseTensor(rng.standard_normal((4, 3, 2)))
        with ProcessExecutor(2) as ex:
            out = ex.allocate_shared((4,))
            ex.parallel_for(k_square_tensor_rows, 4, args=(X, out))
            np.testing.assert_allclose(out, (X.unfold_mode0() ** 2).sum(axis=1))

    def test_dynamic_schedule(self):
        with ProcessExecutor(2) as ex:
            out = ex.allocate_shared((37,))
            ex.parallel_for(
                k_fill_ranges, 37, args=(out,), schedule="dynamic", chunk=3
            )
            np.testing.assert_array_equal(out, np.arange(37.0))

    def test_owns_shared_only_for_arena_arrays(self):
        with ProcessExecutor(2) as ex:
            assert ex.owns_shared(ex.allocate_shared((3,)))
            assert not ex.owns_shared(np.zeros(3))

    def test_reduce_copies_foreign_buffers(self, rng):
        with ProcessExecutor(2) as ex:
            buffers = rng.standard_normal((4, 5))
            np.testing.assert_allclose(
                ex.reduce(buffers.copy()), buffers.sum(axis=0)
            )

    def test_worker_exception_chained(self):
        with ProcessExecutor(2) as ex:
            with pytest.raises(WorkerError) as excinfo:
                ex.parallel_for(k_raise_on_worker, 2, args=({1},))
            err = excinfo.value
            assert err.worker == 1
            assert isinstance(err.original, ValueError)
            assert err.__cause__ is err.original
            assert "boom from 1" in str(err.original)
            # Worker-side frames travel back as text.
            assert "k_raise_on_worker" in err.original.worker_traceback

    def test_all_workers_failing_reports_others(self):
        with ProcessExecutor(2) as ex:
            with pytest.raises(WorkerError) as excinfo:
                ex.parallel_for(k_raise_on_worker, 2, args=({0, 1},))
            err = excinfo.value
            assert err.worker == 0
            assert len(err.others) == 1
            assert err.others[0].worker == 1

    def test_executor_survives_worker_exception(self):
        with ProcessExecutor(2) as ex:
            with pytest.raises(WorkerError):
                ex.parallel_for(k_raise_on_worker, 2, args=({0},))
            out = ex.allocate_shared((8,))
            ex.parallel_for(k_fill_ranges, 8, args=(out,))
            np.testing.assert_array_equal(out, np.arange(8.0))

    def test_unpicklable_payload_raises_typeerror(self):
        with ProcessExecutor(2) as ex:
            with pytest.raises(Exception):
                ex.parallel_for(lambda w, a, b: None, 4)

    def test_spans_and_counters_flow_back(self):
        tracer = obs.enable()
        try:
            with ProcessExecutor(2) as ex:
                out = ex.allocate_shared((10,))
                ex.parallel_for(k_traced, 10, args=(out,), label="traced.region")
            names = [s.name for s in tracer.spans()]
            assert names.count("inner_work") == 2
            region = [s for s in tracer.spans() if s.name == "traced.region"]
            assert len(region) == 1
            assert len(region[0].args["worker_seconds"]) == 2
            assert tracer.counters["items_done"] == 10
        finally:
            obs.disable()

    def test_shutdown_idempotent_and_refuses_reuse(self):
        ex = ProcessExecutor(2)
        ex.shutdown()
        ex.shutdown()
        with pytest.raises(RuntimeError):
            ex.parallel_for(k_fill_ranges, 4, args=(np.zeros(4),))


class TestGetExecutor:
    def teardown_method(self):
        shutdown_all_executors()

    def test_cache_returns_same_instance(self):
        a = get_executor(2, backend="thread")
        b = get_executor(2, backend="thread")
        assert a is b

    def test_with_block_does_not_kill_shared_executor(self):
        with get_executor(2, backend="thread") as ex:
            pass
        out = ex.allocate_shared((4,))
        ex.parallel_for(k_fill_ranges, 4, args=(out,))
        np.testing.assert_array_equal(out, np.arange(4.0))

    def test_shutdown_evicts_from_cache(self):
        ex = get_executor(2, backend="thread")
        ex.shutdown()
        fresh = get_executor(2, backend="thread")
        assert fresh is not ex
        out = fresh.allocate_shared((4,))
        fresh.parallel_for(k_fill_ranges, 4, args=(out,))
        np.testing.assert_array_equal(out, np.arange(4.0))

    def test_backend_selection_follows_config(self):
        with use_backend("process"):
            ex = get_executor(2)
            assert isinstance(ex, ProcessExecutor)
        with use_backend("thread"):
            ex = get_executor(2)
            assert isinstance(ex, ThreadExecutor)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            set_backend("gpu")
        with pytest.raises(ValueError):
            get_executor(2, backend="mpi")

    def test_default_backend_is_thread(self):
        assert isinstance(get_executor(2), ThreadExecutor)
