"""The tree must stay analyzer-clean: zero unsuppressed findings.

This is the CI teeth of :mod:`repro.analysis` — any future PR that
introduces a parallel hazard (or an unexplained suppression-free layout
warning) fails tier-1 here, with the finding's fix-hint in the report.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import lint_paths, render_text

SRC = Path(__file__).parent.parent / "src" / "repro"


def test_src_tree_has_no_unsuppressed_findings():
    findings = lint_paths([SRC])
    active = [f for f in findings if not f.suppressed]
    assert not active, "\n" + render_text(findings)


def test_suppressions_in_tree_are_the_known_ones():
    # Suppressions are allowed but must be deliberate: this list is the
    # reviewed inventory.  Update it (and the justifying comment at the
    # site) when adding one.
    findings = lint_paths([SRC])
    suppressed = {
        (Path(f.path).name, f.rule) for f in findings if f.suppressed
    }
    assert suppressed == {
        ("mttkrp_twostep.py", "RA004"),
        # onestep-seq is deliberately absent from the autotuner candidate
        # set (strictly dominated by "onestep"); see the comment on its
        # MTTKRP_METHODS line in core/dispatch.py.
        ("dispatch.py", "RA010"),
    }


def test_blocked_kernel_is_suppression_free():
    # The blocked kernel family (PR 7) is pinned analyzer-clean with zero
    # suppressions of its own: every shared write goes through
    # partition-derived indices, every BLAS-facing allocation states its
    # order.  A future edit that needs a suppression here must instead
    # restructure the kernel (or argue its case in the inventory above).
    findings = lint_paths([SRC / "core" / "mttkrp_blocked.py"])
    assert findings == [], "\n" + render_text(findings)


def test_analyzer_sees_the_whole_tree():
    # Guard against the lint silently linting nothing (e.g. a bad path).
    from repro.analysis import collect_files

    files = collect_files([SRC])
    assert len(files) > 20
    names = {f.name for f in files}
    assert {
        "pool.py", "shm.py", "mttkrp_onestep.py", "workspace.py", "dimtree.py",
        "mttkrp_blocked.py",
    } <= names
    # The autotuner tree is linted too (and, per the suppression
    # inventory above, contributes zero suppressions of its own).
    tune_files = {f.name for f in files if f.parent.name == "tune"}
    assert {"tuner.py", "cache.py", "cli.py"} <= tune_files


def test_cli_strict_run_is_clean():
    # Tier-1 teeth for the CLI itself: `python -m repro.analysis --strict`
    # over the whole tree must exit 0, exactly as CI invokes it.
    root = Path(__file__).parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        "src" + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else "src"
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--strict", "src/repro"],
        cwd=root, env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s)" in proc.stdout
