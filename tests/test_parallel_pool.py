"""Tests for the persistent worker-thread pool."""

import threading
import time

import numpy as np
import pytest

from repro.parallel.pool import (
    ThreadPool,
    WorkerError,
    get_pool,
    shutdown_all_pools,
)


class TestParallelFor:
    def test_covers_range_exactly_once(self):
        with ThreadPool(4) as pool:
            hits = np.zeros(100, dtype=np.int64)

            def work(t, start, stop):
                hits[start:stop] += 1

            pool.parallel_for(work, 100)
        np.testing.assert_array_equal(hits, 1)

    def test_worker_indices_distinct(self):
        with ThreadPool(4) as pool:
            seen = []
            lock = threading.Lock()

            def work(t, start, stop):
                with lock:
                    seen.append(t)

            pool.parallel_for(work, 100)
        assert sorted(seen) == [0, 1, 2, 3]

    def test_empty_ranges_not_invoked(self):
        with ThreadPool(8) as pool:
            calls = []
            lock = threading.Lock()

            def work(t, start, stop):
                with lock:
                    calls.append((t, start, stop))

            pool.parallel_for(work, 3)
        # ceil(3/8)=1: only 3 workers receive nonempty ranges.
        assert len(calls) == 3
        for _, start, stop in calls:
            assert stop - start == 1

    def test_zero_items(self):
        with ThreadPool(3) as pool:
            pool.parallel_for(lambda *a: pytest.fail("should not run"), 0)

    def test_single_thread_runs_inline(self):
        pool = ThreadPool(1)
        ident = []
        pool.parallel_for(lambda t, s, e: ident.append(threading.get_ident()), 5)
        assert ident == [threading.get_ident()]

    def test_exception_propagates_with_worker_index(self):
        with ThreadPool(3) as pool:

            def work(t, start, stop):
                if t == 1:
                    raise ValueError("boom")

            with pytest.raises(WorkerError, match="worker 1"):
                pool.parallel_for(work, 30)

    def test_pool_usable_after_exception(self):
        with ThreadPool(2) as pool:
            with pytest.raises(WorkerError):
                pool.parallel_for(
                    lambda t, s, e: (_ for _ in ()).throw(RuntimeError()), 10
                )
            acc = np.zeros(10)

            def ok(t, start, stop):
                acc[start:stop] = 1

            pool.parallel_for(ok, 10)
            assert acc.sum() == 10


class TestRunTasks:
    def test_one_task_per_thread(self):
        with ThreadPool(3) as pool:
            results = [None] * 3
            tasks = [
                (lambda i=i: results.__setitem__(i, i * i)) for i in range(3)
            ]
            pool.run_tasks(tasks)
        assert results == [0, 1, 4]

    def test_none_tasks_allowed(self):
        with ThreadPool(2) as pool:
            ran = []
            pool.run_tasks([lambda: ran.append(1), None])
        assert ran == [1]

    def test_wrong_task_count(self):
        with ThreadPool(2) as pool:
            with pytest.raises(ValueError, match="expected 2 tasks"):
                pool.run_tasks([lambda: None])

    def test_tasks_actually_concurrent(self):
        """Workers must overlap: with 2 threads and two 100 ms GIL-releasing
        sleeps, wall time should be clearly under the 200 ms serial time
        (generous margin for noisy CI schedulers)."""
        with ThreadPool(2) as pool:
            t0 = time.perf_counter()
            pool.run_tasks([lambda: time.sleep(0.1)] * 2)
            elapsed = time.perf_counter() - t0
        assert elapsed < 0.17

    def test_many_regions_reuse_team(self):
        with ThreadPool(3) as pool:
            counter = np.zeros(3, dtype=np.int64)

            def bump(t, start, stop):
                counter[t] += 1

            for _ in range(50):
                pool.parallel_for(bump, 3)
        np.testing.assert_array_equal(counter, 50)


class TestLifecycle:
    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ThreadPool(0)

    def test_shutdown_rejects_new_work(self):
        pool = ThreadPool(2)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.run_tasks([None, None])

    def test_double_shutdown_is_safe(self):
        pool = ThreadPool(2)
        pool.shutdown()
        pool.shutdown()

    def test_get_pool_caches(self):
        shutdown_all_pools()
        a = get_pool(3)
        b = get_pool(3)
        assert a is b
        c = get_pool(2)
        assert c is not a
        shutdown_all_pools()

    def test_get_pool_replaces_shutdown_pool(self):
        shutdown_all_pools()
        a = get_pool(2)
        a.shutdown()
        b = get_pool(2)
        assert b is not a
        shutdown_all_pools()

    def test_get_pool_invalid(self):
        with pytest.raises(ValueError):
            get_pool(0)


class TestDynamicSchedule:
    def test_covers_range_exactly_once(self):
        with ThreadPool(4) as pool:
            hits = np.zeros(97, dtype=np.int64)
            lock = threading.Lock()

            def work(t, start, stop):
                with lock:
                    hits[start:stop] += 1

            pool.parallel_for(work, 97, schedule="dynamic", chunk=5)
        np.testing.assert_array_equal(hits, 1)

    def test_chunk_size_respected(self):
        with ThreadPool(2) as pool:
            sizes = []
            lock = threading.Lock()

            def work(t, start, stop):
                with lock:
                    sizes.append(stop - start)

            pool.parallel_for(work, 23, schedule="dynamic", chunk=4)
        assert max(sizes) <= 4
        assert sum(sizes) == 23

    def test_default_chunk(self):
        with ThreadPool(3) as pool:
            total = np.zeros(1, dtype=np.int64)
            lock = threading.Lock()

            def work(t, start, stop):
                with lock:
                    total[0] += stop - start

            pool.parallel_for(work, 1000, schedule="dynamic")
        assert total[0] == 1000

    def test_zero_items(self):
        with ThreadPool(2) as pool:
            pool.parallel_for(
                lambda *a: pytest.fail("no work expected"),
                0,
                schedule="dynamic",
            )

    def test_single_thread_inline(self):
        pool = ThreadPool(1)
        seen = []
        pool.parallel_for(
            lambda t, s, e: seen.append((s, e)), 10, schedule="dynamic",
            chunk=3,
        )
        assert seen == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_bad_schedule(self):
        with ThreadPool(2) as pool:
            with pytest.raises(ValueError, match="schedule"):
                pool.parallel_for(lambda *a: None, 5, schedule="guided")

    def test_bad_chunk(self):
        with ThreadPool(2) as pool:
            with pytest.raises(ValueError, match="chunk"):
                pool.parallel_for(
                    lambda *a: None, 5, schedule="dynamic", chunk=0
                )

    def test_exception_propagates(self):
        with ThreadPool(2) as pool:

            def work(t, start, stop):
                if start >= 4:
                    raise RuntimeError("late chunk")

            with pytest.raises(WorkerError):
                pool.parallel_for(work, 10, schedule="dynamic", chunk=2)
