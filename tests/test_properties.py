"""Cross-cutting property-based tests (hypothesis).

These complement the per-module tests with randomized structural
invariants that tie several subsystems together: layout/view consistency,
algebraic identities of the contractions, and model algebra.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatch import mttkrp
from repro.core.krp import khatri_rao
from repro.cpd.kruskal import KruskalTensor
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import mode_products
from repro.tensor.matricize import unfold_explicit
from repro.tensor.ttm import ttm
from repro.tensor.ttv import ttv
from repro.util import prod

shapes = st.lists(st.integers(1, 5), min_size=2, max_size=5).map(tuple)


def _tensor(shape, seed=0):
    rng = np.random.default_rng(seed)
    return DenseTensor(rng.standard_normal(shape))


def _factors(shape, rank, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((s, rank)) for s in shape]


class TestLayoutViewConsistency:
    @given(shapes, st.data())
    @settings(max_examples=40, deadline=None)
    def test_blocks_reassemble_unfolding(self, shape, data):
        """mode_blocks_view stitched together equals the explicit
        mode-n matricization, for every mode of every shape."""
        n = data.draw(st.integers(0, len(shape) - 1))
        X = _tensor(shape, seed=data.draw(st.integers(0, 999)))
        blocks = X.mode_blocks_view(n)
        stitched = np.concatenate(list(blocks), axis=1)
        np.testing.assert_array_equal(stitched, unfold_explicit(X, n))

    @given(shapes, st.data())
    @settings(max_examples=40, deadline=None)
    def test_unfold_front_refolds(self, shape, data):
        n = data.draw(st.integers(0, len(shape) - 1))
        X = _tensor(shape, seed=3)
        M = X.unfold_front(n)
        back = DenseTensor(M.ravel(order="F"), shape)
        assert back.allclose(X)

    @given(shapes)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_through_ndarray(self, shape):
        X = _tensor(shape, seed=5)
        again = DenseTensor(X.to_ndarray())
        np.testing.assert_array_equal(again.data, X.data)


class TestContractionAlgebra:
    @given(shapes, st.data())
    @settings(max_examples=30, deadline=None)
    def test_ttv_linearity(self, shape, data):
        n = data.draw(st.integers(0, len(shape) - 1))
        X = _tensor(shape, seed=7)
        rng = np.random.default_rng(8)
        u = rng.standard_normal(shape[n])
        v = rng.standard_normal(shape[n])
        a = ttv(X, u + 2.0 * v, n)
        b = ttv(X, u, n)
        c = ttv(X, v, n)
        if isinstance(a, DenseTensor):
            np.testing.assert_allclose(
                a.data, b.data + 2.0 * c.data, atol=1e-10
            )
        else:
            assert np.isclose(a, b + 2.0 * c)

    @given(shapes, st.data())
    @settings(max_examples=30, deadline=None)
    def test_ttm_then_ttv_equals_ttv_of_product(self, shape, data):
        """(X x_n M) x_n v == X x_n (M v): contraction composition."""
        n = data.draw(st.integers(0, len(shape) - 1))
        X = _tensor(shape, seed=9)
        rng = np.random.default_rng(10)
        M = rng.standard_normal((shape[n], 3))
        v = rng.standard_normal(3)
        left = ttv(ttm(X, M, n), v, n)
        right = ttv(X, M @ v, n)
        if isinstance(left, DenseTensor):
            np.testing.assert_allclose(left.data, right.data, atol=1e-9)
        else:
            assert np.isclose(left, right)

    @given(shapes, st.integers(1, 4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_mttkrp_of_rank1_tensor(self, shape, rank, data):
        """MTTKRP of a rank-1 tensor a_0 o a_1 o ... has the closed form
        a_n * prod_{k != n} (a_k^T U_k) row-wise."""
        n = data.draw(st.integers(0, len(shape) - 1))
        rng = np.random.default_rng(11)
        vecs = [rng.standard_normal(s) for s in shape]
        from repro.tensor.generate import from_kruskal

        X = from_kruskal([v[:, None] for v in vecs])
        U = _factors(shape, rank, seed=12)
        expected = np.outer(
            vecs[n],
            np.prod(
                [vecs[k] @ U[k] for k in range(len(shape)) if k != n],
                axis=0,
            ),
        )
        np.testing.assert_allclose(mttkrp(X, U, n), expected, atol=1e-8)

    @given(shapes, st.data())
    @settings(max_examples=25, deadline=None)
    def test_mttkrp_definition_via_explicit_unfold(self, shape, data):
        """M == X_(n) @ K with the explicit unfold and full KRP — the
        textbook definition, against the no-reorder implementations."""
        n = data.draw(st.integers(0, len(shape) - 1))
        X = _tensor(shape, seed=13)
        U = _factors(shape, 3, seed=14)
        ops = [U[k] for k in range(len(shape) - 1, -1, -1) if k != n]
        expected = unfold_explicit(X, n) @ khatri_rao(ops)
        np.testing.assert_allclose(mttkrp(X, U, n), expected, atol=1e-9)


class TestModelAlgebra:
    @given(shapes, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_norm_identity(self, shape, rank):
        m = KruskalTensor(_factors(shape, rank, seed=15))
        assert np.isclose(m.norm(), m.full().norm(), rtol=1e-8)

    @given(shapes, st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_inner_product_symmetric_roles(self, shape, rank):
        """<Y, X> via MTTKRP equals the dense dot product."""
        m = KruskalTensor(_factors(shape, rank, seed=16))
        X = _tensor(shape, seed=17)
        assert np.isclose(
            m.inner(X), float(m.full().data @ X.data), rtol=1e-8
        )

    @given(shapes, st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_normalize_preserves_tensor(self, shape, rank):
        m = KruskalTensor(
            _factors(shape, rank, seed=18),
            np.random.default_rng(19).standard_normal(rank),
        )
        assert m.normalize().full().allclose(m.full(), atol=1e-8)


class TestKrpStructure:
    @given(
        st.lists(st.integers(1, 4), min_size=2, max_size=4),
        st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_krp_row_count_and_rank1_columns(self, dims, C):
        rng = np.random.default_rng(20)
        mats = [rng.standard_normal((d, C)) for d in dims]
        K = khatri_rao(mats)
        assert K.shape == (prod(dims), C)
        # Each column is a Kronecker product of the columns => reshaping a
        # column into the dims grid gives a rank-1 multilinear array; check
        # via the matrix rank of one unfolding for 2 inputs.
        if len(dims) == 2 and min(dims) > 1:
            col = K[:, 0].reshape(dims)
            assert np.linalg.matrix_rank(col) == 1

    @given(shapes, st.data())
    @settings(max_examples=25, deadline=None)
    def test_products_consistent_with_blocks(self, shape, data):
        n = data.draw(st.integers(0, len(shape) - 1))
        p = mode_products(shape, n)
        X = _tensor(shape, seed=21)
        blocks = X.mode_blocks_view(n)
        assert blocks.shape == (p.right, p.size, p.left)
        assert p.total == X.size
