"""Tests for static contiguous partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.partition import block_bounds, contiguous_blocks, owner_of


class TestContiguousBlocks:
    def test_even_split(self):
        assert contiguous_blocks(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_ceiling_block_size(self):
        # b = ceil(10/3) = 4 (the paper's Alg. 3 line 3).
        assert contiguous_blocks(10, 3) == [(0, 4), (4, 8), (8, 10)]

    def test_more_parts_than_items(self):
        blocks = contiguous_blocks(2, 4)
        assert blocks == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_items(self):
        assert contiguous_blocks(0, 3) == [(0, 0)] * 3

    def test_single_part(self):
        assert contiguous_blocks(7, 1) == [(0, 7)]

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            contiguous_blocks(-1, 2)

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            contiguous_blocks(5, 0)

    @given(st.integers(0, 500), st.integers(1, 40))
    def test_partition_properties(self, n, parts):
        blocks = contiguous_blocks(n, parts)
        assert len(blocks) == parts
        # Ordered, disjoint, exactly covering [0, n).
        covered = 0
        prev_stop = 0
        for start, stop in blocks:
            assert start == prev_stop
            assert start <= stop <= n
            covered += stop - start
            prev_stop = stop
        assert covered == n
        assert prev_stop == n or n == 0

    @given(st.integers(0, 500), st.integers(1, 40))
    def test_balance(self, n, parts):
        blocks = contiguous_blocks(n, parts)
        sizes = [stop - start for start, stop in blocks]
        nonzero = [s for s in sizes if s]
        if nonzero:
            assert max(nonzero) - min(nonzero) <= max(nonzero)
            # Ceiling schedule: no block exceeds ceil(n/parts).
            assert max(sizes) == -(-n // parts)


class TestBlockBounds:
    @given(st.integers(0, 200), st.integers(1, 20))
    def test_matches_contiguous_blocks(self, n, parts):
        blocks = contiguous_blocks(n, parts)
        for t in range(parts):
            assert block_bounds(n, parts, t) == blocks[t]

    def test_part_out_of_range(self):
        with pytest.raises(ValueError):
            block_bounds(10, 3, 3)
        with pytest.raises(ValueError):
            block_bounds(10, 3, -1)


class TestOwnerOf:
    @given(st.integers(1, 200), st.integers(1, 20), st.data())
    def test_owner_consistent_with_blocks(self, n, parts, data):
        item = data.draw(st.integers(0, n - 1))
        blocks = contiguous_blocks(n, parts)
        t = owner_of(item, n, parts)
        start, stop = blocks[t]
        assert start <= item < stop

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            owner_of(10, 10, 2)
