"""Exporters: Chrome trace JSON schema, summaries, and the report CLI."""

import json
import os
import subprocess
import sys

import pytest

import repro.obs as obs
from repro.obs.export import records_from_events, summarize_records
from repro.obs.report import main as report_main
from repro.obs.tracer import Tracer


def _sample_tracer():
    tr = Tracer()
    with tr.span("cp_als", rank=4):
        with tr.span("iter[0]"):
            with tr.span("mode[0]"):
                with tr.span("mttkrp.onestep", mode=0) as sp:
                    sp.add("flops", 2.0e6)
                    with tr.span("full_krp"):
                        pass
                    with tr.span("gemm") as g:
                        g.add("gemm_calls", 1)
    tr.record_region("pool.region", tr.epoch, tr.epoch + 0.5, [0.5, 0.25])
    return tr


class TestChromeTrace:
    def test_event_schema(self):
        trace = obs.chrome_trace(_sample_tracer())
        assert set(trace) >= {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        x_events = [e for e in events if e["ph"] == "X"]
        m_events = [e for e in events if e["ph"] == "M"]
        assert len(x_events) == 7
        assert m_events, "thread_name metadata events expected"
        for ev in x_events:
            assert set(ev) == {
                "name", "cat", "ph", "ts", "dur", "pid", "tid", "args"
            }
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert ev["pid"] == os.getpid()
            assert "path" in ev["args"]

    def test_span_counters_ride_in_args(self):
        trace = obs.chrome_trace(_sample_tracer())
        mttkrp = next(
            e for e in trace["traceEvents"] if e["name"] == "mttkrp.onestep"
        )
        assert mttkrp["args"]["flops"] == 2.0e6
        assert mttkrp["args"]["mode"] == 0
        region = next(
            e for e in trace["traceEvents"] if e["name"] == "pool.region"
        )
        assert region["args"]["imbalance"] == pytest.approx(0.5 / 0.375)

    def test_save_and_json_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert obs.save_chrome_trace(_sample_tracer(), path) == path
        with open(path, encoding="utf-8") as fh:
            loaded = json.load(fh)
        names = {e["name"] for e in loaded["traceEvents"]}
        assert {"cp_als", "iter[0]", "mode[0]", "gemm"} <= names
        records = records_from_events(loaded["traceEvents"])
        by_name = {r["name"]: r for r in records}
        assert by_name["mttkrp.onestep"]["counters"]["flops"] == 2.0e6
        assert by_name["gemm"]["path"].endswith("mttkrp.onestep/gemm")


class TestSummaries:
    def test_phase_totals_uses_leaves_only(self):
        tr = _sample_tracer()
        totals = obs.phase_totals(tr)
        # Leaves are the innermost phases; ancestors and regions excluded.
        assert set(totals) == {"full_krp", "gemm"}

    def test_phase_timer_bridge(self):
        timer = obs.phase_timer_from_trace(_sample_tracer())
        snap = timer.snapshot()
        assert set(snap) == {"full_krp", "gemm"}
        assert all(v >= 0.0 for v in snap.values())

    def test_summary_sections(self):
        text = obs.summary(_sample_tracer())
        assert "phase breakdown" in text
        assert "full_krp" in text
        assert "algorithm spans" in text and "mttkrp.onestep" in text
        assert "parallel regions" in text and "pool.region" in text

    def test_summarize_records_from_loaded_trace(self, tmp_path):
        path = str(tmp_path / "trace.json")
        obs.save_chrome_trace(_sample_tracer(), path)
        with open(path, encoding="utf-8") as fh:
            events = json.load(fh)["traceEvents"]
        text = summarize_records(records_from_events(events))
        assert "full_krp" in text and "pool.region" in text


class TestReportCLI:
    def test_main_prints_summary(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        obs.save_chrome_trace(_sample_tracer(), path)
        assert report_main([path]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out and "full_krp" in out

    def test_main_rejects_missing_file(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_python_dash_m_entry_point(self, tmp_path):
        path = str(tmp_path / "trace.json")
        obs.save_chrome_trace(_sample_tracer(), path)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", path],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "phase breakdown" in proc.stdout


class TestEnvVar:
    def test_repro_trace_path_dumps_at_exit(self, tmp_path):
        out = str(tmp_path / "env_trace.json")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env["REPRO_TRACE"] = out
        code = (
            "from repro import random_tensor, random_factors, mttkrp\n"
            "X = random_tensor((6, 5, 4), rng=0)\n"
            "U = random_factors(X.shape, 3, rng=1)\n"
            "mttkrp(X, U, 1, num_threads=2)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        with open(out, encoding="utf-8") as fh:
            trace = json.load(fh)
        names = {e["name"] for e in trace["traceEvents"]}
        assert any(n.startswith("mttkrp.") for n in names)
