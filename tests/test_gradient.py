"""Tests for CP gradients and the CP-OPT driver."""

import numpy as np
import pytest

from repro.cpd.gradient import cp_gradient, cp_loss, cp_opt
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import from_kruskal, random_factors, random_tensor


def _case(shape=(4, 5, 6), rank=3, seed=0):
    return (
        random_tensor(shape, rng=seed),
        random_factors(shape, rank, rng=seed + 1),
    )


class TestLoss:
    def test_matches_dense_residual(self):
        X, U = _case()
        from repro.cpd.kruskal import KruskalTensor

        dense = 0.5 * float(
            np.linalg.norm(X.data - KruskalTensor(U).full().data) ** 2
        )
        assert cp_loss(X, U) == pytest.approx(dense, rel=1e-10)

    def test_zero_at_exact_model(self):
        U = random_factors((5, 6, 7), 2, rng=3)
        X = from_kruskal(U)
        assert cp_loss(X, U) == pytest.approx(0.0, abs=1e-8)

    def test_cached_norm(self):
        X, U = _case()
        assert cp_loss(X, U) == pytest.approx(
            cp_loss(X, U, norm_x=X.norm())
        )


class TestGradient:
    @pytest.mark.parametrize("shape", [(4, 5, 6), (3, 4, 5, 3)])
    def test_finite_differences(self, shape):
        X, U = _case(shape)
        grad = cp_gradient(X, U)
        rng = np.random.default_rng(9)
        eps = 1e-6
        for n in range(len(shape)):
            for _ in range(4):
                i = rng.integers(U[n].shape[0])
                c = rng.integers(U[n].shape[1])
                up = [f.copy() for f in U]
                up[n][i, c] += eps
                um = [f.copy() for f in U]
                um[n][i, c] -= eps
                fd = (cp_loss(X, up) - cp_loss(X, um)) / (2 * eps)
                assert grad[n][i, c] == pytest.approx(fd, rel=1e-3, abs=1e-5)

    def test_zero_gradient_at_exact_model(self):
        U = random_factors((5, 6, 7), 2, rng=4)
        X = from_kruskal(U)
        for g in cp_gradient(X, U):
            np.testing.assert_allclose(g, 0.0, atol=1e-8)

    def test_dimtree_matches_per_mode(self):
        X, U = _case((3, 4, 5, 6))
        a = cp_gradient(X, U, mode_strategy="per-mode")
        b = cp_gradient(X, U, mode_strategy="dimtree")
        for ga, gb in zip(a, b):
            np.testing.assert_allclose(ga, gb, atol=1e-9)

    def test_unknown_strategy(self):
        X, U = _case()
        with pytest.raises(ValueError, match="mode_strategy"):
            cp_gradient(X, U, mode_strategy="magic")

    def test_shapes(self):
        X, U = _case()
        for g, f in zip(cp_gradient(X, U), U):
            assert g.shape == f.shape


class TestCpOpt:
    def test_recovers_exact_lowrank(self):
        U = random_factors((8, 9, 10), 2, rng=5)
        X = from_kruskal(U)
        res = cp_opt(X, 2, n_iter_max=500, rng=6)
        assert res.fits[-1] > 0.999

    def test_explicit_init(self):
        U = random_factors((6, 7, 8), 2, rng=7)
        X = from_kruskal(U)
        init = [f + 0.05 for f in U]
        res = cp_opt(X, 2, n_iter_max=300, init=init)
        assert res.fits[-1] > 0.999

    def test_model_normalized(self):
        X, _ = _case()
        res = cp_opt(X, 2, n_iter_max=10, rng=1)
        for f in res.model.factors:
            np.testing.assert_allclose(np.linalg.norm(f, axis=0), 1.0)

    def test_errors(self):
        X, _ = _case()
        with pytest.raises(ValueError, match="rank"):
            cp_opt(X, 0)
        with pytest.raises(TypeError, match="DenseTensor"):
            cp_opt(np.zeros((3, 4)), 2)
        with pytest.raises(ValueError, match="zero"):
            cp_opt(DenseTensor(np.zeros((3, 4))), 2)
        with pytest.raises(ValueError, match="initial factors"):
            cp_opt(X, 2, init=[np.ones((4, 2))])
