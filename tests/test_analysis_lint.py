"""Per-rule fixture tests for the parallel-hazard lint (RA001–RA006).

Each rule id has one minimal positive and one negative fixture under
``tests/analysis_fixtures/``; the positive must produce at least one
finding with that id and the negative must produce none.  Plus coverage
for suppression handling, the JSON report, and the CLI contract.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_file, lint_paths, render_json, render_text
from repro.analysis.rules import ALL_RULES, get_rules

FIXTURES = Path(__file__).parent / "analysis_fixtures"
RULE_IDS = [r.id for r in ALL_RULES]


def findings_for(name, rule_id=None):
    found = lint_file(FIXTURES / name)
    if rule_id is not None:
        found = [f for f in found if f.rule == rule_id]
    return found


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_positive_fixture_fires(self, rule_id):
        name = f"{rule_id.lower()}_pos.py"
        hits = findings_for(name, rule_id)
        assert hits, f"{name} produced no {rule_id} findings"
        for f in hits:
            assert not f.suppressed
            assert f.line > 0
            assert f.message
            assert f.hint

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_negative_fixture_clean(self, rule_id):
        name = f"{rule_id.lower()}_neg.py"
        assert findings_for(name, rule_id) == []

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_positive_fixture_only_its_own_rule(self, rule_id):
        # A positive fixture for one rule must not trip unrelated rules —
        # that would mean the fixtures (and the rules) overlap murkily.
        name = f"{rule_id.lower()}_pos.py"
        other = {f.rule for f in findings_for(name)} - {rule_id}
        assert not other, f"{name} also fired {other}"

    def test_corpus_reports_all_six_ids(self):
        ids = {f.rule for f in lint_paths([FIXTURES])}
        assert ids >= set(RULE_IDS)


class TestArenaReusePattern:
    """RA001 vs the workspace-arena idiom of the dimtree kernels.

    Buffers acquired from a :class:`repro.parallel.workspace.Workspace`
    outside the region and written inside it through partition-derived
    destinations (``out=priv[worker]``, views derived from it, per-worker
    clock slots) must lint clean; writing an arena slab the worker does
    not own must still fire.
    """

    def test_arena_reuse_negative_clean(self):
        assert findings_for("ra001_arena_neg.py") == []

    def test_arena_reuse_positive_fires(self):
        hits = findings_for("ra001_arena_pos.py", "RA001")
        assert len(hits) == 2
        assert {f.rule for f in findings_for("ra001_arena_pos.py")} == {
            "RA001"
        }

    def test_severities(self):
        sev = {r.id: r.severity for r in ALL_RULES}
        assert sev["RA001"] == "error"
        assert sev["RA002"] == "error"
        assert sev["RA005"] == "error"
        assert sev["RA006"] == "error"
        assert sev["RA003"] == "warning"
        assert sev["RA004"] == "warning"


class TestSuppression:
    def _lint_source(self, tmp_path, source):
        p = tmp_path / "mod.py"
        p.write_text(source)
        return lint_file(p)

    def test_same_line_suppression(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    out = np.empty((4, 4))  # repro: ignore[RA003]\n"
            "    np.matmul(a, b, out=out)\n"
        )
        found = self._lint_source(tmp_path, src)
        assert [f.rule for f in found] == ["RA003"]
        assert found[0].suppressed

    def test_preceding_line_suppression(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    # repro: ignore[RA003]\n"
            "    out = np.empty((4, 4))\n"
            "    np.matmul(a, b, out=out)\n"
        )
        found = self._lint_source(tmp_path, src)
        assert found[0].suppressed

    def test_comma_separated_ids(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    out = np.empty((4, 4))  # repro: ignore[RA001, RA003]\n"
            "    np.matmul(a, b, out=out)\n"
        )
        found = self._lint_source(tmp_path, src)
        assert found[0].suppressed

    def test_wrong_id_does_not_suppress(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    out = np.empty((4, 4))  # repro: ignore[RA001]\n"
            "    np.matmul(a, b, out=out)\n"
        )
        found = self._lint_source(tmp_path, src)
        assert not found[0].suppressed

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        p = tmp_path / "broken.py"
        p.write_text("def f(:\n")
        found = lint_file(p)
        assert [f.rule for f in found] == ["PARSE"]
        assert found[0].severity == "error"


class TestReports:
    def test_json_shape(self):
        findings = lint_paths([FIXTURES])
        payload = json.loads(render_json(findings))
        assert set(payload) == {"findings", "summary"}
        assert payload["summary"]["errors"] > 0
        one = payload["findings"][0]
        assert {"rule", "severity", "path", "line", "col", "message",
                "hint", "suppressed"} <= set(one)

    def test_text_summary_line(self):
        findings = lint_paths([FIXTURES])
        text = render_text(findings)
        assert "error(s)" in text and "warning(s)" in text

    def test_get_rules_unknown_id(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["RA999"])

    def test_get_rules_subset(self):
        rules = get_rules(["RA003", "RA005"])
        assert [r.id for r in rules] == ["RA003", "RA005"]


class TestCli:
    def _run(self, *args):
        repo = Path(__file__).parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(repo / "src") + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=repo, env=env,
        )

    def test_exit_nonzero_on_fixture_errors(self):
        res = self._run(str(FIXTURES))
        assert res.returncode == 1
        assert "RA001" in res.stdout

    def test_exit_zero_on_clean_tree(self):
        res = self._run("src/repro")
        assert res.returncode == 0, res.stdout

    def test_json_flag(self):
        res = self._run(str(FIXTURES), "--json")
        payload = json.loads(res.stdout)
        assert payload["summary"]["errors"] > 0

    def test_rules_filter(self):
        res = self._run(str(FIXTURES), "--rules", "RA003")
        # RA003 is warning severity: exit 0 unless --strict.
        assert res.returncode == 0
        assert "RA001" not in res.stdout

    def test_strict_promotes_warnings(self):
        res = self._run(str(FIXTURES), "--rules", "RA003", "--strict")
        assert res.returncode == 1
