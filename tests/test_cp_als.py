"""Tests for the CP-ALS driver."""

import numpy as np
import pytest

from repro.cpd.cp_als import cp_als
from repro.cpd.diagnostics import factor_match_score
from repro.cpd.kruskal import KruskalTensor
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import from_kruskal, random_factors, random_tensor


def _exact_lowrank(shape=(10, 11, 12), rank=3, seed=0):
    U = random_factors(shape, rank, rng=seed)
    return from_kruskal(U), KruskalTensor(U)


class TestConvergence:
    def test_exact_recovery_fit(self):
        X, _ = _exact_lowrank()
        res = cp_als(X, 3, n_iter_max=200, tol=1e-13, rng=1)
        assert res.final_fit > 0.9999

    def test_factor_recovery(self):
        X, truth = _exact_lowrank(seed=3)
        res = cp_als(X, 3, n_iter_max=300, tol=1e-14, rng=4)
        assert factor_match_score(res.model, truth) > 0.99

    def test_fit_nondecreasing(self):
        X = random_tensor((8, 9, 10), rng=0)
        res = cp_als(X, 4, n_iter_max=25, tol=0.0, rng=1)
        fits = np.array(res.fits)
        # ALS is monotone in the exact arithmetic sense; allow tiny
        # floating-point wiggle.
        assert np.all(np.diff(fits) > -1e-9)

    def test_converged_flag(self):
        X, _ = _exact_lowrank()
        res = cp_als(X, 3, n_iter_max=500, tol=1e-6, rng=1)
        assert res.converged
        assert res.iterations < 500

    def test_tol_zero_runs_all_iterations(self):
        X = random_tensor((6, 7, 8), rng=0)
        res = cp_als(X, 2, n_iter_max=5, tol=0.0, rng=1)
        assert res.iterations == 5
        assert not res.converged

    def test_4way(self):
        U = random_factors((5, 6, 7, 4), 2, rng=7)
        X = from_kruskal(U)
        res = cp_als(X, 2, n_iter_max=150, tol=1e-13, rng=8)
        assert res.final_fit > 0.999


class TestOptions:
    def test_explicit_init(self):
        X, truth = _exact_lowrank()
        init = [f + 0.01 for f in truth.factors]
        res = cp_als(X, 3, n_iter_max=50, tol=1e-12, init=init)
        assert res.final_fit > 0.999

    def test_explicit_init_not_mutated(self):
        X, _ = _exact_lowrank()
        init = random_factors(X.shape, 3, rng=9)
        snapshot = [f.copy() for f in init]
        cp_als(X, 3, n_iter_max=3, init=init)
        for a, b in zip(init, snapshot):
            np.testing.assert_array_equal(a, b)

    def test_hosvd_init(self):
        X, _ = _exact_lowrank()
        res = cp_als(X, 3, n_iter_max=200, tol=1e-12, init="hosvd")
        # ALS can converge slowly even on exact low-rank data (swamps);
        # HOSVD init should still reach a high fit.
        assert res.final_fit > 0.99

    def test_methods_agree(self):
        X = random_tensor((6, 7, 8), rng=2)
        init = random_factors(X.shape, 3, rng=3)
        fits = {}
        for method in ("auto", "onestep", "baseline"):
            res = cp_als(X, 3, n_iter_max=6, tol=0.0, init=init, method=method)
            fits[method] = res.fits
        np.testing.assert_allclose(fits["auto"], fits["onestep"], atol=1e-8)
        np.testing.assert_allclose(fits["auto"], fits["baseline"], atol=1e-8)

    def test_timers_populated(self):
        X = random_tensor((6, 7, 8), rng=2)
        res = cp_als(X, 2, n_iter_max=3, tol=0.0, rng=0)
        assert {"gram", "solve"} <= set(res.timers.totals)
        assert len(res.iteration_times) == 3
        assert res.mean_iteration_time > 0

    def test_verbose_prints(self, capsys):
        X = random_tensor((5, 5, 5), rng=2)
        cp_als(X, 2, n_iter_max=2, tol=0.0, rng=0, verbose=True)
        assert "fit" in capsys.readouterr().out

    def test_model_is_normalized_and_sorted(self):
        X = random_tensor((6, 7, 8), rng=2)
        res = cp_als(X, 3, n_iter_max=5, tol=0.0, rng=0)
        w = np.abs(res.model.weights)
        assert all(w[:-1] >= w[1:])
        for f in res.model.factors:
            np.testing.assert_allclose(np.linalg.norm(f, axis=0), 1.0)


class TestErrors:
    def test_bad_rank(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="rank"):
            cp_als(X, 0)

    def test_bad_iterations(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="n_iter_max"):
            cp_als(X, 2, n_iter_max=0)

    def test_zero_tensor(self):
        with pytest.raises(ValueError, match="zero"):
            cp_als(DenseTensor(np.zeros((3, 4))), 2)

    def test_order1_rejected(self):
        with pytest.raises(ValueError, match="order"):
            cp_als(DenseTensor(np.ones(4), (4,)), 2)

    def test_wrong_init_count(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="initial factors"):
            cp_als(X, 2, init=[np.ones((4, 2))])

    def test_wrong_init_shape(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="init"):
            cp_als(X, 2, init=[np.ones((4, 2)), np.ones((5, 3))])

    def test_not_a_tensor(self, rng):
        with pytest.raises(TypeError, match="DenseTensor"):
            cp_als(rng.random((3, 4)), 2)

    def test_empty_fits_properties(self):
        from repro.cpd.cp_als import CPALSResult

        res = CPALSResult(model=None)
        with pytest.raises(ValueError):
            _ = res.final_fit
        with pytest.raises(ValueError):
            _ = res.mean_iteration_time
