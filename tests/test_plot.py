"""Tests for the terminal chart renderer."""

import pytest

from repro.bench.plot import line_chart, stacked_bar_chart


class TestLineChart:
    def test_basic_render(self):
        chart = line_chart(
            "title",
            [1, 2, 4, 8],
            {"a": [4.0, 2.0, 1.0, 0.5], "b": [3.0, 3.0, 3.0, 3.0]},
        )
        assert "title" in chart
        assert "o a" in chart and "x b" in chart
        assert "threads" in chart
        # y-axis endpoints present
        assert "0 |" in chart

    def test_markers_present(self):
        chart = line_chart("t", [1, 2], {"s": [1.0, 2.0]})
        assert "o" in chart

    def test_interpolation_dots(self):
        chart = line_chart("t", [1, 10], {"s": [10.0, 1.0]}, width=40)
        assert "." in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            line_chart("t", [1, 2], {})

    def test_single_point_rejected(self):
        with pytest.raises(ValueError, match="two x"):
            line_chart("t", [1], {"s": [1.0]})

    def test_non_increasing_x_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            line_chart("t", [1, 1], {"s": [1.0, 2.0]})

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            line_chart("t", [1, 2], {"s": [1.0]})

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="non-positive"):
            line_chart("t", [1, 2], {"s": [0.0, 0.0]})

    def test_row_count(self):
        chart = line_chart("t", [1, 2], {"s": [1.0, 2.0]}, height=10)
        # title + 10 rows + axis + x labels + legend
        assert len(chart.splitlines()) == 14


class TestStackedBarChart:
    def test_basic_render(self):
        chart = stacked_bar_chart(
            "bars",
            {
                "n=0 1S": {"krp": 1.0, "gemm": 3.0},
                "n=1 2S": {"gemm": 3.5, "gemv": 0.2},
            },
        )
        assert "bars" in chart
        assert "n=0 1S" in chart
        assert "krp" in chart and "gemv" in chart

    def test_bar_lengths_proportional(self):
        chart = stacked_bar_chart(
            "t", {"a": {"p": 4.0}, "b": {"p": 2.0}}, width=20
        )
        lines = chart.splitlines()
        bar_a = lines[1].split("|")[1]
        bar_b = lines[2].split("|")[1]
        assert bar_a.count("#") == 2 * bar_b.count("#")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            stacked_bar_chart("t", {})

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            stacked_bar_chart("t", {"a": {"p": 0.0}})

    def test_custom_symbols(self):
        chart = stacked_bar_chart(
            "t", {"a": {"p": 1.0}}, symbols={"p": "Q"}
        )
        assert "Q" in chart


class TestFigureIntegration:
    def test_fig4_plot_flag(self, capsys):
        from repro.bench.figures import main

        assert main(["fig4", "--no-measured", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4 (modeled): KRP time vs threads" in out
        assert "[seconds]" in out

    def test_fig6_plot_flag(self, capsys):
        from repro.bench.figures import main

        assert main(["fig6", "--no-measured", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
