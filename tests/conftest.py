"""Shared fixtures and the einsum MTTKRP oracle used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.dense import DenseTensor

_LETTERS = "abcdefgh"


def mttkrp_oracle(tensor: DenseTensor, factors, n: int) -> np.ndarray:
    """Brute-force MTTKRP via einsum — the independent reference every
    algorithm is checked against."""
    arr = tensor.to_ndarray()
    N = arr.ndim
    subs, operands = [], []
    for k in range(N):
        if k == n:
            continue
        subs.append(_LETTERS[k] + "z")
        operands.append(np.asarray(factors[k]))
    expr = _LETTERS[:N] + "," + ",".join(subs) + "->" + _LETTERS[n] + "z"
    return np.einsum(expr, arr, *operands, optimize=True)


def krp_oracle(matrices) -> np.ndarray:
    """Column-wise Kronecker definition of the Khatri-Rao product."""
    mats = [np.asarray(m) for m in matrices]
    C = mats[0].shape[1]
    cols = []
    for c in range(C):
        col = mats[0][:, c]
        for m in mats[1:]:
            col = np.kron(col, m[:, c])
        cols.append(col)
    return np.stack(cols, axis=1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _single_thread_default():
    """Keep the package default at 1 thread so tests are deterministic in
    cost; tests that exercise parallelism pass num_threads explicitly."""
    from repro.parallel.config import num_threads

    with num_threads(1):
        yield
