"""Tests for repro.util.timing (PhaseTimer)."""

import threading
import time

from repro.util.timing import NULL_TIMER, PhaseTimer, wall_time


class TestPhaseTimer:
    def test_accumulates_time(self):
        t = PhaseTimer()
        with t.phase("work"):
            time.sleep(0.01)
        assert t.totals["work"] >= 0.009
        assert t.counts["work"] == 1

    def test_multiple_entries_accumulate(self):
        t = PhaseTimer()
        for _ in range(3):
            with t.phase("p"):
                pass
        assert t.counts["p"] == 3
        assert t.totals["p"] >= 0.0

    def test_distinct_phases(self):
        t = PhaseTimer()
        with t.phase("a"):
            pass
        with t.phase("b"):
            pass
        assert set(t.totals) == {"a", "b"}

    def test_add_manual(self):
        t = PhaseTimer()
        t.add("x", 1.5)
        t.add("x", 0.5)
        assert t.totals["x"] == 2.0
        assert t.counts["x"] == 2

    def test_total_sums_phases(self):
        t = PhaseTimer()
        t.add("a", 1.0)
        t.add("b", 2.0)
        assert t.total() == 3.0

    def test_reset(self):
        t = PhaseTimer()
        t.add("a", 1.0)
        t.reset()
        assert t.totals == {}
        assert t.total() == 0.0

    def test_merged(self):
        t1 = PhaseTimer()
        t1.add("a", 1.0)
        t2 = PhaseTimer()
        t2.add("a", 2.0)
        t2.add("b", 3.0)
        m = t1.merged(t2)
        assert m.totals == {"a": 3.0, "b": 3.0}
        # Sources are unchanged.
        assert t1.totals == {"a": 1.0}

    def test_merged_variadic(self):
        timers = []
        for i in range(3):
            t = PhaseTimer()
            t.add("a", float(i + 1))
            timers.append(t)
        timers[2].add("c", 5.0)
        m = timers[0].merged(timers[1], timers[2])
        assert m.totals == {"a": 6.0, "c": 5.0}
        assert m.counts == {"a": 3, "c": 1}
        # No-arg merge is a copy.
        solo = timers[0].merged()
        assert solo.totals == {"a": 1.0}
        assert solo is not timers[0]

    def test_snapshot_is_independent_copy(self):
        t = PhaseTimer()
        t.add("a", 1.0)
        snap = t.snapshot()
        assert snap == {"a": 1.0}
        t.add("a", 1.0)
        assert snap == {"a": 1.0}  # unchanged by later updates
        snap["b"] = 9.0
        assert "b" not in t.totals  # and mutations don't leak back

    def test_as_dict(self):
        t = PhaseTimer()
        t.add("a", 1.5)
        t.add("a", 0.5)
        t.add("b", 2.0)
        d = t.as_dict()
        assert d == {
            "totals": {"a": 2.0, "b": 2.0},
            "counts": {"a": 2, "b": 1},
        }
        d["totals"]["a"] = 0.0
        assert t.totals["a"] == 2.0

    def test_exception_still_recorded(self):
        t = PhaseTimer()
        try:
            with t.phase("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert "boom" in t.totals

    def test_thread_safety(self):
        t = PhaseTimer()

        def work():
            for _ in range(200):
                t.add("p", 0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert t.counts["p"] == 800
        assert abs(t.totals["p"] - 0.8) < 1e-9


class TestNullTimer:
    def test_phase_is_noop(self):
        with NULL_TIMER.phase("anything"):
            pass
        NULL_TIMER.add("anything", 1.0)  # no error, no state


def test_wall_time_monotonic():
    a = wall_time()
    b = wall_time()
    assert b >= a
