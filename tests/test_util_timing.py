"""Tests for repro.util.timing (PhaseTimer)."""

import threading
import time

from repro.util.timing import NULL_TIMER, PhaseTimer, wall_time


class TestPhaseTimer:
    def test_accumulates_time(self):
        t = PhaseTimer()
        with t.phase("work"):
            time.sleep(0.01)
        assert t.totals["work"] >= 0.009
        assert t.counts["work"] == 1

    def test_multiple_entries_accumulate(self):
        t = PhaseTimer()
        for _ in range(3):
            with t.phase("p"):
                pass
        assert t.counts["p"] == 3
        assert t.totals["p"] >= 0.0

    def test_distinct_phases(self):
        t = PhaseTimer()
        with t.phase("a"):
            pass
        with t.phase("b"):
            pass
        assert set(t.totals) == {"a", "b"}

    def test_add_manual(self):
        t = PhaseTimer()
        t.add("x", 1.5)
        t.add("x", 0.5)
        assert t.totals["x"] == 2.0
        assert t.counts["x"] == 2

    def test_total_sums_phases(self):
        t = PhaseTimer()
        t.add("a", 1.0)
        t.add("b", 2.0)
        assert t.total() == 3.0

    def test_reset(self):
        t = PhaseTimer()
        t.add("a", 1.0)
        t.reset()
        assert t.totals == {}
        assert t.total() == 0.0

    def test_merged(self):
        t1 = PhaseTimer()
        t1.add("a", 1.0)
        t2 = PhaseTimer()
        t2.add("a", 2.0)
        t2.add("b", 3.0)
        m = t1.merged(t2)
        assert m.totals == {"a": 3.0, "b": 3.0}
        # Sources are unchanged.
        assert t1.totals == {"a": 1.0}

    def test_exception_still_recorded(self):
        t = PhaseTimer()
        try:
            with t.phase("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert "boom" in t.totals

    def test_thread_safety(self):
        t = PhaseTimer()

        def work():
            for _ in range(200):
                t.add("p", 0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert t.counts["p"] == 800
        assert abs(t.totals["p"] - 0.8) < 1e-9


class TestNullTimer:
    def test_phase_is_noop(self):
        with NULL_TIMER.phase("anything"):
            pass
        NULL_TIMER.add("anything", 1.0)  # no error, no state


def test_wall_time_monotonic():
    a = wall_time()
    b = wall_time()
    assert b >= a
