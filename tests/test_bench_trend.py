"""Tests for the regression tracker and the legacy-results migration."""

import json
import os
import shutil

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.env import host_class_of
from repro.bench.migrate import migrate_results
from repro.bench.schema import load_history, new_record, write_results
from repro.bench.trend import (
    EXIT_OK,
    EXIT_REGRESSION,
    compare,
    render_json,
    render_text,
    select_baselines,
)

HOST_A = {"cpus": 4, "machine": "x86_64", "platform": "Linux-x86_64",
          "python": "3.11.7", "git_rev": "a" * 40, "git_dirty": False}
HOST_B = {"cpus": 12, "machine": "x86_64", "platform": "Linux-x86_64",
          "python": "3.11.7", "git_rev": "b" * 40, "git_dirty": False}


def _rec(benchmark, case, median, host=HOST_A, repeats=5):
    return new_record(
        benchmark, case,
        timing={"median_s": median, "mean_s": median, "repeats": repeats},
        host=host,
    )


class TestCompare:
    def test_detects_slowdown(self):
        history = [_rec("fig5", "a", 1.0)]
        result = compare([_rec("fig5", "a", 2.0)], history, tolerance=0.25)
        assert [c.status for c in result.comparisons] == ["regression"]
        assert result.exit_code == EXIT_REGRESSION
        assert result.comparisons[0].ratio == pytest.approx(2.0)

    def test_respects_relative_tolerance(self):
        history = [_rec("fig5", "a", 1.0)]
        result = compare([_rec("fig5", "a", 1.2)], history, tolerance=0.25)
        assert [c.status for c in result.comparisons] == ["ok"]
        assert result.exit_code == EXIT_OK

    def test_absolute_floor_suppresses_microsecond_noise(self):
        # 3x slower, but only 20us absolute — below the 50us floor
        history = [_rec("pool-overhead", "launch", 1e-5)]
        result = compare(
            [_rec("pool-overhead", "launch", 3e-5)], history,
            tolerance=0.25, abs_floor_s=5e-5,
        )
        assert [c.status for c in result.comparisons] == ["ok"]

    def test_improvement_reported(self):
        history = [_rec("fig5", "a", 2.0)]
        result = compare([_rec("fig5", "a", 1.0)], history)
        assert [c.status for c in result.comparisons] == ["improvement"]
        assert result.exit_code == EXIT_OK

    def test_no_baseline_for_new_case(self):
        result = compare([_rec("fig5", "brand-new", 1.0)], [])
        assert [c.status for c in result.comparisons] == ["no-baseline"]
        assert result.exit_code == EXIT_OK

    def test_host_class_isolation(self):
        # a 12-core baseline must not judge a 4-core run
        history = [_rec("fig5", "a", 0.1, host=HOST_B)]
        result = compare([_rec("fig5", "a", 1.0, host=HOST_A)], history)
        assert [c.status for c in result.comparisons] == ["no-baseline"]

    def test_best_baseline_policy(self):
        history = [_rec("fig5", "a", 2.0), _rec("fig5", "a", 1.0)]
        baselines = select_baselines(history, "best")
        key = ("fig5", "a", host_class_of(HOST_A))
        assert baselines[key]["timing"]["median_s"] == 1.0

    def test_latest_baseline_policy(self):
        old = _rec("fig5", "a", 1.0)
        new = _rec("fig5", "a", 2.0)
        new["created_unix"] = old["created_unix"] + 100
        baselines = select_baselines([old, new], "latest")
        key = ("fig5", "a", host_class_of(HOST_A))
        assert baselines[key]["timing"]["median_s"] == 2.0

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            select_baselines([], "median")

    def test_render_text_names_offenders(self, capsys):
        history = [_rec("fig5", "slow-case", 1.0)]
        result = compare([_rec("fig5", "slow-case", 5.0)], history)
        render_text(result)
        out = capsys.readouterr().out
        assert "REGRESSED: fig5:slow-case" in out
        assert "REGRESSION" in out

    def test_render_json(self):
        history = [_rec("fig5", "a", 1.0)]
        doc = render_json(compare([_rec("fig5", "a", 5.0)], history))
        assert doc["exit_code"] == EXIT_REGRESSION
        assert doc["regressions"] == ["fig5:a"]
        assert doc["comparisons"][0]["status"] == "regression"
        json.dumps(doc)  # must be serializable


class TestTrendCLI:
    def _seed(self, tmp_path, baseline_s, current_s):
        results = tmp_path / "results"
        results.mkdir()
        write_results(str(results / "history.bench.json"),
                      [_rec("fig5", "a", baseline_s)])
        current = tmp_path / "current.bench.json"
        write_results(str(current), [_rec("fig5", "a", current_s)])
        return str(results), str(current)

    def test_exit_zero_when_ok(self, tmp_path, capsys):
        results, current = self._seed(tmp_path, 1.0, 1.1)
        code = cli_main(["trend", "--results", results, "--current", current])
        assert code == EXIT_OK
        assert "0 regression(s)" in capsys.readouterr().out

    def test_exit_nonzero_on_injected_regression(self, tmp_path, capsys):
        results, current = self._seed(tmp_path, 1.0, 3.0)
        json_out = tmp_path / "trend.json"
        code = cli_main([
            "trend", "--results", results, "--current", current,
            "--json", str(json_out), "--chart",
        ])
        assert code == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "REGRESSED: fig5:a" in out
        assert "slower" in out  # ratio chart rendered
        doc = json.loads(json_out.read_text())
        assert doc["regressions"] == ["fig5:a"]

    def test_tolerance_flag(self, tmp_path):
        results, current = self._seed(tmp_path, 1.0, 3.0)
        code = cli_main([
            "trend", "--results", results, "--current", current,
            "--tolerance", "5.0",
        ])
        assert code == EXIT_OK

    def test_missing_current_file(self, tmp_path, capsys):
        code = cli_main([
            "trend", "--results", str(tmp_path),
            "--current", str(tmp_path / "none.bench.json"),
        ])
        assert code == 2
        assert "no current run" in capsys.readouterr().err

    def test_new_benchmark_name_is_unbaselined_not_regressed(
        self, tmp_path, capsys
    ):
        """A benchmark appearing for the first time must never exit 3.

        Regression guard for the "no committed baseline" vs "regression"
        distinction: history exists (for *other* benchmarks), the current
        run introduces a benchmark name history has never seen — every
        one of its cases is ``no-baseline`` and the exit code stays 0,
        however slow the new numbers are.
        """
        results = tmp_path / "results"
        results.mkdir()
        write_results(str(results / "history.bench.json"),
                      [_rec("fig5", "a", 1.0)])
        current = tmp_path / "current.bench.json"
        write_results(str(current), [
            _rec("blocked", "n0/blocked/T1", 1e6),  # absurdly slow
            _rec("blocked", "n1/blocked/T1", 1e6),
        ])
        json_out = tmp_path / "trend.json"
        code = cli_main([
            "trend", "--results", str(results), "--current", str(current),
            "--json", str(json_out),
        ])
        assert code == EXIT_OK
        doc = json.loads(json_out.read_text())
        assert doc["regressions"] == []
        assert [c["status"] for c in doc["comparisons"]] == [
            "no-baseline", "no-baseline",
        ]
        assert "2 without baseline" in capsys.readouterr().out
        # Same distinction at the compare() level.
        result = compare(
            [_rec("blocked", "n0/blocked/T1", 1e6)],
            [_rec("fig5", "a", 1.0)],
        )
        assert [c.status for c in result.comparisons] == ["no-baseline"]
        assert result.exit_code == EXIT_OK

    def test_fresh_benchmark_vs_committed_history(self, tmp_path):
        """Against the repo's real committed results/: a benchmark name
        absent from every ``results/*.bench.json`` reports unbaselined."""
        committed = os.path.join(REPO_ROOT, "results")
        history = load_history(committed)
        assert history, "repo must ship committed baselines"
        fresh_name = "definitely-new-benchmark"
        assert all(r["benchmark"] != fresh_name for r in history)
        current = tmp_path / "current.bench.json"
        write_results(str(current), [_rec(fresh_name, "case", 123.0)])
        code = cli_main([
            "trend", "--results", committed, "--current", str(current),
        ])
        assert code == EXIT_OK

    def test_current_excluded_from_history(self, tmp_path):
        # a current file living inside results/ must not self-baseline
        results = tmp_path / "results"
        results.mkdir()
        current = results / "current.bench.json"
        write_results(str(current), [_rec("fig5", "a", 3.0)])
        code = cli_main([
            "trend", "--results", str(results), "--current", str(current),
        ])
        assert code == EXIT_OK  # no baseline -> informational only


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARCHIVE = os.path.join(REPO_ROOT, "results", "archive")


@pytest.mark.skipif(not os.path.isdir(ARCHIVE),
                    reason="legacy archive not present")
class TestMigration:
    def _migrate(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        for name in os.listdir(ARCHIVE):
            shutil.copy(os.path.join(ARCHIVE, name), results / name)
        written = migrate_results(str(results))
        return results, written

    def test_converts_all_three(self, tmp_path):
        results, written = self._migrate(tmp_path)
        assert {os.path.basename(p) for p in written} == {
            "backend.bench.json", "dimtree.bench.json", "tune.bench.json",
        }
        # originals archived, not deleted
        archived = os.listdir(results / "archive")
        assert sorted(archived) == [
            "BENCH_backend.json", "BENCH_dimtree.json", "BENCH_tune.json",
        ]

    def test_migrated_records_are_loadable_baselines(self, tmp_path):
        results, _ = self._migrate(tmp_path)
        history = load_history(str(results))
        assert len(history) >= 20
        baselines = select_baselines(history, "best")
        # the legacy 1-CPU container records must be trend-comparable
        # with current-suite case ids on the same host class
        assert ("autotune", "cold", "x86_64-1cpu") in baselines
        assert ("autotune", "policy/auto", "x86_64-1cpu") in baselines
        assert ("dimtree", "cpals-3D/per-mode/T1", "x86_64-1cpu") in baselines
        assert ("dimtree", "node/batched", "x86_64-1cpu") in baselines
        assert ("pool-overhead", "backend-krp/thread/T2",
                "x86_64-1cpu") in baselines

    def test_migrated_context_keeps_provenance(self, tmp_path):
        results, _ = self._migrate(tmp_path)
        history = load_history(str(results))
        rec = next(r for r in history if r["benchmark"] == "autotune")
        assert rec["context"]["source"] == "migrated"
        assert rec["context"]["legacy_file"] == "BENCH_tune.json"

    def test_idempotent(self, tmp_path):
        results, _ = self._migrate(tmp_path)
        assert migrate_results(str(results)) == []

    def test_committed_results_dir_is_migrated(self):
        # the repo's own results/ must already hold the normalized files
        history = load_history(os.path.join(REPO_ROOT, "results"))
        names = {r["benchmark"] for r in history}
        assert {"pool-overhead", "dimtree", "autotune"} <= names
