"""Fault injection against the job server: dead workers, poisoned payloads.

The serving robustness contract (ISSUE acceptance, pinned here):

* SIGKILL-ing a worker mid-job fails **only** that job — with a
  :class:`~repro.parallel.pool.WorkerError` whose ``__cause__`` chain
  records the death — the pool respawns the process, and the very next
  job on the same server succeeds;
* a Python exception inside a job (bad ref contents) fails only that
  job and leaves the worker process alive;
* malformed submissions (NaN tensor, wrong dtype, rank 0, both/neither
  payload sources, absurd budgets) are rejected **at admission** with
  typed errors and never reach the queue or the workers.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.parallel.pool import WorkerError
from repro.serve import (
    AdmissionError,
    BudgetError,
    JobServer,
    JobSpec,
    JobState,
    ServeConfig,
)
from repro.tensor.dense import DenseTensor

pytestmark = pytest.mark.serve

SEED = 20180224


def small_tensor(seed: int = 0, shape=(4, 3, 2)) -> DenseTensor:
    rng = np.random.default_rng([SEED, seed])
    return DenseTensor(rng.standard_normal(shape))


def long_job_spec(seed: int = 1) -> JobSpec:
    """A job that runs until cancelled/killed (tol=0 never converges)."""
    rng = np.random.default_rng([SEED, 999, seed])
    tensor = DenseTensor(rng.standard_normal((24, 24, 24)))
    return JobSpec(rank=6, tensor=tensor, seed=seed, n_iter_max=1_000_000,
                   tol=0.0, batchable=False)  # each must run solo


def wait_running(server: JobServer, job_id: str, timeout: float = 30.0) -> None:
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if server.status(job_id).state is JobState.RUNNING:
            return
        time.sleep(0.005)
    raise AssertionError(f"{job_id} never started running")


# --------------------------------------------------------------------- #
# Worker death
# --------------------------------------------------------------------- #


def test_sigkill_mid_job_fails_only_that_job_and_pool_respawns():
    with JobServer(ServeConfig(workers=1)) as server:
        victim = server.submit(long_job_spec(seed=1))
        wait_running(server, victim.job_id)
        pid_before = server._handles[0].pid
        server._handles[0].kill()

        assert victim.wait(timeout=30.0)
        status = victim.status()
        assert status.state is JobState.FAILED
        with pytest.raises(WorkerError) as excinfo:
            victim.result()
        # The failure chain must record the death, not just wrap it.
        assert excinfo.value.__cause__ is not None
        assert "died" in str(excinfo.value.__cause__)

        # The pool respawned: a subsequent job on the same server works.
        survivor = server.submit(
            JobSpec(rank=2, tensor=small_tensor(2), seed=2, n_iter_max=3)
        )
        result = survivor.result(timeout=30.0)
        assert result.iterations == 3
        assert np.isfinite(result.fit)
        stats = server.stats()
        assert stats["respawns"] >= 1
        assert server._handles[0].pid != pid_before
        # Exactly one job was hurt.
        assert stats["failed"] == 1
        assert stats["completed"] == 1


def test_sigkill_with_other_workers_unaffected():
    with JobServer(ServeConfig(workers=2)) as server:
        victim = server.submit(long_job_spec(seed=3))
        bystander = server.submit(long_job_spec(seed=4))
        wait_running(server, victim.job_id)
        wait_running(server, bystander.job_id)
        victim_handle = server._jobs[victim.job_id].handle
        assert victim_handle is not None
        victim_handle.kill()

        assert victim.wait(timeout=30.0)
        assert victim.status().state is JobState.FAILED
        # The bystander kept running on its own worker.
        assert bystander.status().state is JobState.RUNNING
        assert bystander.cancel("test done")
        assert bystander.wait(timeout=30.0)
        assert bystander.status().state is JobState.CANCELLED


def test_job_exception_fails_job_but_worker_survives(tmp_path):
    # A ref whose file exists at admission but is junk when the worker
    # loads it: the job fails with the worker's exception, the process
    # survives (no respawn), and the next job succeeds.
    bad_ref = tmp_path / "junk.npz"
    bad_ref.write_bytes(b"this is not an npz archive")
    with JobServer(ServeConfig(workers=1)) as server:
        doomed = server.submit(JobSpec(rank=2, tensor_ref=str(bad_ref)))
        assert doomed.wait(timeout=30.0)
        assert doomed.status().state is JobState.FAILED
        with pytest.raises(Exception) as excinfo:
            doomed.result()
        assert not isinstance(excinfo.value, WorkerError)

        follow_up = server.submit(
            JobSpec(rank=2, tensor=small_tensor(5), seed=5, n_iter_max=3)
        )
        assert follow_up.result(timeout=30.0).iterations == 3
        assert server.stats()["respawns"] == 0


def test_dead_at_dispatch_retries_on_fresh_worker():
    # Kill the idle worker, then submit: dispatch hits the broken pipe,
    # respawns, retries — the job still succeeds (it never double-runs
    # because nothing was dispatched to the dead process).
    with JobServer(ServeConfig(workers=1)) as server:
        server._handles[0].kill()
        time.sleep(0.1)
        job = server.submit(
            JobSpec(rank=2, tensor=small_tensor(6), seed=6, n_iter_max=3)
        )
        result = job.result(timeout=30.0)
        assert result.iterations == 3


# --------------------------------------------------------------------- #
# Poisoned payloads: typed admission rejections
# --------------------------------------------------------------------- #


def test_nan_tensor_rejected():
    with pytest.raises(AdmissionError) as excinfo:
        _submit_once(JobSpec(rank=2, tensor=np.full((3, 3), np.nan)))
    assert excinfo.value.field == "tensor"


def test_inf_tensor_rejected():
    arr = np.ones((3, 3))
    arr[1, 1] = np.inf
    with pytest.raises(AdmissionError) as excinfo:
        _submit_once(JobSpec(rank=2, tensor=arr))
    assert excinfo.value.field == "tensor"


def test_wrong_dtype_rejected():
    with pytest.raises(AdmissionError) as excinfo:
        _submit_once(JobSpec(rank=2, tensor=np.ones((3, 3), dtype=np.int64)))
    assert excinfo.value.field == "tensor"


def test_wrong_shape_rejected():
    with pytest.raises(AdmissionError) as excinfo:
        _submit_once(JobSpec(rank=2, tensor=np.ones(5)))  # order 1
    assert excinfo.value.field == "tensor"


def test_rank_zero_rejected():
    with pytest.raises(AdmissionError) as excinfo:
        _submit_once(JobSpec(rank=0, tensor=np.ones((3, 3))))
    assert excinfo.value.field == "rank"


def test_both_payload_sources_rejected(tmp_path):
    ref = tmp_path / "t.npz"
    ref.write_bytes(b"x")
    with pytest.raises(AdmissionError) as excinfo:
        _submit_once(JobSpec(rank=2, tensor=np.ones((3, 3)),
                             tensor_ref=str(ref)))
    assert excinfo.value.field == "tensor"


def test_neither_payload_source_rejected():
    with pytest.raises(AdmissionError) as excinfo:
        _submit_once(JobSpec(rank=2))
    assert excinfo.value.field == "tensor"


def test_missing_ref_rejected():
    with pytest.raises(AdmissionError) as excinfo:
        _submit_once(JobSpec(rank=2, tensor_ref="/no/such/file.npz"))
    assert excinfo.value.field == "tensor_ref"


def test_thread_budget_rejected():
    with pytest.raises(BudgetError) as excinfo:
        _submit_once(JobSpec(rank=2, tensor=np.ones((3, 3)),
                             num_threads=1_000_000))
    assert excinfo.value.field == "num_threads"
    assert excinfo.value.requested == 1_000_000
    assert excinfo.value.allowed >= 1


def test_arena_budget_rejected():
    with pytest.raises(BudgetError) as excinfo:
        _submit_once(JobSpec(rank=4, tensor=np.ones((8, 8, 8)),
                             arena_bytes=16))
    assert excinfo.value.field == "arena_bytes"
    assert excinfo.value.requested > excinfo.value.allowed == 16


_SHARED = None


def _submit_once(spec: JobSpec):
    """Admission-only submissions share one module-scoped server."""
    global _SHARED
    if _SHARED is None:
        _SHARED = JobServer(ServeConfig(workers=1, paused=True))
    return _SHARED.submit(spec)


def teardown_module() -> None:
    global _SHARED
    if _SHARED is not None:
        _SHARED.shutdown(drain=False, timeout=10.0)
        _SHARED = None


def test_rejections_never_touch_queue_or_workers():
    # After every rejection test above, the shared server saw nothing.
    if _SHARED is None:  # pragma: no cover - ordering guard
        pytest.skip("no rejection test ran first")
    stats = _SHARED.stats()
    assert stats["admitted"] == 0
    assert stats["queue_depth"] == 0
