"""Tests for the MachineModel rate curves."""

import pytest

from repro.core.flops import PhaseCost, gemm_cost, stream_cost
from repro.machine.model import MachineModel, host_model_default, paper_machine


@pytest.fixture
def model() -> MachineModel:
    return paper_machine()


class TestBandwidth:
    def test_linear_ramp_then_saturation(self, model):
        assert model.bandwidth(2) == pytest.approx(2 * model.bandwidth(1))
        assert model.bandwidth(12) == model.bw_max_gbs * 1e9

    def test_monotone_nondecreasing(self, model):
        vals = [model.bandwidth(t) for t in range(1, 13)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_threads_validation(self, model):
        with pytest.raises(ValueError):
            model.bandwidth(0)
        with pytest.raises(ValueError, match="cores"):
            model.bandwidth(13)


class TestGemmRates:
    def test_narrow_panel_penalty(self, model):
        wide = model.gemm_rate_single((1000, 1000, 1000))
        narrow = model.gemm_rate_single((1000, 25, 1000))
        assert narrow < wide

    def test_shapeless_rate_is_plain_efficiency(self, model):
        assert model.gemm_rate_single(None) == pytest.approx(
            model.gemm_efficiency * model.peak_gflops_per_core * 1e9
        )

    def test_blas_speedup_single_thread(self, model):
        assert model.blas_speedup((100, 100, 100), 1) == 1.0

    def test_blas_speedup_capped_by_parallel_eff(self, model):
        s = model.blas_speedup((5000, 5000, 1000), 12)
        assert s == pytest.approx(model.blas_parallel_eff * 12)

    def test_blas_speedup_small_output_flattens(self, model):
        # The inner-product-shaped baseline GEMM: tiny output, huge k.
        small = model.blas_speedup((30, 25, 10**6), 12)
        big = model.blas_speedup((30000, 25, 10**4), 12)
        assert small < big
        assert small < 2.5

    def test_blas_speedup_at_least_one(self, model):
        assert model.blas_speedup((1, 1, 10**9), 12) >= 1.0

    def test_effective_bytes_charges_write_allocate(self, model):
        c = PhaseCost("x", 0.0, 100.0, 100.0)
        assert model.effective_bytes(c) == 100.0 + 2.0 * 100.0


class TestPhaseTimes:
    def test_stream_time_scales_with_threads(self, model):
        c = stream_cost(10**8)
        assert model.stream_time(c, 12) < model.stream_time(c, 1)

    def test_blas_time_positive(self, model):
        assert model.blas_time(gemm_cost(100, 100, 100), 4) > 0

    def test_explicit_time_linear_compute_scaling(self, model):
        c = gemm_cost(10**3, 25, 10**5)
        t1 = model.explicit_time(c, 1)
        t12 = model.explicit_time(c, 12)
        # Compute-bound phase: near-linear scaling (traffic is small here).
        assert t1 / t12 > 8.0

    def test_serial_time_ignores_threads(self, model):
        c = stream_cost(10**7)
        assert model.serial_time(c) == pytest.approx(
            model.stream_time(c, 1), rel=1e-6
        )

    def test_region_overhead_zero_for_one_thread(self, model):
        assert model.region_overhead(1) == 0.0
        assert model.region_overhead(12) > 0.0


class TestConstruction:
    def test_with_cores(self, model):
        m2 = model.with_cores(4)
        assert m2.cores == 4
        with pytest.raises(ValueError, match="cores"):
            m2.bandwidth(5)

    def test_with_cores_invalid(self, model):
        with pytest.raises(ValueError):
            model.with_cores(0)

    def test_host_default_sane(self):
        m = host_model_default()
        assert m.cores >= 1
        assert m.bandwidth(1) > 0
