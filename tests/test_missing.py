"""Tests for CP with missing data (CP-WOPT)."""

import numpy as np
import pytest

from repro.cpd.diagnostics import factor_match_score
from repro.cpd.kruskal import KruskalTensor
from repro.cpd.missing import cp_wopt, random_mask
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import from_kruskal, random_factors, random_tensor


class TestRandomMask:
    def test_binary(self):
        m = random_mask((5, 6, 7), 0.3, rng=0)
        assert set(np.unique(m.data)) <= {0.0, 1.0}

    def test_fraction_approximate(self):
        m = random_mask((20, 20, 20), 0.3, rng=1)
        frac = m.data.mean()
        assert 0.25 < frac < 0.35

    def test_full_observation(self):
        m = random_mask((4, 4), 1.0, rng=2)
        assert m.data.all()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            random_mask((4, 4), 0.0)
        with pytest.raises(ValueError):
            random_mask((4, 4), 1.5)


class TestCpWopt:
    def test_recovers_from_partial_observations(self):
        U = random_factors((10, 11, 12), 2, rng=0)
        X = from_kruskal(U)
        mask = random_mask(X.shape, 0.35, rng=1)
        res = cp_wopt(X, mask, 2, n_iter_max=600, rng=2)
        assert res.fits[-1] > 0.999
        assert factor_match_score(
            res.model, KruskalTensor(U), weight_penalty=False
        ) > 0.99

    def test_predicts_held_out_entries(self):
        U = random_factors((10, 11, 12), 2, rng=3)
        X = from_kruskal(U)
        mask = random_mask(X.shape, 0.4, rng=4)
        res = cp_wopt(X, mask, 2, n_iter_max=600, rng=5)
        rec = res.model.full()
        held = mask.data == 0.0
        rel = np.linalg.norm(
            rec.data[held] - X.data[held]
        ) / np.linalg.norm(X.data[held])
        assert rel < 0.01

    def test_unobserved_values_ignored(self):
        """Corrupting unobserved entries must not change the result."""
        U = random_factors((8, 9, 10), 2, rng=6)
        X = from_kruskal(U)
        mask = random_mask(X.shape, 0.5, rng=7)
        corrupted = DenseTensor(
            X.data + (1.0 - mask.data) * 1e6, X.shape
        )
        init = random_factors(X.shape, 2, rng=8)
        a = cp_wopt(X, mask, 2, n_iter_max=50, init=init)
        b = cp_wopt(corrupted, mask, 2, n_iter_max=50, init=init)
        np.testing.assert_allclose(a.fits, b.fits, atol=1e-8)

    def test_full_mask_matches_cp_opt_objective(self):
        from repro.cpd.gradient import cp_opt

        X = random_tensor((6, 7, 8), rng=9)
        mask = random_mask(X.shape, 1.0, rng=10)
        init = random_factors(X.shape, 2, rng=11)
        a = cp_wopt(X, mask, 2, n_iter_max=40, init=init)
        b = cp_opt(X, 2, n_iter_max=40, init=init)
        # Same objective, same optimizer, same init -> same trajectory.
        k = min(len(a.fits), len(b.fits))
        np.testing.assert_allclose(a.fits[:k], b.fits[:k], atol=1e-7)

    def test_4way(self):
        U = random_factors((6, 5, 7, 4), 2, rng=12)
        X = from_kruskal(U)
        mask = random_mask(X.shape, 0.5, rng=13)
        res = cp_wopt(X, mask, 2, n_iter_max=500, rng=14)
        assert res.fits[-1] > 0.99


class TestErrors:
    def test_shape_mismatch(self):
        X = random_tensor((4, 5), rng=0)
        m = random_mask((4, 6), 0.5, rng=1)
        with pytest.raises(ValueError, match="mask shape"):
            cp_wopt(X, m, 2)

    def test_non_binary_mask(self):
        X = random_tensor((4, 5), rng=0)
        m = DenseTensor(np.full(20, 0.5), (4, 5))
        with pytest.raises(ValueError, match="0 or 1"):
            cp_wopt(X, m, 2)

    def test_empty_mask(self):
        X = random_tensor((4, 5), rng=0)
        m = DenseTensor(np.zeros(20), (4, 5))
        with pytest.raises(ValueError, match="observes no entries"):
            cp_wopt(X, m, 2)

    def test_all_zero_observed(self):
        X = DenseTensor(np.zeros((4, 5)))
        m = random_mask((4, 5), 0.5, rng=2)
        with pytest.raises(ValueError, match="all zero"):
            cp_wopt(X, m, 2)

    def test_bad_rank(self):
        X = random_tensor((4, 5), rng=0)
        m = random_mask((4, 5), 0.5, rng=1)
        with pytest.raises(ValueError, match="rank"):
            cp_wopt(X, m, 0)

    def test_not_tensors(self, rng):
        with pytest.raises(TypeError):
            cp_wopt(rng.random((3, 4)), rng.random((3, 4)), 2)
