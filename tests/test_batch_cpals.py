"""Batched CP-ALS: fleet sweeps must match per-item cp_als exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchedTensor, cp_als_batched
from repro.cpd.cp_als import cp_als
from repro.parallel.workspace import Workspace
from repro.util import prod


def _fleet(rng, B, shape, rank):
    flat = rng.standard_normal((B, prod(shape)))
    bt = BatchedTensor(flat, shape)
    init = [rng.standard_normal((B, s, rank)) for s in shape]
    return bt, init


@pytest.mark.parametrize("shape", [(5, 4), (5, 4, 3), (3, 2, 4, 2)])
def test_matches_per_item_cp_als(shape):
    """Same init, same iterations: fits agree to roundoff per item."""
    rng = np.random.default_rng(30)
    B, rank, iters = 4, 3, 6
    bt, init = _fleet(rng, B, shape, rank)
    res = cp_als_batched(
        bt, rank, n_iter_max=iters, tol=-1.0, init=init, method="batched"
    )
    assert res.fits.shape == (B,)
    assert res.iterations.tolist() == [iters] * B
    for b in range(B):
        ref = cp_als(
            bt.item(b), rank, n_iter_max=iters, tol=0.0,
            init=[f[b] for f in init], method="onestep",
        )
        assert res.fits[b] == pytest.approx(ref.final_fit, abs=1e-12)


def test_convergence_mask_stops_items_independently():
    rng = np.random.default_rng(31)
    shape, rank = (6, 5, 4), 2
    # Noise items plateau (fit change < tol) within a few dozen sweeps;
    # exact rank-2 items keep improving through an ALS swamp and do not.
    exact_flat = np.stack([
        np.einsum(
            "ir,jr,kr->ijk",
            *[rng.standard_normal((s, rank)) for s in shape],
        ).ravel(order="F")
        for _ in range(2)
    ])
    noise_flat = rng.standard_normal((2, prod(shape)))
    bt = BatchedTensor(np.concatenate([noise_flat, exact_flat]), shape)
    res = cp_als_batched(
        bt, rank, n_iter_max=60, tol=1e-6, rng=np.random.default_rng(7)
    )
    assert res.converged[0] and res.converged[1]
    assert not res.converged[2] and not res.converged[3]
    assert res.iterations[0] < 60 and res.iterations[1] < 60
    assert res.iterations[2] == 60 and res.iterations[3] == 60
    # The per-item masks are independent: stopped items ran fewer sweeps
    # than the still-active ones.
    assert res.iterations.max() > res.iterations.min()


def test_results_invariant_to_threads_and_backend():
    rng = np.random.default_rng(32)
    bt, init = _fleet(rng, 5, (4, 3, 2), 2)
    ref = cp_als_batched(bt, 2, n_iter_max=4, tol=-1.0, init=init)
    for T, backend in ((2, "thread"), (2, "process")):
        out = cp_als_batched(
            bt, 2, n_iter_max=4, tol=-1.0, init=init,
            num_threads=T, backend=backend,
        )
        np.testing.assert_array_equal(out.weights, ref.weights)
        for a, b in zip(out.factors, ref.factors):
            np.testing.assert_array_equal(a, b)


def test_model_reconstructs_items():
    rng = np.random.default_rng(33)
    shape, rank = (5, 4, 3), 2
    factors = [rng.standard_normal((s, rank)) for s in shape]
    exact = np.einsum("ir,jr,kr->ijk", *factors)
    bt = BatchedTensor(
        np.stack([exact.ravel(order="F")] * 3), shape
    )
    res = cp_als_batched(bt, rank, n_iter_max=50, tol=1e-10,
                         rng=np.random.default_rng(5))
    model = res.model(1)
    np.testing.assert_allclose(model.full().to_ndarray(), exact, atol=1e-6)


def test_external_workspace_reuse_is_steady_state():
    rng = np.random.default_rng(34)
    bt, init = _fleet(rng, 4, (4, 3, 2), 2)
    with Workspace() as ws:
        cp_als_batched(
            bt, 2, n_iter_max=3, tol=-1.0, init=init, workspace=ws
        )
        warm = ws.stats.allocations
        cp_als_batched(
            bt, 2, n_iter_max=3, tol=-1.0, init=init, workspace=ws
        )
        assert ws.stats.allocations == warm


def test_tune_records_decision():
    res = cp_als_batched(
        BatchedTensor(
            np.random.default_rng(35).standard_normal((3, 24)), (4, 3, 2)
        ),
        2, n_iter_max=2, tol=-1.0, rng=np.random.default_rng(1), tune=True,
    )
    assert res.tuning is not None
    assert res.tuning.method in ("batched", "batched-loop")


def test_rejects_zero_items_and_bad_init():
    rng = np.random.default_rng(36)
    flat = rng.standard_normal((3, 12))
    flat[1] = 0.0
    bt = BatchedTensor(flat, (4, 3))
    with pytest.raises(ValueError, match="zero tensors"):
        cp_als_batched(bt, 2, rng=np.random.default_rng(0))
    good = BatchedTensor(rng.standard_normal((3, 12)), (4, 3))
    with pytest.raises(ValueError):
        cp_als_batched(
            good, 2, init=[np.zeros((3, 4, 2))], rng=None
        )
