"""Tests for host calibration: the model form must track host reality."""

import pytest

from repro.core.flops import gemm_cost, stream_cost
from repro.machine.calibrate import (
    calibrate_host_model,
    measure_gemm_gflops,
    measure_stream_bandwidth,
)


@pytest.fixture(scope="module")
def host():
    # Small sizes keep calibration fast; they are large enough to exceed
    # caches on any realistic host.
    return calibrate_host_model(stream_entries=4_000_000, gemm_size=384)


class TestMicrobenchmarks:
    def test_stream_bandwidth_positive(self):
        bw = measure_stream_bandwidth(entries=1_000_000, repeats=2)
        assert 0.1 < bw < 10_000  # GB/s, sane on any hardware

    def test_gemm_gflops_positive(self):
        gf = measure_gemm_gflops(256, 256, 256, repeats=2)
        assert 0.1 < gf < 100_000

    def test_bad_entries(self):
        with pytest.raises(ValueError):
            measure_stream_bandwidth(entries=0)


class TestCalibratedModel:
    def test_fields_sane(self, host):
        assert host.cores >= 1
        assert host.bw_single_gbs > 0
        assert host.peak_gflops_per_core > 0
        assert host.bw_max_gbs >= host.bw_single_gbs

    def test_stream_prediction_tracks_measurement(self, host):
        """Model form check: predicted STREAM time within 3x of measured
        (loose on purpose — container timing is noisy)."""
        entries = 4_000_000
        measured_bw = measure_stream_bandwidth(entries=entries, repeats=2)
        measured_time = 2 * entries * 8 / (measured_bw * 1e9)
        predicted = host.stream_time(stream_cost(entries), 1)
        # stream_cost charges write-allocate (3x8 bytes/entry vs 2x8
        # measured-denominator), so allow the factor plus noise.
        assert predicted / measured_time < 4.0
        assert measured_time / predicted < 4.0

    def test_gemm_prediction_tracks_measurement(self, host):
        n = 384
        gf = measure_gemm_gflops(n, n, n, repeats=2)
        measured_time = 2.0 * n**3 / (gf * 1e9)
        predicted = host.blas_time(gemm_cost(n, n, n), 1)
        assert predicted / measured_time < 3.0
        assert measured_time / predicted < 3.0
