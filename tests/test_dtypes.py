"""dtype coverage: the kernels must work in float32 as well as float64.

The paper benchmarks double precision only, but a production library gets
handed float32 tensors (fMRI data often ships as float32); the kernels are
dtype-generic by construction and these tests keep them that way.
"""

import numpy as np
import pytest

from repro.core.dispatch import mttkrp
from repro.core.krp import khatri_rao, khatri_rao_naive, krp_rows
from repro.core.krp_parallel import khatri_rao_parallel
from repro.tensor.dense import DenseTensor
from repro.tensor.ttm import ttm
from repro.tensor.ttv import ttv
from tests.conftest import mttkrp_oracle


def _case32(shape=(4, 5, 6), rank=4, seed=0):
    rng = np.random.default_rng(seed)
    X = DenseTensor(rng.random(shape).astype(np.float32))
    U = [rng.random((s, rank)).astype(np.float32) for s in shape]
    return X, U


class TestKrpDtypes:
    def test_float32_preserved(self):
        rng = np.random.default_rng(0)
        mats = [rng.random((d, 3)).astype(np.float32) for d in (3, 4)]
        assert khatri_rao(mats).dtype == np.float32
        assert khatri_rao_naive(mats).dtype == np.float32
        assert krp_rows(mats, 1, 7).dtype == np.float32

    def test_mixed_promotes(self):
        rng = np.random.default_rng(1)
        mats = [
            rng.random((3, 2)).astype(np.float32),
            rng.random((4, 2)),
        ]
        assert khatri_rao(mats).dtype == np.float64

    def test_parallel_float32(self):
        rng = np.random.default_rng(2)
        mats = [rng.random((d, 3)).astype(np.float32) for d in (4, 5, 3)]
        par = khatri_rao_parallel(mats, num_threads=3)
        assert par.dtype == np.float32
        np.testing.assert_allclose(par, khatri_rao(mats), rtol=1e-6)


class TestMttkrpDtypes:
    @pytest.mark.parametrize(
        "method", ["onestep", "onestep-seq", "twostep", "baseline"]
    )
    def test_float32_correct(self, method):
        X, U = _case32()
        n = 1
        out = mttkrp(X, U, n, method=method)
        ref = mttkrp_oracle(X, U, n)
        np.testing.assert_allclose(out, ref, rtol=1e-4)

    def test_float32_output_dtype_onestep(self):
        X, U = _case32()
        assert mttkrp(X, U, 0, method="onestep").dtype == np.float32

    def test_threaded_float32(self):
        X, U = _case32((3, 4, 5, 6))
        for n in range(4):
            np.testing.assert_allclose(
                mttkrp(X, U, n, method="onestep", num_threads=3),
                mttkrp_oracle(X, U, n),
                rtol=1e-4,
            )


class TestContractionDtypes:
    def test_ttv_float32(self):
        rng = np.random.default_rng(3)
        X = DenseTensor(rng.random((3, 4, 5)).astype(np.float32))
        v = rng.random(4).astype(np.float32)
        out = ttv(X, v, 1)
        np.testing.assert_allclose(
            out.to_ndarray(),
            np.einsum("abc,b->ac", X.to_ndarray(), v),
            rtol=1e-5,
        )

    def test_ttm_float32(self):
        rng = np.random.default_rng(4)
        X = DenseTensor(rng.random((3, 4, 5)).astype(np.float32))
        M = rng.random((4, 2)).astype(np.float32)
        out = ttm(X, M, 1)
        assert out.dtype == np.float32
        np.testing.assert_allclose(
            out.to_ndarray(),
            np.einsum("abc,bd->adc", X.to_ndarray(), M),
            rtol=1e-5,
        )


class TestCpAlsDtypes:
    def test_float32_input_accepted(self):
        from repro.cpd.cp_als import cp_als

        X, _ = _case32((6, 7, 8))
        res = cp_als(X, 2, n_iter_max=5, tol=0.0, rng=0)
        assert np.isfinite(res.final_fit)
