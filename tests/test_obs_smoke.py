"""End-to-end trace smoke test: CP-ALS with tracing on (the CI gate).

A small traced CP-ALS run must produce (a) exactly one ``mode[n]`` span per
iteration x mode, (b) per-region load imbalance within ``[1, num_threads]``,
(c) MTTKRP spans carrying FLOP counters, and (d) a Chrome trace that
survives a ``json.load`` round trip — while leaving the pre-existing
``PhaseTimer`` results of the same run untouched (backward compatibility).
"""

import json

import pytest

import repro.obs as obs
from repro import cp_als, random_factors, random_tensor

SHAPE = (8, 7, 6)
RANK = 4
ITERS = 3
THREADS = 2


@pytest.fixture
def traced_run():
    tracer = obs.enable()
    X = random_tensor(SHAPE, rng=0)
    init = random_factors(SHAPE, RANK, rng=1)
    result = cp_als(
        X, RANK, n_iter_max=ITERS, tol=0.0, init=init, num_threads=THREADS
    )
    obs.disable()
    return tracer, result


def test_one_span_per_iteration_and_mode(traced_run):
    tracer, result = traced_run
    spans = tracer.spans()
    assert result.iterations == ITERS
    iter_spans = [s for s in spans if s.name.startswith("iter[")]
    assert len(iter_spans) == ITERS
    mode_spans = [s for s in spans if s.name.startswith("mode[")]
    assert len(mode_spans) == ITERS * len(SHAPE)
    # Each mode span sits under its iteration under the cp_als root.
    for it in range(ITERS):
        for n in range(len(SHAPE)):
            matching = [
                s for s in mode_spans
                if s.path == f"cp_als/iter[{it}]/mode[{n}]"
            ]
            assert len(matching) == 1, (it, n)


def test_imbalance_within_bounds(traced_run):
    tracer, _ = traced_run
    regions = [s for s in tracer.spans() if "imbalance" in s.counters]
    assert regions, "traced parallel run must record regions"
    for region in regions:
        workers = region.counters["workers"]
        assert 1 <= workers <= THREADS
        assert 1.0 - 1e-9 <= region.counters["imbalance"] <= workers + 1e-9
        assert region.counters["max_worker_s"] >= region.counters[
            "mean_worker_s"
        ] >= 0.0


def test_mttkrp_spans_carry_flop_counters(traced_run):
    tracer, _ = traced_run
    mttkrp_spans = [
        s for s in tracer.spans()
        if s.name.startswith("mttkrp.") and "flops" in s.counters
    ]
    assert len(mttkrp_spans) == ITERS * len(SHAPE)
    for s in mttkrp_spans:
        assert s.counters["flops"] > 0
        assert s.counters["bytes_read"] > 0
        assert s.counters["bytes_written"] > 0


def test_phase_timer_results_unchanged_by_tracing(traced_run):
    _, result = traced_run
    # The figure harnesses' PhaseTimer path keeps working under tracing.
    snap = result.timers.snapshot()
    assert {"gram", "solve"} <= set(snap)
    assert "gemm" in snap


def test_chrome_export_roundtrip(traced_run, tmp_path):
    tracer, _ = traced_run
    path = str(tmp_path / "cp_als_trace.json")
    obs.save_chrome_trace(tracer, path)
    with open(path, encoding="utf-8") as fh:
        trace = json.load(fh)
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    mode_events = [e for e in events if e["name"].startswith("mode[")]
    assert len(mode_events) == ITERS * len(SHAPE)
    assert all(e["dur"] >= 0 for e in events)


def test_summary_renders(traced_run):
    tracer, _ = traced_run
    text = obs.summary(tracer)
    assert "phase breakdown" in text
    assert "parallel regions" in text


def test_dimtree_strategy_also_traced():
    tracer = obs.enable()
    try:
        X = random_tensor((6, 5, 4, 3), rng=2)
        init = random_factors(X.shape, 3, rng=3)
        cp_als(
            X, 3, n_iter_max=2, tol=0.0, init=init,
            mode_strategy="dimtree", num_threads=1,
        )
    finally:
        obs.disable()
    spans = tracer.spans()
    mode_spans = [s for s in spans if s.name.startswith("mode[")]
    assert len(mode_spans) == 2 * 4
    assert any(s.name == "partial[left]" for s in spans)
    assert any(s.name == "partial[right]" for s in spans)


@pytest.fixture
def traced_dimtree_run():
    tracer = obs.enable()
    try:
        X = random_tensor((6, 5, 4, 3), rng=2)
        init = random_factors(X.shape, 3, rng=3)
        result = cp_als(
            X, 3, n_iter_max=ITERS, tol=0.0, init=init,
            mode_strategy="dimtree", num_threads=THREADS,
        )
    finally:
        obs.disable()
    return tracer, result


def test_dimtree_partials_carry_gemm_counters(traced_dimtree_run):
    tracer, _ = traced_dimtree_run
    partials = [
        s for s in tracer.spans()
        if s.name in ("partial[left]", "partial[right]")
    ]
    assert len(partials) == 2 * ITERS
    # Each half is one big GEMM plus a parallel KRP on the executor.
    gemm_spans = [s for s in tracer.spans() if s.name == "gemm"]
    dimtree_gemms = [
        s for s in gemm_spans if "partial[" in s.path
    ]
    assert len(dimtree_gemms) == 2 * ITERS
    for s in dimtree_gemms:
        assert s.counters.get("gemm_calls") == 1
    krp_spans = [
        s for s in tracer.spans()
        if s.name == "krp.parallel" and "partial[" in s.path
    ]
    assert len(krp_spans) == 2 * ITERS


def test_dimtree_node_spans_and_imbalance(traced_dimtree_run):
    tracer, result = traced_dimtree_run
    node_spans = [s for s in tracer.spans() if s.name == "node_mttkrp"]
    # One per mode per iteration, nested under its mode span.
    assert len(node_spans) == ITERS * 4
    for s in node_spans:
        assert "/mode[" in s.path
        assert s.counters.get("flops", 0) > 0
        assert s.counters.get("gemm_calls", 0) >= 1
    # The executor-parallel node contraction records region imbalance.
    regions = [
        s for s in tracer.spans()
        if s.name == "dimtree.node" and "imbalance" in s.counters
    ]
    assert regions
    for region in regions:
        assert 1 <= region.counters["workers"] <= THREADS
    # The PhaseTimer view of the same run has the dimtree phases.
    assert {"lr_krp", "gemm", "node_krp", "node_gemm"} <= set(
        result.timers.totals
    )
