"""Tuning-cache persistence contracts (see ``repro.tune.cache``).

Covers the failure modes a persisted cache must absorb: corrupt or
truncated files fall back to re-measurement instead of crashing, keys
separate dtype and backend (a process-backend decision is never served to
a thread-backend caller), concurrent writers land complete files via
write-to-temp + atomic rename, and a cache written by one process is
served (with zero measurements) in another.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro.obs as obs
from repro.tensor.generate import random_factors, random_tensor
from repro.tune import (
    TuneCacheWarning,
    TuneKey,
    TuneRecord,
    TuningCache,
    autotune,
    default_cache_path,
    get_cache,
    reset_cache,
)

pytestmark = pytest.mark.tune


def _key(**overrides) -> TuneKey:
    base = dict(
        shape=(4, 5, 6), rank=3, mode=1, num_threads=2,
        backend="thread", dtype="float64",
    )
    base.update(overrides)
    return TuneKey.make(**base)


def _problem(shape=(4, 5, 6), rank=3, seed=0):
    return (
        random_tensor(shape, rng=seed),
        random_factors(shape, rank, rng=seed + 1),
    )


class TestRoundTrip:
    def test_put_get_across_instances(self, tmp_path):
        path = tmp_path / "tune.json"
        cache = TuningCache(path)
        record = TuneRecord(
            method="twostep", kwargs={"side": "left"},
            times={"twostep:left": 1e-4, "onestep": 2e-4},
        )
        cache.put(_key(), record)

        fresh = TuningCache(path)
        got = fresh.get(_key())
        assert got is not None
        assert got.method == "twostep"
        assert got.kwargs == {"side": "left"}
        assert got.times == pytest.approx(record.times)
        assert got.label == "twostep:left"

    def test_file_is_valid_schema_json(self, tmp_path):
        path = tmp_path / "tune.json"
        TuningCache(path).put(_key(), TuneRecord(method="onestep"))
        raw = json.loads(path.read_text())
        assert raw["version"] == 1
        assert _key().to_str() in raw["entries"]

    def test_in_memory_when_no_path(self):
        cache = TuningCache(None)
        cache.put(_key(), TuneRecord(method="onestep"))
        assert cache.get(_key()).method == "onestep"
        assert cache.path is None


class TestTolerantLoads:
    @pytest.mark.parametrize(
        "content",
        [
            "{not json at all",
            '{"version": 1, "entries": {"k": {"method": "x"',  # truncated
            '{"version": 99, "entries": {}}',  # future schema
            '["a", "list"]',  # wrong top-level type
            '{"version": 1, "entries": {"k": {"no-method": true}}}',
        ],
        ids=["garbage", "truncated", "future-version", "wrong-type",
             "bad-record"],
    )
    def test_unreadable_file_is_empty_cache(self, tmp_path, content):
        path = tmp_path / "tune.json"
        path.write_text(content)
        with pytest.warns(TuneCacheWarning):
            cache = TuningCache(path)
        assert len(cache) == 0
        # ... and a put rewrites a valid file over the wreckage.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TuneCacheWarning)
            cache.put(_key(), TuneRecord(method="onestep"))
        assert TuningCache(path).get(_key()).method == "onestep"

    def test_autotune_remeasures_over_corrupt_cache(self, tmp_path):
        """End to end: a corrupt cache file must not break autotuning."""
        path = tmp_path / "tune.json"
        path.write_text("}}} definitely not json {{{")
        with pytest.warns(TuneCacheWarning):
            cache = TuningCache(path)
        X, U = _problem()
        record = autotune(X, U, 1, num_threads=1, cache=cache, repeats=1)
        assert record.method in (
            "onestep", "twostep", "dimtree", "blocked", "baseline"
        )
        assert record.times  # measured, not served from the broken file
        assert json.loads(path.read_text())["version"] == 1

    def test_missing_file_is_empty(self, tmp_path):
        cache = TuningCache(tmp_path / "absent.json")
        assert len(cache) == 0


class TestKeySeparation:
    def test_dtype_distinguishes_entries(self, tmp_path):
        cache = TuningCache(tmp_path / "tune.json")
        cache.put(_key(dtype="float64"), TuneRecord(method="twostep"))
        cache.put(_key(dtype="float32"), TuneRecord(method="onestep"))
        assert cache.get(_key(dtype="float64")).method == "twostep"
        assert cache.get(_key(dtype="float32")).method == "onestep"
        assert len(cache) == 2

    def test_backend_distinguishes_entries(self, tmp_path):
        cache = TuningCache(tmp_path / "tune.json")
        cache.put(_key(backend="process"), TuneRecord(method="baseline"))
        assert cache.get(_key(backend="thread")) is None

    def test_process_decision_not_served_to_thread_caller(self, tmp_path):
        """A decision recorded under the process backend is invisible to a
        thread-backend autotune call, which measures its own."""
        cache = TuningCache(tmp_path / "tune.json")
        X, U = _problem()
        fake = TuneRecord(method="baseline", source="measured")
        cache.put(
            TuneKey.make(X.shape, 3, 1, 1, "process", "float64"), fake
        )
        tracer = obs.enable()
        try:
            record = autotune(
                X, U, 1, num_threads=1, backend="thread",
                cache=cache, repeats=1,
            )
        finally:
            obs.disable()
        assert obs.counter_total(tracer, "tune.cache_hit") == 0
        assert obs.counter_total(tracer, "tune.cache_miss") == 1
        assert record.times  # fresh measurement
        assert len(cache) == 2

    def test_every_key_component_matters(self):
        base = _key()
        variants = [
            _key(shape=(4, 5, 7)),
            _key(rank=4),
            _key(mode=2),
            _key(num_threads=3),
            _key(backend="process"),
            _key(dtype="float32"),
        ]
        strs = {base.to_str()} | {v.to_str() for v in variants}
        assert len(strs) == 7


class TestConcurrency:
    def test_concurrent_writers_do_not_clobber(self, tmp_path):
        path = tmp_path / "tune.json"
        threads_n = 8
        per_thread = 6
        barrier = threading.Barrier(threads_n)
        errors: list[BaseException] = []

        def writer(worker: int) -> None:
            try:
                cache = TuningCache(path)  # own instance: real contention
                barrier.wait()
                for j in range(per_thread):
                    cache.put(
                        _key(mode=0, rank=worker * per_thread + j + 1),
                        TuneRecord(method="onestep"),
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=writer, args=(w,))
            for w in range(threads_n)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert not errors
        # The file is always a complete, valid document, and the
        # merge-on-write keeps every distinct key.
        final = TuningCache(path)
        assert len(final) == threads_n * per_thread
        assert not list(Path(tmp_path).glob("*.tmp"))

    def test_cross_process_round_trip(self, tmp_path):
        """Acceptance: a cache written by one process serves another with
        zero measurements."""
        path = tmp_path / "tune.json"
        env = dict(os.environ, REPRO_TUNE_CACHE=str(path))
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else "src"
        )
        script = (
            "from repro.tensor.generate import random_tensor, random_factors\n"
            "from repro.tune import autotune, get_cache\n"
            "X = random_tensor((4, 5, 6), rng=0)\n"
            "U = random_factors((4, 5, 6), 3, rng=1)\n"
            "r = autotune(X, U, 1, num_threads=1, repeats=1)\n"
            "assert get_cache().path is not None\n"
            "print(r.method)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=Path(__file__).parent.parent,
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        child_pick = proc.stdout.strip()

        X, U = _problem()
        cache = TuningCache(path)
        tracer = obs.enable()
        try:
            record = autotune(X, U, 1, num_threads=1, cache=cache)
        finally:
            obs.disable()
        assert record.method == child_pick
        assert obs.counter_total(tracer, "tune.cache_hit") == 1
        assert obs.counter_total(tracer, "tune.measure") == 0


class TestGlobalCache:
    def test_env_var_switches_files(self, tmp_path, monkeypatch):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(a))
        reset_cache()
        try:
            cache_a = get_cache()
            assert cache_a.path == str(a)
            cache_a.put(_key(), TuneRecord(method="onestep"))
            monkeypatch.setenv("REPRO_TUNE_CACHE", str(b))
            cache_b = get_cache()
            assert cache_b.path == str(b)
            assert cache_b.get(_key()) is None
        finally:
            reset_cache()

    def test_unset_env_is_in_memory(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
        assert default_cache_path() is None
        reset_cache()
        try:
            assert get_cache().path is None
        finally:
            reset_cache()


class TestStaleRecords:
    """Persisted decisions whose method is no longer eligible for the key.

    Cache files outlive code: an entry written by a different package
    version may name a kernel that no longer exists.  Replaying it
    verbatim used to make ``mttkrp(method="autotune")`` raise on a
    configuration it could perfectly well compute; a stale entry must
    instead warn once, fall back to re-measurement and be overwritten.
    """

    def _stale_file(self, path, shape, method, kwargs=None, mode=1):
        key = TuneKey.make(shape, 3, mode, 1, "thread", "float64")
        payload = {
            "version": 1,
            "entries": {
                key.to_str(): {
                    "method": method,
                    "kwargs": kwargs or {},
                    "times": {},
                    "source": "measured",
                }
            },
        }
        path.write_text(json.dumps(payload))
        return key

    def test_unknown_method_falls_back_to_measurement(
        self, tmp_path, monkeypatch
    ):
        from repro.core.dispatch import mttkrp
        from repro.core.mttkrp_baseline import mttkrp_baseline

        shape = (5, 7, 4)
        path = tmp_path / "tune.json"
        key = self._stale_file(path, shape, "fused-v99")
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(path))
        reset_cache()
        try:
            X, U = _problem(shape=shape)
            tracer = obs.enable()
            try:
                with pytest.warns(TuneCacheWarning, match="fused-v99"):
                    out = mttkrp(
                        X, U, 1, method="autotune",
                        num_threads=1, backend="thread",
                    )
            finally:
                obs.disable()
            np.testing.assert_allclose(
                out, mttkrp_baseline(X, U, 1), atol=1e-10
            )
            assert obs.counter_total(tracer, "tune.cache_stale") == 1
            # The stale entry was overwritten with a runnable decision.
            replaced = get_cache().get(key)
            assert replaced is not None and replaced.method != "fused-v99"
            # Second call: clean hit, no measurement, no further warning.
            tracer2 = obs.enable()
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("error", TuneCacheWarning)
                    mttkrp(
                        X, U, 1, method="autotune",
                        num_threads=1, backend="thread",
                    )
            finally:
                obs.disable()
            assert obs.counter_total(tracer2, "tune.cache_hit") == 1
            assert obs.counter_total(tracer2, "tune.measure") == 0
        finally:
            reset_cache()

    def test_ineligible_twostep_for_external_mode_is_stale(self, tmp_path):
        # A 2-step ordering recorded for an external-mode key is not in
        # that mode's candidate set and would emit the degenerate-kwargs
        # warning (or worse) on replay — it must be re-measured instead.
        shape = (6, 4, 5)
        path = tmp_path / "tune.json"
        key = self._stale_file(
            path, shape, "twostep", kwargs={"side": "left"}, mode=0
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TuneCacheWarning)
            cache = TuningCache(path)
        X, U = _problem(shape=shape)
        with pytest.warns(TuneCacheWarning, match="twostep:left"):
            record = autotune(
                X, U, 0, num_threads=1, backend="thread",
                cache=cache, repeats=1,
            )
        assert record.label in ("onestep", "dimtree", "blocked", "baseline")
        assert cache.get(key).label == record.label
