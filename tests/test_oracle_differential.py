"""Seeded randomized differential oracle over every MTTKRP entry point.

Draws ``REPRO_ORACLE_N`` (default 200) random configurations — order 2-5,
ragged dimensions including 1-sized modes, ranks 1-8, float32/float64,
C/F-contiguous and strided operands, 1-4 workers, thread and process
backends — and asserts that **every** public ``MTTKRP_METHODS`` entry
(including the autotuner's pick, which is one of them) matches
``mttkrp_baseline`` to a dtype-appropriate tolerance.

Each configuration is derived from ``(MASTER_SEED, index)`` alone, so a
failure is replayable in isolation: the assertion message prints the
config and a ready-to-paste snippet that reconstructs the exact operands
and the failing call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.dispatch import MTTKRP_METHODS, mttkrp
from repro.core.mttkrp_baseline import mttkrp_baseline
from repro.tensor.dense import DenseTensor
from repro.util import prod

pytestmark = pytest.mark.tune

MASTER_SEED = 20180224  # PPoPP'18
N_CONFIGS = int(os.environ.get("REPRO_ORACLE_N", "200"))

# Process-backend regions cost ~0.1 ms each; a deterministic subset keeps
# the backend covered without dominating the tier-1 budget.
_PROCESS_EVERY = 16


@pytest.fixture(autouse=True)
def _isolated_tune_cache(tmp_path, monkeypatch):
    """Each test run tunes against its own cache file."""
    from repro.tune import reset_cache

    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune.json"))
    reset_cache()
    yield
    reset_cache()


@dataclass(frozen=True)
class OracleConfig:
    index: int
    shape: tuple[int, ...]
    rank: int
    dtype: str
    layout: str  # "C" | "F" | "strided"
    num_threads: int
    backend: str

    def __str__(self) -> str:
        return (
            f"#{self.index}: shape={self.shape} rank={self.rank} "
            f"dtype={self.dtype} layout={self.layout} "
            f"threads={self.num_threads} backend={self.backend}"
        )


def draw_config(index: int) -> OracleConfig:
    rng = np.random.default_rng([MASTER_SEED, index])
    order = int(rng.integers(2, 6))
    shape = tuple(int(rng.integers(1, 7)) for _ in range(order))
    rank = int(rng.integers(1, 9))
    dtype = str(rng.choice(["float32", "float64"]))
    layout = str(rng.choice(["C", "F", "strided"]))
    if index % _PROCESS_EVERY == _PROCESS_EVERY - 1:
        # Pin the worker count so every process config shares one cached
        # executor team (spawning a team per config would swamp the run).
        return OracleConfig(index, shape, rank, dtype, layout, 2, "process")
    num_threads = int(rng.integers(1, 5))
    return OracleConfig(index, shape, rank, dtype, layout, num_threads, "thread")


def build_operands(cfg: OracleConfig) -> tuple[DenseTensor, list[np.ndarray]]:
    """Reconstruct the operands for a config (deterministic in the seed)."""
    rng = np.random.default_rng([MASTER_SEED, cfg.index, 1])
    dt = np.dtype(cfg.dtype)
    arr = rng.standard_normal(cfg.shape).astype(dt)
    factors = [
        rng.standard_normal((s, cfg.rank)).astype(dt) for s in cfg.shape
    ]
    if cfg.layout == "F":
        arr = np.asfortranarray(arr)
        factors = [np.asfortranarray(f) for f in factors]
    elif cfg.layout == "strided":
        # Non-contiguous views: rows of a twice-taller parent, every 2nd.
        factors = [
            np.repeat(f, 2, axis=0)[::2] for f in factors
        ]
        for f in factors:
            assert not f.flags["C_CONTIGUOUS"] or f.shape[0] <= 1
    return DenseTensor(arr), factors


def tolerance(cfg: OracleConfig, ref: np.ndarray, n: int) -> float:
    """Dtype-appropriate absolute tolerance.

    The methods differ only in summation order over the ``K``-term
    contraction (``K`` = other-modes volume times rank), so the gap is
    bounded by ``O(K * eps * magnitude)``; genuine algorithmic bugs are
    ``O(magnitude)`` and clear this by orders of magnitude either way.
    """
    eps = float(np.finfo(np.dtype(cfg.dtype)).eps)
    K = max(prod(cfg.shape) // max(cfg.shape[n], 1), 1) * cfg.rank
    magnitude = max(1.0, float(np.abs(ref).max()) if ref.size else 1.0)
    return 32.0 * eps * max(K, 4) * magnitude


def repro_snippet(cfg: OracleConfig, method: str, mode: int) -> str:
    """Ready-to-paste reproduction of one failing (config, method, mode)."""
    return (
        "# --- differential-oracle repro ---\n"
        "import numpy as np\n"
        "from tests.test_oracle_differential import build_operands, OracleConfig\n"
        "from repro.core.dispatch import mttkrp\n"
        "from repro.core.mttkrp_baseline import mttkrp_baseline\n"
        f"cfg = OracleConfig(index={cfg.index}, shape={cfg.shape}, "
        f"rank={cfg.rank}, dtype={cfg.dtype!r}, layout={cfg.layout!r}, "
        f"num_threads={cfg.num_threads}, backend={cfg.backend!r})\n"
        "X, U = build_operands(cfg)\n"
        f"ref = mttkrp_baseline(X, U, {mode}, num_threads={cfg.num_threads})\n"
        f"out = mttkrp(X, U, {mode}, method={method!r}, "
        f"num_threads={cfg.num_threads}, backend={cfg.backend!r})\n"
        "print(np.abs(out - ref).max())\n"
    )


def check_config(cfg: OracleConfig) -> None:
    X, U = build_operands(cfg)
    backend = cfg.backend if cfg.backend != "thread" else None
    for n in range(X.ndim):
        ref = mttkrp_baseline(X, U, n, num_threads=cfg.num_threads)
        tol = tolerance(cfg, ref, n)
        for method in MTTKRP_METHODS:
            out = mttkrp(
                X, U, n,
                method=method,
                num_threads=cfg.num_threads,
                backend=backend,
            )
            assert out.shape == ref.shape and out.dtype == ref.dtype, (
                f"{cfg} method={method!r} mode={n}: shape/dtype mismatch "
                f"({out.shape}/{out.dtype} vs {ref.shape}/{ref.dtype})\n"
                + repro_snippet(cfg, method, n)
            )
            err = float(np.abs(out - ref).max()) if ref.size else 0.0
            if not err <= tol:
                pytest.fail(
                    f"{cfg} method={method!r} mode={n}: max |delta| = "
                    f"{err:.3e} > tol {tol:.3e}\nreplay seed: "
                    f"({MASTER_SEED}, {cfg.index})\n"
                    + repro_snippet(cfg, method, n)
                )


_BATCHES = 8  # keep per-test runtime visible without 200 tiny test items


@pytest.mark.parametrize("batch", range(_BATCHES))
def test_differential_oracle(batch):
    for index in range(batch, N_CONFIGS, _BATCHES):
        check_config(draw_config(index))


def test_draws_cover_the_advertised_space():
    """The generator must actually hit every axis of the config space."""
    configs = [draw_config(i) for i in range(N_CONFIGS)]
    assert {len(c.shape) for c in configs} == {2, 3, 4, 5}
    assert any(1 in c.shape for c in configs)
    assert {c.dtype for c in configs} == {"float32", "float64"}
    assert {c.layout for c in configs} == {"C", "F", "strided"}
    assert {c.backend for c in configs} == {"thread", "process"}
    assert {c.num_threads for c in configs} >= {1, 2}
    assert {c.rank for c in configs} >= {1, 8}
    assert N_CONFIGS >= 200 or "REPRO_ORACLE_N" in os.environ


def test_autotune_pick_is_replayable():
    """The tuner's recorded pick, replayed by its label, matches both the
    autotune result and the baseline."""
    cfg = draw_config(3)
    X, U = build_operands(cfg)
    from repro.tune import autotune

    for n in range(X.ndim):
        record = autotune(X, U, n, num_threads=cfg.num_threads)
        via_autotune = mttkrp(
            X, U, n, method="autotune", num_threads=cfg.num_threads
        )
        via_label = mttkrp(
            X, U, n, method=record.label, num_threads=cfg.num_threads,
        )
        assert np.array_equal(via_autotune, via_label)
