"""Tests for DenseTensor: construction, views, and layout invariants."""

import numpy as np
import pytest

from repro.tensor.dense import DenseTensor
from repro.tensor.layout import linearize, mode_products
from repro.util import prod


class TestConstruction:
    def test_from_ndarray(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr)
        assert X.shape == (3, 4, 5)
        assert X.size == 60
        np.testing.assert_array_equal(X.to_ndarray(), arr)

    def test_from_flat(self, rng):
        flat = rng.random(24)
        X = DenseTensor(flat, (2, 3, 4))
        np.testing.assert_array_equal(X.data, flat)

    def test_flat_requires_shape(self, rng):
        with pytest.raises(ValueError, match="shape is required"):
            DenseTensor(rng.random(24))

    def test_flat_wrong_size(self, rng):
        with pytest.raises(ValueError, match="entries"):
            DenseTensor(rng.random(23), (2, 3, 4))

    def test_ndarray_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="does not match"):
            DenseTensor(rng.random((2, 3)), (3, 2))

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            DenseTensor(np.zeros(0), (0, 3))

    def test_natural_layout_is_fortran_ravel(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr)
        for idx in [(0, 0, 0), (1, 2, 3), (2, 3, 4)]:
            assert X.data[linearize(idx, X.shape)] == arr[idx]

    def test_dtype_override(self, rng):
        X = DenseTensor(rng.random((2, 3)), dtype=np.float32)
        assert X.dtype == np.float32

    def test_repr(self, rng):
        assert "2x3" in repr(DenseTensor(rng.random((2, 3))))


class TestElementAccess:
    def test_getitem_setitem(self, rng):
        X = DenseTensor(rng.random((3, 4)))
        X[1, 2] = 42.0
        assert X[1, 2] == 42.0
        assert X.to_ndarray()[1, 2] == 42.0

    def test_array_protocol(self, rng):
        arr = rng.random((3, 4))
        X = DenseTensor(arr)
        np.testing.assert_array_equal(np.asarray(X), arr)

    def test_copy_is_independent(self, rng):
        X = DenseTensor(rng.random((3, 4)))
        Y = X.copy()
        Y[0, 0] = -1.0
        assert X[0, 0] != -1.0

    def test_astype(self, rng):
        X = DenseTensor(rng.random((3, 4)))
        assert X.astype(np.float32).dtype == np.float32

    def test_norm(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr)
        assert np.isclose(X.norm(), np.linalg.norm(arr))

    def test_allclose(self, rng):
        arr = rng.random((3, 4))
        assert DenseTensor(arr).allclose(DenseTensor(arr.copy()))
        assert not DenseTensor(arr).allclose(DenseTensor(arr + 1))
        assert not DenseTensor(arr).allclose(DenseTensor(arr.T))


class TestViews:
    """The zero-copy matricization views of Figure 2."""

    def test_unfold_front_values(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr)
        M = X.unfold_front(1)  # modes 0,1 rows; mode 2 cols
        assert M.shape == (12, 5)
        for i, j, k in np.ndindex(3, 4, 5):
            assert M[i + 3 * j, k] == arr[i, j, k]

    def test_unfold_front_is_view(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        M = X.unfold_front(1)
        assert M.base is X.data or M.base is X.data.base
        M[0, 0] = 99.0
        assert X[0, 0, 0] == 99.0

    def test_unfold_front_fortran_contiguous(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        assert X.unfold_front(1).flags.f_contiguous

    def test_unfold_front_last_mode(self, rng):
        X = DenseTensor(rng.random((3, 4)))
        M = X.unfold_front(1)
        assert M.shape == (12, 1)

    def test_unfold_mode0(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr)
        M = X.unfold_mode0()
        assert M.shape == (3, 20)
        assert M.flags.f_contiguous
        # Column order: lower remaining modes fastest.
        for j, k in np.ndindex(4, 5):
            np.testing.assert_array_equal(M[:, j + 4 * k], arr[:, j, k])

    def test_unfold_last_row_major(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr)
        M = X.unfold_last()
        assert M.shape == (5, 12)
        assert M.flags.c_contiguous
        for i, j in np.ndindex(3, 4):
            np.testing.assert_array_equal(M[:, i + 3 * j], arr[i, j, :])

    def test_mode_blocks_view_structure(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr)
        blocks = X.mode_blocks_view(1)
        p = mode_products(X.shape, 1)
        assert blocks.shape == (p.right, p.size, p.left) == (5, 4, 3)
        # block j, row i_n, col l == X(l, i_n, j) for 3-way.
        for k in range(5):
            for j in range(4):
                for i in range(3):
                    assert blocks[k, j, i] == arr[i, j, k]

    def test_mode_blocks_are_row_major_views(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        blocks = X.mode_blocks_view(1)
        assert blocks[2].flags.c_contiguous
        assert blocks.base is X.data or blocks.base is X.data.base

    def test_mode_blocks_mode0_and_last(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        b0 = X.mode_blocks_view(0)
        assert b0.shape == (20, 3, 1)
        blast = X.mode_blocks_view(2)
        assert blast.shape == (1, 5, 12)
        np.testing.assert_array_equal(blast[0], X.unfold_last())

    def test_fiber(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr)
        np.testing.assert_array_equal(X.fiber(1, (2, 3)), arr[2, :, 3])

    def test_fiber_wrong_length(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        with pytest.raises(ValueError, match="components"):
            X.fiber(1, (2,))


class TestStructuralOps:
    def test_permute(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr).permute((2, 0, 1))
        assert X.shape == (5, 3, 4)
        np.testing.assert_array_equal(X.to_ndarray(), np.transpose(arr, (2, 0, 1)))

    def test_permute_invalid(self, rng):
        with pytest.raises(ValueError, match="permutation"):
            DenseTensor(rng.random((3, 4))).permute((0, 0))

    def test_reshape_modes_merges_for_free(self, rng):
        arr = rng.random((3, 4, 5))
        X = DenseTensor(arr)
        Y = X.reshape_modes((12, 5))
        # Merging leading modes: Y(i + 3j, k) == X(i, j, k).
        for i, j, k in np.ndindex(3, 4, 5):
            assert Y[i + 3 * j, k] == arr[i, j, k]

    def test_reshape_modes_size_mismatch(self, rng):
        with pytest.raises(ValueError, match="reshape"):
            DenseTensor(rng.random((3, 4))).reshape_modes((5, 3))

    def test_unfold_front_equals_reshape_composition(self, rng):
        # X_(0:n) of the merged tensor equals the merged unfold — the layout
        # identity the 2-step algorithm and the fMRI pipeline both rely on.
        arr = rng.random((2, 3, 4, 5))
        X = DenseTensor(arr)
        merged = X.reshape_modes((6, 4, 5))
        np.testing.assert_array_equal(X.unfold_front(1), merged.unfold_front(0))
