"""Tests for nonnegative CP via HALS."""

import numpy as np
import pytest

from repro.cpd.diagnostics import factor_match_score
from repro.cpd.kruskal import KruskalTensor
from repro.cpd.nncp import cp_nnhals
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import from_kruskal, random_factors, random_tensor


def _nonneg_lowrank(shape=(10, 11, 12), rank=3, seed=0):
    U = [np.abs(f) for f in random_factors(shape, rank, rng=seed)]
    return from_kruskal(U), KruskalTensor(U)


class TestConvergence:
    def test_exact_recovery_fit(self):
        X, _ = _nonneg_lowrank()
        res = cp_nnhals(X, 3, n_iter_max=300, tol=1e-13, rng=1)
        assert res.final_fit > 0.999

    def test_factor_recovery(self):
        X, truth = _nonneg_lowrank(seed=4)
        res = cp_nnhals(X, 3, n_iter_max=400, tol=1e-14, rng=5)
        assert factor_match_score(
            res.model, truth, weight_penalty=False
        ) > 0.99

    def test_fit_nondecreasing(self):
        X = random_tensor((8, 9, 10), rng=0)
        res = cp_nnhals(X, 4, n_iter_max=30, tol=0.0, rng=1)
        fits = np.array(res.fits)
        assert np.all(np.diff(fits) > -1e-9)

    def test_converged_flag(self):
        X, _ = _nonneg_lowrank()
        res = cp_nnhals(X, 3, n_iter_max=500, tol=1e-6, rng=1)
        assert res.converged


class TestNonnegativity:
    def test_factors_nonnegative(self):
        # Even on data with negative entries the model stays feasible.
        X = random_tensor((7, 8, 9), rng=2, distribution="normal")
        res = cp_nnhals(X, 3, n_iter_max=15, tol=0.0, rng=3)
        for f in res.model.factors:
            assert (f >= 0).all()

    def test_weights_nonnegative(self):
        X, _ = _nonneg_lowrank()
        res = cp_nnhals(X, 3, n_iter_max=10, tol=0.0, rng=1)
        assert (res.model.weights >= 0).all()

    def test_no_dead_components(self):
        X, _ = _nonneg_lowrank(rank=2)
        # Over-parameterized: extra components must not go identically 0.
        res = cp_nnhals(X, 4, n_iter_max=20, tol=0.0, rng=7)
        for f in res.model.factors:
            assert np.isfinite(f).all()


class TestOptions:
    def test_explicit_init(self):
        X, truth = _nonneg_lowrank()
        init = [f + 0.01 for f in truth.factors]
        res = cp_nnhals(X, 3, n_iter_max=80, tol=1e-12, init=init)
        assert res.final_fit > 0.999

    def test_negative_init_rejected(self):
        X, _ = _nonneg_lowrank()
        bad = [np.full((s, 3), -1.0) for s in X.shape]
        with pytest.raises(ValueError, match="negative"):
            cp_nnhals(X, 3, init=bad)

    def test_wrong_init_count(self):
        X, _ = _nonneg_lowrank()
        with pytest.raises(ValueError, match="initial factors"):
            cp_nnhals(X, 3, init=[np.ones((10, 3))])

    def test_named_init_must_be_random(self):
        X, _ = _nonneg_lowrank()
        with pytest.raises(ValueError, match="random"):
            cp_nnhals(X, 3, init="hosvd")

    def test_timers_and_iteration_times(self):
        X, _ = _nonneg_lowrank()
        res = cp_nnhals(X, 2, n_iter_max=3, tol=0.0, rng=0)
        assert {"gram", "hals"} <= set(res.timers.totals)
        assert len(res.iteration_times) == 3


class TestErrors:
    def test_bad_rank(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="rank"):
            cp_nnhals(X, 0)

    def test_zero_tensor(self):
        with pytest.raises(ValueError, match="zero"):
            cp_nnhals(DenseTensor(np.zeros((3, 4))), 2)

    def test_not_a_tensor(self, rng):
        with pytest.raises(TypeError, match="DenseTensor"):
            cp_nnhals(rng.random((3, 4)), 2)

    def test_empty_result_final_fit(self):
        from repro.cpd.nncp import NNCPResult

        with pytest.raises(ValueError):
            _ = NNCPResult(model=None).final_fit
