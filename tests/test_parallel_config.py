"""Tests for thread-count/backend configuration and BLAS thread control."""

import pytest

from repro.parallel.blas import blas_threads, get_blas_threads, set_blas_threads
from repro.parallel.config import (
    get_backend,
    get_num_threads,
    num_threads,
    resolve_backend,
    resolve_threads,
    set_backend,
    set_num_threads,
    use_backend,
)


class TestConfig:
    def test_set_and_get(self):
        with num_threads(3):
            assert get_num_threads() == 3

    def test_context_restores(self):
        before = get_num_threads()
        with num_threads(7):
            assert get_num_threads() == 7
        assert get_num_threads() == before

    def test_nested_contexts(self):
        with num_threads(2):
            with num_threads(5):
                assert get_num_threads() == 5
            assert get_num_threads() == 2

    def test_set_invalid(self):
        with pytest.raises(ValueError):
            set_num_threads(0)
        with pytest.raises(ValueError):
            set_num_threads(-1)

    def test_resolve_none_uses_default(self):
        with num_threads(4):
            assert resolve_threads(None) == 4

    def test_resolve_explicit(self):
        assert resolve_threads(2) == 2

    def test_resolve_invalid(self):
        with pytest.raises(ValueError):
            resolve_threads(0)

    def test_context_restores_on_exception(self):
        before = get_num_threads()
        with pytest.raises(RuntimeError):
            with num_threads(9):
                raise RuntimeError
        assert get_num_threads() == before


class TestBlasThreads:
    """BLAS control is best-effort: these tests pass whether or not an
    OpenBLAS control symbol is available on the host."""

    def test_set_returns_bool(self):
        assert isinstance(set_blas_threads(1), bool)

    def test_get_returns_int_or_none(self):
        val = get_blas_threads()
        assert val is None or (isinstance(val, int) and val >= 1)

    def test_set_invalid(self):
        with pytest.raises(ValueError):
            set_blas_threads(0)

    def test_context_manager_restores(self):
        before = get_blas_threads()
        with blas_threads(1):
            inner = get_blas_threads()
            if inner is not None:
                assert inner == 1
        assert get_blas_threads() == before

    def test_roundtrip_when_controllable(self):
        if get_blas_threads() is None:
            pytest.skip("BLAS thread control unavailable")
        set_blas_threads(2)
        assert get_blas_threads() == 2
        set_blas_threads(1)
        assert get_blas_threads() == 1


class TestBackendConfig:
    def teardown_method(self):
        set_backend("thread")

    def test_default_is_thread(self):
        assert get_backend() == "thread"

    def test_set_and_get(self):
        set_backend("process")
        assert get_backend() == "process"

    def test_set_normalizes_case(self):
        set_backend("  Process ")
        assert get_backend() == "process"

    def test_set_invalid(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("cuda")
        assert get_backend() == "thread"

    def test_use_backend_restores(self):
        with use_backend("process"):
            assert get_backend() == "process"
            with use_backend("thread"):
                assert get_backend() == "thread"
            assert get_backend() == "process"
        assert get_backend() == "thread"

    def test_use_backend_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_backend("process"):
                raise RuntimeError("boom")
        assert get_backend() == "thread"

    def test_resolve(self):
        assert resolve_backend(None) == get_backend()
        assert resolve_backend("process") == "process"
        with pytest.raises(ValueError):
            resolve_backend("mpi")

    def test_env_variable_selects_default(self):
        import subprocess
        import sys

        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.parallel.config import get_backend; print(get_backend())"],
            env={"PYTHONPATH": "src", "REPRO_BACKEND": "process", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
            capture_output=True,
            text=True,
        )
        assert out.stdout.strip() == "process"
