"""Tests for repro.util.misc."""

import pytest

from repro.util import human_bytes, human_count, prod


class TestProd:
    def test_empty_is_one(self):
        assert prod(()) == 1

    def test_single(self):
        assert prod([7]) == 7

    def test_many(self):
        assert prod([2, 3, 4]) == 24

    def test_no_overflow_on_large_shapes(self):
        # numpy.prod would overflow int64 here; prod must not.
        dims = [2**20] * 4
        assert prod(dims) == 2**80

    def test_generator_input(self):
        assert prod(x for x in (5, 5)) == 25


class TestHumanBytes:
    def test_bytes(self):
        assert human_bytes(512) == "512 B"

    def test_kib(self):
        assert human_bytes(2048) == "2.00 KiB"

    def test_gib(self):
        assert human_bytes(3 * 1024**3) == "3.00 GiB"

    def test_negative(self):
        assert human_bytes(-2048) == "-2.00 KiB"

    def test_zero(self):
        assert human_bytes(0) == "0 B"

    def test_huge_stays_in_largest_unit(self):
        assert human_bytes(1024**6).endswith("PiB")


class TestHumanCount:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0"),
            (999, "999"),
            (1500, "1.5K"),
            (2_000_000, "2.0M"),
            (7.5e8, "750.0M"),
            (3e9, "3.0G"),
            (2e12, "2.0T"),
        ],
    )
    def test_values(self, value, expected):
        assert human_count(value) == expected

    def test_negative(self):
        assert human_count(-1500) == "-1.5K"
