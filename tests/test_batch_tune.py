"""Batched autotuner: crossover measurement, caching and key hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchedTensor, mttkrp_batched
from repro.tune.batched import (
    autotune_batched,
    batched_candidate_labels,
    candidate_set,
)
from repro.tune.cache import TuneKey, TuneRecord, TuningCache
from repro.util import prod


@pytest.fixture(autouse=True)
def _isolated_tune_cache(tmp_path, monkeypatch):
    from repro.tune import reset_cache

    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune.json"))
    reset_cache()
    yield
    reset_cache()


def _operands(rng, B, shape=(4, 3, 2), C=2):
    bt = BatchedTensor(rng.standard_normal((B, prod(shape))), shape)
    factors = [rng.standard_normal((B, s, C)) for s in shape]
    return bt, factors


def test_candidate_set_is_the_two_lanes():
    labels = [c.label for c in candidate_set((4, 3, 2), 1, 8)]
    assert labels == ["batched", "batched-loop"]
    assert batched_candidate_labels() == ("batched", "batched-loop")


def test_tune_key_carries_batch_dimension():
    base = TuneKey.make((4, 3), 2, 0, 1, "thread", np.float64)
    fleet = TuneKey.make((4, 3), 2, 0, 1, "thread", np.float64, batch=17)
    assert base.batch == 1
    assert fleet.batch == 17
    assert base.to_str() != fleet.to_str()
    assert base.to_str().endswith(";batch=1")
    assert fleet.to_str().endswith(";batch=17")


def test_measured_decision_is_cached_per_fleet_size():
    rng = np.random.default_rng(40)
    bt, factors = _operands(rng, 5)
    cache = TuningCache(None)
    record = autotune_batched(bt, factors, 0, cache=cache, repeats=1)
    assert record.source == "measured"
    assert record.method in ("batched", "batched-loop")
    assert set(record.times) == {"batched", "batched-loop"}
    assert len(cache) == 1
    # A second call is a pure cache hit (same record object contents).
    again = autotune_batched(bt, factors, 0, cache=cache, repeats=1)
    assert again.method == record.method
    assert len(cache) == 1
    # A different fleet size gets its own entry.
    bt3, factors3 = _operands(np.random.default_rng(41), 3)
    autotune_batched(bt3, factors3, 0, cache=cache, repeats=1)
    assert len(cache) == 2


def test_degenerate_single_item_skips_measurement():
    rng = np.random.default_rng(42)
    bt, factors = _operands(rng, 1)
    cache = TuningCache(None)
    record = autotune_batched(bt, factors, 1, cache=cache)
    assert record.source == "degenerate"
    assert record.method == "batched"
    assert record.times == {}


def test_stale_foreign_entry_is_remeasured():
    rng = np.random.default_rng(43)
    bt, factors = _operands(rng, 4)
    cache = TuningCache(None)
    from repro.parallel.config import resolve_backend, resolve_threads

    key = TuneKey.make(
        bt.shape, 2, 0, resolve_threads(None), resolve_backend(None),
        np.float64, batch=4,
    )
    cache.put(key, TuneRecord(method="onestep", source="measured"))
    record = autotune_batched(bt, factors, 0, cache=cache, repeats=1)
    assert record.method in ("batched", "batched-loop")
    assert cache.get(key).method == record.method


def test_autotune_dispatch_matches_direct_call():
    rng = np.random.default_rng(44)
    bt, factors = _operands(rng, 4)
    via_autotune = mttkrp_batched(bt, factors, 1, method="autotune")
    record = autotune_batched(bt, factors, 1)
    via_label = mttkrp_batched(bt, factors, 1, method=record.method)
    np.testing.assert_array_equal(via_autotune, via_label)


def test_large_fleet_measures_on_a_proxy_slice():
    from repro.tune.batched import _PROXY_BATCH_LIMIT, _proxy_batch

    rng = np.random.default_rng(45)
    bt, factors = _operands(rng, _PROXY_BATCH_LIMIT + 9)
    sub, sub_factors = _proxy_batch(bt, factors)
    assert sub.batch == _PROXY_BATCH_LIMIT
    assert all(f.shape[0] == _PROXY_BATCH_LIMIT for f in sub_factors)
    np.testing.assert_array_equal(sub.flat, bt.flat[:_PROXY_BATCH_LIMIT])
