"""Tests for 1-step MTTKRP (Algorithms 2 and 3)."""

import numpy as np
import pytest

from repro.core.mttkrp_onestep import (
    krp_operands,
    mttkrp_onestep,
    mttkrp_onestep_sequential,
)
from repro.tensor.generate import random_factors, random_tensor
from repro.util.timing import PhaseTimer
from tests.conftest import mttkrp_oracle

SHAPES = [(4, 5, 6), (3, 4, 5, 6), (2, 3, 4, 3, 2), (7, 2)]


def _case(shape, rank=5, seed=0):
    X = random_tensor(shape, rng=seed)
    U = random_factors(shape, rank, rng=seed + 1)
    return X, U


class TestKrpOperands:
    def test_order_excludes_mode(self, rng):
        U = [rng.random((s, 2)) for s in (3, 4, 5, 6)]
        ops = krp_operands(U, 1)
        assert [o.shape[0] for o in ops] == [6, 5, 3]  # U3, U2, U0

    def test_mode0(self, rng):
        U = [rng.random((s, 2)) for s in (3, 4)]
        ops = krp_operands(U, 0)
        assert [o.shape[0] for o in ops] == [4]


class TestSequentialAlgorithm2:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_all_modes_vs_oracle(self, shape):
        X, U = _case(shape)
        for n in range(len(shape)):
            np.testing.assert_allclose(
                mttkrp_onestep_sequential(X, U, n),
                mttkrp_oracle(X, U, n),
                atol=1e-10,
            )

    def test_timers_record_phases(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        mttkrp_onestep_sequential(X, U, 1, timers=t)
        assert {"full_krp", "gemm"} <= set(t.totals)

    def test_rejects_plain_ndarray(self, rng):
        with pytest.raises(TypeError, match="DenseTensor"):
            mttkrp_onestep_sequential(rng.random((3, 4)), [], 0)

    def test_rejects_order1(self):
        from repro.tensor.dense import DenseTensor

        X = DenseTensor(np.arange(4.0), (4,))
        with pytest.raises(ValueError, match="order"):
            mttkrp_onestep_sequential(X, [np.ones((4, 2))], 0)


class TestParallelAlgorithm3:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("T", [1, 2, 4])
    def test_all_modes_vs_oracle(self, shape, T):
        X, U = _case(shape)
        for n in range(len(shape)):
            np.testing.assert_allclose(
                mttkrp_onestep(X, U, n, num_threads=T),
                mttkrp_oracle(X, U, n),
                atol=1e-10,
            )

    def test_negative_mode(self):
        X, U = _case((4, 5, 6))
        np.testing.assert_allclose(
            mttkrp_onestep(X, U, -1), mttkrp_oracle(X, U, 2), atol=1e-10
        )

    def test_more_threads_than_blocks(self):
        # Internal mode with I^R_n = 3 blocks but 8 threads.
        X, U = _case((4, 5, 3))
        np.testing.assert_allclose(
            mttkrp_onestep(X, U, 1, num_threads=8),
            mttkrp_oracle(X, U, 1),
            atol=1e-10,
        )

    def test_more_threads_than_columns_external(self):
        X, U = _case((3, 2))
        np.testing.assert_allclose(
            mttkrp_onestep(X, U, 0, num_threads=7),
            mttkrp_oracle(X, U, 0),
            atol=1e-10,
        )

    def test_timers_external(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        mttkrp_onestep(X, U, 0, num_threads=2, timers=t)
        assert {"full_krp", "gemm", "reduce"} <= set(t.totals)

    def test_timers_internal(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        mttkrp_onestep(X, U, 1, num_threads=2, timers=t)
        assert {"lr_krp", "gemm", "reduce"} <= set(t.totals)

    def test_wrong_factor_shape(self):
        X, U = _case((4, 5, 6))
        U[1] = U[1][:4]
        with pytest.raises(ValueError, match="rows"):
            mttkrp_onestep(X, U, 0)

    def test_rank1(self):
        X, U = _case((4, 5, 6), rank=1)
        for n in range(3):
            np.testing.assert_allclose(
                mttkrp_onestep(X, U, n), mttkrp_oracle(X, U, n), atol=1e-10
            )

    def test_large_rank(self):
        X, U = _case((4, 5, 6), rank=40)
        np.testing.assert_allclose(
            mttkrp_onestep(X, U, 1, num_threads=2),
            mttkrp_oracle(X, U, 1),
            atol=1e-9,
        )

    def test_mode_size_one(self):
        X, U = _case((1, 5, 6))
        for n in range(3):
            np.testing.assert_allclose(
                mttkrp_onestep(X, U, n, num_threads=2),
                mttkrp_oracle(X, U, n),
                atol=1e-10,
            )

    def test_result_dtype(self):
        X, U = _case((4, 5, 6))
        assert mttkrp_onestep(X, U, 1).dtype == np.float64
