"""Tests for the benchmark-JSON report generator."""

import io
import json

import pytest

from repro.bench.report import load_records, main, summarize


@pytest.fixture
def sample_doc():
    return {
        "benchmarks": [
            {
                "name": "test_fig4_krp[reuse-T1-Z3-C25]",
                "stats": {"median": 0.01, "mean": 0.011},
                "extra_info": {
                    "figure": "fig4",
                    "series": "3-Reuse",
                    "Z": 3,
                    "C": 25,
                    "threads": 1,
                },
            },
            {
                "name": "test_fig4_krp[naive-T1-Z3-C25]",
                "stats": {"median": 0.02, "mean": 0.021},
                "extra_info": {
                    "figure": "fig4",
                    "series": "3-Naive",
                    "Z": 3,
                    "C": 25,
                    "threads": 1,
                },
            },
            {
                "name": "test_ablation_twostep_side[left]",
                "stats": {"median": 0.005, "mean": 0.005},
                "extra_info": {"ablation": "twostep-side", "side": "left"},
            },
            {
                "name": "test_other",
                "stats": {"median": 0.001, "mean": 0.001},
                "extra_info": {},
            },
        ]
    }


class TestLoadRecords:
    def test_from_dict(self, sample_doc):
        recs = load_records(sample_doc)
        assert len(recs) == 4
        assert recs[0]["median"] == 0.01
        assert recs[0]["extra"]["figure"] == "fig4"

    def test_from_file(self, sample_doc, tmp_path):
        p = tmp_path / "bench.json"
        p.write_text(json.dumps(sample_doc))
        assert len(load_records(p)) == 4

    def test_empty(self):
        assert load_records({"benchmarks": []}) == []


class TestSummarize:
    def test_groups_by_figure_and_ablation(self, sample_doc):
        out = io.StringIO()
        summarize(load_records(sample_doc), out=out)
        text = out.getvalue()
        assert "== fig4 (2 benchmarks) ==" in text
        assert "== ablation:twostep-side (1 benchmarks) ==" in text
        assert "== other (1 benchmarks) ==" in text

    def test_columns_and_values(self, sample_doc):
        out = io.StringIO()
        summarize(load_records(sample_doc), out=out)
        text = out.getvalue()
        assert "series" in text
        assert "3-Reuse" in text and "3-Naive" in text
        assert "0.01000" in text and "0.02000" in text


class TestCli:
    def test_main(self, sample_doc, tmp_path, capsys):
        p = tmp_path / "bench.json"
        p.write_text(json.dumps(sample_doc))
        assert main([str(p)]) == 0
        assert "fig4" in capsys.readouterr().out

    def test_roundtrip_with_real_benchmark_run(self, tmp_path):
        """End-to-end: run one real benchmark with --benchmark-json and
        summarize its output."""
        import subprocess
        import sys as _sys

        json_path = tmp_path / "real.json"
        proc = subprocess.run(
            [
                _sys.executable,
                "-m",
                "pytest",
                "benchmarks/test_ablations.py::test_ablation_twostep_side",
                "--benchmark-only",
                f"--benchmark-json={json_path}",
                "-q",
                "--benchmark-min-rounds=1",
                "--benchmark-warmup=off",
                "-p",
                "no:cacheprovider",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        recs = load_records(json_path)
        assert recs
        out = io.StringIO()
        summarize(recs, out=out)
        assert "twostep-side" in out.getvalue()
