"""Seeded differential oracle over the batched MTTKRP lanes.

Mirrors ``tests/test_oracle_differential.py`` for the fleet engine:
seeded random configurations across orders 2-5, float32/float64, fleet
sizes ``B in {1, 3, 17}``, thread and process backends.  For every
configuration and mode it asserts

* every entry of :data:`repro.batch.mttkrp.BATCHED_MTTKRP_METHODS`
  (including the autotuner's pick) is **bit-identical** to the
  ``"batched-loop"`` reference lane, and
* each batch item matches its own per-item ``mttkrp_baseline`` to the
  dtype-appropriate tolerance.

Each configuration derives from ``(MASTER_SEED, index)`` alone, so any
failure is replayable in isolation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.batch import BatchedTensor, mttkrp_batched
from repro.batch.mttkrp import BATCHED_MTTKRP_METHODS
from repro.core.mttkrp_baseline import mttkrp_baseline
from repro.util import prod

pytestmark = pytest.mark.tune

MASTER_SEED = 20180224  # PPoPP'18
N_CONFIGS = int(os.environ.get("REPRO_ORACLE_BATCH_N", "48"))

_BATCH_SIZES = (1, 3, 17)
_PROCESS_EVERY = 12


@pytest.fixture(autouse=True)
def _isolated_tune_cache(tmp_path, monkeypatch):
    """Each test run tunes against its own cache file."""
    from repro.tune import reset_cache

    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune.json"))
    reset_cache()
    yield
    reset_cache()


@dataclass(frozen=True)
class BatchOracleConfig:
    index: int
    shape: tuple[int, ...]
    rank: int
    batch: int
    dtype: str
    num_threads: int
    backend: str

    def __str__(self) -> str:
        return (
            f"#{self.index}: shape={self.shape} rank={self.rank} "
            f"B={self.batch} dtype={self.dtype} "
            f"threads={self.num_threads} backend={self.backend}"
        )


def draw_config(index: int) -> BatchOracleConfig:
    rng = np.random.default_rng([MASTER_SEED, index])
    order = int(rng.integers(2, 6))
    shape = tuple(int(rng.integers(1, 6)) for _ in range(order))
    rank = int(rng.integers(1, 7))
    batch = int(rng.choice(_BATCH_SIZES))
    dtype = str(rng.choice(["float32", "float64"]))
    if index % _PROCESS_EVERY == _PROCESS_EVERY - 1:
        # Pin the worker count so every process config shares one cached
        # executor team.
        return BatchOracleConfig(index, shape, rank, batch, dtype, 2, "process")
    num_threads = int(rng.integers(1, 5))
    return BatchOracleConfig(
        index, shape, rank, batch, dtype, num_threads, "thread"
    )


def build_operands(cfg: BatchOracleConfig):
    """Reconstruct the operands for a config (deterministic in the seed)."""
    rng = np.random.default_rng([MASTER_SEED, cfg.index, 1])
    dt = np.dtype(cfg.dtype)
    flat = rng.standard_normal((cfg.batch, prod(cfg.shape))).astype(dt)
    factors = [
        rng.standard_normal((cfg.batch, s, cfg.rank)).astype(dt)
        for s in cfg.shape
    ]
    return BatchedTensor(flat, cfg.shape), factors


def tolerance(cfg: BatchOracleConfig, ref: np.ndarray, n: int) -> float:
    """Dtype-appropriate absolute tolerance (see the per-item oracle)."""
    eps = float(np.finfo(np.dtype(cfg.dtype)).eps)
    K = max(prod(cfg.shape) // max(cfg.shape[n], 1), 1) * cfg.rank
    magnitude = max(1.0, float(np.abs(ref).max()) if ref.size else 1.0)
    return 32.0 * eps * max(K, 4) * magnitude


def repro_snippet(cfg: BatchOracleConfig, method: str, mode: int) -> str:
    return (
        "# --- batched-oracle repro ---\n"
        "import numpy as np\n"
        "from tests.test_oracle_batch import build_operands, BatchOracleConfig\n"
        "from repro.batch import mttkrp_batched\n"
        f"cfg = BatchOracleConfig(index={cfg.index}, shape={cfg.shape}, "
        f"rank={cfg.rank}, batch={cfg.batch}, dtype={cfg.dtype!r}, "
        f"num_threads={cfg.num_threads}, backend={cfg.backend!r})\n"
        "bt, U = build_operands(cfg)\n"
        f"ref = mttkrp_batched(bt, U, {mode}, method='batched-loop')\n"
        f"out = mttkrp_batched(bt, U, {mode}, method={method!r}, "
        f"num_threads={cfg.num_threads}, backend={cfg.backend!r})\n"
        "print(np.abs(out - ref).max())\n"
    )


def check_config(cfg: BatchOracleConfig) -> None:
    bt, U = build_operands(cfg)
    backend = cfg.backend if cfg.backend != "thread" else None
    for n in range(bt.ndim):
        # The stacked reference: the per-item loop lane at T=1.
        ref = mttkrp_batched(bt, U, n, method="batched-loop", num_threads=1)
        for method in BATCHED_MTTKRP_METHODS:
            out = mttkrp_batched(
                bt, U, n,
                method=method,
                num_threads=cfg.num_threads,
                backend=backend,
            )
            assert out.shape == ref.shape and out.dtype == ref.dtype, (
                f"{cfg} method={method!r} mode={n}: shape/dtype mismatch "
                f"({out.shape}/{out.dtype} vs {ref.shape}/{ref.dtype})\n"
                + repro_snippet(cfg, method, n)
            )
            if not np.array_equal(out, ref):
                err = float(np.abs(out - ref).max()) if ref.size else 0.0
                pytest.fail(
                    f"{cfg} method={method!r} mode={n}: not bit-identical "
                    f"to batched-loop, max |delta| = {err:.3e}\n"
                    f"replay seed: ({MASTER_SEED}, {cfg.index})\n"
                    + repro_snippet(cfg, method, n)
                )
        # Per-item agreement with the single-tensor baseline.
        for b in range(bt.batch):
            item_ref = mttkrp_baseline(
                bt.item(b), [f[b] for f in U], n, num_threads=1
            )
            tol = tolerance(cfg, item_ref, n)
            err = (
                float(np.abs(ref[b] - item_ref).max())
                if item_ref.size else 0.0
            )
            if not err <= tol:
                pytest.fail(
                    f"{cfg} item={b} mode={n}: max |delta| vs "
                    f"mttkrp_baseline = {err:.3e} > tol {tol:.3e}\n"
                    f"replay seed: ({MASTER_SEED}, {cfg.index})\n"
                    + repro_snippet(cfg, "batched", n)
                )


_BATCHES = 6  # keep per-test runtime visible without 48 tiny test items


@pytest.mark.parametrize("batch", range(_BATCHES))
def test_batched_differential_oracle(batch):
    for index in range(batch, N_CONFIGS, _BATCHES):
        check_config(draw_config(index))


def test_draws_cover_the_advertised_space():
    configs = [draw_config(i) for i in range(N_CONFIGS)]
    assert {len(c.shape) for c in configs} == {2, 3, 4, 5}
    assert {c.batch for c in configs} == set(_BATCH_SIZES)
    assert {c.dtype for c in configs} == {"float32", "float64"}
    assert {c.backend for c in configs} == {"thread", "process"}
    assert {c.num_threads for c in configs} >= {1, 2}
    assert any(1 in c.shape for c in configs)


def test_autotune_pick_is_replayable():
    """The tuner's recorded pick, replayed by its method name, matches
    both the autotune dispatch result and the loop reference."""
    cfg = draw_config(5)
    bt, U = build_operands(cfg)
    from repro.tune.batched import autotune_batched

    for n in range(bt.ndim):
        record = autotune_batched(bt, U, n, num_threads=cfg.num_threads)
        via_autotune = mttkrp_batched(
            bt, U, n, method="autotune", num_threads=cfg.num_threads
        )
        via_label = mttkrp_batched(
            bt, U, n, method=record.method, num_threads=cfg.num_threads
        )
        assert np.array_equal(via_autotune, via_label)
