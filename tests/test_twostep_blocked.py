"""Tests for the constant-memory blocked 2-step MTTKRP."""

import numpy as np
import pytest

from repro.core.mttkrp_twostep import mttkrp_twostep, mttkrp_twostep_blocked
from repro.tensor.generate import random_factors, random_tensor
from repro.util.timing import PhaseTimer
from tests.conftest import mttkrp_oracle


def _case(shape, rank=5, seed=0):
    return (
        random_tensor(shape, rng=seed),
        random_factors(shape, rank, rng=seed + 1),
    )


class TestBlockedTwoStep:
    @pytest.mark.parametrize("shape", [(4, 5, 6), (3, 4, 5, 6), (2, 3, 4, 3, 2)])
    @pytest.mark.parametrize("side", ["auto", "left", "right"])
    @pytest.mark.parametrize("budget", [1, 37, 10**9])
    def test_matches_oracle_all_budgets(self, shape, side, budget):
        X, U = _case(shape)
        for n in range(1, len(shape) - 1):
            np.testing.assert_allclose(
                mttkrp_twostep_blocked(X, U, n, budget, side=side),
                mttkrp_oracle(X, U, n),
                atol=1e-9,
            )

    def test_matches_unblocked(self):
        X, U = _case((5, 6, 7, 4))
        for n in (1, 2):
            np.testing.assert_allclose(
                mttkrp_twostep_blocked(X, U, n, 100),
                mttkrp_twostep(X, U, n),
                atol=1e-10,
            )

    def test_huge_budget_single_block(self):
        # With an unbounded budget the loop runs exactly once per side.
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        mttkrp_twostep_blocked(X, U, 1, 10**12, timers=t)
        assert t.counts["gemm"] == 1

    def test_tiny_budget_many_blocks(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        mttkrp_twostep_blocked(X, U, 1, 1, side="right", timers=t)
        # group size degrades to one output row per block.
        assert t.counts["gemm"] == 5

    def test_external_mode_rejected(self):
        X, U = _case((4, 5, 6))
        with pytest.raises(ValueError, match="internal"):
            mttkrp_twostep_blocked(X, U, 0, 100)

    def test_bad_budget(self):
        X, U = _case((4, 5, 6))
        with pytest.raises(ValueError, match="positive"):
            mttkrp_twostep_blocked(X, U, 1, 0)

    def test_bad_side(self):
        X, U = _case((4, 5, 6))
        with pytest.raises(ValueError, match="side"):
            mttkrp_twostep_blocked(X, U, 1, 10, side="down")

    def test_rejects_plain_ndarray(self, rng):
        with pytest.raises(TypeError, match="DenseTensor"):
            mttkrp_twostep_blocked(rng.random((3, 4, 5)), [], 1, 10)

    def test_phases_recorded(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        mttkrp_twostep_blocked(X, U, 1, 50, timers=t)
        assert {"lr_krp", "gemm", "gemv"} <= set(t.totals)
