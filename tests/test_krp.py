"""Tests for the row-wise Khatri-Rao product (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.krp import (
    khatri_rao,
    khatri_rao_naive,
    krp_reference,
    krp_row,
    krp_rows,
    krp_rows_naive,
)
from tests.conftest import krp_oracle

matrix_lists = st.lists(
    st.tuples(st.integers(1, 5), st.just(3)), min_size=1, max_size=4
)


def _random_mats(dims, C, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random((d, C)) for d in dims]


class TestKhatriRao:
    def test_matches_kronecker_definition(self, rng):
        mats = _random_mats([3, 4, 2], 5)
        np.testing.assert_allclose(khatri_rao(mats), krp_oracle(mats))

    def test_two_matrices(self, rng):
        mats = _random_mats([3, 4], 5)
        np.testing.assert_allclose(khatri_rao(mats), krp_oracle(mats))

    def test_single_matrix_is_copy(self, rng):
        (m,) = _random_mats([4], 3)
        K = khatri_rao([m])
        np.testing.assert_array_equal(K, m)

    def test_row_index_convention(self, rng):
        # K(rA*IB + rB, :) = A(rA,:) * B(rB,:): last input fastest.
        A, B = _random_mats([3, 4], 5)
        K = khatri_rao([A, B])
        for ra in range(3):
            for rb in range(4):
                np.testing.assert_allclose(K[ra * 4 + rb], A[ra] * B[rb])

    def test_out_parameter(self, rng):
        mats = _random_mats([3, 4], 5)
        out = np.empty((12, 5))
        res = khatri_rao(mats, out=out)
        assert res is out
        np.testing.assert_allclose(out, krp_oracle(mats))

    def test_out_wrong_shape(self, rng):
        mats = _random_mats([3, 4], 5)
        with pytest.raises(ValueError, match="out"):
            khatri_rao(mats, out=np.empty((11, 5)))

    def test_column_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="column"):
            khatri_rao([rng.random((3, 4)), rng.random((3, 5))])

    def test_result_contiguous(self, rng):
        assert khatri_rao(_random_mats([3, 4, 2], 5)).flags.c_contiguous

    @given(matrix_lists)
    @settings(max_examples=40, deadline=None)
    def test_property_vs_oracle(self, dims_and_c):
        dims = [d for d, _ in dims_and_c]
        mats = _random_mats(dims, 3, seed=42)
        np.testing.assert_allclose(
            khatri_rao(mats), krp_oracle(mats), atol=1e-12
        )

    def test_single_column(self, rng):
        mats = _random_mats([3, 4], 1)
        np.testing.assert_allclose(khatri_rao(mats), krp_oracle(mats))

    def test_rows_of_ones(self):
        mats = [np.ones((3, 2)), np.ones((4, 2))]
        np.testing.assert_array_equal(khatri_rao(mats), np.ones((12, 2)))


class TestNaive:
    def test_matches_reuse(self, rng):
        mats = _random_mats([3, 4, 2, 3], 5)
        np.testing.assert_allclose(khatri_rao_naive(mats), khatri_rao(mats))

    def test_z2_delegates_to_reuse(self, rng):
        # "For Z = 2 there is no difference in algorithm."
        mats = _random_mats([5, 7], 4)
        np.testing.assert_allclose(khatri_rao_naive(mats), khatri_rao(mats))

    def test_rows_naive_range(self, rng):
        mats = _random_mats([3, 4, 2], 5)
        K = khatri_rao(mats)
        np.testing.assert_allclose(krp_rows_naive(mats, 5, 17), K[5:17])

    @pytest.mark.parametrize("dims", [[3, 4, 2], [2, 3, 2, 2], [2, 2, 2, 2, 2]])
    def test_rows_naive_exhaustive_ranges(self, dims):
        # The periodic-broadcast segmentation must be correct for every
        # possible phase of every level.
        mats = _random_mats(dims, 3, seed=13)
        K = khatri_rao(mats)
        total = K.shape[0]
        for s in range(total + 1):
            for e in range(s, total + 1):
                np.testing.assert_allclose(
                    krp_rows_naive(mats, s, e), K[s:e], atol=1e-12
                )

    def test_rows_naive_empty(self, rng):
        mats = _random_mats([3, 4, 2], 5)
        assert krp_rows_naive(mats, 4, 4).shape == (0, 5)

    def test_rows_naive_invalid_range(self, rng):
        mats = _random_mats([3, 4], 5)
        with pytest.raises(ValueError, match="invalid"):
            krp_rows_naive(mats, 5, 13)


class TestKrpRows:
    def test_exhaustive_small(self):
        mats = _random_mats([3, 4, 2], 5, seed=3)
        K = khatri_rao(mats)
        total = K.shape[0]
        for s in range(total + 1):
            for e in range(s, total + 1):
                np.testing.assert_allclose(krp_rows(mats, s, e), K[s:e])

    @given(
        st.lists(st.integers(1, 4), min_size=1, max_size=4),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_ranges(self, dims, data):
        mats = _random_mats(dims, 2, seed=11)
        total = int(np.prod(dims))
        s = data.draw(st.integers(0, total))
        e = data.draw(st.integers(s, total))
        K = khatri_rao(mats)
        np.testing.assert_allclose(krp_rows(mats, s, e), K[s:e], atol=1e-12)

    def test_out_parameter(self):
        mats = _random_mats([3, 4, 2], 5)
        out = np.empty((10, 5))
        res = krp_rows(mats, 7, 17, out=out)
        assert res is out
        np.testing.assert_allclose(out, khatri_rao(mats)[7:17])

    def test_out_wrong_shape(self):
        mats = _random_mats([3, 4], 5)
        with pytest.raises(ValueError, match="out"):
            krp_rows(mats, 0, 3, out=np.empty((4, 5)))

    def test_invalid_range(self):
        mats = _random_mats([3, 4], 5)
        with pytest.raises(ValueError, match="invalid"):
            krp_rows(mats, -1, 3)
        with pytest.raises(ValueError, match="invalid"):
            krp_rows(mats, 0, 13)

    def test_single_matrix_slice(self):
        (m,) = _random_mats([6], 3)
        np.testing.assert_array_equal(krp_rows([m], 2, 5), m[2:5])


class TestKrpRow:
    def test_all_rows(self):
        mats = _random_mats([3, 4, 2], 5, seed=5)
        K = khatri_rao(mats)
        for j in range(K.shape[0]):
            np.testing.assert_allclose(krp_row(mats, j), K[j])

    def test_out_of_range(self):
        mats = _random_mats([3, 4], 5)
        with pytest.raises(ValueError, match="out of range"):
            krp_row(mats, 12)


class TestReference:
    """The literal Algorithm 1 transcription agrees with everything else."""

    @pytest.mark.parametrize("dims", [[3], [3, 4], [3, 4, 2], [2, 3, 2, 2]])
    def test_matches_vectorized(self, dims):
        mats = _random_mats(dims, 4, seed=9)
        np.testing.assert_allclose(krp_reference(mats), khatri_rao(mats))

    def test_matches_oracle(self):
        mats = _random_mats([2, 3, 4], 3, seed=1)
        np.testing.assert_allclose(krp_reference(mats), krp_oracle(mats))

    def test_z5(self):
        mats = _random_mats([2, 2, 2, 2, 2], 3, seed=2)
        np.testing.assert_allclose(krp_reference(mats), khatri_rao(mats))
