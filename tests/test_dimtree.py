"""Tests for the dimension-tree (all-modes MTTKRP) extension."""

import numpy as np
import pytest

from repro.core.dimtree import (
    left_partial,
    node_mttkrp,
    right_partial,
    split_point,
)
from repro.cpd.cp_als import cp_als
from repro.tensor.generate import random_factors, random_tensor
from repro.util.timing import PhaseTimer
from tests.conftest import mttkrp_oracle

SHAPES = [(4, 5, 6), (3, 4, 5, 6), (2, 3, 4, 3, 2), (7, 3)]


def _case(shape, rank=5, seed=0):
    return (
        random_tensor(shape, rng=seed),
        random_factors(shape, rank, rng=seed + 1),
    )


class TestSplitPoint:
    def test_values(self):
        assert split_point(2) == 1
        assert split_point(3) == 2
        assert split_point(4) == 2
        assert split_point(5) == 3

    def test_bounds(self):
        for N in range(2, 8):
            m = split_point(N)
            assert 1 <= m <= N - 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_point(1)


class TestPartials:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_left_partial_every_left_mode(self, shape):
        X, U = _case(shape)
        N = len(shape)
        for m in range(1, N):
            TL = left_partial(X, U, m)
            assert TL.shape == shape[:m] + (5,)
            for n in range(m):
                np.testing.assert_allclose(
                    node_mttkrp(TL, U[:m], keep=n),
                    mttkrp_oracle(X, U, n),
                    atol=1e-9,
                )

    @pytest.mark.parametrize("shape", SHAPES)
    def test_right_partial_every_right_mode(self, shape):
        X, U = _case(shape)
        N = len(shape)
        for m in range(1, N):
            TR = right_partial(X, U, m)
            assert TR.shape == shape[m:] + (5,)
            for n in range(m, N):
                np.testing.assert_allclose(
                    node_mttkrp(TR, U[m:], keep=n - m),
                    mttkrp_oracle(X, U, n),
                    atol=1e-9,
                )

    def test_invalid_split(self):
        X, U = _case((4, 5, 6))
        for bad in (0, 3):
            with pytest.raises(ValueError, match="split"):
                left_partial(X, U, bad)
            with pytest.raises(ValueError, match="split"):
                right_partial(X, U, bad)

    def test_timers(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        left_partial(X, U, 2, timers=t)
        assert {"lr_krp", "gemm"} <= set(t.totals)


class TestNodeMttkrp:
    def test_single_mode_node_is_identity(self):
        # A node with one tensor mode: its MTTKRP is the node matrix itself.
        X, U = _case((4, 6))
        TL = left_partial(X, U, 1)  # shape (4, C)
        np.testing.assert_allclose(
            node_mttkrp(TL, U[:1], keep=0),
            TL.unfold_front(0),
            atol=1e-12,
        )

    def test_wrong_factor_count(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        with pytest.raises(ValueError, match="factor matrices"):
            node_mttkrp(TL, U[:1], keep=0)

    def test_wrong_factor_shape(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        with pytest.raises(ValueError, match="shape"):
            node_mttkrp(TL, [U[1], U[0]], keep=0)

    def test_keep_out_of_range(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        with pytest.raises(ValueError, match="keep"):
            node_mttkrp(TL, U[:2], keep=2)

    def test_phase_timer(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        t = PhaseTimer()
        node_mttkrp(TL, U[:2], keep=0, timers=t)
        assert "gemv" in t.totals


class TestCpAlsDimtree:
    @pytest.mark.parametrize("shape", [(6, 7, 8), (5, 6, 7, 4), (3, 4, 5, 3, 3)])
    def test_identical_trajectory_to_per_mode(self, shape):
        X = random_tensor(shape, rng=9)
        init = random_factors(shape, 3, rng=10)
        a = cp_als(X, 3, n_iter_max=6, tol=0.0, init=init)
        b = cp_als(
            X, 3, n_iter_max=6, tol=0.0, init=init, mode_strategy="dimtree"
        )
        np.testing.assert_allclose(a.fits, b.fits, atol=1e-9)

    def test_recovers_exact_lowrank(self):
        from repro.tensor.generate import from_kruskal

        U = random_factors((9, 10, 11), 2, rng=20)
        X = from_kruskal(U)
        res = cp_als(
            X, 2, n_iter_max=150, tol=1e-13, rng=21, mode_strategy="dimtree"
        )
        assert res.final_fit > 0.9999

    def test_unknown_strategy(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="mode_strategy"):
            cp_als(X, 2, mode_strategy="tree-of-life")

    def test_fewer_gemm_flops_reflected_in_phases(self):
        """The dimtree iteration should do its tensor-sized work in exactly
        two 'gemm' phase entries per iteration (one per half)."""
        X = random_tensor((8, 8, 8, 8), rng=1)
        init = random_factors(X.shape, 4, rng=2)
        res = cp_als(
            X, 4, n_iter_max=2, tol=0.0, init=init, mode_strategy="dimtree"
        )
        assert res.timers.counts["gemm"] == 2 * 2  # 2 halves x 2 iterations
