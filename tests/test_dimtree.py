"""Tests for the dimension-tree (all-modes MTTKRP) extension."""

import numpy as np
import pytest

from repro.core.dimtree import (
    left_partial,
    node_mttkrp,
    node_mttkrp_columnwise,
    right_partial,
    split_point,
)
from repro.cpd.cp_als import cp_als
from repro.parallel.backend import get_executor
from repro.parallel.workspace import Workspace
from repro.tensor.generate import random_factors, random_tensor
from repro.util.timing import PhaseTimer
from tests.conftest import mttkrp_oracle

SHAPES = [(4, 5, 6), (3, 4, 5, 6), (2, 3, 4, 3, 2), (7, 3)]


class SpyExecutor:
    """Pass-through executor that records every parallel region's label.

    Regression guard for the bug where the dimtree first level computed
    its KRP with the *serial* ``khatri_rao`` — engagement of the executor
    is asserted on the recorded labels, not inferred from timings.
    """

    def __init__(self, inner):
        self.inner = inner
        self.labels = []

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def parallel_for(self, fn, num_items, **kwargs):
        self.labels.append(kwargs.get("label"))
        return self.inner.parallel_for(fn, num_items, **kwargs)


def _case(shape, rank=5, seed=0):
    return (
        random_tensor(shape, rng=seed),
        random_factors(shape, rank, rng=seed + 1),
    )


class TestSplitPoint:
    def test_values(self):
        assert split_point(2) == 1
        assert split_point(3) == 2
        assert split_point(4) == 2
        assert split_point(5) == 3

    def test_bounds(self):
        for N in range(2, 8):
            m = split_point(N)
            assert 1 <= m <= N - 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_point(1)


class TestPartials:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_left_partial_every_left_mode(self, shape):
        X, U = _case(shape)
        N = len(shape)
        for m in range(1, N):
            TL = left_partial(X, U, m)
            assert TL.shape == shape[:m] + (5,)
            for n in range(m):
                np.testing.assert_allclose(
                    node_mttkrp(TL, U[:m], keep=n),
                    mttkrp_oracle(X, U, n),
                    atol=1e-9,
                )

    @pytest.mark.parametrize("shape", SHAPES)
    def test_right_partial_every_right_mode(self, shape):
        X, U = _case(shape)
        N = len(shape)
        for m in range(1, N):
            TR = right_partial(X, U, m)
            assert TR.shape == shape[m:] + (5,)
            for n in range(m, N):
                np.testing.assert_allclose(
                    node_mttkrp(TR, U[m:], keep=n - m),
                    mttkrp_oracle(X, U, n),
                    atol=1e-9,
                )

    def test_invalid_split(self):
        X, U = _case((4, 5, 6))
        for bad in (0, 3):
            with pytest.raises(ValueError, match="split"):
                left_partial(X, U, bad)
            with pytest.raises(ValueError, match="split"):
                right_partial(X, U, bad)

    def test_timers(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        left_partial(X, U, 2, timers=t)
        assert {"lr_krp", "gemm"} <= set(t.totals)

    def test_krp_runs_on_the_executor(self):
        # Regression: the first level used to call the serial khatri_rao.
        X, U = _case((4, 5, 6))
        spy = SpyExecutor(get_executor(2))
        left_partial(X, U, 2, num_threads=2, executor=spy)
        assert "krp.rows" in spy.labels
        spy.labels.clear()
        right_partial(X, U, 2, num_threads=2, executor=spy)
        assert "krp.rows" in spy.labels

    def test_parallel_krp_matches_serial_bitwise(self):
        X, U = _case((3, 4, 5, 6))
        for m in (1, 2, 3):
            a = left_partial(X, U, m)
            b = left_partial(X, U, m, num_threads=3)
            assert np.array_equal(a.data, b.data)
            a = right_partial(X, U, m)
            b = right_partial(X, U, m, num_threads=3)
            assert np.array_equal(a.data, b.data)

    def test_workspace_buffers_are_reused(self):
        X, U = _case((4, 5, 6))
        ws = Workspace()
        a = left_partial(X, U, 2, workspace=ws).data
        allocs = ws.stats.allocations
        b = left_partial(X, U, 2, workspace=ws).data
        assert b is a  # same backing buffer
        assert ws.stats.allocations == allocs
        assert ws.stats.reuses > 0


class TestNodeMttkrp:
    def test_single_mode_node_is_identity(self):
        # A node with one tensor mode: its MTTKRP is the node matrix itself.
        X, U = _case((4, 6))
        TL = left_partial(X, U, 1)  # shape (4, C)
        np.testing.assert_allclose(
            node_mttkrp(TL, U[:1], keep=0),
            TL.unfold_front(0),
            atol=1e-12,
        )

    def test_wrong_factor_count(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        with pytest.raises(ValueError, match="factor matrices"):
            node_mttkrp(TL, U[:1], keep=0)

    def test_wrong_factor_shape(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        with pytest.raises(ValueError, match="shape"):
            node_mttkrp(TL, [U[1], U[0]], keep=0)

    def test_keep_out_of_range(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        with pytest.raises(ValueError, match="keep"):
            node_mttkrp(TL, U[:2], keep=2)

    def test_phase_timer(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        t = PhaseTimer()
        node_mttkrp(TL, U[:2], keep=0, timers=t)
        assert {"node_krp", "node_gemm"} <= set(t.totals)

    def test_phase_timer_columnwise(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        t = PhaseTimer()
        node_mttkrp_columnwise(TL, U[:2], keep=0, timers=t)
        assert "gemv" in t.totals


def _all_nodes(shape, rank, seed=0):
    """Every (node, node factors, keep) of every split of a tensor —
    including the degenerate splits m=1 and m=N-1."""
    X, U = _case(shape, rank=rank, seed=seed)
    N = len(shape)
    for m in range(1, N):
        TL = left_partial(X, U, m)
        TR = right_partial(X, U, m)
        for keep in range(m):
            yield TL, U[:m], keep
        for keep in range(N - m):
            yield TR, U[m:], keep


class TestBatchedVsColumnwise:
    """The batched rewrite must be a pure reorganization of the
    column-wise reference: identical bits when run serially."""

    @pytest.mark.parametrize(
        "shape", [(4, 5, 6), (3, 4, 5, 6), (2, 3, 4, 3, 2), (7, 3)]
    )
    @pytest.mark.parametrize("rank", [1, 5])
    def test_bit_identical_serial(self, shape, rank):
        for node, facs, keep in _all_nodes(shape, rank):
            a = node_mttkrp_columnwise(node, facs, keep)
            b = node_mttkrp(node, facs, keep, num_threads=1)
            assert a.dtype == b.dtype
            assert np.array_equal(a, b), (shape, rank, keep)

    @pytest.mark.parametrize("threads", [2, 3])
    def test_parallel_matches_serial(self, threads):
        for node, facs, keep in _all_nodes((3, 4, 5, 6), rank=4):
            a = node_mttkrp(node, facs, keep, num_threads=1)
            b = node_mttkrp(node, facs, keep, num_threads=threads)
            np.testing.assert_allclose(b, a, rtol=1e-12, atol=1e-12)

    def test_thread_process_bit_identical_at_fixed_threads(self):
        ex_t = get_executor(2, backend="thread")
        ex_p = get_executor(2, backend="process")
        for node, facs, keep in _all_nodes((3, 4, 5), rank=4):
            a = node_mttkrp(node, facs, keep, num_threads=2, executor=ex_t)
            b = node_mttkrp(node, facs, keep, num_threads=2, executor=ex_p)
            assert np.array_equal(np.asarray(a), np.asarray(b)), keep

    def test_node_executor_engaged(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        spy = SpyExecutor(get_executor(2))
        node_mttkrp(TL, U[:2], keep=0, num_threads=2, executor=spy)
        assert "dimtree.node" in spy.labels

    def test_workspace_zero_allocations_after_warmup(self):
        X, U = _case((4, 5, 6))
        TL = left_partial(X, U, 2)
        ws = Workspace()
        node_mttkrp(TL, U[:2], keep=1, workspace=ws)
        allocs = ws.stats.allocations
        for _ in range(3):
            node_mttkrp(TL, U[:2], keep=1, workspace=ws)
        assert ws.stats.allocations == allocs
        assert ws.stats.reuses >= 3


class TestCpAlsDimtree:
    @pytest.mark.parametrize("shape", [(6, 7, 8), (5, 6, 7, 4), (3, 4, 5, 3, 3)])
    def test_identical_trajectory_to_per_mode(self, shape):
        X = random_tensor(shape, rng=9)
        init = random_factors(shape, 3, rng=10)
        a = cp_als(X, 3, n_iter_max=6, tol=0.0, init=init)
        b = cp_als(
            X, 3, n_iter_max=6, tol=0.0, init=init, mode_strategy="dimtree"
        )
        np.testing.assert_allclose(a.fits, b.fits, atol=1e-9)

    def test_recovers_exact_lowrank(self):
        from repro.tensor.generate import from_kruskal

        U = random_factors((9, 10, 11), 2, rng=20)
        X = from_kruskal(U)
        res = cp_als(
            X, 2, n_iter_max=150, tol=1e-13, rng=21, mode_strategy="dimtree"
        )
        assert res.final_fit > 0.9999

    def test_unknown_strategy(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="mode_strategy"):
            cp_als(X, 2, mode_strategy="tree-of-life")

    def test_fewer_gemm_flops_reflected_in_phases(self):
        """The dimtree iteration should do its tensor-sized work in exactly
        two 'gemm' phase entries per iteration (one per half)."""
        X = random_tensor((8, 8, 8, 8), rng=1)
        init = random_factors(X.shape, 4, rng=2)
        res = cp_als(
            X, 4, n_iter_max=2, tol=0.0, init=init, mode_strategy="dimtree"
        )
        assert res.timers.counts["gemm"] == 2 * 2  # 2 halves x 2 iterations

    @pytest.mark.parametrize("shape", [(6, 7, 8), (5, 6, 7, 4)])
    def test_parallel_trajectory_matches_serial(self, shape):
        X = random_tensor(shape, rng=9)
        init = random_factors(shape, 3, rng=10)
        a = cp_als(
            X, 3, n_iter_max=5, tol=0.0, init=init, mode_strategy="dimtree"
        )
        b = cp_als(
            X, 3, n_iter_max=5, tol=0.0, init=init, mode_strategy="dimtree",
            num_threads=2,
        )
        np.testing.assert_allclose(a.fits, b.fits, atol=1e-9)

    def test_backends_bit_identical(self):
        """Whole dimtree runs agree bitwise across thread/process at a
        fixed thread count (same partitions, strides, reduce pairing)."""
        X = random_tensor((5, 6, 7), rng=11)
        init = random_factors(X.shape, 3, rng=12)
        a = cp_als(
            X, 3, n_iter_max=4, tol=0.0, init=init,
            mode_strategy="dimtree", num_threads=2, backend="thread",
        )
        b = cp_als(
            X, 3, n_iter_max=4, tol=0.0, init=init,
            mode_strategy="dimtree", num_threads=2, backend="process",
        )
        assert a.fits == b.fits
        for fa, fb in zip(a.model.factors, b.model.factors):
            assert np.array_equal(fa, fb)

    def test_zero_allocations_after_warmup(self):
        """After the first iteration warms the arena, later iterations
        allocate no node/private buffers (the acceptance criterion,
        asserted via the workspace's own stats counter)."""
        X = random_tensor((5, 6, 7, 4), rng=13)
        init = random_factors(X.shape, 3, rng=14)
        ws1 = Workspace()
        cp_als(
            X, 3, n_iter_max=1, tol=0.0, init=init,
            mode_strategy="dimtree", workspace=ws1,
        )
        ws4 = Workspace()
        cp_als(
            X, 3, n_iter_max=4, tol=0.0, init=init,
            mode_strategy="dimtree", workspace=ws4,
        )
        # 4 iterations allocate exactly what 1 iteration does ...
        assert ws4.stats.allocations == ws1.stats.allocations
        # ... and the extra iterations are pure reuse.
        assert ws4.stats.reuses > ws1.stats.reuses
        # Caller-provided workspaces stay open (stats readable, reusable).
        assert ws4.num_buffers > 0

    def test_internal_workspace_closed_and_external_reused(self):
        X = random_tensor((4, 5, 6), rng=15)
        init = random_factors(X.shape, 2, rng=16)
        ws = Workspace()
        cp_als(
            X, 2, n_iter_max=2, tol=0.0, init=init,
            mode_strategy="dimtree", workspace=ws,
        )
        allocs = ws.stats.allocations
        # A second run on the same shapes allocates nothing at all.
        cp_als(
            X, 2, n_iter_max=2, tol=0.0, init=init,
            mode_strategy="dimtree", workspace=ws,
        )
        assert ws.stats.allocations == allocs
