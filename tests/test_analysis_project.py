"""Project-level analyzer tests: call graph, dataflow, RA007–RA010,
the suppression baseline ratchet, the incremental cache, and
``--changed`` mode.

The per-file rules are covered fixture-by-fixture in
``test_analysis_lint.py``; this file covers everything that needs more
than one module in view.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.baseline import check_baseline, write_baseline
from repro.analysis.cache import LintCache
from repro.analysis.callgraph import (
    Project,
    extract_dispatch_tables,
    module_name_for,
)
from repro.analysis.dataflow import (
    view_provenance,
    write_summaries,
)
from repro.analysis.lint import collect_files, lint_paths, lint_project
from repro.analysis.rules import ALL_RULES, PROJECT_RULES, get_project_rules

REPO = Path(__file__).parent.parent
FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC = REPO / "src" / "repro"

PROJECT_RULE_IDS = [r.id for r in PROJECT_RULES]


def project_findings_for(names, rule_id=None):
    files = [FIXTURES / n for n in names]
    found = lint_project(files)
    if rule_id is not None:
        found = [f for f in found if f.rule == rule_id]
    return found


# --------------------------------------------------------------------- #
# callgraph substrate
# --------------------------------------------------------------------- #

class TestCallgraph:
    def test_module_names_follow_packages(self):
        assert module_name_for(SRC / "core" / "dispatch.py") == \
            "repro.core.dispatch"

    def test_resolves_cross_module_calls(self):
        files = collect_files([SRC / "core", SRC / "obs"])
        p = Project.load(files, detect_root=False)
        dispatch = p.modules["repro.core.dispatch"]
        run = dispatch.functions["_run"]
        callees = {c.qualname for c in p.callees(run)}
        assert "repro.core.mttkrp_onestep.mttkrp_onestep" in callees
        assert "repro.core.mttkrp_twostep.mttkrp_twostep" in callees

    def test_reachable_is_transitive(self):
        files = collect_files([SRC])
        p = Project.load(files, detect_root=False)
        dispatch = p.modules["repro.core.dispatch"]
        names = {f.qualname for f in p.reachable(dispatch.functions["mttkrp"])}
        # mttkrp -> _run -> kernels -> their helpers.
        assert "repro.core.dispatch._run" in names
        assert any(".mttkrp_onestep" in n for n in names)
        assert len(names) > 10

    def test_extracts_real_dispatch_table(self):
        files = collect_files([SRC])
        p = Project.load(files, detect_root=False)
        tables = extract_dispatch_tables(p, p.modules["repro.core.dispatch"])
        assert len(tables) == 1
        entries = tables[0].entries
        assert set(entries) == {
            "onestep", "onestep-seq", "twostep", "blocked", "dimtree",
            "baseline",
        }
        assert entries["baseline"].name == "mttkrp_baseline"

    def test_aux_sources_loaded_from_repo_root(self):
        p = Project.load([SRC / "core" / "dispatch.py"])
        assert any("test_oracle" in m.name for m in p.aux_modules)
        assert "MTTKRP" in p.docs_text


# --------------------------------------------------------------------- #
# dataflow substrate
# --------------------------------------------------------------------- #

class TestDataflow:
    def _body(self, src):
        import ast

        return ast.parse(src).body

    def test_view_provenance_tracks_reshape_alias(self):
        prov = view_provenance(
            self._body("flat = out.reshape(-1)"), {"out"}, set(),
        )
        (v,) = prov["flat"]
        assert v.base == "out" and not v.partitioned

    def test_partition_indexed_view_is_partitioned(self):
        prov = view_provenance(
            self._body("block = out[start:stop]"), {"out"},
            {"start", "stop"},
        )
        (v,) = prov["block"]
        assert v.base == "out" and v.partitioned

    def test_provenance_chains_through_views(self):
        prov = view_provenance(
            self._body("a = out.reshape(-1)\nb = a.view()\n"),
            {"out"}, set(),
        )
        assert {v.base for v in prov["b"]} == {"out"}

    def test_write_summary_fixed_vs_dependent(self):
        src = (
            "def fixed_row(buf, v):\n"
            "    buf[0] = v\n"
            "def indexed_row(buf, row, v):\n"
            "    buf[row] = v\n"
        )
        p = Project()
        import ast as _ast  # noqa: F401 — Project.add_module parses

        mod_path = FIXTURES / "ra007_pos.py"  # any real path works
        mod = p.add_module(mod_path.with_name("synth.py"), src)
        assert mod is not None
        summaries = write_summaries(p)
        fixed = summaries["synth.fixed_row"].writes_to("buf")
        assert fixed and all(w.fixed for w in fixed)
        dep = summaries["synth.indexed_row"].writes_to("buf")
        assert dep and all(w.depends == frozenset({"row"}) for w in dep)

    def test_write_summary_propagates_through_calls(self):
        src = (
            "def inner(dst, i, v):\n"
            "    dst[i] = v\n"
            "def outer(arr, j):\n"
            "    inner(arr, j, 1.0)\n"
        )
        p = Project()
        p.add_module(FIXTURES / "synth2.py", src)
        summaries = write_summaries(p)
        (w,) = summaries["synth2.outer"].writes_to("arr")
        assert w.how == "call:inner"
        assert w.depends == frozenset({"j"})


# --------------------------------------------------------------------- #
# project rules over their fixtures
# --------------------------------------------------------------------- #

class TestProjectRuleFixtures:
    @pytest.mark.parametrize("rule_id", PROJECT_RULE_IDS)
    def test_positive_fixture_fires(self, rule_id):
        name = f"{rule_id.lower()}_pos.py"
        # RA010's surfaces are cross-module: lint the pos/neg pair so a
        # tuner/bench surface exists in the project at all.
        names = [name, f"{rule_id.lower()}_neg.py"]
        hits = project_findings_for(names, rule_id)
        assert hits, f"{name} produced no {rule_id} findings"
        for f in hits:
            assert Path(f.path).name == name
            assert not f.suppressed
            assert f.line > 0
            assert f.message and f.hint

    @pytest.mark.parametrize("rule_id", PROJECT_RULE_IDS)
    def test_negative_fixture_clean(self, rule_id):
        names = [f"{rule_id.lower()}_pos.py", f"{rule_id.lower()}_neg.py"]
        neg = f"{rule_id.lower()}_neg.py"
        hits = [
            f for f in project_findings_for(names)
            if Path(f.path).name == neg
        ]
        assert hits == []

    def test_ra007_flags_both_escape_shapes(self):
        hits = project_findings_for(["ra007_pos.py"], "RA007")
        msgs = " | ".join(f.message for f in hits)
        assert "unpartitioned alias" in msgs
        assert "_fill_header" in msgs

    def test_ra009_names_kernel_and_method(self):
        hits = project_findings_for(["ra009_pos.py"], "RA009")
        assert len(hits) == 2
        assert any("'fast'" in f.message for f in hits)
        assert any("'slow'" in f.message for f in hits)

    def test_ra010_reports_each_missing_surface(self):
        hits = project_findings_for(
            ["ra010_pos.py", "ra010_neg.py"], "RA010",
        )
        surfaces = {f.message.split("the ")[1].split(" surface")[0]
                    for f in hits}
        assert surfaces == {"oracle", "tuner", "bench", "docs"}
        # Findings anchor on the tuple element lines, where a
        # suppression comment would go.
        lines = {f.line for f in hits}
        assert len(lines) == 2

    def test_ra010_suppression_on_tuple_line(self, tmp_path):
        src = (FIXTURES / "ra010_pos.py").read_text()
        # A directive on line N also covers N+1, so keep a spacer line
        # between the elements to suppress only quuxstep.
        src = src.replace(
            '    "quuxstep",',
            '    "quuxstep",  # repro: ignore[RA010]\n    # (spacer)',
        )
        p = tmp_path / "ra010_sup.py"
        p.write_text(src)
        found = [f for f in lint_project([p]) if f.rule == "RA010"]
        quux = [f for f in found if "quuxstep" in f.message]
        zorb = [f for f in found if "zorbstep" in f.message]
        assert quux and all(f.suppressed for f in quux)
        assert zorb and not any(f.suppressed for f in zorb)

    def test_get_project_rules_filter(self):
        assert [r.id for r in get_project_rules(["RA009"])] == ["RA009"]
        assert [r.id for r in get_project_rules(None)] == PROJECT_RULE_IDS

    def test_lint_paths_merges_project_findings(self):
        found = lint_paths([FIXTURES])
        ids = {f.rule for f in found}
        assert {"RA007", "RA008", "RA009", "RA010"} <= ids


# --------------------------------------------------------------------- #
# baseline ratchet
# --------------------------------------------------------------------- #

class TestBaselineRatchet:
    def test_round_trip_and_ratchet(self, tmp_path):
        findings = lint_paths([FIXTURES])
        bl = tmp_path / "baseline.json"
        payload = write_baseline(bl, findings)
        assert payload["total"] > 0
        assert payload["by_rule"].get("RA010", 0) >= 8

        ok, problems = check_baseline(bl, findings)
        assert ok, problems

        # Fewer findings: still ok, nudges toward re-writing.
        fewer = [f for f in findings if f.rule != "RA010"]
        ok, problems = check_baseline(bl, fewer)
        assert ok
        assert any("went down" in p for p in problems)

        # More findings of an existing rule: ratchet trips.
        ok, problems = check_baseline(bl, findings + findings[:1])
        assert not ok

    def test_new_rule_counts_as_regression(self, tmp_path):
        findings = lint_paths([FIXTURES])
        bl = tmp_path / "baseline.json"
        write_baseline(bl, [f for f in findings if f.rule != "RA009"])
        ok, problems = check_baseline(bl, findings)
        assert not ok
        assert any("RA009" in p for p in problems)

    def test_missing_baseline_fails_closed(self, tmp_path):
        ok, problems = check_baseline(tmp_path / "nope.json", [])
        assert not ok
        assert "baseline write" in problems[0]

    def test_repo_baseline_is_current(self):
        # The committed baseline must match a fresh run: zero findings.
        findings = lint_paths([SRC])
        ok, problems = check_baseline(REPO / "analysis-baseline.json",
                                      findings)
        assert ok, problems
        recorded = json.loads(
            (REPO / "analysis-baseline.json").read_text()
        )
        assert recorded["total"] == 0

    def test_cli_baseline_check_exit_codes(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)

        def run(*args):
            return subprocess.run(
                [sys.executable, "-m", "repro.analysis", *args],
                capture_output=True, text=True, cwd=REPO, env=env,
                timeout=300,
            )

        bl = tmp_path / "bl.json"
        res = run("baseline", "check", str(FIXTURES),
                  "--baseline-file", str(bl))
        assert res.returncode == 2  # no baseline yet: fail closed
        res = run("baseline", "write", str(FIXTURES),
                  "--baseline-file", str(bl))
        assert res.returncode == 0
        res = run("baseline", "check", str(FIXTURES),
                  "--baseline-file", str(bl))
        assert res.returncode == 0, res.stdout + res.stderr


# --------------------------------------------------------------------- #
# incremental cache
# --------------------------------------------------------------------- #

class TestIncrementalCache:
    def _key(self):
        return LintCache.rules_signature(ALL_RULES, PROJECT_RULES)

    def test_cached_rerun_matches_and_is_faster(self, tmp_path):
        cache_path = tmp_path / "cache.json"

        t0 = time.perf_counter()
        cache = LintCache(cache_path, self._key())
        cold = lint_paths([SRC], cache=cache)
        cache.save()
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        cache2 = LintCache(cache_path, self._key())
        warm = lint_paths([SRC], cache=cache2)
        t_warm = time.perf_counter() - t0

        assert warm == cold
        assert cache2.misses == 0 and cache2.hits > 20
        # Acceptance: the cached full-tree run is >= 5x faster.
        assert t_cold >= 5 * t_warm, (
            f"cached run not 5x faster: cold={t_cold:.3f}s "
            f"warm={t_warm:.3f}s"
        )

    def test_edited_file_invalidates_only_itself(self, tmp_path):
        work = tmp_path / "tree"
        work.mkdir()
        for n in ("ra008_pos.py", "ra008_neg.py"):
            (work / n).write_text((FIXTURES / n).read_text())
        cache_path = tmp_path / "cache.json"

        cache = LintCache(cache_path, self._key())
        before = lint_paths([work], cache=cache)
        cache.save()

        # Append a fresh violation to one file.
        with open(work / "ra008_neg.py", "a") as fh:
            fh.write(
                "\n\ndef late_use(ws):\n"
                "    buf = ws.buffer(\"krp.x\", (4,), \"float64\")\n"
                "    ws.close()\n"
                "    return buf.sum()\n"
            )
        cache2 = LintCache(cache_path, self._key())
        after = lint_paths([work], cache=cache2)
        assert cache2.hits >= 1  # untouched file served from cache
        assert cache2.misses >= 1  # edited file re-linted
        new = [f for f in after if f not in before]
        assert any(
            f.rule == "RA008" and "ra008_neg" in f.path for f in new
        )

    def test_rules_signature_mismatch_discards(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache = LintCache(cache_path, "sig-a")
        cache.put_file("x.py", "source", [])
        cache.save()
        fresh = LintCache(cache_path, "sig-b")
        assert fresh.get_file("x.py", "source") is None

    def test_corrupt_cache_is_ignored(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        cache = LintCache(cache_path, self._key())
        assert cache.get_file("x.py", "src") is None  # no crash


# --------------------------------------------------------------------- #
# --changed mode
# --------------------------------------------------------------------- #

class TestChangedMode:
    def _git(self, cwd, *args):
        subprocess.run(
            ["git", *args], cwd=cwd, check=True, capture_output=True,
            env={**os.environ,
                 "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                 "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
        )

    def _run_cli(self, cwd, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=cwd, env=env, timeout=300,
        )

    def test_changed_lints_only_the_diff(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        clean = repo / "clean.py"
        clean.write_text("def ok():\n    return 1\n")
        dirty = repo / "dirty.py"
        dirty.write_text("def ok2():\n    return 2\n")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")

        # Introduce an RA008 violation in one file only.
        dirty.write_text(
            "def bad(ws):\n"
            "    buf = ws.buffer(\"krp.x\", (4,), \"float64\")\n"
            "    ws.close()\n"
            "    return buf.sum()\n"
        )
        res = self._run_cli(repo, ".", "--changed")
        assert res.returncode == 1
        assert "dirty.py" in res.stdout
        assert "clean.py" not in res.stdout

    def test_changed_with_no_diff_is_clean_exit(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        (repo / "mod.py").write_text("def ok():\n    return 1\n")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        res = self._run_cli(repo, ".", "--changed")
        assert res.returncode == 0
        assert "no changed files" in res.stdout

    def test_changed_includes_untracked(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        (repo / "mod.py").write_text("def ok():\n    return 1\n")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        (repo / "fresh.py").write_text(
            "def bad(ws):\n"
            "    buf = ws.buffer(\"krp.x\", (4,), \"float64\")\n"
            "    ws.close()\n"
            "    return buf.sum()\n"
        )
        res = self._run_cli(repo, ".", "--changed")
        assert res.returncode == 1
        assert "fresh.py" in res.stdout
