"""Tests for residual-based slice anomaly detection."""

import numpy as np
import pytest

from repro.cpd.anomaly import (
    anomaly_scores,
    detect_anomalies,
    slice_residual_norms,
)
from repro.cpd.cp_als import cp_als
from repro.cpd.kruskal import KruskalTensor
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import from_kruskal, random_factors


def _model_and_tensor(shape=(12, 10, 8), rank=3, seed=0):
    U = random_factors(shape, rank, rng=seed)
    model = KruskalTensor(U)
    return model, model.full()


class TestSliceResidualNorms:
    def test_exact_model_zero_residuals(self):
        model, X = _model_and_tensor()
        for mode in range(3):
            r = slice_residual_norms(X, model, mode, relative=False)
            assert r.shape == (X.shape[mode],)
            np.testing.assert_allclose(r, 0.0, atol=1e-8)

    def test_matches_dense_computation(self, rng):
        model, clean = _model_and_tensor(seed=1)
        noisy = DenseTensor(
            clean.data + 0.1 * rng.standard_normal(clean.size), clean.shape
        )
        for mode in range(3):
            r = slice_residual_norms(noisy, model, mode, relative=False)
            resid = model.full().to_ndarray() - noisy.to_ndarray()
            for i in range(noisy.shape[mode]):
                sl = np.take(resid, i, axis=mode)
                assert r[i] == pytest.approx(np.linalg.norm(sl), rel=1e-10)

    def test_relative_normalization(self, rng):
        model, clean = _model_and_tensor(seed=2)
        noisy = DenseTensor(
            clean.data + 0.05 * rng.standard_normal(clean.size), clean.shape
        )
        rel = slice_residual_norms(noisy, model, 0, relative=True)
        absn = slice_residual_norms(noisy, model, 0, relative=False)
        dat = noisy.to_ndarray()
        for i in range(3):
            dn = np.linalg.norm(np.take(dat, i, axis=0))
            assert rel[i] == pytest.approx(absn[i] / dn, rel=1e-10)

    def test_zero_slice_handling(self):
        # A slice of zeros exactly modeled -> relative residual 0.
        U = [np.ones((4, 1)), np.ones((5, 1)), np.ones((6, 1))]
        U[0][2] = 0.0
        model = KruskalTensor(U)
        X = from_kruskal(U)
        r = slice_residual_norms(X, model, 0)
        assert r[2] == 0.0

    def test_shape_mismatch(self):
        model, X = _model_and_tensor()
        other = DenseTensor(np.zeros((12, 10, 9)))
        with pytest.raises(ValueError, match="shape"):
            slice_residual_norms(other, model, 0)

    def test_not_a_tensor(self, rng):
        model, _ = _model_and_tensor()
        with pytest.raises(TypeError, match="DenseTensor"):
            slice_residual_norms(rng.random((12, 10, 8)), model, 0)


class TestDetection:
    def _corrupted(self, mode=0, bad=(3, 7), seed=4):
        model, clean = _model_and_tensor(shape=(16, 12, 10), seed=seed)
        rng = np.random.default_rng(seed + 1)
        arr = clean.to_ndarray().copy()
        arr += 0.01 * rng.standard_normal(arr.shape)
        for i in bad:
            sl = [slice(None)] * 3
            sl[mode] = i
            arr[tuple(sl)] += 2.0 * rng.standard_normal(
                arr[tuple(sl)].shape
            )
        return model, DenseTensor(arr)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_injected_slices_found(self, mode):
        model, X = self._corrupted(mode=mode)
        found = detect_anomalies(X, model, mode)
        assert set(found) == {3, 7}

    def test_scores_standardized(self):
        model, X = self._corrupted()
        s = anomaly_scores(X, model, 0)
        normal = np.delete(s, [3, 7])
        assert np.abs(np.median(normal)) < 1.0
        assert s[3] > 3.5 and s[7] > 3.5

    def test_no_anomalies_in_clean_data(self, rng):
        model, clean = _model_and_tensor(shape=(16, 12, 10), seed=9)
        noisy = DenseTensor(
            clean.data + 0.01 * rng.standard_normal(clean.size), clean.shape
        )
        assert detect_anomalies(noisy, model, 0).size == 0

    def test_end_to_end_with_fitted_model(self):
        """Fit CP on corrupted data, then detect the corrupted subjects —
        the workflow of Sun, Tao & Faloutsos the paper's intro cites."""
        model, X = self._corrupted(mode=1, bad=(5,), seed=11)
        res = cp_als(X, 3, n_iter_max=80, tol=1e-9, rng=12)
        found = detect_anomalies(X, res.model, 1, threshold=3.0)
        assert 5 in found
