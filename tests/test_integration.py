"""Cross-module integration tests.

These exercise the full stack the way the paper's evaluation does:
all MTTKRP implementations against each other over a sweep of tensor
orders/modes/threads, and the complete fMRI pipeline (generate ->
symmetric linearization -> CP-ALS with both implementations -> recovery).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatch import mttkrp
from repro.cpd.cp_als import cp_als
from repro.cpd.diagnostics import factor_match_score
from repro.data.fmri import synthetic_fmri
from repro.reference.tensor_toolbox import cp_als_ttb, mttkrp_ttb
from repro.tensor.generate import from_kruskal, random_factors, random_tensor
from tests.conftest import mttkrp_oracle


class TestCrossImplementationConsistency:
    """Every implementation agrees with every other on random problems."""

    @given(
        st.lists(st.integers(2, 5), min_size=2, max_size=5),
        st.integers(1, 6),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_methods_match_oracle(self, shape, rank, data):
        shape = tuple(shape)
        n = data.draw(st.integers(0, len(shape) - 1))
        seed = data.draw(st.integers(0, 2**16))
        X = random_tensor(shape, rng=seed)
        U = random_factors(shape, rank, rng=seed + 1)
        expected = mttkrp_oracle(X, U, n)
        for method in ("auto", "onestep", "onestep-seq", "baseline"):
            np.testing.assert_allclose(
                mttkrp(X, U, n, method=method), expected, atol=1e-9
            )
        np.testing.assert_allclose(mttkrp_ttb(X, U, n), expected, atol=1e-9)
        if 0 < n < len(shape) - 1:
            for side in ("left", "right"):
                np.testing.assert_allclose(
                    mttkrp(X, U, n, method="twostep", side=side),
                    expected,
                    atol=1e-9,
                )

    @pytest.mark.parametrize("T", [2, 3, 5])
    def test_threaded_matches_sequential(self, T):
        X = random_tensor((7, 6, 5, 4), rng=0)
        U = random_factors(X.shape, 6, rng=1)
        for n in range(4):
            seq = mttkrp(X, U, n, method="onestep", num_threads=1)
            par = mttkrp(X, U, n, method="onestep", num_threads=T)
            np.testing.assert_allclose(par, seq, atol=1e-10)

    def test_mttkrp_linearity_in_factors(self, rng):
        """MTTKRP is linear in each non-output factor matrix."""
        X = random_tensor((5, 6, 7), rng=3)
        U = random_factors(X.shape, 4, rng=4)
        V = random_factors(X.shape, 4, rng=5)
        mixed = [U[0], U[1] + 2.0 * V[1], U[2]]
        lhs = mttkrp(X, mixed, 0)
        rhs = mttkrp(X, U, 0) + 2.0 * mttkrp(X, [U[0], V[1], U[2]], 0)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)


class TestCpAlsPipelines:
    def test_both_drivers_same_trajectory_4way(self):
        U = random_factors((6, 5, 7, 4), 2, rng=11)
        X = from_kruskal(U)
        init = random_factors(X.shape, 2, rng=12)
        ours = cp_als(X, 2, n_iter_max=8, tol=0.0, init=init)
        ttb = cp_als_ttb(X, 2, n_iter_max=8, tol=0.0, init=init)
        np.testing.assert_allclose(ours.fits, ttb.fits, atol=1e-7)

    def test_method_choice_does_not_change_result(self):
        X = random_tensor((6, 7, 8), rng=13)
        init = random_factors(X.shape, 3, rng=14)
        auto = cp_als(X, 3, n_iter_max=5, tol=0.0, init=init, method="auto")
        one = cp_als(X, 3, n_iter_max=5, tol=0.0, init=init, method="onestep")
        np.testing.assert_allclose(auto.fits, one.fits, atol=1e-8)


class TestFmriEndToEnd:
    """The full application pipeline of Section 5.3.3."""

    def test_4way_and_3way_consistent(self):
        data = synthetic_fmri(14, 6, 12, rank=3, rng=20, snr_db=35.0)
        X4 = data.tensor
        X3 = data.to_3way(check=True)
        assert X3.shape == (14, 6, 66)
        # Norms relate: off-diagonal pairs counted once instead of twice.
        # |X4|^2 = 2*|X3|^2 + |diag part|^2.
        diag = np.einsum("tsii->tsi", X4.to_ndarray())
        lhs = X4.norm() ** 2
        rhs = 2 * X3.norm() ** 2 + float(np.sum(diag**2))
        assert np.isclose(lhs, rhs, rtol=1e-10)

    def test_recovery_beats_noise_floor(self):
        data = synthetic_fmri(16, 6, 12, rank=2, rng=21, snr_db=30.0)
        res = cp_als(data.tensor, 2, n_iter_max=150, tol=1e-11, rng=22)
        fms = factor_match_score(
            res.model, data.ground_truth, weight_penalty=False
        )
        assert fms > 0.85

    def test_3way_pipeline_runs_both_impls(self):
        data = synthetic_fmri(10, 5, 10, rank=2, rng=23, snr_db=30.0)
        X3 = data.to_3way()
        init = random_factors(X3.shape, 2, rng=24)
        ours = cp_als(X3, 2, n_iter_max=6, tol=0.0, init=init)
        ttb = cp_als_ttb(X3, 2, n_iter_max=6, tol=0.0, init=init)
        np.testing.assert_allclose(ours.fits, ttb.fits, atol=1e-7)
