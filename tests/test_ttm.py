"""Tests for tensor-times-matrix."""

import numpy as np
import pytest

from repro.tensor.dense import DenseTensor
from repro.tensor.ttm import ttm


class TestTTM:
    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_matches_einsum(self, rng, n):
        arr = rng.random((3, 4, 5))
        M = rng.random((arr.shape[n], 6))
        letters = "abc"
        out_letters = letters[:n] + "z" + letters[n + 1 :]
        expr = f"abc,{letters[n]}z->{out_letters}"
        out = ttm(DenseTensor(arr), M, n)
        np.testing.assert_allclose(out.to_ndarray(), np.einsum(expr, arr, M))

    def test_shape_changes_only_mode_n(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        out = ttm(X, rng.random((4, 7)), 1)
        assert out.shape == (3, 7, 5)

    def test_identity_matrix_is_noop(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        out = ttm(X, np.eye(4), 1)
        assert out.allclose(X)

    def test_composition_order_independent(self, rng):
        # TTMs in distinct modes commute.
        X = DenseTensor(rng.random((3, 4, 5)))
        A = rng.random((3, 2))
        B = rng.random((5, 6))
        ab = ttm(ttm(X, A, 0), B, 2)
        ba = ttm(ttm(X, B, 2), A, 0)
        assert ab.allclose(ba)

    def test_definition_via_matricization(self, rng):
        # Y = X x_n M  <=>  Y_(n) = M^T X_(n)  (Section 2.1).
        from repro.tensor.matricize import unfold_explicit

        X = DenseTensor(rng.random((3, 4, 5)))
        M = rng.random((4, 6))
        Y = ttm(X, M, 1)
        np.testing.assert_allclose(
            unfold_explicit(Y, 1), M.T @ unfold_explicit(X, 1)
        )

    def test_output_layout_is_natural(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        out = ttm(X, rng.random((4, 2)), 1)
        np.testing.assert_array_equal(
            out.data, out.to_ndarray().ravel(order="F")
        )

    def test_wrong_rows(self, rng):
        with pytest.raises(ValueError, match="rows"):
            ttm(DenseTensor(rng.random((3, 4))), rng.random((5, 2)), 1)

    def test_non_2d_matrix(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            ttm(DenseTensor(rng.random((3, 4))), rng.random(4), 1)

    def test_negative_mode(self, rng):
        arr = rng.random((3, 4))
        out = ttm(DenseTensor(arr), rng.random((4, 2)), -1)
        assert out.shape == (3, 2)

    def test_mixed_dtype_result(self, rng):
        X = DenseTensor(rng.random((3, 4)).astype(np.float32))
        out = ttm(X, rng.random((4, 2)), 1)
        assert out.dtype == np.float64
