"""Tests for the benchmark registry and the repro-bench CLI."""

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.registry import (
    benchmark_names,
    get_spec,
    list_specs,
    measure_case,
    run_benchmark,
)
from repro.bench.schema import load_results, validate_record

EXPECTED = {
    "fig4", "fig5", "fig6", "fig7", "fig8",
    "dimtree", "autotune", "pool-overhead", "ablations", "blocked",
}


class TestRegistry:
    def test_all_benchmarks_registered(self):
        assert EXPECTED <= set(benchmark_names())

    def test_specs_have_titles_and_defaults(self):
        for spec in list_specs():
            assert spec.title
            assert spec.default_scale > 0
            assert spec.default_repeats >= 1

    def test_tag_filter(self):
        figures = {s.name for s in list_specs(tag="figure")}
        assert figures == {"fig4", "fig5", "fig6", "fig7", "fig8"}

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="available.*fig4"):
            get_spec("fig99")

    def test_run_one_smoke(self):
        # the registry smoke test kept inside tier-1: tiny scale, 1 repeat
        records = run_benchmark(
            "ablations", scale=0.01, threads=(1,), repeats=1
        )
        assert records
        for record in records:
            validate_record(record)
            assert record["benchmark"] == "ablations"
            assert record["timing"]["median_s"] > 0
            assert record["host"]["git_rev"]
            assert record["context"]["source"] == "repro-bench"
            assert record["context"]["scale"] == 0.01

    def test_measured_record_has_obs_counters(self):
        records = run_benchmark(
            "ablations", scale=0.01, threads=(1,), repeats=1
        )
        counters = [r["counters"] for r in records if r["counters"]]
        assert counters, "no record captured obs counters"
        assert any(c.get("flops", 0) > 0 or c.get("gemm_calls", 0) > 0
                   for c in counters)

    def test_blocked_suite_reports_finite_bound_ratio(self):
        # Contract for the committed results/blocked.bench.json baseline:
        # every record carries the BRK floor and a finite achieved/bound
        # byte ratio, and the blocked cases never exceed onestep's ratio.
        records = run_benchmark("blocked", scale=0.2, threads=(1,), repeats=1)
        assert records
        ratios = {}
        for record in records:
            validate_record(record)
            counters = record["counters"]
            assert counters["bytes_lower_bound"] > 0
            ratio = counters["bound_ratio"]
            assert ratio == pytest.approx(
                (counters["bytes_read"] + counters["bytes_written"])
                / counters["bytes_lower_bound"]
            )
            assert 0 < ratio < float("inf")
            ratios[record["case"]] = ratio
        for n in (0, 1):
            assert ratios[f"n{n}/blocked/T1"] <= ratios[f"n{n}/onestep/T1"]

    def test_measure_case_structure(self):
        record = measure_case(
            "demo", "trivial", lambda: sum(range(100)),
            params={"n": 100}, repeats=2,
        )
        assert record["benchmark"] == "demo"
        assert record["timing"]["repeats"] == 2
        assert record["params"] == {"n": 100}


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED:
            assert name in out

    def test_list_tag(self, capsys):
        assert cli_main(["list", "--tag", "figure"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "ablations" not in out

    def test_list_unknown_tag(self):
        assert cli_main(["list", "--tag", "nope"]) == 1

    def test_run_writes_results_file(self, tmp_path, capsys):
        out_path = tmp_path / "current.bench.json"
        code = cli_main([
            "run", "ablations", "--scale", "0.01", "--threads", "1",
            "--repeats", "1", "--out", str(out_path),
        ])
        assert code == 0
        records = load_results(str(out_path))
        assert records and all(r["benchmark"] == "ablations" for r in records)
        assert "record(s)" in capsys.readouterr().out

    def test_run_unknown_benchmark(self, capsys):
        assert cli_main(["run", "fig99"]) == 2
        assert "available" in capsys.readouterr().err
