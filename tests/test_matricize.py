"""Tests for explicit matricizations and their agreement with the views."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.dense import DenseTensor
from repro.tensor.matricize import (
    fold_explicit,
    unfold_explicit,
    unfold_front_explicit,
)

small_shapes = st.lists(st.integers(1, 4), min_size=2, max_size=4).map(tuple)


class TestUnfoldExplicit:
    def test_mode0_equals_view(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        np.testing.assert_array_equal(unfold_explicit(X, 0), X.unfold_mode0())

    def test_last_mode_equals_view(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        np.testing.assert_array_equal(unfold_explicit(X, 2), X.unfold_last())

    def test_internal_mode_equals_blocks(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        Xn = unfold_explicit(X, 1)
        blocks = X.mode_blocks_view(1)
        # Column block j of X_(1) is blocks[j] (I_n x I^L_n).
        for j in range(blocks.shape[0]):
            np.testing.assert_array_equal(Xn[:, 3 * j : 3 * (j + 1)], blocks[j])

    def test_column_ordering_is_natural(self, rng):
        arr = rng.random((3, 4, 5))
        Xn = unfold_explicit(DenseTensor(arr), 1)
        # Column index = i0 + i2 * I0 (lower modes fastest, skipping mode 1).
        for i0, i2 in np.ndindex(3, 5):
            np.testing.assert_array_equal(Xn[:, i0 + 3 * i2], arr[i0, :, i2])

    def test_memory_order(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        assert unfold_explicit(X, 1, order="F").flags.f_contiguous
        assert unfold_explicit(X, 1, order="C").flags.c_contiguous

    def test_bad_order(self, rng):
        with pytest.raises(ValueError, match="order"):
            unfold_explicit(DenseTensor(rng.random((3, 4))), 0, order="X")

    @given(small_shapes, st.data())
    @settings(max_examples=30, deadline=None)
    def test_fold_roundtrip(self, shape, data):
        n = data.draw(st.integers(0, len(shape) - 1))
        rng = np.random.default_rng(0)
        X = DenseTensor(rng.random(shape))
        Xn = unfold_explicit(X, n)
        back = fold_explicit(Xn, n, shape)
        assert back.allclose(X)

    def test_fold_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="unfolding"):
            fold_explicit(rng.random((3, 5)), 0, (3, 4))


class TestUnfoldFrontExplicit:
    @given(small_shapes, st.data())
    @settings(max_examples=30, deadline=None)
    def test_matches_view(self, shape, data):
        n = data.draw(st.integers(0, len(shape) - 1))
        rng = np.random.default_rng(1)
        X = DenseTensor(rng.random(shape))
        np.testing.assert_array_equal(
            unfold_front_explicit(X, n), X.unfold_front(n)
        )
