"""Tests for congruence and factor match score."""

import numpy as np
import pytest

from repro.cpd.diagnostics import (
    congruence_matrix,
    factor_match_score,
    fit_score,
)
from repro.cpd.kruskal import KruskalTensor
from repro.tensor.generate import random_factors


def _model(shape=(5, 6, 7), rank=3, seed=0, weights=None):
    return KruskalTensor(random_factors(shape, rank, rng=seed), weights)


class TestCongruence:
    def test_self_congruence_diagonal_one(self):
        m = _model()
        C = congruence_matrix(m, m)
        np.testing.assert_allclose(np.diag(C), 1.0)

    def test_bounded(self):
        C = congruence_matrix(_model(seed=0), _model(seed=9))
        assert np.all(np.abs(C) <= 1.0 + 1e-12)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes"):
            congruence_matrix(_model(), _model(shape=(5, 6, 8)))


class TestFactorMatchScore:
    def test_identical_models(self):
        m = _model()
        assert factor_match_score(m, m) == pytest.approx(1.0)

    def test_permutation_invariance(self):
        m = _model(weights=np.array([3.0, 2.0, 1.0]))
        perm = [2, 0, 1]
        permuted = KruskalTensor(
            [f[:, perm] for f in m.factors], m.weights[perm]
        )
        assert factor_match_score(permuted, m) == pytest.approx(1.0)

    def test_scaling_invariance(self):
        m = _model()
        # Scale mode-0 columns up and mode-1 columns down: same model.
        scaled = KruskalTensor(
            [m.factors[0] * 2.0, m.factors[1] / 2.0, m.factors[2]],
            m.weights,
        )
        assert factor_match_score(scaled, m) == pytest.approx(1.0)

    def test_sign_flips_allowed(self):
        m = _model()
        flipped = KruskalTensor(
            [-m.factors[0], -m.factors[1], m.factors[2]], m.weights
        )
        assert factor_match_score(flipped, m) == pytest.approx(1.0)

    def test_different_models_score_below_one(self):
        score = factor_match_score(_model(seed=0), _model(seed=99))
        assert score < 0.9

    def test_weight_penalty(self):
        m = _model(weights=np.ones(3))
        heavier = KruskalTensor(
            [f.copy() for f in m.factors], 2.0 * np.ones(3)
        )
        with_penalty = factor_match_score(heavier, m, weight_penalty=True)
        without = factor_match_score(heavier, m, weight_penalty=False)
        assert with_penalty == pytest.approx(0.5)
        assert without == pytest.approx(1.0)

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="rank"):
            factor_match_score(_model(rank=2), _model(rank=3))


def test_fit_score_alias():
    m = _model()
    X = m.full()
    assert fit_score(m, X) == pytest.approx(m.fit(X))
