"""Bit-exact parity between the thread and process execution backends.

The process backend must be a drop-in replacement: same partitions, same
reduction-tree pairing, same operand strides on the worker side (the shm
layer preserves Fortran order), hence *bit-identical* floating-point
results.  Every test here compares full MTTKRP / CP-ALS outputs with
``==``, not ``allclose``.
"""

import numpy as np
import pytest

from repro.core.dispatch import mttkrp
from repro.core.krp_parallel import khatri_rao_parallel
from repro.cpd.cp_als import cp_als
from repro.parallel.backend import get_executor, shutdown_all_executors
from repro.parallel.config import num_threads
from repro.tensor.dense import DenseTensor
from repro.tensor.ttv import multi_ttv

SHAPE = (6, 5, 4, 3)
RANK = 3


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(2024)
    tensor = DenseTensor(rng.standard_normal(SHAPE))
    factors = [rng.standard_normal((s, RANK)) for s in SHAPE]
    yield tensor, factors
    shutdown_all_executors()


def run_both(fn):
    """Run ``fn(backend)`` under each backend with T=2; return both results."""
    with num_threads(2):
        thread = fn("thread")
        process = fn("process")
    return thread, process


class TestMTTKRPParity:
    @pytest.mark.parametrize(
        "method", ["onestep", "onestep-seq", "twostep", "blocked", "baseline"]
    )
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_bit_identical(self, problem, method, mode):
        tensor, factors = problem
        if method == "twostep" and mode in (0, 3):
            pytest.skip("twostep degenerates on external modes")
        thread, process = run_both(
            lambda b: mttkrp(tensor, factors, mode, method=method, backend=b)
        )
        assert np.array_equal(thread, process)

    def test_process_result_valid_after_executor_shutdown(self, problem):
        # Arena-backed results handed to callers must survive executor
        # teardown (segments stay mapped until the last reference dies).
        tensor, factors = problem
        with num_threads(2):
            M = mttkrp(tensor, factors, 1, method="twostep", backend="process")
            expected = M.copy()
        shutdown_all_executors()
        assert np.array_equal(M, expected)


class TestKernelParity:
    def test_khatri_rao_parallel(self, problem):
        _, factors = problem
        with num_threads(2):
            thread = khatri_rao_parallel(factors, num_threads=2)
            process = khatri_rao_parallel(
                factors, executor=get_executor(2, backend="process")
            )
        assert np.array_equal(thread, process)

    @pytest.mark.parametrize("leading", [True, False])
    def test_multi_ttv(self, problem, leading):
        rng = np.random.default_rng(77)
        inter = DenseTensor(rng.standard_normal((4, 3, RANK)))
        facs = [np.asfortranarray(rng.standard_normal((3 if leading else 4, RANK)))]
        sequential = multi_ttv(inter, facs, leading=leading)
        with num_threads(2):
            process = multi_ttv(
                inter, facs, leading=leading,
                executor=get_executor(2, backend="process"),
            )
        assert np.array_equal(sequential, process)


class TestCPALSParity:
    def test_bit_identical_iterates(self, problem):
        tensor, _ = problem
        rng_init = np.random.default_rng(5)
        init = [rng_init.standard_normal((s, RANK)) for s in SHAPE]

        def run(backend):
            return cp_als(
                tensor, RANK, n_iter_max=4, init=[f.copy() for f in init],
                num_threads=2, backend=backend, tol=0.0,
            )

        thread, process = run_both(run)
        assert np.array_equal(thread.model.weights, process.model.weights)
        for ft, fp in zip(thread.model.factors, process.model.factors):
            assert np.array_equal(ft, fp)
        assert thread.fits == process.fits
