"""Tests for .npz serialization of tensors and models."""

import numpy as np
import pytest

from repro.cpd.kruskal import KruskalTensor
from repro.cpd.tucker import hosvd
from repro.io import load_model, load_tensor, save_model, save_tensor
from repro.tensor.generate import random_factors, random_tensor


class TestTensorRoundtrip:
    def test_roundtrip(self, tmp_path):
        X = random_tensor((4, 5, 6), rng=0)
        p = tmp_path / "x.npz"
        save_tensor(p, X)
        Y = load_tensor(p)
        assert Y.shape == X.shape
        assert Y.allclose(X)

    def test_rejects_ndarray(self, tmp_path, rng):
        with pytest.raises(TypeError, match="DenseTensor"):
            save_tensor(tmp_path / "x.npz", rng.random((3, 4)))

    def test_load_wrong_kind(self, tmp_path):
        m = KruskalTensor(random_factors((3, 4), 2, rng=0))
        p = tmp_path / "m.npz"
        save_model(p, m)
        with pytest.raises(ValueError, match="not a dense tensor"):
            load_tensor(p)


class TestModelRoundtrip:
    def test_kruskal_roundtrip(self, tmp_path):
        m = KruskalTensor(
            random_factors((4, 5, 6), 3, rng=1), np.array([3.0, 1.0, 2.0])
        )
        p = tmp_path / "k.npz"
        save_model(p, m)
        back = load_model(p)
        assert isinstance(back, KruskalTensor)
        np.testing.assert_array_equal(back.weights, m.weights)
        for a, b in zip(back.factors, m.factors):
            np.testing.assert_array_equal(a, b)

    def test_tucker_roundtrip(self, tmp_path):
        X = random_tensor((5, 6, 7), rng=2)
        T = hosvd(X, (2, 3, 4))
        p = tmp_path / "t.npz"
        save_model(p, T)
        back = load_model(p)
        assert back.ranks == T.ranks
        assert back.full().allclose(T.full(), atol=1e-12)

    def test_many_modes_ordering(self, tmp_path):
        # factor_10 must not sort before factor_2 (numeric key ordering).
        shape = tuple([2] * 12)
        m = KruskalTensor(random_factors(shape, 2, rng=3))
        p = tmp_path / "wide.npz"
        save_model(p, m)
        back = load_model(p)
        assert back.shape == shape
        for a, b in zip(back.factors, m.factors):
            np.testing.assert_array_equal(a, b)

    def test_rejects_other_types(self, tmp_path):
        with pytest.raises(TypeError, match="KruskalTensor or TuckerTensor"):
            save_model(tmp_path / "x.npz", np.zeros(3))

    def test_load_tensor_as_model(self, tmp_path):
        X = random_tensor((3, 4), rng=4)
        p = tmp_path / "x.npz"
        save_tensor(p, X)
        with pytest.raises(ValueError, match="unknown kind"):
            load_model(p)
