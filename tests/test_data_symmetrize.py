"""Tests for the symmetric linearization (4-way -> 3-way fMRI transform)."""

import numpy as np
import pytest

from repro.data.symmetrize import (
    expand_symmetric,
    linearize_symmetric,
    upper_triangle_indices,
)
from repro.tensor.dense import DenseTensor


def _symmetric_tensor(lead, R, seed=0):
    rng = np.random.default_rng(seed)
    arr = rng.random(lead + (R, R))
    arr = 0.5 * (arr + np.swapaxes(arr, -1, -2))
    return DenseTensor(arr)


class TestUpperTriangleIndices:
    def test_count_strict(self):
        assert len(upper_triangle_indices(200)) == 19900  # paper's value

    def test_count_with_diagonal(self):
        assert len(upper_triangle_indices(4, include_diagonal=True)) == 10

    def test_sorted_and_valid(self):
        idx = upper_triangle_indices(5)
        assert np.all(np.diff(idx) > 0)
        i, j = idx % 5, idx // 5
        assert np.all(i < j)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            upper_triangle_indices(0)


class TestLinearizeSymmetric:
    def test_paper_shape_transform(self):
        X = _symmetric_tensor((5, 3), 6)
        Y = linearize_symmetric(X)
        assert Y.shape == (5, 3, 15)  # C(6,2) = 15

    def test_halves_entry_count_approximately(self):
        X = _symmetric_tensor((2,), 20)
        Y = linearize_symmetric(X)
        ratio = X.size / Y.size
        assert 2.0 < ratio < 2.2  # paper: 'a factor of 2'

    def test_values_match_pairs(self):
        X = _symmetric_tensor((3,), 4, seed=1)
        Y = linearize_symmetric(X)
        arr = X.to_ndarray()
        idx = upper_triangle_indices(4)
        pairs = [(int(l % 4), int(l // 4)) for l in idx]
        for p, (i, j) in enumerate(pairs):
            np.testing.assert_array_equal(Y.to_ndarray()[:, p], arr[:, i, j])

    def test_include_diagonal(self):
        X = _symmetric_tensor((2,), 3)
        Y = linearize_symmetric(X, include_diagonal=True)
        assert Y.shape == (2, 6)

    def test_asymmetric_rejected(self, rng):
        arr = rng.random((3, 4, 4))
        with pytest.raises(ValueError, match="not symmetric"):
            linearize_symmetric(DenseTensor(arr))

    def test_check_false_forces(self, rng):
        arr = rng.random((3, 4, 4))
        Y = linearize_symmetric(DenseTensor(arr), check=False)
        assert Y.shape == (3, 6)

    def test_nonsquare_rejected(self, rng):
        with pytest.raises(ValueError, match="square"):
            linearize_symmetric(DenseTensor(rng.random((3, 4, 5))))

    def test_too_few_modes(self):
        with pytest.raises(ValueError, match="two modes"):
            linearize_symmetric(DenseTensor(np.ones(4), (4,)))


class TestExpandSymmetric:
    def test_roundtrip_offdiagonal(self):
        X = _symmetric_tensor((3, 2), 5, seed=2)
        Y = linearize_symmetric(X)
        back = expand_symmetric(Y, 5)
        arr, rec = X.to_ndarray(), back.to_ndarray()
        i, j = np.triu_indices(5, k=1)
        np.testing.assert_allclose(rec[..., i, j], arr[..., i, j])
        np.testing.assert_allclose(rec[..., j, i], arr[..., j, i])

    def test_diagonal_fill(self):
        X = _symmetric_tensor((2,), 4)
        back = expand_symmetric(linearize_symmetric(X), 4, diagonal_value=1.0)
        rec = back.to_ndarray()
        for k in range(4):
            np.testing.assert_array_equal(rec[:, k, k], 1.0)

    def test_roundtrip_with_diagonal(self):
        X = _symmetric_tensor((2,), 4, seed=5)
        Y = linearize_symmetric(X, include_diagonal=True)
        back = expand_symmetric(Y, 4, include_diagonal=True)
        assert back.allclose(X)

    def test_wrong_pair_count(self):
        X = _symmetric_tensor((2,), 4)
        Y = linearize_symmetric(X)
        with pytest.raises(ValueError, match="expected"):
            expand_symmetric(Y, 5)

    def test_result_symmetric(self):
        X = _symmetric_tensor((2,), 4, seed=7)
        rec = expand_symmetric(linearize_symmetric(X), 4).to_ndarray()
        np.testing.assert_allclose(rec, np.swapaxes(rec, -1, -2))
