"""Tests for the flop/byte cost model (repro.core.flops)."""

import pytest

from repro.core.flops import (
    AlgorithmCost,
    PhaseCost,
    baseline_cost,
    gemm_cost,
    gemm_lower_bound_cost,
    krp_cost,
    multi_ttv_cost,
    onestep_cost,
    stream_cost,
    twostep_cost,
)


class TestPhaseCost:
    def test_bytes_sum(self):
        p = PhaseCost("x", 10.0, 100.0, 50.0)
        assert p.bytes == 150.0

    def test_scaled(self):
        p = PhaseCost("x", 10.0, 100.0, 50.0).scaled(2.0)
        assert (p.flops, p.read_bytes, p.write_bytes) == (20.0, 200.0, 100.0)


class TestKrpCost:
    def test_reuse_flops_formula(self):
        # dims (3, 4, 5), C=2: levels 3*4=12 then 12*5=60 rows.
        cost = krp_cost((3, 4, 5), 2, "reuse")
        assert cost.flops == (12 + 60) * 2

    def test_naive_flops_formula(self):
        cost = krp_cost((3, 4, 5), 2, "naive")
        assert cost.flops == 2 * 60 * 2  # (Z-1) * rows * C

    def test_z1_is_free(self):
        assert krp_cost((7,), 3, "reuse").flops == 0
        assert krp_cost((7,), 3, "naive").flops == 0

    def test_reuse_cheaper_than_naive_for_z3(self):
        r = krp_cost((10, 10, 10), 25, "reuse")
        n = krp_cost((10, 10, 10), 25, "naive")
        assert r.flops < n.flops

    def test_z2_equal_flops(self):
        r = krp_cost((10, 10), 25, "reuse")
        n = krp_cost((10, 10), 25, "naive")
        assert r.flops == n.flops

    def test_output_write_traffic(self):
        cost = krp_cost((3, 4), 2, "reuse")
        assert cost.write_bytes >= 12 * 2 * 8

    def test_unknown_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            krp_cost((3, 4), 2, "magic")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            krp_cost((), 2)


class TestGemmStream:
    def test_gemm_flops(self):
        c = gemm_cost(10, 20, 30)
        assert c.flops == 2 * 10 * 20 * 30
        assert c.gemm_shape == (10, 20, 30)

    def test_stream(self):
        c = stream_cost(100)
        assert c.read_bytes == c.write_bytes == 800

    def test_multi_ttv(self):
        c = multi_ttv_cost(10, 20, 5)
        assert c.flops == 2 * 5 * 10 * 20


class TestAlgorithmCosts:
    SHAPE = (8, 9, 10, 11)
    C = 6

    def test_total_gemm_flops_match_across_algorithms(self):
        """The dominant multiply does the same 2*I*C flops in every
        algorithm (the paper: the partial MTTKRP 'involves the same number
        of flops' as the baseline GEMM); the 2-step's multi-TTV is a small
        additional term touching only the intermediate."""
        I = 8 * 9 * 10 * 11
        want = 2 * I * self.C
        one = onestep_cost(self.SHAPE, 1, self.C)
        assert one.phase("gemm").flops == want
        two = twostep_cost(self.SHAPE, 1, self.C)
        assert two.phase("gemm").flops == want
        # 2nd step: 2 * C * I_n * min(I^L, I^R) << 2*I*C.
        assert 0 < two.phase("gemv").flops < 0.05 * want
        base = gemm_lower_bound_cost(self.SHAPE, 1, self.C)
        assert base.phase("gemm").flops == want

    def test_onestep_external_has_full_krp(self):
        c = onestep_cost(self.SHAPE, 0, self.C)
        assert {p.name for p in c.phases} == {"full_krp", "gemm"}

    def test_onestep_internal_has_lr_krp(self):
        c = onestep_cost(self.SHAPE, 2, self.C)
        assert {p.name for p in c.phases} == {"lr_krp", "gemm"}

    def test_onestep_parallel_adds_reduce(self):
        c = onestep_cost(self.SHAPE, 2, self.C, num_threads=4)
        assert "reduce" in {p.name for p in c.phases}
        c1 = onestep_cost(self.SHAPE, 2, self.C, num_threads=1)
        assert "reduce" not in {p.name for p in c1.phases}

    def test_twostep_side_choice_minimizes_gemv(self):
        auto = twostep_cost((3, 4, 50), 1, self.C)  # IR >> IL -> right
        right = twostep_cost((3, 4, 50), 1, self.C, side="right")
        assert auto.phase("gemv").flops == right.phase("gemv").flops
        left = twostep_cost((3, 4, 50), 1, self.C, side="left")
        assert auto.phase("gemv").flops <= left.phase("gemv").flops

    def test_twostep_external_rejected(self):
        with pytest.raises(ValueError, match="internal"):
            twostep_cost(self.SHAPE, 0, self.C)

    def test_twostep_bad_side(self):
        with pytest.raises(ValueError, match="side"):
            twostep_cost(self.SHAPE, 1, self.C, side="sideways")

    def test_baseline_has_reorder_except_mode0(self):
        assert "reorder" not in {
            p.name for p in baseline_cost(self.SHAPE, 0, self.C).phases
        }
        assert "reorder" in {
            p.name for p in baseline_cost(self.SHAPE, 2, self.C).phases
        }

    def test_all_costs_nonnegative(self):
        for c in [
            onestep_cost(self.SHAPE, 0, self.C, 4),
            onestep_cost(self.SHAPE, 2, self.C, 4),
            twostep_cost(self.SHAPE, 1, self.C),
            baseline_cost(self.SHAPE, 1, self.C),
            gemm_lower_bound_cost(self.SHAPE, 1, self.C),
        ]:
            assert c.flops >= 0 and c.bytes >= 0
            for p in c.phases:
                assert p.flops >= 0
                assert p.read_bytes >= 0 and p.write_bytes >= 0

    def test_phase_lookup_missing(self):
        c = AlgorithmCost("x", (PhaseCost("a", 1, 1, 1),))
        with pytest.raises(KeyError):
            c.phase("b")

    def test_totals_are_phase_sums(self):
        c = twostep_cost(self.SHAPE, 1, self.C)
        assert c.flops == sum(p.flops for p in c.phases)
        assert c.bytes == sum(p.bytes for p in c.phases)
