"""Tests for the HOSVD / Tucker substrate."""

import numpy as np
import pytest

from repro.cpd.tucker import TuckerTensor, hosvd
from repro.tensor.generate import from_kruskal, random_factors, random_tensor


class TestHosvd:
    def test_full_rank_exact(self):
        X = random_tensor((5, 6, 7), rng=0)
        T = hosvd(X, (5, 6, 7))
        assert T.full().allclose(X, atol=1e-8)

    def test_lowrank_exact_compression(self):
        U = random_factors((8, 9, 10), 3, rng=1)
        X = from_kruskal(U)
        T = hosvd(X, (3, 3, 3))
        assert T.full().allclose(X, atol=1e-8)
        assert T.compression_ratio() > 4

    def test_factors_orthonormal(self):
        X = random_tensor((6, 7, 8), rng=2)
        T = hosvd(X, (3, 4, 5))
        for f in T.factors:
            np.testing.assert_allclose(
                f.T @ f, np.eye(f.shape[1]), atol=1e-10
            )

    def test_classic_variant(self):
        U = random_factors((7, 8, 9), 2, rng=3)
        X = from_kruskal(U)
        T = hosvd(X, (2, 2, 2), sequentially_truncated=False)
        assert T.full().allclose(X, atol=1e-8)

    def test_truncation_error_monotone_in_rank(self):
        X = random_tensor((8, 8, 8), rng=4)
        errs = []
        for r in (2, 4, 6, 8):
            T = hosvd(X, (r, r, r))
            diff = T.full().data - X.data
            errs.append(float(np.linalg.norm(diff)))
        assert all(b <= a + 1e-12 for a, b in zip(errs, errs[1:]))

    def test_core_shape(self):
        X = random_tensor((6, 7, 8), rng=5)
        T = hosvd(X, (2, 3, 4))
        assert T.ranks == (2, 3, 4)
        assert T.shape == (6, 7, 8)

    def test_rank_validation(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="ranks"):
            hosvd(X, (4,))
        with pytest.raises(ValueError, match="out of range"):
            hosvd(X, (5, 5))
        with pytest.raises(ValueError, match="out of range"):
            hosvd(X, (0, 5))


class TestTuckerTensor:
    def test_full_matches_einsum(self, rng):
        core = random_tensor((2, 3, 4), rng=6)
        factors = [rng.random((5, 2)), rng.random((6, 3)), rng.random((7, 4))]
        T = TuckerTensor(core=core, factors=factors)
        expected = np.einsum(
            "abc,ia,jb,kc->ijk", core.to_ndarray(), *factors
        )
        np.testing.assert_allclose(T.full().to_ndarray(), expected)

    def test_compression_workflow_candelinc(self):
        """Compress with HOSVD, fit CP on the core, expand — recovers the
        same model as CP on the full tensor (standard CANDELINC)."""
        from repro.cpd.cp_als import cp_als
        from repro.cpd.diagnostics import factor_match_score
        from repro.cpd.kruskal import KruskalTensor

        U = random_factors((12, 13, 14), 2, rng=7)
        X = from_kruskal(U)
        T = hosvd(X, (2, 2, 2))
        res = cp_als(T.core, 2, n_iter_max=200, tol=1e-13, rng=8)
        expanded = KruskalTensor(
            [f @ g for f, g in zip(T.factors, res.model.factors)],
            res.model.weights,
        )
        assert factor_match_score(
            expanded, KruskalTensor(U), weight_penalty=False
        ) > 0.99
