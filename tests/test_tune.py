"""Autotuner behaviour: candidates, measurement, caching, degeneracy, CLI.

The persistence layer has its own suite (``test_tune_cache.py``); the
randomized correctness sweep lives in ``test_oracle_differential.py``.
This module pins the tuner's *decision* behaviour: which candidates are
eligible, that ``method="autotune"`` returns exactly what the selected
kernel returns, that a warm cache means zero measurements, that 2-way
tensors skip measurement without warning, and that the CLI round-trips.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro.obs as obs
from repro.core.dispatch import MTTKRP_METHODS, mttkrp
from repro.core.mttkrp_baseline import mttkrp_baseline
from repro.machine.model import host_model_default
from repro.parallel.workspace import Workspace
from repro.tensor.generate import random_factors, random_tensor
from repro.tune import (
    TuningCache,
    autotune,
    candidate_set,
    is_degenerate,
    proxy_operands,
    reset_cache,
)
from repro.tune.tuner import _prior_order, run_candidate

pytestmark = pytest.mark.tune


@pytest.fixture(autouse=True)
def _fresh_in_memory_cache(monkeypatch):
    monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
    reset_cache()
    yield
    reset_cache()


def _problem(shape=(4, 5, 6), rank=3, seed=0):
    return (
        random_tensor(shape, rng=seed),
        random_factors(shape, rank, rng=seed + 1),
    )


class TestCandidates:
    def test_internal_mode_has_all_kernels(self):
        labels = {c.label for c in candidate_set((4, 5, 6), 1)}
        assert labels == {
            "onestep", "twostep:left", "twostep:right", "dimtree",
            "blocked", "baseline",
        }

    def test_external_mode_excludes_twostep(self):
        # The 2-step degenerates to the 1-step on external modes;
        # measuring it separately would only duplicate a candidate.
        for n in (0, 2):
            labels = {c.label for c in candidate_set((4, 5, 6), n)}
            assert labels == {"onestep", "dimtree", "blocked", "baseline"}

    def test_two_way_is_degenerate(self):
        assert is_degenerate((7, 9))
        assert not is_degenerate((7, 9, 2))
        assert [c.label for c in candidate_set((7, 9), 0)] == ["onestep"]

    def test_every_candidate_is_dispatchable(self):
        X, U = _problem()
        for n in range(3):
            ref = mttkrp_baseline(X, U, n)
            for cand in candidate_set(X.shape, n):
                out = run_candidate(cand, X, U, n, num_threads=1)
                np.testing.assert_allclose(out, ref, atol=1e-10)
                assert cand.method in MTTKRP_METHODS


class TestAutotuneDispatch:
    def test_result_bit_identical_to_selected_kernel(self):
        X, U = _problem()
        for n in range(3):
            record = autotune(X, U, n, num_threads=1, repeats=1)
            via_autotune = mttkrp(X, U, n, method="autotune", num_threads=1)
            direct = mttkrp(X, U, n, method=record.label, num_threads=1)
            assert np.array_equal(via_autotune, direct)

    def test_second_invocation_measures_nothing(self):
        """Acceptance: warm key => zero measurements, one cache hit."""
        X, U = _problem(shape=(3, 4, 5, 2), rank=2, seed=3)
        mttkrp(X, U, 2, method="autotune", num_threads=1)  # cold: measures
        tracer = obs.enable()
        try:
            mttkrp(X, U, 2, method="autotune", num_threads=1)
        finally:
            obs.disable()
        assert obs.counter_total(tracer, "tune.measure") == 0
        assert obs.counter_total(tracer, "tune.cache_hit") == 1
        assert obs.counter_total(tracer, "tune.cache_miss") == 0

    def test_cold_invocation_measures_each_candidate(self):
        X, U = _problem()
        tracer = obs.enable()
        try:
            record = autotune(X, U, 1, num_threads=1, repeats=2)
        finally:
            obs.disable()
        n_candidates = len(record.times)
        assert n_candidates >= 2
        # repeats timed runs + 1 warm-up per measured candidate.
        assert obs.counter_total(tracer, "tune.measure") == 3 * n_candidates
        assert obs.counter_total(tracer, "tune.cache_miss") == 1
        assert record.source == "measured"
        assert min(record.times.values()) == record.times[
            min(record.times, key=record.times.get)
        ]

    def test_force_remeasures(self):
        X, U = _problem()
        cache = TuningCache(None)
        autotune(X, U, 1, num_threads=1, cache=cache, repeats=1)
        tracer = obs.enable()
        try:
            autotune(X, U, 1, num_threads=1, cache=cache, repeats=1,
                     force=True)
        finally:
            obs.disable()
        assert obs.counter_total(tracer, "tune.measure") > 0

    def test_distinct_threads_are_distinct_keys(self):
        X, U = _problem()
        cache = TuningCache(None)
        autotune(X, U, 1, num_threads=1, cache=cache, repeats=1)
        autotune(X, U, 1, num_threads=2, cache=cache, repeats=1)
        assert len(cache) == 2


class TestTwoWayDegenerate:
    """Regression: ``method="autotune"`` on a 2-way tensor must skip
    measurement entirely and not warn (every kernel is one GEMM there,
    mirroring the twostep->onestep degenerate-kwargs behaviour)."""

    def test_no_measurement_and_no_warning(self):
        X, U = _problem(shape=(6, 7), rank=4, seed=5)
        tracer = obs.enable()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                for n in range(2):
                    out = mttkrp(X, U, n, method="autotune", num_threads=1)
                    np.testing.assert_allclose(
                        out, mttkrp_baseline(X, U, n), atol=1e-12
                    )
        finally:
            obs.disable()
        assert obs.counter_total(tracer, "tune.measure") == 0
        assert obs.counter_total(tracer, "tune.cache_miss") == 0

    def test_degenerate_record_is_cached(self):
        X, U = _problem(shape=(6, 7), rank=4, seed=5)
        cache = TuningCache(None)
        record = autotune(X, U, 0, num_threads=1, cache=cache)
        assert record.method == "onestep"
        assert record.source == "degenerate"
        assert record.times == {}
        assert len(cache) == 1
        # A second call is a plain cache hit.
        again = autotune(X, U, 0, num_threads=1, cache=cache)
        assert again.method == "onestep"


class TestPriorAndProxy:
    def test_prior_order_keeps_at_least_two(self):
        cands = candidate_set((4, 5, 6), 1)
        kept = _prior_order(
            cands, (4, 5, 6), 3, 1, host_model_default(), 1,
            prune_ratio=1.0 + 1e-12,  # prune as hard as possible
        )
        assert len(kept) >= 2
        assert set(c.label for c in kept) <= set(c.label for c in cands)

    def test_prior_handles_more_threads_than_model_cores(self):
        cands = candidate_set((4, 5, 6), 1)
        model = host_model_default().with_cores(1)
        kept = _prior_order(cands, (4, 5, 6), 3, 8, model, 1, 10.0)
        assert kept  # widened with with_cores instead of raising

    def test_proxy_identity_for_small_tensors(self):
        X, U = _problem()
        PX, PU = proxy_operands(X, U)
        assert PX is X and [id(f) for f in PU] == [id(f) for f in U]

    def test_proxy_shrinks_large_tensors_shape_faithfully(self):
        X, U = _problem(shape=(24, 6, 12), rank=3, seed=2)
        PX, PU = proxy_operands(X, U, entry_limit=200)
        assert PX.size <= 2 * 200  # rounding slack
        assert PX.ndim == X.ndim
        assert PX.dtype == X.dtype
        # Aspect ordering is preserved and every dim stays >= 1.
        assert PX.shape[0] >= PX.shape[2] >= PX.shape[1] >= 1
        assert all(f.shape == (s, 3) for f, s in zip(PU, PX.shape))

    def test_tuner_uses_proxy_result_but_runs_real_operands(self):
        """The decision may come from a proxy; the dispatch result must
        still be computed on the real operands."""
        X, U = _problem(shape=(8, 9, 7), rank=2, seed=4)
        record = autotune(X, U, 1, num_threads=1, repeats=1)
        out = mttkrp(X, U, 1, method="autotune", num_threads=1)
        np.testing.assert_allclose(
            out, mttkrp(X, U, 1, method=record.label, num_threads=1),
            atol=0,
        )


class TestWorkspaceIntegration:
    def test_measurement_scratch_is_releasable(self):
        X, U = _problem()
        ws = Workspace()
        autotune(X, U, 1, num_threads=1, workspace=ws, repeats=1)
        tune_buffers = [
            name for name in ws._buffers if name.startswith("tune.")
        ]
        assert tune_buffers  # the dimtree candidate drew scratch
        dropped = ws.release("tune.")
        assert dropped == len(tune_buffers)
        assert not any(n.startswith("tune.") for n in ws._buffers)


class TestCli:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else "src"
        )
        env.pop("REPRO_TUNE_CACHE", None)
        return subprocess.run(
            [sys.executable, "-m", "repro.tune", *args],
            cwd=Path(__file__).parent.parent,
            env=env, capture_output=True, text=True, timeout=180,
        )

    def test_tune_show_clear_round_trip(self, tmp_path):
        cache = str(tmp_path / "cli.json")
        proc = self._run(
            "5x4x6", "--rank", "3", "--threads", "1", "--repeats", "1",
            "--cache", cache,
        )
        assert proc.returncode == 0, proc.stderr
        assert "mode 0:" in proc.stdout and "mode 2:" in proc.stdout
        entries = json.loads(Path(cache).read_text())["entries"]
        assert len(entries) == 3

        shown = self._run("--show", "--cache", cache)
        assert shown.returncode == 0, shown.stderr
        assert "3 entries" in shown.stdout

        cleared = self._run("--clear", "--cache", cache)
        assert cleared.returncode == 0, cleared.stderr
        assert json.loads(Path(cache).read_text())["entries"] == {}

    def test_bad_shape_is_an_argument_error(self):
        proc = self._run("not-a-shape")
        assert proc.returncode == 2
        assert "cannot parse shape" in proc.stderr
