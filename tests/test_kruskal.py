"""Tests for KruskalTensor."""

import numpy as np
import pytest

from repro.cpd.kruskal import KruskalTensor
from repro.tensor.generate import random_factors, random_tensor


def _model(shape=(4, 5, 6), rank=3, seed=0, weights=None):
    U = random_factors(shape, rank, rng=seed)
    return KruskalTensor(U, weights)


class TestConstruction:
    def test_basic(self):
        m = _model()
        assert m.shape == (4, 5, 6)
        assert m.rank == 3
        assert m.ndim == 3
        np.testing.assert_array_equal(m.weights, np.ones(3))

    def test_explicit_weights(self):
        m = _model(weights=np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(m.weights, [1, 2, 3])

    def test_weight_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="weights"):
            KruskalTensor([rng.random((4, 3))], np.ones(2))

    def test_column_mismatch(self, rng):
        with pytest.raises(ValueError, match="column"):
            KruskalTensor([rng.random((4, 3)), rng.random((5, 2))])

    def test_copy_independent(self):
        m = _model()
        c = m.copy()
        c.factors[0][0, 0] = 99.0
        assert m.factors[0][0, 0] != 99.0

    def test_repr(self):
        assert "4x5x6" in repr(_model())


class TestAlgebra:
    def test_norm_matches_dense(self):
        m = _model(weights=np.array([1.0, -2.0, 0.5]))
        assert np.isclose(m.norm(), m.full().norm())

    def test_inner_matches_dense(self, rng):
        m = _model()
        X = random_tensor(m.shape, rng=1)
        dense_inner = float(np.sum(m.full().data * X.data))
        assert np.isclose(m.inner(X), dense_inner)

    def test_residual_norm_matches_dense(self, rng):
        m = _model()
        X = random_tensor(m.shape, rng=2)
        direct = float(np.linalg.norm(X.data - m.full().data))
        assert np.isclose(m.residual_norm(X), direct, rtol=1e-8)

    def test_fit_of_exact_model_is_one(self):
        m = _model()
        assert np.isclose(m.fit(m.full()), 1.0, atol=1e-10)

    def test_fit_uses_cached_norm(self):
        m = _model()
        X = random_tensor(m.shape, rng=3)
        assert np.isclose(m.fit(X), m.fit(X, tensor_norm=X.norm()))

    def test_fit_zero_tensor_rejected(self):
        from repro.tensor.dense import DenseTensor

        m = _model()
        with pytest.raises(ValueError, match="zero"):
            m.fit(DenseTensor(np.zeros(m.shape)))


class TestNormalize:
    def test_preserves_model(self):
        m = _model(weights=np.array([3.0, 1.0, 2.0]))
        n = m.normalize()
        assert n.full().allclose(m.full(), atol=1e-12)

    def test_unit_columns(self):
        n = _model().normalize()
        for f in n.factors:
            np.testing.assert_allclose(np.linalg.norm(f, axis=0), 1.0)

    def test_sorted_by_weight(self):
        n = _model(weights=np.array([1.0, 5.0, 3.0])).normalize()
        w = np.abs(n.weights)
        assert all(w[:-1] >= w[1:])

    def test_unsorted_option(self):
        m = _model(weights=np.array([1.0, 5.0, 3.0]))
        n = m.normalize(sort=False)
        assert n.full().allclose(m.full(), atol=1e-12)

    def test_zero_column_survives(self, rng):
        U = [rng.random((4, 2)), rng.random((5, 2))]
        U[0][:, 1] = 0.0
        m = KruskalTensor(U)
        n = m.normalize()
        assert np.isfinite(n.weights).all()
        assert np.isfinite(n.factors[0]).all()
