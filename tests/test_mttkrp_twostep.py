"""Tests for 2-step MTTKRP (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.mttkrp_twostep import choose_side, mttkrp_twostep
from repro.tensor.generate import random_factors, random_tensor
from repro.util.timing import PhaseTimer
from tests.conftest import mttkrp_oracle

SHAPES = [(4, 5, 6), (3, 4, 5, 6), (2, 3, 4, 3, 2)]


def _case(shape, rank=5, seed=0):
    X = random_tensor(shape, rng=seed)
    U = random_factors(shape, rank, rng=seed + 1)
    return X, U


class TestChooseSide:
    def test_prefers_larger_side_for_step1(self):
        # I^L_1 = 10 > I^R_1 = 6 -> left-first.
        assert choose_side((10, 3, 6), 1) == "left"
        assert choose_side((6, 3, 10), 1) == "right"

    def test_tie_goes_right(self):
        assert choose_side((5, 3, 5), 1) == "right"


class TestTwoStep:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("side", ["auto", "left", "right"])
    def test_internal_modes_vs_oracle(self, shape, side):
        X, U = _case(shape)
        for n in range(1, len(shape) - 1):
            np.testing.assert_allclose(
                mttkrp_twostep(X, U, n, side=side),
                mttkrp_oracle(X, U, n),
                atol=1e-10,
            )

    def test_left_right_agree(self):
        X, U = _case((4, 5, 6))
        np.testing.assert_allclose(
            mttkrp_twostep(X, U, 1, side="left"),
            mttkrp_twostep(X, U, 1, side="right"),
            atol=1e-10,
        )

    @pytest.mark.parametrize("n", [0, 2])
    def test_external_mode_rejected(self, n):
        X, U = _case((4, 5, 6))
        with pytest.raises(ValueError, match="internal"):
            mttkrp_twostep(X, U, n)

    def test_order2_rejected(self):
        X, U = _case((4, 5))
        with pytest.raises(ValueError, match="internal"):
            mttkrp_twostep(X, U, 1)

    def test_bad_side(self):
        X, U = _case((4, 5, 6))
        with pytest.raises(ValueError, match="side"):
            mttkrp_twostep(X, U, 1, side="up")

    def test_rejects_plain_ndarray(self, rng):
        with pytest.raises(TypeError, match="DenseTensor"):
            mttkrp_twostep(rng.random((3, 4, 5)), [], 1)

    def test_timers_record_phases(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        mttkrp_twostep(X, U, 1, timers=t)
        assert {"lr_krp", "gemm", "gemv"} <= set(t.totals)

    def test_with_threads(self):
        # Parallelism is inside BLAS; result must be unchanged.
        X, U = _case((4, 5, 6))
        np.testing.assert_allclose(
            mttkrp_twostep(X, U, 1, num_threads=4),
            mttkrp_oracle(X, U, 1),
            atol=1e-10,
        )

    def test_skewed_dims_choose_each_side(self):
        # Both auto-branches are exercised and correct.
        for shape in [(12, 3, 2), (2, 3, 12)]:
            X, U = _case(shape)
            np.testing.assert_allclose(
                mttkrp_twostep(X, U, 1, side="auto"),
                mttkrp_oracle(X, U, 1),
                atol=1e-10,
            )

    def test_rank1(self):
        X, U = _case((4, 5, 6), rank=1)
        np.testing.assert_allclose(
            mttkrp_twostep(X, U, 1), mttkrp_oracle(X, U, 1), atol=1e-10
        )

    def test_mode_size_one(self):
        X, U = _case((4, 1, 6))
        np.testing.assert_allclose(
            mttkrp_twostep(X, U, 1), mttkrp_oracle(X, U, 1), atol=1e-10
        )

    def test_5way_all_internal(self):
        X, U = _case((3, 2, 4, 2, 3))
        for n in (1, 2, 3):
            for side in ("left", "right"):
                np.testing.assert_allclose(
                    mttkrp_twostep(X, U, n, side=side),
                    mttkrp_oracle(X, U, n),
                    atol=1e-10,
                )
