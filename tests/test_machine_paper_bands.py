"""The modeled paper machine must land inside every quantitative band the
paper reports.  These tests pin the reproduction's figure *shapes*: who
wins, by what factor, where the crossovers fall (Sections 5.2-5.3)."""

import pytest

from repro.data.workloads import FIG5_WORKLOADS, FMRI_PAPER_4D, fig5_shape, krp_dims
from repro.machine.model import paper_machine
from repro.machine.predict import (
    predict_algorithm_time,
    predict_cpals_iteration,
    predict_krp_time,
    predict_stream_time,
)


@pytest.fixture(scope="module")
def m():
    return paper_machine()


class TestFig4Bands:
    """Section 5.2: KRP performance claims."""

    @pytest.mark.parametrize("C", [25, 50])
    @pytest.mark.parametrize("Z", [2, 3, 4])
    def test_parallel_speedup_6_6_to_8_3(self, m, Z, C):
        dims = krp_dims(Z)
        t1 = predict_krp_time(m, dims, C, 1)
        t12 = predict_krp_time(m, dims, C, 12)
        assert 6.6 <= t1 / t12 <= 8.3

    @pytest.mark.parametrize("Z", [3, 4])
    def test_reuse_over_naive_1_5_to_2_5(self, m, Z):
        dims = krp_dims(Z)
        ratio = predict_krp_time(m, dims, 25, 1, "naive") / predict_krp_time(
            m, dims, 25, 1, "reuse"
        )
        assert 1.4 <= ratio <= 2.5

    def test_z2_naive_equals_reuse(self, m):
        dims = krp_dims(2)
        assert predict_krp_time(m, dims, 25, 1, "naive") == pytest.approx(
            predict_krp_time(m, dims, 25, 1, "reuse")
        )

    def test_krp_at_most_stream(self, m):
        """'Algorithm 1 is essentially a memory-bound operation, achieving
        competitive performance with the STREAM benchmark' — and can beat
        it (C=50), since STREAM both reads and writes the large matrix."""
        for C in (25, 50):
            for Z in (2, 3, 4):
                dims = krp_dims(Z)
                krp = predict_krp_time(m, dims, C, 12)
                stream = predict_stream_time(m, 20_000_000 * C, 12)
                assert krp <= stream * 1.1


class TestFig5Bands:
    """Section 5.3.1: MTTKRP scaling claims on the ~750M-entry tensors."""

    def _times(self, m, N, algo, T, side="auto"):
        shape = fig5_shape(N)
        return [
            predict_algorithm_time(m, shape, n, 25, T, algo, side=side)[0]
            for n in range(N)
        ]

    @pytest.mark.parametrize("N", [3, 4, 5, 6])
    def test_onestep_speedup_8_to_12(self, m, N):
        for n in range(N):
            shape = fig5_shape(N)
            t1 = predict_algorithm_time(m, shape, n, 25, 1, "onestep")[0]
            t12 = predict_algorithm_time(m, shape, n, 25, 12, "onestep")[0]
            assert 8.0 <= t1 / t12 <= 12.0

    @pytest.mark.parametrize("N", [3, 4, 5, 6])
    def test_twostep_speedup_6_to_8(self, m, N):
        shape = fig5_shape(N)
        for n in range(1, N - 1):
            t1 = predict_algorithm_time(m, shape, n, 25, 1, "twostep")[0]
            t12 = predict_algorithm_time(m, shape, n, 25, 12, "twostep")[0]
            assert 6.0 <= t1 / t12 <= 8.0

    @pytest.mark.parametrize("N", [3, 4, 5, 6])
    def test_sequential_onestep_at_most_2x_baseline(self, m, N):
        """'In the worst case, the 1-step algorithm takes about 2x as long
        as the baseline' (we allow 2.2 for 'about')."""
        shape = fig5_shape(N)
        for n in range(N):
            t_one = predict_algorithm_time(m, shape, n, 25, 1, "onestep")[0]
            t_base = predict_algorithm_time(
                m, shape, n, 25, 1, "gemm-baseline"
            )[0]
            assert t_one <= 2.2 * t_base
            # And the baseline (which skips KRP+reorder) is never slower
            # sequentially.
            assert t_base <= t_one * 1.01

    @pytest.mark.parametrize("N", [3, 4, 5, 6])
    def test_sequential_twostep_vs_baseline_band(self, m, N):
        """'The baseline is never slower than the 2-step algorithm by more
        than 25% and never faster by more than 3%.'"""
        shape = fig5_shape(N)
        for n in range(1, N - 1):
            t_two = predict_algorithm_time(m, shape, n, 25, 1, "twostep")[0]
            t_base = predict_algorithm_time(
                m, shape, n, 25, 1, "gemm-baseline"
            )[0]
            assert t_base <= 1.25 * t_two  # baseline at most 25% slower
            assert t_two <= 1.04 * t_base  # baseline at most ~3% faster

    @pytest.mark.parametrize("N", [4, 5, 6])
    def test_parallel_advantage_2_to_4_7_over_baseline(self, m, N):
        """'At 12 threads and for N > 3, the speedup of 1-step and 2-step
        algorithms over the baseline range from 2x to 4.7x.'"""
        shape = fig5_shape(N)
        for n in range(N):
            t_base = predict_algorithm_time(
                m, shape, n, 25, 12, "gemm-baseline"
            )[0]
            algos = ["onestep"] + (
                ["twostep"] if 0 < n < N - 1 else []
            )
            for algo in algos:
                t = predict_algorithm_time(m, shape, n, 25, 12, algo)[0]
                assert 1.9 <= t_base / t <= 4.8, (N, n, algo, t_base / t)

    def test_comparable_to_baseline_at_4_threads(self, m):
        """'Even at 4 threads, all of the proposed implementations are
        comparable or better than the single BLAS call.'"""
        for wl in FIG5_WORKLOADS:
            shape = fig5_shape(wl.N)
            for n in range(wl.N):
                t_base = predict_algorithm_time(
                    m, shape, n, 25, 4, "gemm-baseline"
                )[0]
                algos = ["onestep"] + (
                    ["twostep"] if 0 < n < wl.N - 1 else []
                )
                for algo in algos:
                    t = predict_algorithm_time(m, shape, n, 25, 4, algo)[0]
                    assert t <= t_base * 1.15, (wl.N, n, algo)


class TestFig6Bands:
    """Section 6 conclusion: external-mode KRP cost share for N=6."""

    def test_krp_one_third_to_half_for_n6_external(self, m):
        shape = fig5_shape(6)
        total, phases = predict_algorithm_time(m, shape, 0, 25, 1, "onestep")
        share = phases["full_krp"] / total
        assert 1 / 3 - 0.05 <= share <= 0.5 + 0.05

    def test_twostep_dominated_by_gemm(self, m):
        """'The 2-step algorithm spends almost all of its time in matrix
        multiplication.'"""
        shape = fig5_shape(5)
        total, phases = predict_algorithm_time(m, shape, 2, 25, 1, "twostep")
        assert phases["gemm"] / total > 0.8


class TestFig7Bands:
    """Section 5.3.3: CP-ALS and fMRI claims."""

    def _cpals_time(self, m, shape, C, T, impl):
        algos = (
            (lambda n: "ttb")
            if impl == "ttb"
            else (
                lambda n: "twostep" if 0 < n < len(shape) - 1 else "onestep"
            )
        )
        return sum(
            predict_algorithm_time(m, shape, n, C, T, algos(n))[0]
            for n in range(len(shape))
        )

    @pytest.mark.parametrize(
        "shape", [(225, 59, 19900), FMRI_PAPER_4D], ids=["3D", "4D"]
    )
    def test_sequential_speedup_up_to_2x(self, m, shape):
        """'We observe up to a 2x speedup of our sequential implementation
        over Matlab' — so sequential advantage exists but is modest."""
        for C in (10, 30):
            ours = self._cpals_time(m, shape, C, 1, "repro")
            ttb = self._cpals_time(m, shape, C, 1, "ttb")
            assert 1.0 <= ttb / ours <= 2.6

    @pytest.mark.parametrize(
        "shape,band",
        [((225, 59, 19900), (5.0, 8.5)), (FMRI_PAPER_4D, (5.5, 9.0))],
        ids=["3D", "4D"],
    )
    def test_parallel_speedup_around_7x(self, m, shape, band):
        """Paper: 6.7x (3D) and 7.4x (4D) over Matlab at C=30, 12 threads.
        The model should land in a band around those."""
        ours = self._cpals_time(m, shape, 30, 12, "repro")
        ttb = self._cpals_time(m, shape, 30, 12, "ttb")
        lo, hi = band
        assert lo <= ttb / ours <= hi

    @pytest.mark.parametrize(
        "shape,band",
        [((225, 59, 19900), (1.4, 1.8)), (FMRI_PAPER_4D, (1.8, 2.4))],
        ids=["3D", "4D"],
    )
    def test_dimtree_future_work_prediction(self, m, shape, band):
        """The paper's conclusion: the Phan et al. cross-mode-reuse scheme
        'could [give] a further reduction in per-iteration CP-ALS time of
        around 50% in the 3D case and 2x in the 4D case (and higher for
        larger N)'.  Our implemented extension's modeled sequential
        speedup must land on those predictions."""
        per_mode = predict_cpals_iteration(m, shape, 25, 1, "repro")
        dimtree = predict_cpals_iteration(m, shape, 25, 1, "dimtree")
        lo, hi = band
        assert lo <= per_mode / dimtree <= hi

    def test_dimtree_gain_grows_with_order(self, m):
        """'(and higher for larger N)'."""
        gains = []
        for N in (3, 4, 5, 6):
            shape = fig5_shape(N)
            per_mode = predict_cpals_iteration(m, shape, 25, 1, "repro")
            dimtree = predict_cpals_iteration(m, shape, 25, 1, "dimtree")
            gains.append(per_mode / dimtree)
        assert all(b > a for a, b in zip(gains, gains[1:]))

    @pytest.mark.parametrize(
        "shape,band",
        [((225, 59, 19900), (2.2, 3.6)), (FMRI_PAPER_4D, (2.7, 4.3))],
        ids=["3D", "4D"],
    )
    def test_mode1_mttkrp_vs_baseline(self, m, shape, band):
        """'For mode n = 1 the parallel MTTKRP algorithms are 2.8x and 3.5x
        faster than the baseline for 3D and 4D, respectively.'"""
        t_base = predict_algorithm_time(m, shape, 1, 25, 12, "gemm-baseline")[0]
        t_two = predict_algorithm_time(m, shape, 1, 25, 12, "twostep")[0]
        lo, hi = band
        assert lo <= t_base / t_two <= hi


class TestCrossovers:
    """Where the modeled curves cross — the figure-shape facts a reader
    takes away from Figure 5."""

    @pytest.mark.parametrize("N", [4, 5, 6])
    def test_baseline_overtaken_between_2_and_6_threads(self, m, N):
        """Sequentially the baseline wins (it skips KRP/reorder); by 4-6
        threads the proposed algorithms are ahead and stay ahead."""
        shape = fig5_shape(N)
        n = 1
        crossover = None
        for T in (1, 2, 4, 6, 8, 10, 12):
            t_base = predict_algorithm_time(
                m, shape, n, 25, T, "gemm-baseline"
            )[0]
            t_two = predict_algorithm_time(m, shape, n, 25, T, "twostep")[0]
            if t_two < t_base and crossover is None:
                crossover = T
        assert crossover is not None and 2 <= crossover <= 6

    @pytest.mark.parametrize("N", [3, 4, 5, 6])
    def test_onestep_vs_twostep_comparable_at_12(self, m, N):
        """'The parallel running times of the two approaches are fairly
        comparable at 12 threads' — within ~2x either way, usually closer."""
        shape = fig5_shape(N)
        for n in range(1, N - 1):
            t1 = predict_algorithm_time(m, shape, n, 25, 12, "onestep")[0]
            t2 = predict_algorithm_time(m, shape, n, 25, 12, "twostep")[0]
            ratio = max(t1, t2) / min(t1, t2)
            assert ratio < 2.0

    def test_sequential_ordering_internal_modes(self, m):
        """T=1: twostep <= baseline <= onestep for every internal mode."""
        for N in (3, 4, 5, 6):
            shape = fig5_shape(N)
            for n in range(1, N - 1):
                t_two = predict_algorithm_time(m, shape, n, 25, 1, "twostep")[0]
                t_base = predict_algorithm_time(
                    m, shape, n, 25, 1, "gemm-baseline"
                )[0]
                t_one = predict_algorithm_time(m, shape, n, 25, 1, "onestep")[0]
                assert t_two <= t_base * 1.04 <= t_one * 1.1
