"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_factor_matrices,
    check_mode,
    check_positive_int,
    check_rank_consistent,
    check_same_columns,
)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="must be an integer"):
            check_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="rank"):
            check_positive_int(-1, "rank")


class TestCheckMode:
    def test_in_range(self):
        assert check_mode(2, 4) == 2

    def test_negative_wraps(self):
        assert check_mode(-1, 4) == 3
        assert check_mode(-4, 4) == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            check_mode(4, 4)
        with pytest.raises(ValueError, match="out of range"):
            check_mode(-5, 4)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_mode(1.0, 3)

    def test_accepts_numpy_integer(self):
        assert check_mode(np.int32(1), 3) == 1


class TestCheckSameColumns:
    def test_returns_column_count(self, rng):
        mats = [rng.random((4, 3)), rng.random((5, 3))]
        assert check_same_columns(mats) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_same_columns([])

    def test_mismatch_rejected(self, rng):
        mats = [rng.random((4, 3)), rng.random((5, 4))]
        with pytest.raises(ValueError, match="column count"):
            check_same_columns(mats)

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            check_same_columns([rng.random(4)])


class TestCheckFactorMatrices:
    def test_valid(self, rng):
        shape = (4, 5, 6)
        factors = [rng.random((s, 3)) for s in shape]
        assert check_factor_matrices(factors, shape) == 3

    def test_wrong_count(self, rng):
        with pytest.raises(ValueError, match="expected 3 factor"):
            check_factor_matrices([rng.random((4, 3))], (4, 5, 6))

    def test_wrong_rows(self, rng):
        factors = [rng.random((4, 3)), rng.random((9, 3))]
        with pytest.raises(ValueError, match="rows"):
            check_factor_matrices(factors, (4, 5))


class TestCheckRankConsistent:
    def test_match(self, rng):
        assert check_rank_consistent(3, [rng.random((4, 3))]) == 3

    def test_mismatch(self, rng):
        with pytest.raises(ValueError, match="rank=4"):
            check_rank_consistent(4, [rng.random((4, 3))])
