"""Tracer core: nesting, thread safety, counters, and the disabled path."""

import gc
import sys
import threading

import pytest

import repro.obs as obs
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, get_tracer
from repro.parallel.pool import ThreadPool


@pytest.fixture
def live_tracer():
    tracer = obs.enable()
    yield tracer
    obs.disable()


class TestNesting:
    def test_paths_follow_span_stack(self):
        tr = Tracer()
        with tr.span("cp_als"):
            with tr.span("iter[0]"):
                with tr.span("mode[1]"):
                    pass
                with tr.span("mode[2]"):
                    pass
        paths = [s.path for s in tr.spans()]
        assert paths == [
            "cp_als/iter[0]/mode[1]",
            "cp_als/iter[0]/mode[2]",
            "cp_als/iter[0]",
            "cp_als",
        ]

    def test_stack_unwinds_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        # Both spans completed despite the exception, and the stack is clean.
        assert [s.name for s in tr.spans()] == ["inner", "outer"]
        with tr.span("after"):
            pass
        assert tr.spans()[-1].path == "after"

    def test_record_nests_under_current_span(self):
        tr = Tracer()
        with tr.span("kernel"):
            tr.record("gemm", 1.0, 2.0)
        gemm = next(s for s in tr.spans() if s.name == "gemm")
        assert gemm.path == "kernel/gemm"
        assert gemm.duration == pytest.approx(1.0)

    def test_span_args_and_timing(self):
        tr = Tracer()
        with tr.span("mttkrp", mode=1, shape=[3, 4, 5]) as sp:
            pass
        assert sp.args == {"mode": 1, "shape": [3, 4, 5]}
        assert sp.end is not None and sp.end >= sp.start


class TestCounters:
    def test_counters_accumulate_on_span(self):
        tr = Tracer()
        with tr.span("work") as sp:
            sp.add("flops", 100)
            sp.add("flops", 50)
            tr.add_counter("gemm_calls", 2)
        assert sp.counters["flops"] == 150.0
        assert sp.counters["gemm_calls"] == 2.0

    def test_add_counter_targets_innermost_span(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                tr.add_counter("flops", 7)
        assert inner.counters == {"flops": 7.0}
        assert outer.counters == {}

    def test_orphan_counters_go_to_tracer(self):
        tr = Tracer()
        tr.add_counter("flops", 3)
        tr.add_counter("flops", 4)
        assert tr.counters["flops"] == 7.0


class TestThreadSafety:
    def test_per_thread_stacks_do_not_interleave(self):
        tr = Tracer()
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            with tr.span(f"outer[{i}]"):
                with tr.span("inner"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        inners = [s for s in tr.spans() if s.name == "inner"]
        assert len(inners) == 4
        # Every inner span nests under its *own* thread's outer span.
        assert sorted(s.path for s in inners) == [
            f"outer[{i}]/inner" for i in range(4)
        ]

    def test_pool_region_records_workers_and_imbalance(self, live_tracer):
        with ThreadPool(3) as pool:
            with live_tracer.span("host"):
                pool.parallel_for(
                    lambda t, a, b: None, 30, label="unit.region"
                )
        spans = live_tracer.spans()
        region = next(s for s in spans if s.name == "unit.region")
        assert region.path == "host/unit.region"
        assert region.counters["workers"] == 3.0
        assert 1.0 <= region.counters["imbalance"] <= 3.0 + 1e-9
        workers = [s for s in spans if s.name == "unit.region.worker"]
        assert len(workers) == 3
        # Worker spans land on the worker threads' own lanes.
        assert all(s.tid != region.tid for s in workers)

    def test_pool_region_with_error_still_records(self, live_tracer):
        def explode(t, a, b):
            raise ValueError("kaboom")

        with ThreadPool(2) as pool:
            with pytest.raises(Exception):
                pool.parallel_for(explode, 2, label="err.region")
        names = [s.name for s in live_tracer.spans()]
        assert "err.region" in names


class TestDisabledPath:
    def test_default_tracer_is_null_singleton(self):
        assert obs.disable() is None or True  # ensure known state
        tr = get_tracer()
        assert tr is NULL_TRACER
        assert isinstance(tr, NullTracer)
        assert not tr.enabled

    def test_null_span_is_shared_instance(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NULL_TRACER.record("x", 0.0, 1.0) is NULL_TRACER.span("a")

    def test_null_tracer_noops(self):
        with NULL_TRACER.span("x") as sp:
            sp.add("flops", 1)
        NULL_TRACER.add_counter("flops", 1)
        assert NULL_TRACER.spans() == []

    def test_null_span_no_allocation_growth(self):
        tr = NULL_TRACER
        with tr.span("warmup"):
            pass
        gc.collect()
        base = sys.getallocatedblocks()
        for _ in range(2000):
            with tr.span("hot"):
                pass
        gc.collect()
        # The disabled path keeps no per-call state: allocated block count
        # stays flat (small slack for interpreter noise).
        assert sys.getallocatedblocks() - base < 50


class TestEnableDisable:
    def test_enable_disable_roundtrip(self):
        tracer = obs.enable()
        assert obs.is_enabled()
        assert get_tracer() is tracer
        assert obs.disable() is tracer
        assert not obs.is_enabled()

    def test_enable_installs_given_tracer(self):
        mine = Tracer()
        try:
            assert obs.enable(mine) is mine
            assert get_tracer() is mine
        finally:
            obs.disable()

    def test_clear(self):
        tr = Tracer()
        with tr.span("x"):
            pass
        tr.add_counter("orphan", 1)
        tr.clear()
        assert tr.spans() == []
        assert tr.counters == {}


class TestCaptureRestores:
    """``capture()`` must restore the prior tracer state on *every* exit.

    Regression tests: the benchmark harness wraps arbitrary user kernels
    in ``capture()``; if one of them raises, a leaked capture tracer
    would silently enable tracing for the rest of the process (or
    clobber a user-enabled tracer) and skew every later timing.
    """

    def test_raise_inside_capture_restores_null_state(self):
        assert get_tracer() is NULL_TRACER
        with pytest.raises(RuntimeError, match="boom"):
            with obs.capture() as tr:
                assert get_tracer() is tr
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER
        assert not obs.is_enabled()

    def test_raise_inside_capture_restores_prior_tracer(self):
        mine = Tracer()
        obs.enable(mine)
        try:
            with pytest.raises(ValueError):
                with obs.capture() as tr:
                    assert get_tracer() is tr
                    assert tr is not mine
                    raise ValueError("kernel failed")
            assert get_tracer() is mine
            assert obs.is_enabled()
        finally:
            obs.disable()
        assert get_tracer() is NULL_TRACER
