"""BatchedTensor: stacking, layout round-trips, views and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchedTensor
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import mode_products
from repro.util import prod


def _conventional(rng, B, shape):
    return rng.standard_normal((B,) + tuple(shape))


def test_flat_construction_round_trips():
    rng = np.random.default_rng(0)
    shape = (4, 3, 5)
    flat = rng.standard_normal((6, prod(shape)))
    bt = BatchedTensor(flat, shape)
    assert bt.batch == 6
    assert bt.shape == shape
    assert bt.ndim == 3
    assert bt.size == prod(shape)
    assert bt.nbytes == flat.nbytes
    assert np.shares_memory(bt.flat, bt.to_ndarray())
    np.testing.assert_array_equal(bt.flat, flat)


@pytest.mark.parametrize("shape", [(3, 4), (2, 3, 4), (2, 3, 2, 2)])
def test_conventional_construction_matches_dense_tensor(shape):
    """(B, I_1..I_N) input must give each item DenseTensor's layout."""
    rng = np.random.default_rng(1)
    arr = _conventional(rng, 5, shape)
    bt = BatchedTensor(arr)
    assert bt.shape == tuple(shape)
    for b in range(5):
        ref = DenseTensor(arr[b])
        item = bt.item(b)
        np.testing.assert_array_equal(item.data, ref.data)
        np.testing.assert_array_equal(item.to_ndarray(), arr[b])


def test_item_is_zero_copy():
    rng = np.random.default_rng(2)
    bt = BatchedTensor(rng.standard_normal((3, 12)), (4, 3))
    item = bt.item(1)
    assert np.shares_memory(item.data, bt.flat)
    bt.flat[1, 0] = 123.0
    assert item.data[0] == 123.0


def test_from_tensors_stacks_items():
    rng = np.random.default_rng(3)
    tensors = [
        DenseTensor(rng.standard_normal((3, 2, 4))) for _ in range(4)
    ]
    bt = BatchedTensor.from_tensors(tensors)
    assert bt.batch == 4
    for b, t in enumerate(tensors):
        np.testing.assert_array_equal(bt.item(b).data, t.data)


def test_from_tensors_rejects_mismatches():
    rng = np.random.default_rng(4)
    good = DenseTensor(rng.standard_normal((3, 2)))
    with pytest.raises(ValueError, match="at least one"):
        BatchedTensor.from_tensors([])
    with pytest.raises(TypeError, match="expected DenseTensor"):
        BatchedTensor.from_tensors([good, np.zeros((3, 2))])
    with pytest.raises(ValueError, match="shape"):
        BatchedTensor.from_tensors(
            [good, DenseTensor(rng.standard_normal((2, 3)))]
        )


def test_unfold_views_match_per_item_unfolds():
    rng = np.random.default_rng(5)
    shape = (4, 3, 5)
    arr = _conventional(rng, 3, shape)
    bt = BatchedTensor(arr)
    m0 = bt.unfold_mode0()
    last = bt.unfold_last()
    p1 = mode_products(shape, 1)
    blocks = bt.mode_blocks(1)
    for b in range(3):
        item = bt.item(b)
        np.testing.assert_array_equal(m0[b], item.unfold_mode0())
        np.testing.assert_array_equal(last[b], item.unfold_last())
        np.testing.assert_array_equal(
            blocks[b], item.mode_blocks_view(1)
        )
    assert blocks.shape == (3, p1.right, p1.size, p1.left)


def test_norms_match_item_norms():
    rng = np.random.default_rng(6)
    bt = BatchedTensor(rng.standard_normal((4, 24)), (4, 6))
    norms = bt.norms()
    for b in range(4):
        assert norms[b] == pytest.approx(bt.item(b).norm())


def test_copy_and_astype():
    rng = np.random.default_rng(7)
    bt = BatchedTensor(rng.standard_normal((2, 6)), (2, 3))
    dup = bt.copy()
    assert not np.shares_memory(dup.flat, bt.flat)
    np.testing.assert_array_equal(dup.flat, bt.flat)
    f32 = bt.astype(np.float32)
    assert f32.dtype == np.float32
    assert f32.shape == bt.shape


def test_validation_errors():
    rng = np.random.default_rng(8)
    with pytest.raises(ValueError, match="2-D"):
        BatchedTensor(rng.standard_normal((2, 3, 4)), (3, 4))
    with pytest.raises(ValueError, match="entries"):
        BatchedTensor(rng.standard_normal((2, 11)), (3, 4))
    with pytest.raises(ValueError, match="order >= 2"):
        BatchedTensor(rng.standard_normal((2, 5)), (5,))
    with pytest.raises(ValueError, match="positive"):
        BatchedTensor(rng.standard_normal((2, 0)), (0, 2))
    with pytest.raises(ValueError, match="N >= 2"):
        BatchedTensor(rng.standard_normal((2, 5)))
    with pytest.raises(ValueError, match="at least one tensor"):
        BatchedTensor(rng.standard_normal((0, 6)), (2, 3))
