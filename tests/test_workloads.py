"""Tests for the named workload configurations."""

import pytest

from repro.data.workloads import (
    FIG4_WORKLOADS,
    FIG5_WORKLOADS,
    FIG7_RANKS,
    FMRI_PAPER_4D,
    KRPWorkload,
    MTTKRPWorkload,
    fig5_shape,
    krp_dims,
    scaled_shape,
)
from repro.util import prod


class TestScaledShape:
    def test_identity_scale(self):
        assert scaled_shape((10, 20), 1.0) == (10, 20)

    def test_volumetric(self):
        shape = scaled_shape((100, 100, 100), 0.001)
        assert 500 <= prod(shape) <= 2000

    def test_floor_at_two(self):
        assert min(scaled_shape((3, 3, 3), 1e-9)) == 2

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_shape((3, 3), 0.0)

    def test_preserves_order(self):
        assert len(scaled_shape((9, 9, 9, 9), 0.01)) == 4


class TestFig5Shape:
    def test_paper_values(self):
        assert fig5_shape(3) == (900,) * 3
        assert fig5_shape(4) == (165,) * 4
        assert fig5_shape(5) == (60,) * 5
        assert fig5_shape(6) == (30,) * 6

    def test_roughly_750m_entries(self):
        for N in (3, 4, 5, 6):
            assert 7.0e8 <= prod(fig5_shape(N)) <= 8.0e8

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            fig5_shape(7)


class TestKrpDims:
    def test_product_near_target(self):
        for Z in (2, 3, 4):
            assert 0.8 <= prod(krp_dims(Z)) / 2e7 <= 1.25

    def test_invalid(self):
        with pytest.raises(ValueError):
            krp_dims(0)


class TestWorkloadTables:
    def test_fig4_covers_paper_grid(self):
        combos = {(w.Z, w.C) for w in FIG4_WORKLOADS}
        assert combos == {(z, c) for z in (2, 3, 4) for c in (25, 50)}

    def test_fig5_covers_orders(self):
        assert [w.N for w in FIG5_WORKLOADS] == [3, 4, 5, 6]
        assert all(w.C == 25 for w in FIG5_WORKLOADS)

    def test_fig7_ranks(self):
        assert FIG7_RANKS == (10, 15, 20, 25, 30)

    def test_fmri_paper_dims(self):
        assert FMRI_PAPER_4D == (225, 59, 200, 200)

    def test_workload_helpers(self):
        wl = KRPWorkload(Z=3, C=25)
        assert len(wl.dims(0.01)) == 3
        assert "Z=3" in wl.label
        mwl = MTTKRPWorkload(N=4)
        assert len(mwl.shape(0.01)) == 4
        assert mwl.entries(1.0) == prod(fig5_shape(4))
        assert "N=4" in mwl.label
