"""Unit tests for the reusable workspace arena (repro.parallel.workspace)."""

import numpy as np
import pytest

from repro.parallel.backend import get_executor
from repro.parallel.workspace import Workspace, WorkspaceStats


class TestBuffer:
    def test_same_signature_returns_same_array(self):
        ws = Workspace()
        a = ws.buffer("x", (3, 4))
        b = ws.buffer("x", (3, 4))
        assert b is a
        assert ws.stats.allocations == 1
        assert ws.stats.reuses == 1

    def test_shape_change_reallocates(self):
        ws = Workspace()
        a = ws.buffer("x", (3, 4))
        b = ws.buffer("x", (5, 4))
        assert b is not a
        assert b.shape == (5, 4)
        assert ws.stats.allocations == 2

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        a = ws.buffer("x", (3,), np.float64)
        b = ws.buffer("x", (3,), np.float32)
        assert b is not a
        assert b.dtype == np.float32
        assert ws.stats.allocations == 2

    def test_distinct_names_are_distinct_buffers(self):
        ws = Workspace()
        a = ws.buffer("x", (3,))
        b = ws.buffer("y", (3,))
        assert a is not b
        assert ws.num_buffers == 2

    def test_contents_persist_across_acquires(self):
        # buffer() hands back scratch without clearing it.
        ws = Workspace()
        a = ws.buffer("x", (4,))
        a[:] = 7.0
        b = ws.buffer("x", (4,))
        assert np.all(b == 7.0)

    def test_allocated_bytes_tracked(self):
        ws = Workspace()
        ws.buffer("x", (10,), np.float64)
        assert ws.stats.allocated_bytes == 80


class TestPrivate:
    def test_shape_has_leading_copies_axis(self):
        ws = Workspace()
        p = ws.private("p", 3, (2, 5))
        assert p.shape == (3, 2, 5)

    def test_zeroed_on_every_acquire(self):
        # Reduction correctness depends on this: stale partial sums from
        # idle workers must not survive into the next iteration.
        ws = Workspace()
        p = ws.private("p", 2, (3,))
        p[...] = 42.0
        q = ws.private("p", 2, (3,))
        assert q is p
        assert np.all(q == 0.0)
        assert ws.stats.allocations == 1
        assert ws.stats.reuses == 1


class TestRelease:
    def test_release_drops_only_the_prefix(self):
        ws = Workspace()
        ws.buffer("tune.a", (3,))
        ws.buffer("tune.b", (4,))
        ws.buffer("keep", (5,))
        dropped = ws.release("tune.")
        assert dropped == 2
        assert ws.num_buffers == 1
        # The survivor is still reused; the released names reallocate.
        before = ws.stats.allocations
        ws.buffer("keep", (5,))
        assert ws.stats.allocations == before
        ws.buffer("tune.a", (3,))
        assert ws.stats.allocations == before + 1

    def test_release_without_matches_is_a_noop(self):
        ws = Workspace()
        ws.buffer("x", (2,))
        assert ws.release("nothing.") == 0
        assert ws.num_buffers == 1

    def test_release_keeps_stats(self):
        ws = Workspace()
        ws.buffer("tune.a", (3,))
        allocs = ws.stats.allocations
        ws.release("tune.")
        assert ws.stats.allocations == allocs

    def test_release_after_close_raises(self):
        ws = Workspace()
        ws.close()
        with pytest.raises(RuntimeError, match="closed"):
            ws.release("tune.")


class TestLifetime:
    def test_close_drops_buffers_and_blocks_use(self):
        ws = Workspace()
        ws.buffer("x", (3,))
        ws.close()
        assert ws.num_buffers == 0
        with pytest.raises(RuntimeError, match="closed"):
            ws.buffer("x", (3,))

    def test_close_idempotent(self):
        ws = Workspace()
        ws.close()
        ws.close()

    def test_context_manager(self):
        with Workspace() as ws:
            ws.buffer("x", (2,))
        assert ws.num_buffers == 0

    def test_stats_snapshot_is_independent(self):
        ws = Workspace()
        ws.buffer("x", (2,))
        snap = ws.stats.snapshot()
        ws.buffer("x", (2,))
        assert isinstance(snap, WorkspaceStats)
        assert snap.reuses == 0
        assert ws.stats.reuses == 1


class TestExecutorBacked:
    def test_thread_executor_allocations(self):
        ex = get_executor(2, backend="thread")
        ws = Workspace(ex)
        buf = ws.buffer("x", (4, 3))
        assert ex.owns_shared(buf)
        assert ws.executor is ex

    def test_process_executor_buffers_are_shm_resident(self):
        # The zero-copy contract for the process backend: workspace
        # buffers are arena-allocated, so the marshalling layer ships a
        # handle (not a copy) and workers see parent writes live.
        ex = get_executor(2, backend="process")
        ws = Workspace(ex)
        buf = ws.buffer("node", (8,))
        priv = ws.private("priv", 2, (3,))
        assert ex.owns_shared(buf)
        assert ex.owns_shared(priv)
        ws.close()
