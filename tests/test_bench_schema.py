"""Tests for the normalized benchmark result schema and provenance env."""

import json

import pytest

from repro.bench.env import (
    host_class,
    host_class_of,
    host_fingerprint,
    provenance_header,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    SchemaError,
    load_history,
    load_results,
    new_record,
    timing_from_stats,
    validate_record,
    write_results,
)


class TestHostFingerprint:
    def test_keys_always_present(self):
        fp = host_fingerprint()
        for key in ("cpus", "machine", "platform", "python",
                    "blas_threads", "git_rev", "git_dirty"):
            assert key in fp

    def test_git_rev_in_repo(self):
        fp = host_fingerprint()
        # the test suite runs from a git checkout
        assert isinstance(fp["git_rev"], str) and len(fp["git_rev"]) == 40

    def test_host_class_shape(self):
        assert host_class().endswith("cpu")

    def test_host_class_of_legacy_dict(self):
        # the pre-schema BENCH_*.json host dicts had no "machine" key
        legacy = {
            "cpus": 1,
            "platform": "Linux-6.18.5-x86_64-with-glibc2.36",
            "python": "3.11.7",
        }
        assert host_class_of(legacy) == "x86_64-1cpu"

    def test_host_class_of_unknown(self):
        assert host_class_of({}) == "unknown-?cpu"

    def test_provenance_header(self):
        header = provenance_header(scale=0.01, threads=[1, 2],
                                   extra={"figure": "fig4"})
        assert all(line.startswith("#") for line in header.strip().splitlines())
        assert "git_rev:" in header
        assert "scale: 0.01" in header
        assert "threads: 1,2" in header
        assert "figure: fig4" in header


class TestTimingFromStats:
    def test_stats(self):
        t = timing_from_stats([3.0, 1.0, 2.0])
        assert t["mean_s"] == pytest.approx(2.0)
        assert t["median_s"] == pytest.approx(2.0)
        assert t["min_s"] == 1.0
        assert t["max_s"] == 3.0
        assert t["repeats"] == 3

    def test_even_count_median(self):
        assert timing_from_stats([1.0, 2.0, 3.0, 4.0])["median_s"] == 2.5

    def test_empty_rejected(self):
        with pytest.raises(SchemaError, match="at least one sample"):
            timing_from_stats([])


class TestRecordValidation:
    def test_new_record_is_valid(self):
        r = new_record("fig5", "N3/n1/onestep/T1",
                       timing={"median_s": 0.5, "repeats": 3},
                       params={"threads": 1}, counters={"flops": 100.0})
        assert validate_record(r) is r
        assert r["schema_version"] == SCHEMA_VERSION
        assert r["timing"]["mean_s"] is None  # key set complete

    def test_median_falls_back_to_mean(self):
        r = new_record("b", "c", timing={"mean_s": 0.25})
        assert r["timing"]["median_s"] == 0.25

    def test_missing_key(self):
        r = new_record("b", "c", timing={"median_s": 0.1})
        del r["host"]
        with pytest.raises(SchemaError, match="missing required key 'host'"):
            validate_record(r)

    def test_wrong_version(self):
        r = new_record("b", "c", timing={"median_s": 0.1})
        r["schema_version"] = 99
        with pytest.raises(SchemaError, match="unsupported schema_version"):
            validate_record(r)

    def test_empty_benchmark_name(self):
        r = new_record("b", "c", timing={"median_s": 0.1})
        r["benchmark"] = ""
        with pytest.raises(SchemaError, match="non-empty string"):
            validate_record(r)

    def test_median_required(self):
        with pytest.raises(SchemaError, match="median_s"):
            new_record("b", "c", timing={})

    def test_negative_median_rejected(self):
        with pytest.raises(SchemaError, match=">= 0"):
            new_record("b", "c", timing={"median_s": -1.0})

    def test_non_numeric_counter_rejected(self):
        r = new_record("b", "c", timing={"median_s": 0.1})
        r["counters"]["flops"] = "many"
        with pytest.raises(SchemaError, match="counters.*must be numeric"):
            validate_record(r)

    def test_host_requires_legacy_keys(self):
        with pytest.raises(SchemaError, match="host.*missing key"):
            new_record("b", "c", timing={"median_s": 0.1}, host={"cpus": 1})


class TestResultsFiles:
    def _records(self):
        return [
            new_record("fig5", f"case{i}", timing={"median_s": 0.1 * (i + 1)})
            for i in range(3)
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.bench.json"
        write_results(str(path), self._records(), meta={"note": "test"})
        loaded = load_results(str(path))
        assert len(loaded) == 3
        assert loaded[1]["case"] == "case1"
        assert loaded[1]["timing"]["median_s"] == pytest.approx(0.2)

    def test_writer_validates(self, tmp_path):
        bad = self._records()
        bad[0]["timing"]["median_s"] = None
        with pytest.raises(SchemaError):
            write_results(str(tmp_path / "x.bench.json"), bad)

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "x.bench.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(SchemaError, match="kind"):
            load_results(str(path))

    def test_load_history_skips_bad_files(self, tmp_path):
        write_results(str(tmp_path / "good.bench.json"), self._records())
        (tmp_path / "bad.bench.json").write_text("{not json")
        (tmp_path / "ignored.json").write_text("{}")
        with pytest.warns(UserWarning, match="skipping"):
            records = load_history(str(tmp_path))
        assert len(records) == 3
        assert all(r["context"]["file"] == "good.bench.json" for r in records)

    def test_load_history_strict(self, tmp_path):
        (tmp_path / "bad.bench.json").write_text("{not json")
        with pytest.raises(SchemaError):
            load_history(str(tmp_path), strict=True)

    def test_load_history_missing_dir(self, tmp_path):
        assert load_history(str(tmp_path / "nope")) == []
