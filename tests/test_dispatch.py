"""Tests for the mttkrp dispatching entry point."""

import warnings

import numpy as np
import pytest

from repro.core.dispatch import MTTKRP_METHODS, mttkrp
from repro.tensor.generate import random_factors, random_tensor
from tests.conftest import mttkrp_oracle


def _case(shape=(4, 5, 6), rank=5, seed=0):
    return (
        random_tensor(shape, rng=seed),
        random_factors(shape, rank, rng=seed + 1),
    )


class TestDispatch:
    @pytest.mark.parametrize("method", [m for m in MTTKRP_METHODS])
    def test_every_method_correct_all_modes(self, method):
        X, U = _case()
        for n in range(3):
            np.testing.assert_allclose(
                mttkrp(X, U, n, method=method),
                mttkrp_oracle(X, U, n),
                atol=1e-10,
            )

    def test_auto_uses_paper_policy(self, monkeypatch):
        """auto = 1-step external, 2-step internal (Section 5.3.3)."""
        import repro.core.dispatch as d

        calls = []
        monkeypatch.setattr(
            d,
            "mttkrp_onestep",
            lambda *a, **k: calls.append("onestep") or np.zeros((1, 1)),
        )
        monkeypatch.setattr(
            d,
            "mttkrp_twostep",
            lambda *a, **k: calls.append("twostep") or np.zeros((1, 1)),
        )
        X, U = _case()
        for n in range(3):
            mttkrp(X, U, n, method="auto")
        assert calls == ["onestep", "twostep", "onestep"]

    def test_twostep_falls_back_for_external(self):
        # Explicit twostep on an external mode silently degenerates to
        # 1-step (the algorithms coincide there), rather than raising.
        X, U = _case()
        np.testing.assert_allclose(
            mttkrp(X, U, 0, method="twostep"),
            mttkrp_oracle(X, U, 0),
            atol=1e-10,
        )

    def test_twostep_external_warns_about_dropped_kwargs(self):
        # Regression: the degenerate path used to forward twostep-only
        # kwargs into mttkrp_onestep, raising TypeError — now it drops
        # them with a warning naming exactly what was ignored.
        X, U = _case()
        with pytest.warns(UserWarning, match=r"\['side'\]"):
            M = mttkrp(X, U, 0, method="twostep", side="left")
        np.testing.assert_allclose(M, mttkrp_oracle(X, U, 0), atol=1e-10)

    def test_twostep_external_no_warning_without_kwargs(self):
        X, U = _case()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            mttkrp(X, U, 0, method="twostep")

    def test_backend_argument_accepted(self):
        X, U = _case()
        np.testing.assert_allclose(
            mttkrp(X, U, 1, backend="thread"),
            mttkrp_oracle(X, U, 1),
            atol=1e-10,
        )
        with pytest.raises(ValueError, match="backend"):
            mttkrp(X, U, 1, backend="fpga")

    def test_unknown_method(self):
        X, U = _case()
        with pytest.raises(ValueError, match="unknown method"):
            mttkrp(X, U, 0, method="threestep")

    def test_negative_mode(self):
        X, U = _case()
        np.testing.assert_allclose(
            mttkrp(X, U, -1), mttkrp_oracle(X, U, 2), atol=1e-10
        )

    def test_kwargs_forwarded(self):
        X, U = _case()
        np.testing.assert_allclose(
            mttkrp(X, U, 1, method="twostep", side="left"),
            mttkrp_oracle(X, U, 1),
            atol=1e-10,
        )

    def test_rejects_plain_ndarray(self, rng):
        with pytest.raises(TypeError, match="DenseTensor"):
            mttkrp(rng.random((3, 4, 5)), [], 1)

    def test_all_methods_agree_bitwise_shape(self):
        X, U = _case(rank=3)
        outs = [mttkrp(X, U, 1, method=m) for m in MTTKRP_METHODS]
        for o in outs:
            assert o.shape == (5, 3)
