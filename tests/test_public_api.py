"""Public API surface checks: exports exist, are documented, and the
README/docstring quickstart works."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.tensor",
    "repro.parallel",
    "repro.cpd",
    "repro.reference",
    "repro.machine",
    "repro.data",
    "repro.bench",
    "repro.util",
    "repro.tune",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip()


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        obj = getattr(mod, symbol)
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__


def test_quickstart_from_docstring():
    from repro import mttkrp, random_factors, random_tensor

    X = random_tensor((30, 40, 50), rng=0)
    U = random_factors(X.shape, rank=8, rng=1)
    M = mttkrp(X, U, n=1)
    assert M.shape == (40, 8)


def test_doctests_in_layout_and_partition():
    import doctest

    import repro.parallel.partition as partition
    import repro.tensor.layout as layout

    for mod in (layout, partition):
        result = doctest.testmod(mod)
        assert result.failed == 0, f"doctest failures in {mod.__name__}"
        assert result.attempted > 0
