"""Tests for the prediction layer (repro.machine.predict)."""

import pytest

from repro.core.flops import onestep_cost
from repro.machine.model import paper_machine
from repro.machine.predict import (
    ALGORITHMS,
    predict_algorithm_time,
    predict_krp_time,
    predict_phase_times,
    predict_stream_time,
)


@pytest.fixture(scope="module")
def m():
    return paper_machine()


SHAPE = (40, 50, 60, 70)


class TestPredictAlgorithmTime:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    @pytest.mark.parametrize("T", [1, 4, 12])
    def test_positive_and_phases_sum(self, m, algo, T):
        total, phases = predict_algorithm_time(m, SHAPE, 1, 10, T, algo)
        assert total > 0
        assert total == pytest.approx(sum(phases.values()))
        assert all(v >= 0 for v in phases.values())

    def test_unknown_algorithm(self, m):
        with pytest.raises(ValueError, match="unknown algorithm"):
            predict_algorithm_time(m, SHAPE, 1, 10, 1, "fourstep")

    def test_twostep_external_scored_as_onestep(self, m):
        a = predict_algorithm_time(m, SHAPE, 0, 10, 4, "twostep")
        b = predict_algorithm_time(m, SHAPE, 0, 10, 4, "onestep")
        assert a == b

    def test_more_threads_never_slower_much(self, m):
        for algo in ("onestep", "twostep"):
            t1 = predict_algorithm_time(m, SHAPE, 1, 10, 1, algo)[0]
            t12 = predict_algorithm_time(m, SHAPE, 1, 10, 12, algo)[0]
            assert t12 < t1

    def test_ttb_slower_than_baseline(self, m):
        """The Matlab profile pays reorder + naive KRP on top of the GEMM."""
        t_ttb = predict_algorithm_time(m, SHAPE, 1, 10, 1, "ttb")[0]
        t_gemm = predict_algorithm_time(m, SHAPE, 1, 10, 1, "gemm-baseline")[0]
        assert t_ttb > t_gemm

    def test_ttb_naive_krp_penalty_grows_with_order(self, m):
        # More modes => more KRP operands => bigger naive penalty.
        _, p4 = predict_algorithm_time(m, (20, 20, 20, 20), 1, 10, 1, "ttb")
        _, p4b = predict_algorithm_time(
            m, (20, 20, 20, 20), 1, 10, 1, "baseline"
        )
        assert p4["full_krp"] > p4b["full_krp"]

    def test_side_parameter_respected(self, m):
        skew = (200, 5, 4)
        left = predict_algorithm_time(m, skew, 1, 10, 1, "twostep", side="left")
        right = predict_algorithm_time(
            m, skew, 1, 10, 1, "twostep", side="right"
        )
        # I^L >> I^R: step-2 is cheaper left-first.
        assert left[1]["gemv"] < right[1]["gemv"]


class TestPredictKrp:
    def test_reuse_faster_than_naive_z3(self, m):
        assert predict_krp_time(m, (100, 100, 100), 25, 1, "reuse") < \
            predict_krp_time(m, (100, 100, 100), 25, 1, "naive")

    def test_unknown_schedule(self, m):
        with pytest.raises(ValueError, match="schedule"):
            predict_krp_time(m, (10, 10), 5, 1, "magic")

    def test_stream_scales_with_entries(self, m):
        assert predict_stream_time(m, 2 * 10**7, 1) == pytest.approx(
            2 * predict_stream_time(m, 10**7, 1), rel=0.05
        )


class TestPredictPhaseTimes:
    def test_unknown_phase_class(self, m):
        cost = onestep_cost(SHAPE, 1, 10)
        with pytest.raises(KeyError, match="parallel class"):
            predict_phase_times(m, "nosuchalgo", cost, 1)
