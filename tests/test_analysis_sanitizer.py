"""Runtime write-set sanitizer tests.

Covers the acceptance contract: a deliberately seeded overlapping-write
region raises :class:`RaceError` naming both workers and their intervals;
disjoint partition-respecting regions pass; the real kernels run clean
under the sanitizer; and the instrumentation is inert when disabled.
"""

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    NULL_SANITIZER,
    RaceError,
    SanitizerError,
    WriteLogArray,
    get_sanitizer,
    is_sanitizing,
    sanitize,
)
from repro.core.mttkrp_onestep import mttkrp_onestep
from repro.cpd.cp_als import cp_als
from repro.parallel import num_threads
from repro.parallel.partition import contiguous_blocks
from repro.parallel.pool import ThreadPool
from repro.parallel.shm import ShmArena, ShmHandle, attach
from repro.tensor.dense import DenseTensor


@pytest.fixture
def pool():
    p = ThreadPool(2)
    yield p
    p.shutdown()


class TestSeededRace:
    def test_overlapping_writes_raise_with_both_intervals(self, pool):
        with sanitize() as san:
            arr = san.wrap(np.zeros(16))

            def writer(lo, hi):
                return lambda: arr.__setitem__(slice(lo, hi), 1.0)

            with pytest.raises(RaceError) as excinfo:
                pool.run_tasks([writer(0, 10), writer(6, 16)],
                               label="seeded.race")
            msg = str(excinfo.value)
            assert "worker 0" in msg and "worker 1" in msg
            assert "elements [0, 10)" in msg
            assert "elements [6, 16)" in msg
            assert "seeded.race" in msg

    def test_disjoint_writes_pass(self, pool):
        with sanitize() as san:
            arr = san.wrap(np.zeros(16))
            blocks = contiguous_blocks(16, pool.num_threads)
            tasks = [
                lambda t=t, lo=lo, hi=hi: arr.__setitem__(slice(lo, hi), t)
                for t, (lo, hi) in enumerate(blocks)
            ]
            pool.run_tasks(tasks, label="seeded.disjoint")
            assert arr[0] == 0 and arr[-1] == 1

    def test_race_via_parallel_for_out_kwarg(self, pool):
        # The same overlap through a ufunc out= destination.
        with sanitize() as san:
            arr = san.wrap(np.zeros(8))
            src = np.ones(8)
            with pytest.raises(RaceError):
                # Every worker writes [0, hi) instead of [lo, hi): the
                # first worker's range is inside the second's.
                pool.parallel_for(
                    lambda t, lo, hi: np.multiply(
                        src[0:hi], 2.0, out=arr[0:hi]
                    ),
                    8,
                    label="seeded.out",
                )

    def test_worker_error_not_masked_by_race(self, pool):
        # A worker exception must surface as WorkerError even if the
        # partial writes up to that point happen to overlap.
        from repro.parallel.pool import WorkerError

        with sanitize() as san:
            arr = san.wrap(np.zeros(8))

            def bad():
                arr[0:8] = 1.0
                raise ValueError("boom")

            def also_writes():
                arr[0:8] = 2.0

            with pytest.raises(WorkerError):
                pool.run_tasks([bad, also_writes], label="err.race")


class TestInstrumentation:
    def test_wrap_shares_buffer(self):
        with sanitize() as san:
            base = np.zeros(4)
            arr = san.wrap(base)
            assert isinstance(arr, WriteLogArray)
            arr[0] = 7.0
            assert base[0] == 7.0

    def test_views_stay_instrumented_copies_do_not(self):
        with sanitize() as san:
            arr = san.wrap(np.zeros((4, 4)))
            view = arr[1:3]
            assert isinstance(view, WriteLogArray)
            assert getattr(view, "_san", None) is not None
            cop = arr.copy()
            # A copy is a fresh buffer: tracking it against the original
            # root would log nonsense intervals.
            assert getattr(cop, "_san", None) is None

    def test_arithmetic_demotes_to_plain_ndarray(self):
        with sanitize() as san:
            arr = san.wrap(np.ones((3, 3)))
            assert type(arr + 1) is np.ndarray
            assert type(arr @ np.ones((3, 3))) is np.ndarray

    def test_null_sanitizer_is_identity(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        san = get_sanitizer()
        assert san is NULL_SANITIZER
        assert not is_sanitizing()
        base = np.zeros(4)
        assert san.wrap(base) is base

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert is_sanitizing()
        assert get_sanitizer().enabled


class TestRealKernelsClean:
    SHAPE = (6, 5, 4)

    def _tensor(self):
        rng = np.random.default_rng(7)
        return DenseTensor(rng.random(int(np.prod(self.SHAPE))), self.SHAPE)

    def test_mttkrp_all_modes_under_sanitizer(self):
        # The sanitizer must neither flag the real kernels (their writes
        # are partition-disjoint by construction) nor perturb results:
        # sanitized and unsanitized runs at the same thread count must be
        # bit-identical.
        tensor = self._tensor()
        rng = np.random.default_rng(3)
        factors = [rng.random((s, 3)) for s in self.SHAPE]
        with num_threads(2):
            expected = [
                mttkrp_onestep(tensor, factors, n)
                for n in range(len(self.SHAPE))
            ]
        with sanitize(), num_threads(2):
            for n, exp in enumerate(expected):
                got = mttkrp_onestep(tensor, factors, n)
                np.testing.assert_array_equal(np.asarray(got), np.asarray(exp))

    def test_cp_als_under_sanitizer(self):
        tensor = self._tensor()
        with sanitize(), num_threads(2):
            result = cp_als(tensor, 2, n_iter_max=3, tol=0.0, rng=0)
        assert np.isfinite(result.final_fit)


class TestShmContracts:
    def test_stale_handle_bounds_check(self):
        arena = ShmArena()
        try:
            view, handle = arena.allocate((4,), dtype=np.float64)
            # A handle describing more bytes than the segment holds.
            stale = ShmHandle(handle.name, (1024, 1024), handle.dtype,
                              writable=True)
            with pytest.raises(SanitizerError, match="stale or corrupted"):
                arena.view(stale)
            cache = {}
            with pytest.raises(SanitizerError, match="stale or corrupted"):
                attach(stale, cache)
            for seg, _ in cache.values():
                seg.close()
        finally:
            arena.close()

    def test_foreign_handle_lifetime_check(self):
        arena = ShmArena()
        try:
            foreign = ShmHandle("not_a_segment_of_this_arena", (2,), "<f8")
            with pytest.raises(SanitizerError, match="lifetime"):
                arena.view(foreign)
        finally:
            arena.close()


class TestUfuncAtWrites:
    """``np.add.at`` and in-place ufunc (``+=``) writes are logged.

    Scatter-accumulation is exactly how a twostep reduction can race:
    two workers ``np.add.at``-ing overlapping rows of a shared output is
    a lost update that ordinary ``__setitem__`` logging never sees.
    """

    def test_disjoint_add_at_passes(self, pool):
        with sanitize() as san:
            arr = san.wrap(np.zeros(16))

            def scatter(rows):
                return lambda: np.add.at(arr, rows, 1.0)

            pool.run_tasks(
                [scatter([0, 1, 2]), scatter([8, 9, 10])],
                label="scatter.disjoint",
            )
            assert np.asarray(arr)[[0, 1, 2, 8, 9, 10]].sum() == 6.0

    def test_overlapping_add_at_races(self, pool):
        with sanitize() as san:
            arr = san.wrap(np.zeros(16))

            def scatter(rows):
                return lambda: np.add.at(arr, rows, 1.0)

            with pytest.raises(RaceError) as excinfo:
                pool.run_tasks(
                    [scatter([0, 1, 5]), scatter([5, 6, 7])],
                    label="scatter.overlap",
                )
            assert "scatter.overlap" in str(excinfo.value)

    def test_add_at_result_is_correct_sequentially(self):
        # The dispatch must still *perform* the scatter (repeated
        # indices accumulate), not just log it.
        with sanitize() as san:
            arr = san.wrap(np.zeros(4))
            np.add.at(arr, [0, 0, 2], 1.0)
            np.testing.assert_array_equal(np.asarray(arr), [2.0, 0.0, 1.0, 0.0])

    def test_overlapping_iadd_races(self, pool):
        with sanitize() as san:
            arr = san.wrap(np.zeros(16))

            def bump(lo, hi):
                def task():
                    arr[lo:hi] += 1.0
                return task

            with pytest.raises(RaceError):
                pool.run_tasks([bump(0, 10), bump(6, 16)],
                               label="iadd.overlap")

    def test_fancy_index_add_at_falls_back_to_full_extent(self, pool):
        # Boolean-mask scatter can't be reduced to per-row spans; the
        # conservative fallback covers the whole array, so two such
        # writers conflict even when the masks are disjoint.  That's the
        # documented over-approximation: noisy, never silent.
        with sanitize() as san:
            arr = san.wrap(np.zeros(8))
            mask_a = np.zeros(8, dtype=bool)
            mask_a[:2] = True
            mask_b = np.zeros(8, dtype=bool)
            mask_b[6:] = True
            with pytest.raises(RaceError):
                pool.run_tasks(
                    [lambda: np.add.at(arr, mask_a, 1.0),
                     lambda: np.add.at(arr, mask_b, 1.0)],
                    label="scatter.mask",
                )
