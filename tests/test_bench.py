"""Tests for the benchmark harness (runners, stream kernel, timing)."""

import io

import numpy as np
import pytest

from repro.bench.harness import (
    run_cpals_point,
    run_krp_point,
    run_mttkrp_point,
    run_stream_point,
)
from repro.bench.stream import stream_buffers, stream_scale
from repro.bench.timing import mean_time, median_time, time_once
from repro.tensor.generate import random_factors, random_tensor


class TestTiming:
    def test_time_once_positive(self):
        assert time_once(lambda: sum(range(1000))) > 0

    def test_median_time(self):
        t = median_time(lambda: None, repeats=3, warmup=1)
        assert t >= 0

    def test_mean_time(self):
        assert mean_time(lambda: None, repeats=3, warmup=0) >= 0

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            median_time(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            mean_time(lambda: None, repeats=0)


class TestStreamKernel:
    def test_buffers(self):
        src, dst = stream_buffers(100)
        assert src.shape == dst.shape == (100,)

    def test_scale_correct(self):
        src, dst = stream_buffers(1000)
        stream_scale(src, dst, alpha=3.0, num_threads=1)
        np.testing.assert_array_equal(dst, 3.0)

    def test_scale_threaded(self):
        src, dst = stream_buffers(1000)
        stream_scale(src, dst, alpha=2.0, num_threads=4)
        np.testing.assert_array_equal(dst, 2.0)

    def test_shape_mismatch(self):
        src, _ = stream_buffers(10)
        with pytest.raises(ValueError):
            stream_scale(src, np.zeros(9))

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            stream_buffers(0)


class TestRunners:
    def test_krp_point(self, rng):
        mats = [rng.random((d, 4)) for d in (6, 5)]
        p = run_krp_point(mats, threads=2, repeats=1)
        assert p.seconds > 0
        assert (p.Z, p.C, p.rows, p.threads) == (2, 4, 30, 2)
        assert p.stats["median_s"] > 0
        assert p.stats["repeats"] == 1

    def test_stream_point(self):
        p = run_stream_point(1000, 4, threads=1, repeats=1)
        assert p.schedule == "stream"
        assert p.seconds > 0

    @pytest.mark.parametrize(
        "algo", ["onestep", "twostep", "gemm-baseline", "baseline"]
    )
    def test_mttkrp_point(self, algo):
        X = random_tensor((6, 7, 8), rng=0)
        U = random_factors(X.shape, 4, rng=1)
        p = run_mttkrp_point(X, U, 1, algo, threads=1, repeats=1)
        assert p.seconds > 0
        assert p.algorithm == algo
        assert p.phases  # breakdown attached
        assert p.stats["min_s"] <= p.stats["median_s"] <= p.stats["max_s"]
        # the instrumented repetition captured obs counters
        assert p.counters.get("flops", 0) > 0

    @pytest.mark.parametrize("impl", ["repro", "ttb"])
    def test_cpals_point(self, impl):
        X = random_tensor((6, 7, 8), rng=0)
        p = run_cpals_point(X, 3, impl, threads=1, iterations=2)
        assert p.seconds_per_iteration > 0
        assert p.implementation == impl
        assert p.stats["repeats"] == 2

    def test_mttkrp_point_leaves_tracer_disabled(self):
        import repro.obs as obs

        X = random_tensor((5, 6, 7), rng=0)
        U = random_factors(X.shape, 3, rng=1)
        run_mttkrp_point(X, U, 0, "onestep", threads=1, repeats=1)
        assert obs.get_tracer() is obs.NULL_TRACER

    def test_cpals_unknown_impl(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="implementation"):
            run_cpals_point(X, 2, "matlab", threads=1)


class TestFigureDrivers:
    """Each figure driver runs end-to-end at a tiny scale."""

    def _run(self, fn, **kwargs):
        out = io.StringIO()
        fn(out=out, **kwargs)
        text = out.getvalue()
        assert "modeled" in text or "measured" in text
        return text

    def test_fig4(self):
        from repro.bench.figures import fig4

        text = self._run(
            fig4, scale=2e-5, threads=(1,), repeats=1, modeled=False
        )
        assert "reuse(s)" in text

    def test_fig4_modeled_only(self):
        from repro.bench.figures import fig4

        text = self._run(fig4, measured=False)
        assert "paper machine" in text

    def test_fig5(self):
        from repro.bench.figures import fig5

        text = self._run(
            fig5, scale=2e-6, threads=(1,), repeats=1, modeled=False
        )
        assert "onestep" in text and "twostep" in text

    def test_fig6(self):
        from repro.bench.figures import fig6

        text = self._run(
            fig6, scale=2e-6, threads=(1,), repeats=1, modeled=False
        )
        assert "gemm" in text

    def test_fig8_modeled(self):
        from repro.bench.figures import fig8

        text = self._run(fig8, measured=False)
        assert "fMRI" in text

    def test_cli_modeled_fig5(self, capsys):
        from repro.bench.figures import main

        assert main(["fig5", "--no-measured"]) == 0
        assert "paper machine" in capsys.readouterr().out
