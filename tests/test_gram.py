"""Tests for Gram matrices and the Hadamard-of-Grams cache."""

import numpy as np
import pytest

from repro.cpd.gram import GramCache, gram_matrices, hadamard_of_grams


class TestGramMatrices:
    def test_values(self, rng):
        U = [rng.random((4, 3)), rng.random((5, 3))]
        grams = gram_matrices(U)
        for f, g in zip(U, grams):
            np.testing.assert_allclose(g, f.T @ f)

    def test_symmetric_psd(self, rng):
        (g,) = gram_matrices([rng.random((6, 3))])
        np.testing.assert_allclose(g, g.T)
        assert np.linalg.eigvalsh(g).min() >= -1e-12


class TestHadamardOfGrams:
    def test_skip_excludes_mode(self, rng):
        U = [rng.random((4, 2)), rng.random((5, 2)), rng.random((6, 2))]
        grams = gram_matrices(U)
        H = hadamard_of_grams(grams, skip=1)
        np.testing.assert_allclose(H, grams[0] * grams[2])

    def test_no_skip(self, rng):
        U = [rng.random((4, 2)), rng.random((5, 2))]
        grams = gram_matrices(U)
        np.testing.assert_allclose(
            hadamard_of_grams(grams), grams[0] * grams[1]
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hadamard_of_grams([])

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="shape"):
            hadamard_of_grams([np.eye(2), np.eye(3)])


class TestGramCache:
    def test_matches_direct_computation(self, rng):
        U = [rng.random((4, 3)), rng.random((5, 3)), rng.random((6, 3))]
        cache = GramCache(U)
        for n in range(3):
            np.testing.assert_allclose(
                cache.hadamard(skip=n),
                hadamard_of_grams(gram_matrices(U), skip=n),
            )

    def test_update_refreshes_single_mode(self, rng):
        U = [rng.random((4, 3)), rng.random((5, 3))]
        cache = GramCache(U)
        U[0][...] = rng.random((4, 3))
        # Stale until update is called.
        stale = cache.hadamard(skip=1)
        cache.update(0)
        fresh = cache.hadamard(skip=1)
        np.testing.assert_allclose(fresh, U[0].T @ U[0])
        assert not np.allclose(stale, fresh)

    def test_update_out_of_range(self, rng):
        cache = GramCache([rng.random((4, 2))])
        with pytest.raises(ValueError):
            cache.update(1)

    def test_hadamard_all(self, rng):
        U = [rng.random((4, 2)), rng.random((5, 2))]
        cache = GramCache(U)
        np.testing.assert_allclose(
            cache.hadamard_all(), (U[0].T @ U[0]) * (U[1].T @ U[1])
        )
