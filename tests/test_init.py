"""Tests for CP-ALS initialization strategies."""

import numpy as np
import pytest

from repro.cpd.init import initialize_factors
from repro.tensor.generate import from_kruskal, random_factors, random_tensor


class TestRandomInit:
    def test_shapes(self):
        X = random_tensor((4, 5, 6), rng=0)
        factors = initialize_factors(X, 3, "random", rng=1)
        assert [f.shape for f in factors] == [(4, 3), (5, 3), (6, 3)]

    def test_deterministic_with_seed(self):
        X = random_tensor((4, 5), rng=0)
        a = initialize_factors(X, 2, "random", rng=5)
        b = initialize_factors(X, 2, "random", rng=5)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa, fb)


class TestHosvdInit:
    def test_columns_orthonormal(self):
        X = random_tensor((6, 7, 8), rng=0)
        factors = initialize_factors(X, 3, "hosvd", rng=1)
        for f in factors:
            np.testing.assert_allclose(f.T @ f, np.eye(3), atol=1e-8)

    def test_captures_dominant_subspace(self):
        # For an exact rank-2 tensor the HOSVD basis spans the factor space.
        U = random_factors((8, 9, 10), 2, rng=3)
        X = from_kruskal(U)
        factors = initialize_factors(X, 2, "hosvd")
        for f, u in zip(factors, U):
            # Projection of u onto span(f) should reproduce u.
            proj = f @ (f.T @ u)
            np.testing.assert_allclose(proj, u, atol=1e-8)

    def test_rank_exceeding_mode_size_falls_back(self):
        X = random_tensor((2, 9, 10), rng=0)
        factors = initialize_factors(X, 5, "hosvd", rng=1)
        assert factors[0].shape == (2, 5)
        assert np.isfinite(factors[0]).all()


class TestErrors:
    def test_bad_rank(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="rank"):
            initialize_factors(X, 0)

    def test_unknown_method(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="init method"):
            initialize_factors(X, 2, "magic")
