"""Smoke tests for the example scripts.

Every example must at least byte-compile; the fast ones are executed
end-to-end in a subprocess so a public-API regression that only an example
exercises still fails the suite.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "fmri_analysis.py",
        "algorithm_comparison.py",
        "scaling_study.py",
        "rank_selection.py",
        "nonnegative_networks.py",
        "missing_data.py",
        "anomaly_detection.py",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def _run(path: pathlib.Path, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES_DIR.parent,
    )
    assert proc.returncode == 0, (
        f"{path.name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    return proc.stdout


def test_quickstart_runs():
    out = _run(EXAMPLES_DIR / "quickstart.py")
    assert "quickstart complete" in out
    assert "agrees with auto: True" in out


def test_algorithm_comparison_runs():
    out = _run(EXAMPLES_DIR / "algorithm_comparison.py")
    assert "reorder" in out and "gemm-lb" in out
