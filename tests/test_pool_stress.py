"""Stress and regression tests for the pool/executor machinery.

Covers the failure modes fixed in this round: concurrent region launches
on a shared pool, worker-exception chaining, pool ownership semantics,
plus schedule/reduction edge cases.
"""

import threading

import numpy as np
import pytest

from repro.parallel.pool import (
    ThreadPool,
    WorkerError,
    get_pool,
    shutdown_all_pools,
)
from repro.parallel.reduction import allocate_private, parallel_reduce


class TestConcurrentRegionLaunch:
    def test_two_callers_share_one_pool(self):
        # Regression: two threads launching regions on the same pool used
        # to interleave _tasks/_pending updates and lose work.
        pool = ThreadPool(4)
        try:
            rounds = 25
            hits = np.zeros((2, rounds, 200), dtype=np.int64)
            errors = []

            def caller(slot):
                try:
                    for r in range(rounds):
                        def work(t, start, stop, _s=slot, _r=r):
                            hits[_s, _r, start:stop] += 1

                        pool.parallel_for(work, 200)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=caller, args=(s,)) for s in (0, 1)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert not errors
            np.testing.assert_array_equal(hits, 1)
        finally:
            pool.shutdown()

    def test_nested_region_from_worker_raises(self):
        pool = ThreadPool(2)
        try:
            def outer(t, start, stop):
                pool.parallel_for(lambda *a: None, 4)

            with pytest.raises(WorkerError) as excinfo:
                pool.parallel_for(outer, 2)
            assert isinstance(excinfo.value.original, RuntimeError)
            assert "nested" in str(excinfo.value.original)
            # The pool must stay usable after the failed nested attempt.
            out = np.zeros(8)

            def fill(t, start, stop):
                out[start:stop] = 1.0

            pool.parallel_for(fill, 8)
            np.testing.assert_array_equal(out, 1.0)
        finally:
            pool.shutdown()


class TestExceptionHandling:
    def test_original_is_cause(self):
        # Regression: the worker's exception must be chained as __cause__
        # so its frames appear in the traceback.
        pool = ThreadPool(2)
        try:
            def boom(t, start, stop):
                raise KeyError("lost")

            with pytest.raises(WorkerError) as excinfo:
                pool.parallel_for(boom, 2)
            err = excinfo.value
            assert isinstance(err.original, KeyError)
            assert err.__cause__ is err.original
        finally:
            pool.shutdown()

    def test_multi_worker_failure_keeps_all_errors(self):
        pool = ThreadPool(3)
        try:
            def boom(t, start, stop):
                raise ValueError(f"worker {t}")

            with pytest.raises(WorkerError) as excinfo:
                pool.parallel_for(boom, 3)
            err = excinfo.value
            # Lowest worker index first, the rest attached in order.
            assert err.worker == 0
            assert [o.worker for o in err.others] == [1, 2]
            assert all(isinstance(o.original, ValueError) for o in err.others)
        finally:
            pool.shutdown()

    def test_exception_under_dynamic_schedule(self):
        pool = ThreadPool(2)
        try:
            hits = np.zeros(64, dtype=np.int64)
            lock = threading.Lock()

            def sometimes_boom(t, start, stop):
                with lock:
                    hits[start:stop] += 1
                if start >= 32:
                    raise RuntimeError(f"chunk {start}")

            with pytest.raises(WorkerError):
                pool.parallel_for(sometimes_boom, 64, schedule="dynamic", chunk=4)
            # No chunk ran twice, and the pool still works afterwards.
            assert hits.max() <= 1
            out = np.zeros(16)

            def fill(t, start, stop):
                out[start:stop] = 1.0

            pool.parallel_for(fill, 16, schedule="dynamic", chunk=3)
            np.testing.assert_array_equal(out, 1.0)
        finally:
            pool.shutdown()

    def test_every_dynamic_worker_failing(self):
        pool = ThreadPool(4)
        try:
            def boom(t, start, stop):
                raise OSError("io")

            with pytest.raises(WorkerError):
                pool.parallel_for(boom, 16, schedule="dynamic", chunk=1)
        finally:
            pool.shutdown()


class TestReduceOddTeamSizes:
    @pytest.mark.parametrize("T", [2, 3, 5, 6, 7])
    def test_tree_sum_matches_numpy(self, T, rng):
        buffers = allocate_private(T, (4, 3))
        buffers[...] = rng.standard_normal(buffers.shape)
        expected = buffers.sum(axis=0)
        pool = ThreadPool(T)
        try:
            result = parallel_reduce(buffers, pool)
        finally:
            pool.shutdown()
        np.testing.assert_allclose(result, expected, rtol=1e-14)

    def test_tree_is_deterministic_across_pools(self, rng):
        buffers = rng.standard_normal((5, 8))
        a = parallel_reduce(buffers.copy(), ThreadPool(2))
        b = parallel_reduce(buffers.copy(), ThreadPool(3))
        # Same pairing structure regardless of team size: bit-identical.
        assert np.array_equal(a, b)


class TestPoolOwnership:
    def teardown_method(self):
        shutdown_all_pools()

    def test_with_block_keeps_shared_pool_alive(self):
        # Regression: `with get_pool(4):` used to shut the cached pool
        # down, breaking every later caller.
        with get_pool(4) as pool:
            pass
        out = np.zeros(8)

        def fill(t, start, stop):
            out[start:stop] = 1.0

        pool.parallel_for(fill, 8)
        np.testing.assert_array_equal(out, 1.0)
        assert get_pool(4) is pool

    def test_private_pool_with_block_shuts_down(self):
        with ThreadPool(2) as pool:
            pass
        with pytest.raises(RuntimeError):
            pool.parallel_for(lambda *a: None, 2)

    def test_single_thread_shutdown_evicts_from_cache(self):
        # Regression: a shut-down T=1 pool stayed cached and every later
        # get_pool(1) returned the dead object.
        pool = get_pool(1)
        pool.shutdown()
        fresh = get_pool(1)
        assert fresh is not pool
        out = np.zeros(4)

        def fill(t, start, stop):
            out[start:stop] = 2.0

        fresh.parallel_for(fill, 4)
        np.testing.assert_array_equal(out, 2.0)

    def test_multi_thread_shutdown_evicts_from_cache(self):
        pool = get_pool(3)
        pool.shutdown()
        fresh = get_pool(3)
        assert fresh is not pool
