"""Tests for the baseline MTTKRP implementations."""

import numpy as np
import pytest

from repro.core.mttkrp_baseline import mttkrp_baseline, mttkrp_gemm_lower_bound
from repro.tensor.generate import random_factors, random_tensor
from repro.util.timing import PhaseTimer
from tests.conftest import mttkrp_oracle


def _case(shape, rank=5, seed=0):
    X = random_tensor(shape, rng=seed)
    U = random_factors(shape, rank, rng=seed + 1)
    return X, U


class TestBaseline:
    @pytest.mark.parametrize("shape", [(4, 5, 6), (3, 4, 5, 6), (7, 2)])
    def test_all_modes_vs_oracle(self, shape):
        X, U = _case(shape)
        for n in range(len(shape)):
            np.testing.assert_allclose(
                mttkrp_baseline(X, U, n), mttkrp_oracle(X, U, n), atol=1e-10
            )

    def test_phases_recorded(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        mttkrp_baseline(X, U, 1, timers=t)
        assert {"reorder", "full_krp", "gemm"} <= set(t.totals)

    def test_rejects_plain_ndarray(self, rng):
        with pytest.raises(TypeError, match="DenseTensor"):
            mttkrp_baseline(rng.random((3, 4)), [], 0)

    def test_negative_mode(self):
        X, U = _case((4, 5, 6))
        np.testing.assert_allclose(
            mttkrp_baseline(X, U, -2), mttkrp_oracle(X, U, 1), atol=1e-10
        )


class TestGemmLowerBound:
    def test_output_shape(self):
        X, U = _case((4, 5, 6))
        out = mttkrp_gemm_lower_bound(X, U, 1)
        assert out.shape == (5, 5)

    def test_scratch_reuse(self):
        X, U = _case((4, 5, 6))
        scratch = {}
        mttkrp_gemm_lower_bound(X, U, 1, _scratch=scratch)
        a_first = scratch["A"]
        mttkrp_gemm_lower_bound(X, U, 1, _scratch=scratch)
        assert scratch["A"] is a_first  # cached, not reallocated

    def test_scratch_invalidated_on_new_shape(self):
        X, U = _case((4, 5, 6))
        scratch = {}
        mttkrp_gemm_lower_bound(X, U, 1, _scratch=scratch)
        mttkrp_gemm_lower_bound(X, U, 0, _scratch=scratch)
        assert scratch["key"] == (4, 30, 5)

    def test_timer_records_gemm_only(self):
        X, U = _case((4, 5, 6))
        t = PhaseTimer()
        mttkrp_gemm_lower_bound(X, U, 1, timers=t)
        assert set(t.totals) == {"gemm"}

    def test_operand_shapes_match_mttkrp_dimensions(self):
        X, U = _case((4, 5, 6), rank=7)
        scratch = {}
        mttkrp_gemm_lower_bound(X, U, 2, _scratch=scratch)
        assert scratch["A"].shape == (6, 20)
        assert scratch["B"].shape == (20, 7)
        # Column-major, as the paper's benchmark specifies.
        assert scratch["B"].flags.f_contiguous
