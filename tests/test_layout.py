"""Tests for repro.tensor.layout: products, linearization, MultiIndex."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.layout import (
    MultiIndex,
    delinearize,
    delinearize_many,
    left_product,
    linearize,
    linearize_many,
    mode_products,
    right_product,
)
from repro.util import prod

shapes = st.lists(st.integers(1, 5), min_size=1, max_size=5).map(tuple)


class TestProducts:
    def test_left_product(self):
        assert left_product((2, 3, 4), 0) == 1
        assert left_product((2, 3, 4), 1) == 2
        assert left_product((2, 3, 4), 2) == 6

    def test_right_product(self):
        assert right_product((2, 3, 4), 0) == 12
        assert right_product((2, 3, 4), 1) == 4
        assert right_product((2, 3, 4), 2) == 1

    def test_mode_products_consistency(self):
        p = mode_products((2, 3, 4), 1)
        assert p.left * p.size * p.right == p.total == 24
        assert p.other == p.left * p.right == 8

    def test_out_of_range_mode(self):
        with pytest.raises(ValueError):
            left_product((2, 3), 2)
        with pytest.raises(ValueError):
            right_product((2, 3), -1)

    def test_nonpositive_dim_rejected(self):
        with pytest.raises(ValueError):
            mode_products((2, 0, 4), 1)

    @given(shapes, st.data())
    def test_left_right_identity(self, shape, data):
        n = data.draw(st.integers(0, len(shape) - 1))
        p = mode_products(shape, n)
        assert p.left == prod(shape[:n])
        assert p.right == prod(shape[n + 1 :])


class TestLinearize:
    def test_known_value(self):
        # l = i0 + i1*I0 + i2*I0*I1
        assert linearize((1, 2, 3), (2, 3, 4)) == 1 + 2 * 2 + 3 * 6

    def test_matches_numpy_fortran_ravel(self, rng):
        shape = (3, 4, 5)
        arr = rng.random(shape)
        flat = arr.ravel(order="F")
        for idx in np.ndindex(shape):
            assert flat[linearize(idx, shape)] == arr[idx]

    def test_roundtrip_exhaustive(self):
        shape = (2, 3, 4)
        for offset in range(24):
            assert linearize(delinearize(offset, shape), shape) == offset

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            linearize((2, 0), (2, 3))
        with pytest.raises(ValueError):
            delinearize(24, (2, 3, 4))

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            linearize((0, 0), (2, 3, 4))

    @given(shapes, st.data())
    def test_roundtrip_property(self, shape, data):
        offset = data.draw(st.integers(0, prod(shape) - 1))
        assert linearize(delinearize(offset, shape), shape) == offset

    def test_vectorized_matches_scalar(self, rng):
        shape = (3, 4, 5)
        offsets = np.arange(prod(shape))
        indices = delinearize_many(offsets, shape)
        for o in offsets:
            assert tuple(indices[o]) == delinearize(o, shape)
        back = linearize_many(indices, shape)
        np.testing.assert_array_equal(back, offsets)

    def test_vectorized_shape_errors(self):
        with pytest.raises(ValueError):
            linearize_many(np.zeros((3, 2), dtype=np.int64), (2, 3, 4))


class TestMultiIndex:
    def test_start_zero(self):
        m = MultiIndex((2, 3))
        assert tuple(m.digits) == (0, 0)
        assert m.position == 0

    def test_last_digit_fastest(self):
        m = MultiIndex((2, 3))
        seq = [tuple(m.digits)]
        for _ in range(5):
            m.increment()
            seq.append(tuple(m.digits))
        assert seq == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_increment_returns_changed_digit(self):
        m = MultiIndex((2, 3))
        assert m.increment() == 1  # (0,0)->(0,1)
        assert m.increment() == 1  # (0,1)->(0,2)
        assert m.increment() == 0  # (0,2)->(1,0): digit 0 changed

    def test_wraps_to_zero(self):
        m = MultiIndex((2, 2), start=3)
        changed = m.increment()
        assert tuple(m.digits) == (0, 0)
        assert changed == 0

    def test_start_mid_stream(self):
        # Starting position must match the sequential enumeration.
        radices = (3, 4, 2)
        ref = MultiIndex(radices)
        for start in range(prod(radices)):
            m = MultiIndex(radices, start=start)
            assert tuple(m.digits) == tuple(ref.digits), start
            assert m.position == start
            ref.increment()

    def test_total(self):
        assert MultiIndex((3, 4)).total == 12

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MultiIndex(())
        with pytest.raises(ValueError):
            MultiIndex((0, 2))
        with pytest.raises(ValueError):
            MultiIndex((2, 2), start=4)

    @given(
        st.lists(st.integers(1, 4), min_size=1, max_size=4),
        st.integers(0, 100),
    )
    @settings(max_examples=50)
    def test_matches_unravel_index(self, radices, seed):
        total = prod(radices)
        start = seed % total
        m = MultiIndex(radices, start=start)
        for step in range(min(total, 10)):
            expected = np.unravel_index((start + step) % total, radices)
            assert tuple(m.digits) == tuple(int(e) for e in expected)
            m.increment()
