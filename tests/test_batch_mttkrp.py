"""Batched MTTKRP: correctness vs the per-item kernels and arena reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import (
    BATCHED_MTTKRP_METHODS,
    BatchedTensor,
    choose_batch_chunk,
    mttkrp_batched,
    mttkrp_batched_loop,
    mttkrp_batched_stacked,
)
from repro.core.dispatch import mttkrp
from repro.parallel.backend import get_executor
from repro.parallel.workspace import Workspace
from repro.util import prod


def _operands(rng, B, shape, C, dtype=np.float64):
    flat = rng.standard_normal((B, prod(shape))).astype(dtype)
    factors = [
        rng.standard_normal((B, s, C)).astype(dtype) for s in shape
    ]
    return BatchedTensor(flat, shape), factors


@pytest.mark.parametrize("shape", [(5, 4), (4, 3, 5), (3, 2, 4, 2)])
@pytest.mark.parametrize("B", [1, 3])
def test_matches_per_item_dispatch(shape, B):
    """Every batch item must equal its own single-tensor MTTKRP."""
    rng = np.random.default_rng(10)
    bt, factors = _operands(rng, B, shape, C=3)
    for n in range(len(shape)):
        out = mttkrp_batched(bt, factors, n, method="batched")
        for b in range(B):
            ref = mttkrp(
                bt.item(b), [f[b] for f in factors], n, method="onestep"
            )
            np.testing.assert_allclose(out[b], ref, rtol=0, atol=1e-12)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_stacked_and_loop_lanes_bitwise_identical(dtype):
    rng = np.random.default_rng(11)
    bt, factors = _operands(rng, 7, (4, 3, 5), C=4, dtype=dtype)
    for n in range(3):
        a = mttkrp_batched(bt, factors, n, method="batched")
        b = mttkrp_batched(bt, factors, n, method="batched-loop")
        assert a.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_bitwise_invariant_to_workers_and_backend(backend):
    """Workers own disjoint batch blocks: any split is bit-identical."""
    rng = np.random.default_rng(12)
    bt, factors = _operands(rng, 9, (4, 3, 2), C=3)
    for n in range(3):
        ref = mttkrp_batched(bt, factors, n, num_threads=1)
        for T in (2, 4):
            out = mttkrp_batched(
                bt, factors, n, num_threads=T, backend=backend
            )
            np.testing.assert_array_equal(out, ref)


def test_negative_mode_and_auto_alias():
    rng = np.random.default_rng(13)
    bt, factors = _operands(rng, 2, (3, 4, 2), C=2)
    np.testing.assert_array_equal(
        mttkrp_batched(bt, factors, -1, method="auto"),
        mttkrp_batched(bt, factors, 2, method="batched"),
    )


def test_workspace_zero_steady_state_allocations():
    """After one warm pass per (mode, lane), repeat calls allocate nothing."""
    rng = np.random.default_rng(14)
    bt, factors = _operands(rng, 6, (5, 4, 3), C=3)
    with Workspace() as ws:
        for n in range(3):
            mttkrp_batched(bt, factors, n, method="batched", workspace=ws)
            mttkrp_batched(bt, factors, n, method="batched-loop", workspace=ws)
        warm = ws.stats.allocations
        for _ in range(3):
            for n in range(3):
                mttkrp_batched(
                    bt, factors, n, method="batched", workspace=ws
                )
                mttkrp_batched(
                    bt, factors, n, method="batched-loop", workspace=ws
                )
        assert ws.stats.allocations == warm


def test_workspace_zero_steady_state_allocations_parallel():
    rng = np.random.default_rng(15)
    bt, factors = _operands(rng, 8, (4, 3, 2), C=3)
    ex = get_executor(2)
    with Workspace(ex) as ws:
        for n in range(3):
            mttkrp_batched(
                bt, factors, n, method="batched", num_threads=2, workspace=ws
            )
        warm = ws.stats.allocations
        for _ in range(3):
            for n in range(3):
                mttkrp_batched(
                    bt, factors, n, method="batched", num_threads=2,
                    workspace=ws,
                )
        assert ws.stats.allocations == warm


def test_workspace_output_is_arena_owned():
    """With a matching workspace the result aliases the arena buffer."""
    rng = np.random.default_rng(16)
    bt, factors = _operands(rng, 3, (4, 3), C=2)
    with Workspace() as ws:
        first = mttkrp_batched(bt, factors, 0, workspace=ws)
        second = mttkrp_batched(bt, factors, 0, workspace=ws)
        assert np.shares_memory(first, second)
    detached = mttkrp_batched(bt, factors, 0)
    assert detached.flags["OWNDATA"] or detached.base is None


def test_choose_batch_chunk_bounds():
    plan = choose_batch_chunk((6, 5, 4), 1, 8, batch=100)
    assert 1 <= plan.chunk <= 100
    assert plan.num_chunks == -(-100 // plan.chunk)
    tiny = choose_batch_chunk((6, 5, 4), 1, 8, batch=100, cache_bytes=64)
    assert tiny.chunk == 1
    assert tiny.num_chunks == 100
    single = choose_batch_chunk((6, 5), 0, 4, batch=1)
    assert single.chunk == 1 and single.num_chunks == 1
    with pytest.raises(ValueError, match="batch"):
        choose_batch_chunk((6, 5), 0, 4, batch=0)


def test_chunked_execution_is_bitwise_stable():
    """Forcing chunk=1 via a tiny cache must not change a single bit."""
    rng = np.random.default_rng(17)
    bt, factors = _operands(rng, 5, (4, 3, 5), C=3)
    for n in range(3):
        whole = mttkrp_batched_stacked(bt, factors, n)
        chunked = mttkrp_batched_stacked(bt, factors, n, cache_bytes=64)
        np.testing.assert_array_equal(whole, chunked)


def test_mixed_dtype_promotes():
    rng = np.random.default_rng(18)
    bt, factors = _operands(rng, 2, (3, 4), C=2, dtype=np.float32)
    factors[0] = factors[0].astype(np.float64)
    out = mttkrp_batched(bt, factors, 0)
    assert out.dtype == np.float64


def test_validation_errors():
    rng = np.random.default_rng(19)
    bt, factors = _operands(rng, 3, (4, 3, 2), C=2)
    with pytest.raises(TypeError, match="BatchedTensor"):
        mttkrp_batched(bt.flat, factors, 0)
    with pytest.raises(ValueError, match="unknown method"):
        mttkrp_batched(bt, factors, 0, method="onestep")
    with pytest.raises(ValueError, match="3 stacked factors"):
        mttkrp_batched(bt, factors[:2], 0)
    with pytest.raises(ValueError, match="must be 3-D"):
        mttkrp_batched(bt, [factors[0][0]] + factors[1:], 0)
    with pytest.raises(ValueError, match="batch"):
        mttkrp_batched(bt, [factors[0][:2]] + factors[1:], 0)
    with pytest.raises(ValueError, match="rows"):
        bad = [np.swapaxes(factors[0], 1, 2)] + factors[1:]
        mttkrp_batched(bt, bad, 0)
    with pytest.raises(ValueError, match="columns"):
        wide = list(factors)
        wide[1] = np.concatenate([wide[1], wide[1]], axis=2)
        mttkrp_batched(bt, wide, 0)


def test_methods_tuple_is_the_dispatch_contract():
    assert BATCHED_MTTKRP_METHODS == (
        "auto", "autotune", "batched", "batched-loop"
    )
    rng = np.random.default_rng(20)
    bt, factors = _operands(rng, 2, (3, 4), C=2)
    ref = mttkrp_batched_loop(bt, factors, 0)
    for method in ("auto", "batched", "batched-loop"):
        np.testing.assert_array_equal(
            mttkrp_batched(bt, factors, 0, method=method), ref
        )


def test_timers_record_phases():
    from repro.util.timing import PhaseTimer

    rng = np.random.default_rng(21)
    bt, factors = _operands(rng, 3, (4, 3, 2), C=2)
    timers = PhaseTimer()
    mttkrp_batched(bt, factors, 1, method="batched", timers=timers)
    assert timers.totals.get("full_krp", -1.0) >= 0.0
    assert timers.totals.get("gemm", -1.0) >= 0.0
