"""Tests for private buffers and the parallel tree reduction."""

import numpy as np
import pytest

from repro.parallel.pool import ThreadPool
from repro.parallel.reduction import allocate_private, parallel_reduce


class TestAllocatePrivate:
    def test_shape_and_zeroed(self):
        buf = allocate_private(4, (3, 5))
        assert buf.shape == (4, 3, 5)
        assert not buf.any()

    def test_dtype(self):
        assert allocate_private(2, (3,), dtype=np.float32).dtype == np.float32

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            allocate_private(0, (3,))


class TestParallelReduce:
    @pytest.mark.parametrize("T", [1, 2, 3, 4, 5, 8])
    def test_matches_numpy_sum(self, T, rng):
        buffers = rng.random((T, 6, 4))
        expected = buffers.sum(axis=0)
        with ThreadPool(min(T, 4)) as pool:
            out = parallel_reduce(buffers.copy(), pool)
        np.testing.assert_allclose(out, expected)

    def test_sequential_fallback(self, rng):
        buffers = rng.random((5, 3))
        expected = buffers.sum(axis=0)
        out = parallel_reduce(buffers.copy(), None)
        np.testing.assert_allclose(out, expected)

    def test_result_is_buffer_zero(self, rng):
        buffers = rng.random((3, 2))
        out = parallel_reduce(buffers, None)
        assert out is buffers[0] or np.shares_memory(out, buffers[0])

    def test_single_buffer_untouched(self, rng):
        buffers = rng.random((1, 4))
        original = buffers.copy()
        out = parallel_reduce(buffers, None)
        np.testing.assert_array_equal(out, original[0])

    def test_empty_leading_axis_rejected(self):
        with pytest.raises(ValueError):
            parallel_reduce(np.zeros((0, 3)))

    def test_non_power_of_two(self, rng):
        buffers = rng.random((7, 3, 3))
        expected = buffers.sum(axis=0)
        with ThreadPool(3) as pool:
            out = parallel_reduce(buffers, pool)
        np.testing.assert_allclose(out, expected)

    def test_1d_payload(self, rng):
        buffers = rng.random((4, 10))
        expected = buffers.sum(axis=0)
        with ThreadPool(2) as pool:
            np.testing.assert_allclose(
                parallel_reduce(buffers, pool), expected
            )
