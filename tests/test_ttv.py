"""Tests for tensor-times-vector, TTV chains, and multi-TTV."""

import numpy as np
import pytest

from repro.tensor.dense import DenseTensor
from repro.tensor.ttv import multi_ttv, ttv, ttv_chain


class TestTTV:
    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_matches_einsum_3way(self, rng, n):
        arr = rng.random((3, 4, 5))
        v = rng.random(arr.shape[n])
        expr = {0: "abc,a->bc", 1: "abc,b->ac", 2: "abc,c->ab"}[n]
        out = ttv(DenseTensor(arr), v, n)
        np.testing.assert_allclose(out.to_ndarray(), np.einsum(expr, arr, v))

    @pytest.mark.parametrize("n", [0, 1, 2, 3])
    def test_matches_einsum_4way(self, rng, n):
        arr = rng.random((2, 3, 4, 5))
        v = rng.random(arr.shape[n])
        letters = "abcd"
        expr = f"abcd,{letters[n]}->" + letters.replace(letters[n], "")
        out = ttv(DenseTensor(arr), v, n)
        np.testing.assert_allclose(out.to_ndarray(), np.einsum(expr, arr, v))

    def test_negative_mode(self, rng):
        arr = rng.random((3, 4))
        v = rng.random(4)
        out = ttv(DenseTensor(arr), v, -1)
        np.testing.assert_allclose(out.to_ndarray(), arr @ v)

    def test_order1_returns_scalar(self, rng):
        arr = rng.random(5)
        X = DenseTensor(arr, (5,))
        assert np.isclose(ttv(X, arr, 0), arr @ arr)

    def test_wrong_length(self, rng):
        with pytest.raises(ValueError, match="length"):
            ttv(DenseTensor(rng.random((3, 4))), rng.random(3), 1)

    def test_non_1d_vector(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            ttv(DenseTensor(rng.random((3, 4))), rng.random((4, 1)), 1)

    def test_output_layout_is_natural(self, rng):
        # The contracted tensor's flat buffer must itself be in natural
        # layout (Fortran ravel of its dense form), so further view-based
        # operations compose — the property the 2-step algorithm relies on.
        arr = rng.random((3, 4, 5))
        out = ttv(DenseTensor(arr), rng.random(4), 1)
        np.testing.assert_array_equal(
            out.data, out.to_ndarray().ravel(order="F")
        )


class TestTTVChain:
    def test_two_contractions(self, rng):
        arr = rng.random((3, 4, 5))
        u, w = rng.random(3), rng.random(5)
        out = ttv_chain(DenseTensor(arr), [u, w], [0, 2])
        np.testing.assert_allclose(
            out.to_ndarray(), np.einsum("abc,a,c->b", arr, u, w)
        )

    def test_order_of_modes_irrelevant(self, rng):
        arr = rng.random((3, 4, 5))
        u, w = rng.random(3), rng.random(5)
        a = ttv_chain(DenseTensor(arr), [u, w], [0, 2])
        b = ttv_chain(DenseTensor(arr), [w, u], [2, 0])
        np.testing.assert_allclose(a.to_ndarray(), b.to_ndarray())

    def test_full_contraction_returns_scalar(self, rng):
        arr = rng.random((3, 4))
        u, v = rng.random(3), rng.random(4)
        out = ttv_chain(DenseTensor(arr), [u, v], [0, 1])
        assert np.isclose(out, u @ arr @ v)

    def test_duplicate_modes_rejected(self, rng):
        X = DenseTensor(rng.random((3, 4)))
        with pytest.raises(ValueError, match="distinct"):
            ttv_chain(X, [rng.random(3), rng.random(3)], [0, 0])

    def test_length_mismatch(self, rng):
        X = DenseTensor(rng.random((3, 4)))
        with pytest.raises(ValueError, match="equal length"):
            ttv_chain(X, [rng.random(3)], [0, 1])


class TestMultiTTV:
    def test_trailing_contraction(self, rng):
        """leading=True: contract trailing modes (Figure 3d)."""
        In, J, K, C = 3, 4, 5, 6
        inter = rng.random((In, J, K, C))
        Uj = rng.random((J, C))
        Uk = rng.random((K, C))
        L = DenseTensor(inter)
        out = multi_ttv(L, [Uj, Uk], leading=True)
        expected = np.einsum("ijkc,jc,kc->ic", inter, Uj, Uk)
        np.testing.assert_allclose(out, expected)

    def test_leading_contraction(self, rng):
        """leading=False: contract leading modes (Figure 3b)."""
        I0, I1, In, C = 3, 4, 5, 6
        inter = rng.random((I0, I1, In, C))
        U0 = rng.random((I0, C))
        U1 = rng.random((I1, C))
        R = DenseTensor(inter)
        out = multi_ttv(R, [U0, U1], leading=False)
        expected = np.einsum("abic,ac,bc->ic", inter, U0, U1)
        np.testing.assert_allclose(out, expected)

    def test_factor_shape_mismatch(self, rng):
        inter = DenseTensor(rng.random((3, 4, 5)))
        with pytest.raises(ValueError, match="do not match"):
            multi_ttv(inter, [rng.random((9, 5))], leading=True)

    def test_factor_column_mismatch(self, rng):
        inter = DenseTensor(rng.random((3, 4, 5)))
        with pytest.raises(ValueError, match="columns"):
            multi_ttv(inter, [rng.random((4, 3))], leading=True)
