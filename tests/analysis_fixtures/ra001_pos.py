"""RA001 positive: shared writes not indexed through the partition."""

import numpy as np


def _k_bad_constant_index(worker, start, stop, data, out):
    # Every worker writes row 0 — a guaranteed race.
    out[0] = data[start:stop].sum()


def _k_bad_whole_array(worker, start, stop, data, out):
    # In-place accumulation into the whole shared array from every worker.
    out += data[start:stop].sum()


def launch(pool, data, out):
    n = pool.num_threads
    # Task closure writing through an index unrelated to its identity.
    pool.run_tasks([
        lambda t=t: out.__setitem__(3, np.sum(data)) for t in range(n)
    ])
    # Whole-array out= destination from worker code.
    pool.run_tasks([
        lambda t=t: np.multiply(data, 2.0, out=out) for t in range(n)
    ])
