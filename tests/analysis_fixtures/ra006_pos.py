"""RA006 positive: worker code mutates module-level state."""

import repro.parallel.config as config

COUNTER = 0


def _k_bad_global(worker, start, stop, data, out):
    global COUNTER
    COUNTER += 1
    out[start:stop] = data[start:stop]


def _k_bad_module_attr(worker, start, stop, data, out):
    config.cached_value = data.sum()
    out[start:stop] = data[start:stop]
