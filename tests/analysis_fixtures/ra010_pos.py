"""RA010 positive: dispatched methods absent from every contract surface.

The method names are deliberately nonsense so no real oracle test, tuner
candidate set, bench suite, or doc page can accidentally cover them.
"""

FAKE_METHODS = (
    "quuxstep",
    "zorbstep",
)


def _run_quux(x, tracer):
    tracer.add_counter("flops", 1.0)
    return x


def _run_zorb(x, tracer):
    tracer.add_counter("flops", 1.0)
    return x


def run(x, tracer, method="quuxstep"):
    if method == "quuxstep":
        return _run_quux(x, tracer)
    if method == "zorbstep":
        return _run_zorb(x, tracer)
    raise ValueError(method)
