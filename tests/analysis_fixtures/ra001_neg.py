"""RA001 negative: every shared write goes through the partition."""

import numpy as np

from repro.parallel.partition import contiguous_blocks


def _k_good_block(worker, start, stop, data, out):
    out[start:stop] = data[start:stop] * 2.0


def _k_good_worker_slot(worker, start, stop, data, out, times):
    out[start:stop] = data[start:stop] * 2.0
    times[worker] = 1.0


def _k_good_derived(worker, start, stop, data, out):
    # Indices derived from the partition bounds are fine.
    for j in range(start, stop):
        out[j] = data[j] * 2.0


def launch(pool, data, out):
    blocks = contiguous_blocks(out.shape[0], pool.num_threads)
    tasks = []
    for t, (start, stop) in enumerate(blocks):
        tasks.append(
            lambda t=t, start=start, stop=stop: np.multiply(
                data[start:stop], 2.0, out=out[start:stop]
            )
        )
    pool.run_tasks(tasks)
