"""RA003 positive: order-unpinned allocations receiving BLAS output."""

import numpy as np


def gemm_into_unpinned(a, b):
    out = np.empty((4, 4))
    np.matmul(a, b, out=out)
    return out


def accumulate_into_unpinned(blocks, k):
    m = np.zeros((8, 3))
    for blk in blocks:
        m += blk @ k
    return m
