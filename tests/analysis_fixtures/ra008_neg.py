"""RA008 negative: workspace lifetimes respected (or not provable)."""

from repro.parallel.workspace import Workspace


def use_before_release(ws, fill):
    buf = ws.buffer("krp.left", (64,), "float64")
    fill(buf)
    total = buf.sum()
    ws.release("krp")
    return total


def reacquire_after_release(ws):
    buf = ws.buffer("krp.left", (64,), "float64")
    ws.release("krp")
    buf = ws.buffer("krp.left", (64,), "float64")
    return buf.sum()


def dynamic_prefix_stays_quiet(ws, prefix):
    # The released prefix is not a literal: no static proof, no finding.
    buf = ws.buffer("krp.left", (64,), "float64")
    ws.release(prefix)
    return buf.sum()


def unrelated_prefix(ws):
    buf = ws.buffer("gram", (8, 8), "float64")
    ws.release("krp")
    return buf.sum()


def inside_with_scope(fill):
    with Workspace(backend="thread") as ws:
        scratch = ws.private("partials", 4, (8,), "float64")
        fill(scratch)
        total = scratch.sum()
    return total
