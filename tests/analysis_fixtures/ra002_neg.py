"""RA002 negative: loop variables bound at definition time."""


def launch(pool, work):
    tasks = []
    for t in range(pool.num_threads):
        # Default-argument binding evaluates t now, not at call time.
        tasks.append(lambda t=t: work(t))
    pool.run_tasks(tasks)


def build(items):
    def make(item):
        # Factory function: item is a parameter, not a capture.
        def fn():
            return item * 2
        return fn

    return [make(item) for item in items]
