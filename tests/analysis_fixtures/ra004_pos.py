"""RA004 positive: definitely non-native views handed to BLAS."""

import numpy as np


def write_through_transpose(a, b, out):
    # BLAS output lands through foreign strides.
    np.matmul(a, b, out=out.T)


def stepped_transpose_operand(x, y):
    # x[::2].T is contiguous in neither order: forces a hidden copy.
    return np.matmul(x[::2].T, y)


def stepped_transpose_matmul(x, y):
    return x[::2].T @ y
