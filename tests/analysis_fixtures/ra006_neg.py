"""RA006 negative: workers only touch arguments and partition-indexed state."""


def _k_good(worker, start, stop, data, out, stats):
    local_total = data[start:stop].sum()
    out[start:stop] = data[start:stop]
    stats[worker] = local_total
