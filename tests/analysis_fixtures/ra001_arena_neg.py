"""RA001 negative: the workspace-arena reuse pattern.

The dimtree second level acquires arena-owned buffers outside the region
(node buffer, Kronecker panel, per-worker private slabs) and its kernels
write only through partition-derived destinations: ``out=priv[worker]``
ufunc targets, views *derived from* ``priv[worker]``, and per-worker
clock slots.  RA001 must recognize all of these as partition-indexed.
"""

import numpy as np


def _k_arena_right(worker, start, stop, node_buf, C, DL, d_keep, DR, KRT,
                   priv, clk):
    if start >= stop:
        return
    # Reads: zero-copy views of the arena-owned node buffer and panel.
    S = node_buf.reshape((C, DR, d_keep, DL)).transpose(0, 3, 2, 1)
    np.matmul(
        S[..., start:stop], KRT[:, None, start:stop, None], out=priv[worker]
    )
    clk[worker] = 1.0


def _k_arena_view(worker, start, stop, node_buf, C, d_keep, KLT, priv, clk):
    # A name derived from priv[worker] is still partition-derived.
    mine = priv[worker]
    slab = mine.reshape((C, 1, d_keep))
    S = node_buf.reshape((C, 1, d_keep, -1)).transpose(0, 3, 2, 1)[..., 0]
    np.matmul(KLT[:, None, start:stop], S[:, start:stop, :], out=slab)
    clk[worker] += 1.0
