"""RA007 negative: aliases and callees stay inside the partition."""


def _scale_block(dst, src, factor):
    dst[:] = src * factor


def _write_row(out, row, value):
    out[row] = value


def _k_partitioned_alias(worker, start, stop, data, out):
    # The alias is carved out of the worker's own block.
    block = out[start:stop]
    block[:] = data[start:stop] * 2.0


def _k_callee_gets_block(worker, start, stop, data, out):
    # The callee only ever sees the worker's slice.
    _scale_block(out[start:stop], data[start:stop], 2.0)


def _k_callee_partition_index(worker, start, stop, data, out):
    # The callee's written location is the partition bound we pass it.
    _write_row(out, start, data[start:stop].sum())
