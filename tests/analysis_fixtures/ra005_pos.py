"""RA005 positive: raw SharedMemory construction outside the owning module."""

from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def leak_a_segment():
    # Created here, unlinked nowhere: leaks until reboot.
    seg = shared_memory.SharedMemory(name="fixture_seg", create=True, size=64)
    return seg


def double_unlink_hazard(name):
    # Plain attach registers with the resource tracker (cpython#82300):
    # worker exit may unlink a segment the parent still owns.
    return SharedMemory(name=name)
