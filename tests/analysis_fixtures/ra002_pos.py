"""RA002 positive: closures capture the loop variable by reference."""


def launch(pool, work):
    tasks = []
    for t in range(pool.num_threads):
        # Every task sees the *final* value of t.
        tasks.append(lambda: work(t))
    pool.run_tasks(tasks)


def build(items):
    # Comprehension-variable capture has the same by-reference hazard
    # when the lambda body reads a loop variable of an *enclosing* for.
    fns = []
    for item in items:
        def fn():
            return item * 2
        fns.append(fn)
    return fns
