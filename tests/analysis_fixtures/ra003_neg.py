"""RA003 negative: pinned-order allocations, or allocs never fed to BLAS."""

import numpy as np


def gemm_into_pinned(a, b):
    out = np.empty((4, 4), order="C")
    np.matmul(a, b, out=out)
    return out


def one_dim_alloc(a):
    # 1-D allocations have no order ambiguity.
    flat = np.empty(16)
    flat[:] = a.ravel()
    return flat


def alloc_without_blas(a):
    scratch = np.zeros((4, 4))
    scratch[:] = a * 2.0
    return scratch
