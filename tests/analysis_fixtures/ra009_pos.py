"""RA009 positive: dispatch-registered kernels with no cost counters."""


def _mttkrp_fast(tensor, factors, n):
    return tensor @ factors[n]


def _mttkrp_slow(tensor, factors, n):
    rows = tensor.sum(axis=n)
    return rows @ factors[n]


def run(tensor, factors, n, method="fast"):
    if method == "fast":
        return _mttkrp_fast(tensor, factors, n)
    if method == "slow":
        return _mttkrp_slow(tensor, factors, n)
    raise ValueError(method)
