"""RA009 negative: every dispatched kernel accounts its cost."""


def _cost_helper(tracer, flops, nbytes):
    tracer.add_counter("flops", flops)
    tracer.add_counter("bytes_read", nbytes)


def _mttkrp_fast(tensor, factors, n, tracer):
    # Direct counter attachment on the kernel's own span.
    with tracer.span("fast", flops=1.0):
        return tensor @ factors[n]


def _mttkrp_slow(tensor, factors, n, tracer):
    # Accounting through a helper: reachable from the kernel suffices.
    _cost_helper(tracer, 2.0, 16.0)
    rows = tensor.sum(axis=n)
    return rows @ factors[n]


def run(tensor, factors, n, tracer, method="fast"):
    if method == "fast":
        return _mttkrp_fast(tensor, factors, n, tracer)
    if method == "slow":
        return _mttkrp_slow(tensor, factors, n, tracer)
    raise ValueError(method)
