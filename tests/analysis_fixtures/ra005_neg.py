"""RA005 negative: segments go through the arena / attach helpers."""

from repro.parallel.shm import ShmArena, attach


def allocate_through_arena(shape):
    arena = ShmArena()
    view, handle = arena.allocate(shape)
    return arena, view, handle


def worker_attach(handle, cache):
    return attach(handle, cache)
