"""RA007 positive: escapes RA001 cannot see from one function alone."""


def _fill_header(buf, value):
    # Writes row 0 of whatever array it is handed.
    buf[0] = value


def _k_alias_escape(worker, start, stop, data, out):
    # The reshape hides the shared root behind a fresh name; every
    # worker then writes the same element of `out`.
    flat = out.reshape(-1)
    flat[0] = data[start:stop].sum()


def _k_callee_escape(worker, start, stop, data, out):
    # The helper writes a fixed row of the shared array it receives.
    _fill_header(out, data[start:stop].sum())
