"""RA001 positive: arena-owned buffers written past the partition.

Reusing buffers across iterations does not relax the write discipline:
a kernel writing an arena slab it does not own this region races with
the worker that does.
"""

import numpy as np


def _k_arena_wrong_slot(worker, start, stop, node_buf, KRT, priv):
    # Every worker writes slab 0 regardless of its identity.
    np.matmul(node_buf[start:stop], KRT, out=priv[0])


def _k_arena_whole_buffer(worker, start, stop, node_buf, priv):
    # Accumulating into the whole private stack from each worker.
    priv += node_buf[start:stop].sum()
