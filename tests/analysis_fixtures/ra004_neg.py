"""RA004 negative: native transposes and materialized operands are fine."""

import numpy as np


def native_transpose_operand(a, b):
    # BLAS consumes a plain transpose without copying (trans flag).
    return a.T @ b


def materialized_stepped(x, y):
    xs = np.ascontiguousarray(x[::2].T)
    return np.matmul(xs, y)


def contiguous_out(a, b, out):
    np.matmul(a, b, out=out)
