"""RA008 positive: workspace buffers used past their lifetime."""

from repro.parallel.workspace import Workspace


def use_after_release(ws, fill):
    buf = ws.buffer("krp.left", (64,), "float64")
    fill(buf)
    ws.release("krp")
    return buf.sum()


def use_after_close(ws):
    buf = ws.buffer("acc", (8,), "float64")
    ws.close()
    return buf[0]


def use_after_with_scope(fill):
    with Workspace(backend="thread") as ws:
        scratch = ws.private("partials", 4, (8,), "float64")
        fill(scratch)
    return scratch.mean()
