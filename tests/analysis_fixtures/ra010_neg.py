"""RA010 negative: alphastep and betastep covered on every surface.

This docstring is itself the docs surface for the fixture: it mentions
alphastep and betastep by name, the way docs/analysis.md names the real
dispatch methods.
"""

TOY_METHODS = (
    "alphastep",
    "betastep",
)

# Oracle surface: the differential oracle's explicit method list.
ORACLE_METHODS = ("alphastep", "betastep")


def candidate_set(shape):
    # Tuner surface; the ":blocked" variant label normalizes to its
    # method ("betastep"), mirroring the real tuner's candidate labels.
    return ["alphastep", "betastep:blocked"]


def _mttkrp_algorithms():
    # Bench surface.
    return {"alphastep": None, "betastep": None}


def _run_alpha(x, tracer):
    tracer.add_counter("flops", 1.0)
    return x


def _run_beta(x, tracer):
    tracer.add_counter("flops", 1.0)
    return x


def run(x, tracer, method="alphastep"):
    if method == "alphastep":
        return _run_alpha(x, tracer)
    if method == "betastep":
        return _run_beta(x, tracer)
    raise ValueError(method)
