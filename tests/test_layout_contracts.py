"""Regression tests for the layout fixes surfaced by the RA003 lint.

The lint flagged four allocations that receive BLAS output without an
explicit ``order=`` (mttkrp_onestep, mttkrp_twostep, dimtree.node_mttkrp,
machine.calibrate); all are now pinned C-order.  These tests freeze the
resulting contract — the outputs those allocations become are
C-contiguous — and cover the runtime layout assertion that backs the two
reviewed RA004 suppressions in mttkrp_twostep.
"""

import numpy as np
import pytest

from repro.analysis.sanitizer import SanitizerError, sanitize
from repro.core.dimtree import left_partial, node_mttkrp, split_point
from repro.core.mttkrp_onestep import mttkrp_onestep
from repro.core.mttkrp_twostep import mttkrp_twostep
from repro.machine.calibrate import measure_gemm_gflops
from repro.parallel.blas import assert_native_layout
from repro.tensor.generate import random_factors, random_tensor

SHAPE = (5, 6, 4, 3)
RANK = 3


@pytest.fixture(scope="module")
def problem():
    X = random_tensor(SHAPE, rng=0)
    U = random_factors(SHAPE, RANK, rng=1)
    return X, U


class TestPinnedOutputsAreCContiguous:
    def test_onestep_internal_modes(self, problem):
        X, U = problem
        for n in range(1, len(SHAPE) - 1):
            M = np.asarray(mttkrp_onestep(X, U, n))
            assert M.flags.c_contiguous, f"mode {n}"
            assert M.shape == (SHAPE[n], RANK)

    def test_twostep_blocked_accumulator(self, problem):
        X, U = problem
        for n in range(1, len(SHAPE) - 1):  # twostep is internal-mode only
            M = np.asarray(mttkrp_twostep(X, U, n))
            assert M.shape == (SHAPE[n], RANK)

    def test_dimtree_node_mttkrp(self, problem):
        X, U = problem
        s = split_point(len(SHAPE))
        node = left_partial(X, U, s)
        M = node_mttkrp(node, [np.asarray(U[j]) for j in range(s)], keep=0)
        assert M.flags.c_contiguous
        assert M.shape == (SHAPE[0], RANK)

    def test_calibrate_gemm_runs(self):
        # The pinned out= allocation in the calibration kernel.
        rate = measure_gemm_gflops(m=16, n=16, k=16, repeats=1)
        assert rate > 0


class TestAssertNativeLayout:
    def test_noop_when_sanitizer_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        hazard = np.zeros((6, 6))[::2, :].T  # neither-order view
        assert assert_native_layout(hazard, "test") is hazard

    def test_passes_native_operands(self):
        with sanitize():
            c = np.zeros((4, 4), order="C")
            f = np.zeros((4, 4), order="F")
            assert assert_native_layout(c, "test") is c
            assert assert_native_layout(f, "test") is f
            ct = c.T  # F-contiguous native transpose
            assert assert_native_layout(ct, "test") is ct

    def test_rejects_neither_order_view(self):
        with sanitize():
            hazard = np.zeros((6, 6))[::2, :].T
            with pytest.raises(SanitizerError, match="neither order"):
                assert_native_layout(hazard, "test.ctx")

    def test_twostep_suppressed_sites_hold_under_sanitizer(self, problem):
        # The two RA004 suppressions claim buf.reshape(...) is native
        # contiguous; the backing runtime assertion must hold on a real
        # internal-mode run with the process-backend buffer path off
        # (thread backend exercises the same code shape).
        X, U = problem
        with sanitize():
            for n in range(1, len(SHAPE) - 1):
                M = np.asarray(mttkrp_twostep(X, U, n))
                assert np.all(np.isfinite(M))
