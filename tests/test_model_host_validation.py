"""Host-model validation: the model form must track *measured* MTTKRP.

The paper-machine model is pinned to the paper's reported bands elsewhere;
here the same model *form*, calibrated to this host, must predict this
host's measured single-thread MTTKRP times within a loose factor.  This is
the strongest evidence available on this hardware that the model's shapes
are physical rather than curve-fit artifacts.
"""

import pytest

from repro.bench.timing import median_time
from repro.core.dispatch import mttkrp
from repro.machine.calibrate import calibrate_host_model
from repro.machine.predict import predict_algorithm_time
from repro.tensor.generate import random_factors, random_tensor

# Loose band: container timing is noisy and the model is first-order.
MAX_RATIO = 5.0


@pytest.fixture(scope="module")
def host():
    return calibrate_host_model(stream_entries=4_000_000, gemm_size=384)


@pytest.mark.parametrize(
    "shape,n,algo",
    [
        ((96, 96, 96), 1, "twostep"),
        ((96, 96, 96), 0, "onestep"),
        ((40, 40, 40, 40), 2, "twostep"),
        ((96, 96, 96), 1, "gemm-baseline"),
    ],
)
def test_prediction_tracks_measurement(host, shape, n, algo):
    X = random_tensor(shape, rng=0)
    U = random_factors(shape, 25, rng=1)
    if algo == "gemm-baseline":
        from repro.core.mttkrp_baseline import mttkrp_gemm_lower_bound

        scratch: dict = {}
        measured = median_time(
            lambda: mttkrp_gemm_lower_bound(
                X, U, n, num_threads=1, _scratch=scratch
            ),
            repeats=3,
        )
    else:
        measured = median_time(
            lambda: mttkrp(X, U, n, method=algo, num_threads=1), repeats=3
        )
    predicted, _ = predict_algorithm_time(host, shape, n, 25, 1, algo)
    ratio = predicted / measured
    assert 1.0 / MAX_RATIO < ratio < MAX_RATIO, (
        f"{algo} mode {n} on {shape}: predicted {predicted:.4f}s vs "
        f"measured {measured:.4f}s (ratio {ratio:.2f})"
    )


def test_relative_ordering_preserved(host):
    """The model must get the *ordering* right on the host: sequential
    2-step <= 1-step for an internal mode (the paper's Figure 5 ordering)."""
    shape = (64, 64, 64, 64)
    X = random_tensor(shape, rng=2)
    U = random_factors(shape, 25, rng=3)
    m_two = median_time(
        lambda: mttkrp(X, U, 1, method="twostep", num_threads=1), repeats=3
    )
    m_one = median_time(
        lambda: mttkrp(X, U, 1, method="onestep", num_threads=1), repeats=3
    )
    p_two, _ = predict_algorithm_time(host, shape, 1, 25, 1, "twostep")
    p_one, _ = predict_algorithm_time(host, shape, 1, 25, 1, "onestep")
    assert m_two <= m_one * 1.2  # measured ordering (with noise margin)
    assert p_two <= p_one  # modeled ordering
