"""Tests for the Tensor-Toolbox-style reference implementation."""

import numpy as np
import pytest

from repro.core.krp import khatri_rao
from repro.cpd.cp_als import cp_als
from repro.reference.tensor_toolbox import (
    cp_als_ttb,
    khatrirao_ttb,
    mttkrp_ttb,
)
from repro.tensor.generate import from_kruskal, random_factors, random_tensor
from repro.util.timing import PhaseTimer
from tests.conftest import mttkrp_oracle


class TestKhatriraoTTB:
    def test_matches_algorithm1(self, rng):
        mats = [rng.random((d, 4)) for d in (3, 5, 2)]
        np.testing.assert_allclose(khatrirao_ttb(mats), khatri_rao(mats))

    def test_column_mismatch(self, rng):
        with pytest.raises(ValueError, match="equal columns"):
            khatrirao_ttb([rng.random((3, 2)), rng.random((3, 3))])


class TestMttkrpTTB:
    @pytest.mark.parametrize("shape", [(4, 5, 6), (3, 4, 5, 6)])
    def test_all_modes_vs_oracle(self, shape):
        X = random_tensor(shape, rng=0)
        U = random_factors(shape, 5, rng=1)
        for n in range(len(shape)):
            np.testing.assert_allclose(
                mttkrp_ttb(X, U, n), mttkrp_oracle(X, U, n), atol=1e-10
            )

    def test_agrees_with_our_algorithms(self):
        from repro.core.dispatch import mttkrp

        X = random_tensor((4, 5, 6), rng=2)
        U = random_factors(X.shape, 3, rng=3)
        for n in range(3):
            np.testing.assert_allclose(
                mttkrp_ttb(X, U, n), mttkrp(X, U, n), atol=1e-10
            )

    def test_phases(self):
        X = random_tensor((4, 5, 6), rng=0)
        U = random_factors(X.shape, 3, rng=1)
        t = PhaseTimer()
        mttkrp_ttb(X, U, 1, timers=t)
        assert {"reorder", "full_krp", "gemm"} <= set(t.totals)

    def test_rejects_plain_ndarray(self, rng):
        with pytest.raises(TypeError, match="DenseTensor"):
            mttkrp_ttb(rng.random((3, 4)), [], 0)


class TestCpAlsTTB:
    def test_identical_iterates_to_ours(self):
        """Same init => same fits: the two CP-ALS drivers do the same math,
        differing only in MTTKRP implementation."""
        X = random_tensor((6, 7, 8), rng=0)
        init = random_factors(X.shape, 3, rng=1)
        ours = cp_als(X, 3, n_iter_max=6, tol=0.0, init=init)
        ttb = cp_als_ttb(X, 3, n_iter_max=6, tol=0.0, init=init)
        np.testing.assert_allclose(ours.fits, ttb.fits, atol=1e-8)

    def test_recovers_exact_lowrank(self):
        U = random_factors((9, 10, 11), 2, rng=5)
        X = from_kruskal(U)
        res = cp_als_ttb(X, 2, n_iter_max=150, tol=1e-13, rng=6)
        assert res.final_fit > 0.9999

    def test_iteration_times_recorded(self):
        X = random_tensor((5, 6, 7), rng=0)
        res = cp_als_ttb(X, 2, n_iter_max=3, tol=0.0, rng=1)
        assert len(res.iteration_times) == 3
        assert res.mean_iteration_time > 0

    def test_errors(self):
        X = random_tensor((4, 5), rng=0)
        with pytest.raises(ValueError, match="rank"):
            cp_als_ttb(X, 0)
        with pytest.raises(ValueError, match="random init"):
            cp_als_ttb(X, 2, init="hosvd")
        with pytest.raises(ValueError, match="initial factors"):
            cp_als_ttb(X, 2, init=[np.ones((4, 2))])

    def test_zero_tensor(self):
        from repro.tensor.dense import DenseTensor

        with pytest.raises(ValueError, match="zero"):
            cp_als_ttb(DenseTensor(np.zeros((3, 4))), 2)
