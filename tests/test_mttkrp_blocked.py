"""Cache-blocked MTTKRP: tile derivation, correctness, parity, observability.

The blocked kernels (:mod:`repro.core.mttkrp_blocked`) are the one family
whose *shape of execution* depends on a machine parameter (``cache_bytes``),
so beyond the usual differential checks these tests sweep the cache size —
from "everything fits in one tile" down to pathological 1 KiB caches that
force maximal tiling — and assert the result never changes.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.core.dispatch import MTTKRP_METHODS, mttkrp
from repro.core.flops import blocked_cost, mttkrp_comm_lower_bound
from repro.core.mttkrp_baseline import mttkrp_baseline
from repro.core.mttkrp_blocked import TilePlan, choose_tiles, mttkrp_blocked
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import mode_products
from repro.util.timing import PhaseTimer


def _problem(shape, rank=5, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    X = DenseTensor(rng.standard_normal(shape).astype(dtype))
    U = [rng.standard_normal((s, rank)).astype(dtype) for s in shape]
    return X, U


class TestChooseTiles:
    def test_registered_in_dispatch(self):
        # The differential oracle iterates MTTKRP_METHODS; this pins the
        # blocked kernel inside that sweep.
        assert "blocked" in MTTKRP_METHODS

    @pytest.mark.parametrize("n", [0, 1, 2])
    @pytest.mark.parametrize("cache", [1024, 65536, 8 << 20])
    def test_tile_within_bounds(self, n, cache):
        shape = (36, 30, 24)
        plan = choose_tiles(shape, n, 16, cache_bytes=cache)
        p = mode_products(shape, n)
        extent = p.other if plan.external else p.left
        assert 1 <= plan.tile <= extent
        assert plan.external == (n in (0, 2))
        if plan.external:
            assert plan.num_tasks == -(-p.other // plan.tile)
        else:
            assert plan.num_tasks == p.right
        assert plan.cache_bytes == float(cache)

    def test_working_set_fits_half_cache_when_possible(self):
        shape, C, cache = (36, 30, 24), 16, 1 << 20
        target_words = cache / 2 / 8
        for n in range(3):
            plan = choose_tiles(shape, n, C, cache_bytes=cache)
            p = mode_products(shape, n)
            krp_copies = 1 if plan.external else 2
            working = (
                p.size * plan.tile          # tensor tile
                + krp_copies * plan.tile * C  # KRP tile(s)
                + p.size * C                # output
            )
            assert working <= target_words

    def test_smaller_itemsize_allows_longer_tiles(self):
        shape, n, C, cache = (8, 200, 8), 1, 16, 64 * 1024
        t64 = choose_tiles(shape, n, C, itemsize=8, cache_bytes=cache).tile
        t32 = choose_tiles(shape, n, C, itemsize=4, cache_bytes=cache).tile
        assert t32 >= t64

    def test_big_cache_is_single_tile(self):
        plan = choose_tiles((6, 5, 4), 0, 3, cache_bytes=8 << 20)
        assert plan.tile == 20 and plan.num_tasks == 1

    def test_tiny_cache_degrades_gracefully(self):
        # Output alone exceeds half the cache: tile floors at >= 1
        # instead of failing — correctness never depends on the estimate.
        plan = choose_tiles((512, 64, 512), 1, 64, cache_bytes=256)
        assert plan.tile >= 1

    def test_invalid_cache_rejected(self):
        with pytest.raises(ValueError, match="cache_bytes"):
            choose_tiles((4, 5, 6), 0, 3, cache_bytes=0)

    def test_plan_is_frozen_value(self):
        plan = choose_tiles((4, 5, 6), 1, 3, cache_bytes=4096)
        assert isinstance(plan, TilePlan)
        with pytest.raises(AttributeError):
            plan.tile = 99


class TestCorrectness:
    @pytest.mark.parametrize(
        "shape", [(3, 4), (6, 5, 4), (7, 6, 5, 4), (3, 4, 2, 3, 2)]
    )
    def test_matches_baseline_every_mode(self, shape):
        X, U = _problem(shape)
        for n in range(len(shape)):
            ref = mttkrp_baseline(X, U, n)
            out = mttkrp_blocked(X, U, n)
            np.testing.assert_allclose(out, ref, atol=1e-10)

    @pytest.mark.parametrize("cache", [1024, 4096, 65536, 8 << 20])
    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_result_invariant_under_cache_size(self, cache, n):
        # Sweeping cache_bytes changes the tiling, never the mathematics.
        X, U = _problem((12, 10, 8), rank=6, seed=3)
        ref = mttkrp_baseline(X, U, n)
        out = mttkrp_blocked(X, U, n, cache_bytes=cache)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtypes(self, dtype):
        X, U = _problem((9, 8, 7), rank=4, seed=1, dtype=dtype)
        for n in range(3):
            ref = mttkrp_baseline(X, U, n)
            out = mttkrp_blocked(X, U, n, cache_bytes=4096)
            assert out.dtype == ref.dtype
            tol = 1e-4 if dtype == np.float32 else 1e-10
            np.testing.assert_allclose(out, ref, atol=tol)

    def test_strided_factors(self):
        X, U = _problem((8, 7, 6), rank=4, seed=2)
        strided = [np.repeat(f, 2, axis=0)[::2] for f in U]
        for f in strided:
            assert not f.flags["C_CONTIGUOUS"]
        for n in range(3):
            ref = mttkrp_baseline(X, U, n)
            out = mttkrp_blocked(X, strided, n, cache_bytes=4096)
            np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_fortran_tensor(self):
        rng = np.random.default_rng(4)
        arr = np.asfortranarray(rng.standard_normal((6, 5, 4)))
        X = DenseTensor(arr)
        U = [rng.standard_normal((s, 3)) for s in (6, 5, 4)]
        for n in range(3):
            np.testing.assert_allclose(
                mttkrp_blocked(X, U, n, cache_bytes=2048),
                mttkrp_baseline(X, U, n),
                atol=1e-10,
            )

    def test_parallel_matches_sequential_tolerance(self):
        X, U = _problem((14, 12, 10), rank=6, seed=5)
        for n in range(3):
            ref = mttkrp_blocked(X, U, n, num_threads=1)
            out = mttkrp_blocked(X, U, n, num_threads=3, cache_bytes=8192)
            np.testing.assert_allclose(out, ref, atol=1e-10)


class TestBackendParity:
    def test_thread_process_bit_identical(self):
        from repro.parallel.backend import shutdown_all_executors
        from repro.parallel.config import num_threads

        X, U = _problem((8, 6, 5, 4), rank=3, seed=6)
        try:
            for n in range(4):
                with num_threads(2):
                    thread = mttkrp(
                        X, U, n, method="blocked", backend="thread"
                    )
                    process = mttkrp(
                        X, U, n, method="blocked", backend="process"
                    )
                assert np.array_equal(thread, process)
        finally:
            shutdown_all_executors()


class TestObservability:
    def test_timers_external_and_internal(self):
        X, U = _problem((10, 9, 8), rank=4, seed=7)
        t = PhaseTimer()
        mttkrp_blocked(X, U, 0, timers=t)
        assert "full_krp" in t.totals and "gemm" in t.totals
        t2 = PhaseTimer()
        mttkrp_blocked(X, U, 1, num_threads=2, timers=t2)
        assert {"lr_krp", "gemm", "reduce"} <= set(t2.totals)

    def test_traced_dispatch_reports_lower_bound_ratio(self):
        X, U = _problem((12, 10, 8), rank=6, seed=8)
        with obs.capture() as tracer:
            mttkrp(X, U, 1, method="blocked", num_threads=2)
        snap = obs.counters_snapshot(tracer)
        assert snap["bytes_lower_bound"] > 0
        ratio = (
            snap["bytes_read"] + snap["bytes_written"]
        ) / snap["bytes_lower_bound"]
        assert np.isfinite(ratio) and ratio >= 0.5
        spans = [s for s in tracer.spans() if s.name == "mttkrp.blocked"]
        assert spans and spans[0].counters["bytes_lower_bound"] > 0

    def test_lower_bound_below_blocked_traffic(self):
        # The bound must actually bound: analytic blocked traffic is
        # never below the BRK floor, for any mode or cache size.
        shape, C = (40, 32, 24), 16
        for n in range(3):
            for cache in (4096, 1 << 20, 8 << 20):
                bound = mttkrp_comm_lower_bound(shape, n, C, cache_bytes=cache)
                cost = blocked_cost(shape, n, C, cache_bytes=cache)
                achieved = sum(
                    p.read_bytes + p.write_bytes for p in cost.phases
                )
                assert bound > 0
                assert achieved >= bound * 0.999


class TestAutotunerIntegration:
    def test_blocked_is_a_candidate_both_mode_kinds(self):
        from repro.tune import candidate_set

        for n in (0, 1, 2):
            labels = {c.label for c in candidate_set((6, 5, 4), n)}
            assert "blocked" in labels

    def test_blocked_record_replays_through_dispatch(self):
        from repro.tune import TuneKey, TuneRecord, TuningCache, autotune

        X, U = _problem((6, 5, 4), rank=3, seed=9)
        cache = TuningCache(None)
        key = TuneKey.make((6, 5, 4), 3, 1, 1, "thread", "float64")
        cache.put(key, TuneRecord(method="blocked", source="measured"))
        record = autotune(X, U, 1, num_threads=1, backend="thread", cache=cache)
        assert record.method == "blocked"  # eligible: served, not re-measured
        np.testing.assert_allclose(
            mttkrp(X, U, 1, method=record.label, num_threads=1),
            mttkrp_baseline(X, U, 1),
            atol=1e-10,
        )


class TestValidation:
    def test_rejects_non_tensor(self):
        with pytest.raises(TypeError, match="DenseTensor"):
            mttkrp_blocked(np.zeros((3, 4)), [np.zeros((3, 2))], 0)

    def test_rejects_bad_mode(self):
        X, U = _problem((4, 5, 6), rank=2)
        with pytest.raises((ValueError, IndexError)):
            mttkrp_blocked(X, U, 3)
