"""Stress the job server: concurrency, priorities, cancellation, shedding.

Invariants pinned here (the ISSUE's acceptance scenario):

* **no job lost, none run twice** — with hundreds of mixed-size jobs
  submitted from many threads at once, every admitted job reaches
  exactly one terminal state and appears exactly once in the dispatch
  log;
* **priority order holds** — with coalescing off, a single worker
  dispatches strictly by (priority desc, submission order);
* **cancellation lands** — for queued jobs (dropped before dispatch)
  and for running solo jobs (cooperative stop at an iteration
  boundary), picked at random under concurrent load;
* **backpressure sheds** — submissions past the depth bound raise
  :class:`~repro.serve.job.QueueFullError`, the queue never exceeds its
  bound, and shed submissions are counted;
* **shutdown drains** — ``shutdown(drain=True)`` completes everything
  admitted before it returns.

Sizes are tiny on purpose — the properties under test are scheduling
properties, not numerics — so the suite stays green under
``REPRO_SANITIZE=1`` where every shm map/unmap is checked and slow.
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    JobServer,
    JobSpec,
    JobState,
    QueueFullError,
    ServeConfig,
)
from repro.tensor.dense import DenseTensor

pytestmark = pytest.mark.serve

SEED = 20180224


def make_tensor(seed: int, shape=(3, 3, 2)) -> DenseTensor:
    rng = np.random.default_rng([SEED, seed])
    return DenseTensor(rng.standard_normal(shape))


def assert_dispatched_exactly_once(server: JobServer, job_ids) -> None:
    dispatched = [
        jid for entry in server.dispatch_log() for jid in entry[1:]
    ]
    assert len(dispatched) == len(set(dispatched)), "a job ran twice"
    assert set(dispatched) <= set(job_ids)


def test_many_concurrent_mixed_jobs_none_lost_none_run_twice():
    """The >=200-job acceptance scenario: mixed sizes, many submitters."""
    n_jobs = 200
    n_submitters = 8
    handles: list = []
    handles_lock = threading.Lock()

    with JobServer(ServeConfig(workers=2, queue_depth=n_jobs,
                               batch_limit=16)) as server:

        def submitter(t: int) -> None:
            rng = random.Random(SEED * 31 + t)
            local = []
            for i in range(n_jobs // n_submitters):
                seed = t * 1000 + i
                shape = (3, 3, 2) if rng.random() < 0.8 else (6, 5, 4)
                local.append(server.submit(JobSpec(
                    rank=2, tensor=make_tensor(seed, shape), seed=seed,
                    n_iter_max=2, priority=rng.randrange(4),
                )))
            with handles_lock:
                handles.extend(local)

        threads = [threading.Thread(target=submitter, args=(t,))
                   for t in range(n_submitters)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(handles) == n_jobs

        for handle in handles:
            result = handle.result(timeout=120.0)
            assert np.isfinite(result.fit)

        stats = server.stats()
        assert stats["completed"] == n_jobs
        assert stats["failed"] == 0 and stats["cancelled"] == 0
        assert stats["shed"] == 0
        # Coalescing actually engaged under this load.
        assert stats["coalesced_jobs"] > 0
        assert_dispatched_exactly_once(server, [h.job_id for h in handles])


def test_priority_order_holds_without_batching():
    priorities = [3, 0, 7, 1, 9, 4, 2, 8, 5, 6]
    with JobServer(ServeConfig(workers=1, batching=False,
                               paused=True)) as server:
        handles = [
            server.submit(JobSpec(rank=2, tensor=make_tensor(i), seed=i,
                                  n_iter_max=2, priority=p))
            for i, p in enumerate(priorities)
        ]
        server.resume()
        for handle in handles:
            assert handle.wait(timeout=60.0)
        log = server.dispatch_log()
    order = [entry[1] for entry in log]
    by_id = {h.job_id: p for h, p in zip(handles, priorities)}
    dispatched_priorities = [by_id[jid] for jid in order]
    assert dispatched_priorities == sorted(priorities, reverse=True)


def test_fifo_within_equal_priority():
    with JobServer(ServeConfig(workers=1, batching=False,
                               paused=True)) as server:
        handles = [
            server.submit(JobSpec(rank=2, tensor=make_tensor(100 + i),
                                  seed=i, n_iter_max=2, priority=5))
            for i in range(6)
        ]
        server.resume()
        for handle in handles:
            assert handle.wait(timeout=60.0)
        log = server.dispatch_log()
    assert [e[1] for e in log] == [h.job_id for h in handles]


def test_random_cancellations_and_deadlines_under_load():
    n_jobs = 60
    rng = random.Random(SEED)
    with JobServer(ServeConfig(workers=2, queue_depth=n_jobs,
                               paused=True)) as server:
        plans = []  # (handle, plan) with plan in {run, cancel, deadline}
        for i in range(n_jobs):
            roll = rng.random()
            if roll < 0.2:
                # Already-expired deadline: must resolve as TIMEOUT at
                # dispatch, never run.
                spec = JobSpec(rank=2, tensor=make_tensor(200 + i), seed=i,
                               n_iter_max=2, timeout=1e-6,
                               priority=rng.randrange(4))
                plan = "deadline"
            else:
                spec = JobSpec(rank=2, tensor=make_tensor(200 + i), seed=i,
                               n_iter_max=2, priority=rng.randrange(4))
                plan = "cancel" if roll < 0.5 else "run"
            plans.append((server.submit(spec), plan))
        time.sleep(0.01)  # let the expired deadlines actually expire

        cancelled_ids = set()
        for handle, plan in plans:
            if plan == "cancel" and handle.cancel("stress cancel"):
                cancelled_ids.add(handle.job_id)
        server.resume()

        for handle, plan in plans:
            assert handle.wait(timeout=120.0), f"{handle.job_id} lost"
            state = handle.status().state
            if handle.job_id in cancelled_ids:
                assert state is JobState.CANCELLED
            elif plan == "deadline":
                assert state is JobState.TIMEOUT
            else:
                assert state is JobState.DONE
        assert_dispatched_exactly_once(
            server, [h.job_id for h, _ in plans]
        )
        # Cancelled-while-queued and timed-out jobs never dispatched.
        dispatched = {
            jid for e in server.dispatch_log() for jid in e[1:]
        }
        assert not (cancelled_ids & dispatched)


def test_cancel_running_job_lands_mid_load():
    with JobServer(ServeConfig(workers=1)) as server:
        rng_t = np.random.default_rng([SEED, 42])
        blocker = server.submit(JobSpec(
            rank=4, tensor=DenseTensor(rng_t.standard_normal((16, 16, 16))),
            seed=1, n_iter_max=1_000_000, tol=0.0, batchable=False,
        ))
        queued = server.submit(JobSpec(rank=2, tensor=make_tensor(43),
                                       seed=2, n_iter_max=2))
        deadline = time.monotonic() + 30.0
        while server.status(blocker.job_id).state is not JobState.RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        assert blocker.cancel("make way")
        assert blocker.wait(timeout=30.0)
        assert blocker.status().state is JobState.CANCELLED
        # The queue kept moving afterwards.
        assert queued.result(timeout=60.0).iterations == 2


def test_backpressure_sheds_past_depth_bound():
    depth = 8
    with JobServer(ServeConfig(workers=1, queue_depth=depth,
                               paused=True)) as server:
        admitted = []
        shed = 0
        for i in range(depth + 5):
            try:
                admitted.append(server.submit(JobSpec(
                    rank=2, tensor=make_tensor(300 + i), seed=i,
                    n_iter_max=2,
                )))
            except QueueFullError as exc:
                assert exc.depth == depth
                shed += 1
        assert len(admitted) == depth
        assert shed == 5
        assert server.stats()["shed"] == 5
        assert server.stats()["queue_depth"] == depth
        # Cancelling a queued job frees a slot immediately.
        assert admitted[-1].cancel()
        replacement = server.submit(JobSpec(
            rank=2, tensor=make_tensor(400), seed=0, n_iter_max=2,
        ))
        server.resume()
        assert replacement.result(timeout=60.0).iterations == 2


def test_shutdown_drains_everything_admitted():
    server = JobServer(ServeConfig(workers=2, queue_depth=64, paused=True))
    handles = [
        server.submit(JobSpec(rank=2, tensor=make_tensor(500 + i), seed=i,
                              n_iter_max=2))
        for i in range(24)
    ]
    server.resume()
    server.shutdown(drain=True, timeout=120.0)
    for handle in handles:
        assert handle.status().state is JobState.DONE
    assert server.stats()["completed"] == len(handles)


def test_fast_shutdown_cancels_queued_jobs():
    server = JobServer(ServeConfig(workers=1, queue_depth=64, paused=True))
    handles = [
        server.submit(JobSpec(rank=2, tensor=make_tensor(600 + i), seed=i,
                              n_iter_max=2))
        for i in range(8)
    ]
    server.shutdown(drain=False, timeout=60.0)
    states = {h.status().state for h in handles}
    assert states == {JobState.CANCELLED}
    from repro.serve import ServerClosedError

    with pytest.raises(ServerClosedError):
        server.submit(JobSpec(rank=2, tensor=make_tensor(9), seed=9,
                              n_iter_max=2))
