"""Tests for tensor generators (random, Kruskal, noise)."""

import numpy as np
import pytest

from repro.tensor.generate import (
    add_noise,
    from_kruskal,
    random_factors,
    random_tensor,
)


class TestRandomTensor:
    def test_shape_and_dtype(self):
        X = random_tensor((3, 4, 5), rng=0)
        assert X.shape == (3, 4, 5)
        assert X.dtype == np.float64

    def test_deterministic_with_seed(self):
        a = random_tensor((3, 4), rng=7)
        b = random_tensor((3, 4), rng=7)
        assert a.allclose(b)

    def test_distributions(self):
        u = random_tensor((50, 50), rng=0, distribution="uniform")
        assert 0.0 <= u.data.min() and u.data.max() < 1.0
        g = random_tensor((50, 50), rng=0, distribution="normal")
        assert g.data.min() < 0.0

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="distribution"):
            random_tensor((3, 3), distribution="poisson")

    def test_float32(self):
        assert random_tensor((3, 3), rng=0, dtype=np.float32).dtype == np.float32


class TestRandomFactors:
    def test_shapes(self):
        U = random_factors((3, 4, 5), 7, rng=0)
        assert [u.shape for u in U] == [(3, 7), (4, 7), (5, 7)]

    def test_contiguous(self):
        for u in random_factors((3, 4), 2, rng=0):
            assert u.flags.c_contiguous

    def test_invalid_rank(self):
        with pytest.raises(ValueError, match="rank"):
            random_factors((3, 4), 0)


class TestFromKruskal:
    def test_matches_explicit_sum(self, rng):
        shape, C = (3, 4, 5), 2
        U = [rng.random((s, C)) for s in shape]
        w = rng.random(C)
        X = from_kruskal(U, w)
        expected = np.einsum("ac,bc,dc,c->abd", U[0], U[1], U[2], w)
        np.testing.assert_allclose(X.to_ndarray(), expected)

    def test_default_weights_are_ones(self, rng):
        U = [rng.random((3, 2)), rng.random((4, 2))]
        X = from_kruskal(U)
        np.testing.assert_allclose(X.to_ndarray(), U[0] @ U[1].T)

    def test_4way(self, rng):
        U = [rng.random((s, 3)) for s in (2, 3, 4, 5)]
        X = from_kruskal(U)
        expected = np.einsum("ac,bc,dc,ec->abde", *U)
        np.testing.assert_allclose(X.to_ndarray(), expected)

    def test_single_mode(self, rng):
        U = [rng.random((4, 3))]
        X = from_kruskal(U, np.ones(3))
        np.testing.assert_allclose(X.to_ndarray().ravel(), U[0].sum(axis=1))

    def test_weight_shape_mismatch(self, rng):
        U = [rng.random((3, 2)), rng.random((4, 2))]
        with pytest.raises(ValueError, match="weights"):
            from_kruskal(U, np.ones(3))

    def test_rank1_tensor_has_rank1_unfoldings(self, rng):
        U = [rng.random((4, 1)), rng.random((5, 1)), rng.random((6, 1))]
        X = from_kruskal(U)
        assert np.linalg.matrix_rank(X.unfold_mode0()) == 1


class TestAddNoise:
    def test_snr_is_respected(self, rng):
        X = random_tensor((20, 20, 20), rng=0)
        noisy = add_noise(X, snr_db=20.0, rng=1)
        err = np.linalg.norm(noisy.data - X.data)
        snr = 20.0 * np.log10(X.norm() / err)
        assert abs(snr - 20.0) < 0.5

    def test_high_snr_is_nearly_exact(self):
        X = random_tensor((10, 10), rng=0)
        noisy = add_noise(X, snr_db=200.0, rng=1)
        assert noisy.allclose(X, atol=1e-8)

    def test_zero_tensor_rejected(self):
        from repro.tensor.dense import DenseTensor

        with pytest.raises(ValueError, match="zero"):
            add_noise(DenseTensor(np.zeros((3, 3))), 10.0)
