"""Tests for the parallel Khatri-Rao product (Section 4.1.2)."""

import numpy as np
import pytest

from repro.core.krp import khatri_rao
from repro.core.krp_parallel import khatri_rao_parallel


def _mats(dims, C=4, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random((d, C)) for d in dims]


class TestKhatriRaoParallel:
    @pytest.mark.parametrize("T", [1, 2, 3, 4, 7])
    def test_matches_sequential(self, T):
        mats = _mats([5, 6, 4])
        np.testing.assert_allclose(
            khatri_rao_parallel(mats, num_threads=T), khatri_rao(mats)
        )

    @pytest.mark.parametrize("T", [1, 3])
    def test_naive_schedule(self, T):
        mats = _mats([3, 4, 3])
        np.testing.assert_allclose(
            khatri_rao_parallel(mats, num_threads=T, schedule="naive"),
            khatri_rao(mats),
        )

    def test_more_threads_than_rows(self):
        mats = _mats([2, 2])
        np.testing.assert_allclose(
            khatri_rao_parallel(mats, num_threads=16), khatri_rao(mats)
        )

    def test_out_parameter(self):
        mats = _mats([4, 5])
        out = np.empty((20, 4))
        res = khatri_rao_parallel(mats, num_threads=2, out=out)
        assert res is out
        np.testing.assert_allclose(out, khatri_rao(mats))

    def test_out_wrong_shape(self):
        mats = _mats([4, 5])
        with pytest.raises(ValueError, match="out"):
            khatri_rao_parallel(mats, num_threads=2, out=np.empty((19, 4)))

    def test_unknown_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            khatri_rao_parallel(_mats([3, 3]), schedule="magic")

    def test_single_matrix(self):
        mats = _mats([6])
        np.testing.assert_array_equal(
            khatri_rao_parallel(mats, num_threads=3), mats[0]
        )

    def test_default_thread_count_from_config(self):
        from repro.parallel.config import num_threads

        mats = _mats([4, 5])
        with num_threads(2):
            np.testing.assert_allclose(
                khatri_rao_parallel(mats), khatri_rao(mats)
            )

    @pytest.mark.parametrize("T", [2, 4, 5])  # T=4 misaligns block/panel
    def test_thread_blocks_are_bit_identical(self, T):
        # Parallel result must equal sequential exactly (same arithmetic in
        # the same association order, disjoint writes), not merely within
        # tolerance — including when thread blocks straddle panel bounds.
        mats = _mats([7, 5, 3], C=6, seed=4)
        seq = khatri_rao(mats)
        par = khatri_rao_parallel(mats, num_threads=T)
        np.testing.assert_array_equal(par, seq)
