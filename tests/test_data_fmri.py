"""Tests for the synthetic fMRI substrate."""

import numpy as np
import pytest

from repro.cpd.cp_als import cp_als
from repro.data.fmri import synthetic_fmri


class TestGenerator:
    def test_shape(self):
        data = synthetic_fmri(12, 5, 10, rank=2, rng=0)
        assert data.shape == (12, 5, 10, 10)
        assert data.ground_truth.rank == 2

    def test_region_modes_symmetric(self):
        data = synthetic_fmri(8, 4, 9, rank=2, rng=1)
        arr = data.tensor.to_ndarray()
        np.testing.assert_allclose(arr, np.swapaxes(arr, -1, -2))

    def test_ground_truth_region_factors_equal(self):
        data = synthetic_fmri(8, 4, 9, rank=2, rng=1)
        np.testing.assert_array_equal(
            data.ground_truth.factors[2], data.ground_truth.factors[3]
        )

    def test_noise_free_matches_model(self):
        data = synthetic_fmri(8, 4, 9, rank=2, rng=2, snr_db=float("inf"))
        assert data.tensor.allclose(data.ground_truth.full(), atol=1e-12)

    def test_snr_controls_noise(self):
        lo = synthetic_fmri(8, 4, 9, rank=2, rng=3, snr_db=5.0)
        hi = synthetic_fmri(8, 4, 9, rank=2, rng=3, snr_db=40.0)
        clean = lo.ground_truth.full()
        err_lo = np.linalg.norm(lo.tensor.data - clean.data)
        err_hi = np.linalg.norm(hi.tensor.data - clean.data)
        assert err_lo > err_hi * 10

    def test_deterministic(self):
        a = synthetic_fmri(6, 3, 8, rank=2, rng=9)
        b = synthetic_fmri(6, 3, 8, rank=2, rng=9)
        assert a.tensor.allclose(b.tensor)

    def test_to_3way_shape(self):
        data = synthetic_fmri(8, 4, 10, rank=2, rng=0)
        X3 = data.to_3way()
        assert X3.shape == (8, 4, 45)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            synthetic_fmri(0, 4, 9)
        with pytest.raises(ValueError):
            synthetic_fmri(8, 4, 9, rank=0)


class TestEndToEndRecovery:
    """CP-ALS on the synthetic tensor recovers the planted networks —
    the validation of the fMRI substitution (DESIGN.md)."""

    def test_4way_recovery_high_fit(self):
        data = synthetic_fmri(16, 6, 14, rank=3, rng=4, snr_db=30.0)
        res = cp_als(data.tensor, 3, n_iter_max=120, tol=1e-10, rng=5)
        assert res.final_fit > 0.9

    def test_networks_recovered(self):
        from repro.cpd.diagnostics import congruence_matrix

        data = synthetic_fmri(16, 6, 14, rank=3, rng=6, snr_db=35.0)
        res = cp_als(data.tensor, 3, n_iter_max=200, tol=1e-11, rng=7)
        # Each planted component should have a well-matched estimate.
        C = np.abs(congruence_matrix(res.model, data.ground_truth))
        assert C.max(axis=0).min() > 0.8

    def test_3way_decomposition_runs(self):
        data = synthetic_fmri(10, 4, 10, rank=2, rng=8, snr_db=25.0)
        X3 = data.to_3way()
        res = cp_als(X3, 2, n_iter_max=60, tol=1e-9, rng=9)
        assert res.final_fit > 0.7
