"""Differential oracle: serving must not change a single bit of a result.

Seeded like ``test_oracle_differential.py``: every configuration is
derived from ``(MASTER_SEED, index)`` alone, so a failure replays in
isolation.  Two equalities are pinned, both **bitwise**:

* a job served **solo** equals a direct
  :func:`repro.cpd.cp_als.cp_als` call with the same tensor, seed and
  options — across the thread and process backends;
* a **coalesced** group equals a direct
  :func:`repro.batch.fleet.cp_als_fleet` call over the same ordered
  member list with the same seeds.

(Fleet iterates agree with solo iterates only to rounding — the batched
engine's documented contract — so the oracle compares each serving path
against its own direct equivalent, never across paths.)

Grouping is made deterministic by pausing the server, submitting the
whole batch, then resuming with one worker: the single tender claims
the group in submission order, and :meth:`JobServer.dispatch_log`
verifies the composition the oracle then replays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.fleet import cp_als_fleet
from repro.cpd.cp_als import cp_als
from repro.serve import JobServer, JobSpec, ServeConfig
from repro.tensor.dense import DenseTensor

pytestmark = pytest.mark.serve

MASTER_SEED = 20180224  # PPoPP'18


@pytest.fixture(autouse=True)
def _isolated_tune_cache(tmp_path, monkeypatch):
    """Serving decisions must not depend on this machine's cache file."""
    from repro.tune import reset_cache

    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune.json"))
    reset_cache()
    yield
    reset_cache()


def draw_tensor(index: int, shape=(4, 3, 2), dtype=np.float64) -> DenseTensor:
    rng = np.random.default_rng([MASTER_SEED, index])
    return DenseTensor(rng.standard_normal(shape).astype(dtype))


def assert_model_bits(result, model, label: str) -> None:
    weights = np.asarray(model.weights)
    assert result.weights.dtype == weights.dtype, label
    assert (result.weights == weights).all(), label
    assert len(result.factors) == len(model.factors), label
    for k, (served, direct) in enumerate(zip(result.factors, model.factors)):
        direct = np.asarray(direct)
        assert served.shape == direct.shape, f"{label} mode {k}"
        assert (served == direct).all(), f"{label} mode {k}"


# --------------------------------------------------------------------- #
# Solo path
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_solo_bit_identical_to_direct_cp_als(backend):
    configs = []
    for index in range(4):
        rng = np.random.default_rng([MASTER_SEED, 50, index])
        shape = tuple(int(rng.integers(2, 6)) for _ in range(3))
        rank = int(rng.integers(1, 4))
        configs.append((index, shape, rank))
    with JobServer(ServeConfig(workers=2, batching=False,
                               max_threads=4)) as server:
        handles = [
            (
                server.submit(JobSpec(
                    rank=rank, tensor=draw_tensor(index, shape), seed=index,
                    n_iter_max=4, backend=backend, num_threads=2,
                )),
                index, shape, rank,
            )
            for index, shape, rank in configs
        ]
        for handle, index, shape, rank in handles:
            result = handle.result(timeout=60.0)
            assert result.group_size == 1 and not result.batched
            direct = cp_als(
                draw_tensor(index, shape), rank, n_iter_max=4,
                backend=backend, num_threads=2, rng=index,
            )
            assert_model_bits(
                result, direct.model,
                f"solo index={index} shape={shape} rank={rank} "
                f"backend={backend}",
            )
            assert result.fit == direct.final_fit
            assert result.iterations == direct.iterations


def test_solo_ref_job_bit_identical(tmp_path):
    from repro.io import save_tensor

    tensor = draw_tensor(7)
    ref = tmp_path / "tensor.npz"
    save_tensor(ref, tensor)
    with JobServer(ServeConfig(workers=1)) as server:
        handle = server.submit(
            JobSpec(rank=2, tensor_ref=str(ref), seed=7, n_iter_max=4)
        )
        result = handle.result(timeout=60.0)
    direct = cp_als(tensor, 2, n_iter_max=4, rng=7)
    assert_model_bits(result, direct.model, "ref job")


def test_solo_rerun_is_deterministic():
    tensor = draw_tensor(11)
    fits = []
    for _ in range(2):
        with JobServer(ServeConfig(workers=1)) as server:
            handle = server.submit(
                JobSpec(rank=3, tensor=tensor, seed=11, n_iter_max=4)
            )
            result = handle.result(timeout=60.0)
            fits.append((result.fit, result.weights.tobytes(),
                         tuple(f.tobytes() for f in result.factors)))
    assert fits[0] == fits[1]


# --------------------------------------------------------------------- #
# Coalesced path
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_coalesced_bit_identical_to_direct_fleet(backend):
    B = 5
    tensors = [draw_tensor(100 + b) for b in range(B)]
    seeds = [200 + b for b in range(B)]
    with JobServer(ServeConfig(workers=1, paused=True, batch_limit=8,
                               max_threads=4)) as server:
        handles = [
            server.submit(JobSpec(
                rank=2, tensor=tensors[b], seed=seeds[b], n_iter_max=4,
                backend=backend, num_threads=2,
            ))
            for b in range(B)
        ]
        server.resume()
        results = [h.result(timeout=60.0) for h in handles]
        log = server.dispatch_log()
    assert log == [("group",) + tuple(h.job_id for h in handles)]
    assert all(r.batched and r.group_size == B for r in results)
    direct = cp_als_fleet(
        tensors, 2, seeds=seeds, n_iter_max=4, backend=backend,
        num_threads=2,
    )
    for b, result in enumerate(results):
        assert_model_bits(
            result, direct.model(b), f"coalesced b={b} backend={backend}"
        )
        assert result.fit == float(direct.fits[b])
        assert result.iterations == int(direct.iterations[b])


def test_coalesced_group_respects_priority_order():
    # Higher-priority members are claimed first, so the fleet order —
    # and therefore the bits — is the priority order, not submission
    # order.  The oracle replays the dispatch log's actual order.
    B = 4
    tensors = [draw_tensor(300 + b) for b in range(B)]
    priorities = [0, 5, 1, 3]
    with JobServer(ServeConfig(workers=1, paused=True, batch_limit=8)) as server:
        handles = [
            server.submit(JobSpec(
                rank=2, tensor=tensors[b], seed=400 + b, n_iter_max=3,
                priority=priorities[b],
            ))
            for b in range(B)
        ]
        server.resume()
        for h in handles:
            h.wait(timeout=60.0)
        log = server.dispatch_log()
    assert len(log) == 1 and log[0][0] == "group"
    order = [int(jid.split("-")[1]) - 1 for jid in log[0][1:]]
    # Head = highest priority at pop time; claimed members follow in
    # priority order.
    assert order[0] == 1  # priority 5 submitted second
    assert order[1:] == [3, 2, 0]  # priorities 3, 1, 0
    direct = cp_als_fleet(
        [tensors[i] for i in order], 2, seeds=[400 + i for i in order],
        n_iter_max=3,
    )
    for pos, i in enumerate(order):
        result = handles[i].result(timeout=60.0)
        assert_model_bits(result, direct.model(pos), f"priority member {i}")


def test_mixed_solo_and_coalesced_batch():
    # One oversized (never coalesced) job among coalescible small ones:
    # the small ones group, the big one runs solo, and both equal their
    # direct counterparts.
    small = [draw_tensor(500 + b) for b in range(3)]
    big = draw_tensor(600, shape=(17, 16, 15))  # > max_item_elems below
    with JobServer(ServeConfig(workers=1, paused=True, batch_limit=8,
                               max_item_elems=1000)) as server:
        big_handle = server.submit(
            JobSpec(rank=2, tensor=big, seed=600, n_iter_max=3, priority=10)
        )
        small_handles = [
            server.submit(JobSpec(rank=2, tensor=small[b], seed=700 + b,
                                  n_iter_max=3))
            for b in range(3)
        ]
        server.resume()
        big_result = big_handle.result(timeout=60.0)
        small_results = [h.result(timeout=60.0) for h in small_handles]
        log = server.dispatch_log()
    assert log[0] == ("solo", big_handle.job_id)
    assert log[1] == ("group",) + tuple(h.job_id for h in small_handles)
    assert not big_result.batched
    direct_big = cp_als(big, 2, n_iter_max=3, rng=600)
    assert_model_bits(big_result, direct_big.model, "oversized solo")
    direct_fleet = cp_als_fleet(small, 2, seeds=[700, 701, 702], n_iter_max=3)
    for b, result in enumerate(small_results):
        assert result.batched
        assert_model_bits(result, direct_fleet.model(b), f"small member {b}")
