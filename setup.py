"""Setup shim for environments whose packaging stack predates PEP 660.

All real metadata lives in ``pyproject.toml``; this file only enables
legacy editable installs (``pip install -e . --no-use-pep517``) on offline
hosts without the ``wheel`` package.
"""

from setuptools import setup

setup()
