"""Package-wide thread-count configuration.

All parallel entry points in :mod:`repro.core` and :mod:`repro.cpd` accept
an explicit ``num_threads`` argument; when it is omitted they fall back to
the value configured here.  The default is the host CPU count (as an OpenMP
runtime would choose), overridable via the ``REPRO_NUM_THREADS`` environment
variable or programmatically.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = ["get_num_threads", "set_num_threads", "num_threads", "resolve_threads"]

_lock = threading.Lock()
_value: int | None = None


def _default() -> int:
    env = os.environ.get("REPRO_NUM_THREADS")
    if env:
        try:
            n = int(env)
            if n > 0:
                return n
        except ValueError:
            pass
    return os.cpu_count() or 1


def get_num_threads() -> int:
    """The current default thread count for parallel algorithms."""
    with _lock:
        return _value if _value is not None else _default()


def set_num_threads(n: int) -> None:
    """Set the package-wide default thread count."""
    n = int(n)
    if n <= 0:
        raise ValueError(f"thread count must be positive, got {n}")
    global _value
    with _lock:
        _value = n


@contextmanager
def num_threads(n: int):
    """Context manager scoping the default thread count.

    >>> with num_threads(4):
    ...     pass  # parallel calls in here default to 4 threads
    """
    global _value
    with _lock:
        previous = _value
    set_num_threads(n)
    try:
        yield
    finally:
        with _lock:
            _value = previous


def resolve_threads(num_threads_arg: int | None) -> int:
    """Normalize an optional per-call thread count against the default."""
    if num_threads_arg is None:
        return get_num_threads()
    n = int(num_threads_arg)
    if n <= 0:
        raise ValueError(f"num_threads must be positive, got {n}")
    return n
