"""Package-wide parallel-runtime configuration: worker count and backend.

All parallel entry points in :mod:`repro.core` and :mod:`repro.cpd` accept
an explicit ``num_threads`` argument; when it is omitted they fall back to
the value configured here.  The default is the host CPU count (as an OpenMP
runtime would choose), overridable via the ``REPRO_NUM_THREADS`` environment
variable or programmatically.

The **execution backend** selects how parallel regions run
(:mod:`repro.parallel.backend`):

* ``"thread"`` (default) — the persistent :class:`~repro.parallel.pool.ThreadPool`;
  overlap comes from NumPy kernels releasing the GIL;
* ``"process"`` — persistent worker processes over
  :mod:`multiprocessing.shared_memory` segments; Python-level hot loops
  (row-wise KRP with reuse, the internal-mode block loop, the multi-TTV
  GEMV loop) run free of the GIL.

Select with ``set_backend()`` / the ``use_backend()`` context manager, or
the ``REPRO_BACKEND`` environment variable.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = [
    "get_num_threads",
    "set_num_threads",
    "num_threads",
    "resolve_threads",
    "BACKENDS",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
]

_lock = threading.Lock()
_value: int | None = None


def _default() -> int:
    env = os.environ.get("REPRO_NUM_THREADS")
    if env:
        try:
            n = int(env)
            if n > 0:
                return n
        except ValueError:
            pass
    return os.cpu_count() or 1


def get_num_threads() -> int:
    """The current default thread count for parallel algorithms."""
    with _lock:
        return _value if _value is not None else _default()


def set_num_threads(n: int) -> None:
    """Set the package-wide default thread count."""
    n = int(n)
    if n <= 0:
        raise ValueError(f"thread count must be positive, got {n}")
    global _value
    with _lock:
        _value = n


@contextmanager
def num_threads(n: int):
    """Context manager scoping the default thread count.

    >>> with num_threads(4):
    ...     pass  # parallel calls in here default to 4 threads
    """
    global _value
    with _lock:
        previous = _value
    set_num_threads(n)
    try:
        yield
    finally:
        with _lock:
            _value = previous


def resolve_threads(num_threads_arg: int | None) -> int:
    """Normalize an optional per-call thread count against the default."""
    if num_threads_arg is None:
        return get_num_threads()
    n = int(num_threads_arg)
    if n <= 0:
        raise ValueError(f"num_threads must be positive, got {n}")
    return n


# --------------------------------------------------------------------- #
# Execution backend selection
# --------------------------------------------------------------------- #

BACKENDS = ("thread", "process")

_backend_value: str | None = None


def _check_backend(name: str) -> str:
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def _default_backend() -> str:
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if env in BACKENDS:
        return env
    return "thread"


def get_backend() -> str:
    """The current default execution backend (``"thread"`` or ``"process"``)."""
    with _lock:
        return _backend_value if _backend_value is not None else _default_backend()


def set_backend(name: str) -> None:
    """Set the package-wide default execution backend."""
    name = _check_backend(name)
    global _backend_value
    with _lock:
        _backend_value = name


@contextmanager
def use_backend(name: str):
    """Context manager scoping the default execution backend.

    >>> with use_backend("process"):
    ...     pass  # parallel regions in here run on the process backend
    """
    global _backend_value
    with _lock:
        previous = _backend_value
    set_backend(name)
    try:
        yield
    finally:
        with _lock:
            _backend_value = previous


def resolve_backend(backend_arg: str | None) -> str:
    """Normalize an optional per-call backend name against the default."""
    if backend_arg is None:
        return get_backend()
    return _check_backend(backend_arg)
