"""Execution-backend abstraction: thread-pool and shared-memory process-pool.

The paper's parallel regions assume an OpenMP-style executor: a persistent
team of ``T`` workers, contiguous static (or chunked dynamic) worksharing,
thread-private outputs, and a final reduction.  :class:`Executor` captures
exactly that contract, with two implementations:

* :class:`ThreadExecutor` — the existing persistent
  :class:`~repro.parallel.pool.ThreadPool`.  NumPy's BLAS kernels release
  the GIL, so the GEMM-bound phases overlap; the *Python-level* loops
  (row-wise KRP with reuse, the internal-mode block loop, the multi-TTV
  GEMV loop) serialize on the GIL.
* :class:`ProcessExecutor` — a persistent team of worker **processes**.
  Operands and private outputs live in :mod:`multiprocessing.shared_memory`
  segments (:mod:`repro.parallel.shm`), viewed zero-copy on both sides, so
  regions ship only a function reference plus small argument descriptors —
  and the Python-level loops run with one GIL *per worker*.

Region kernels have the signature ``fn(worker, start, stop, *args)`` over a
half-open item range.  Under the process backend ``fn`` must be picklable
(a module-level function) and every :class:`numpy.ndarray`,
:class:`~repro.tensor.dense.DenseTensor`, or (nested) list/tuple of arrays
in ``args`` is transparently re-materialized in the workers as a view of
shared memory.  Arrays a worker must *write* (private outputs, timing
scratch) have to come from :meth:`Executor.allocate_private` /
:meth:`Executor.allocate_shared`, which the process backend serves straight
from the arena so parent and workers address the same pages.

Observability (:mod:`repro.obs`) flows through both backends: the thread
backend records regions in the pool as before; the process backend collects
spans and counters inside each worker under a region-local tracer, ships
them back on the results channel, and replays them into the parent tracer —
so Chrome traces and imbalance metrics stay complete either way.

Backend selection: :func:`get_executor` honours the package default from
:mod:`repro.parallel.config` (``set_backend()`` / ``use_backend()`` /
``REPRO_BACKEND=thread|process``); kernels in :mod:`repro.core` and the
CP-ALS driver dispatch through it.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
import traceback
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

import numpy as np

from repro.obs.tracer import get_tracer
from repro.parallel.config import resolve_backend, resolve_threads
from repro.parallel.partition import contiguous_blocks
from repro.parallel.pool import ThreadPool, WorkerError, get_pool
from repro.parallel.reduction import parallel_reduce
from repro.parallel.shm import ShmArena, ShmHandle, attach

__all__ = [
    "Executor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "reset_worker_runtime_state",
    "shutdown_all_executors",
]

_clock = time.perf_counter

# Set in worker processes: forbids spawning nested process teams from
# inside a region kernel.
_IN_WORKER = False


def _default_chunk(num_items: int, num_workers: int) -> int:
    return max(num_items // (8 * num_workers), 1)


class Executor(ABC):
    """An OpenMP-style parallel-region executor (see module docstring)."""

    #: Backend name, ``"thread"`` or ``"process"``.
    backend: str = ""
    #: Worker-team size ``T``.
    num_workers: int = 1

    @abstractmethod
    def parallel_for(
        self,
        fn: Callable[..., None],
        num_items: int,
        *,
        args: Sequence = (),
        schedule: str = "static",
        chunk: int | None = None,
        label: str | None = None,
    ) -> None:
        """Run ``fn(worker, start, stop, *args)`` over ``[0, num_items)``.

        ``schedule="static"`` gives each worker one contiguous ceiling
        block (the paper's ``b = ceil(I/T)``); ``"dynamic"`` lets workers
        claim fixed-size chunks from a shared cursor.  Blocks until the
        region completes; worker exceptions re-raise here as
        :class:`~repro.parallel.pool.WorkerError` (first worker's error,
        with the rest attached as ``.others``).
        """

    @abstractmethod
    def allocate_shared(self, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Zero-initialized array whose worker writes the caller can read."""

    def allocate_private(
        self, copies: int, shape: tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        """Per-worker private output buffers: a ``(copies, *shape)`` array.

        ``buffers[t]`` is worker ``t``'s private slab (Alg. 3's ``M_t``);
        the backend guarantees worker writes are visible to the caller.
        """
        copies = int(copies)
        if copies <= 0:
            raise ValueError(f"copies must be positive, got {copies}")
        return self.allocate_shared((copies,) + tuple(shape), dtype)

    def owns_shared(self, array: np.ndarray) -> bool:
        """Whether worker writes to ``array`` are visible to the caller.

        True for every array on the thread backend; on the process backend
        only for arrays served by :meth:`allocate_shared` /
        :meth:`allocate_private` (views of the executor's arena).
        """
        return True

    @abstractmethod
    def reduce(self, buffers: np.ndarray, label: str | None = None) -> np.ndarray:
        """Tree-sum ``buffers`` over axis 0 (Alg. 3 line 19); returns the total.

        The reduction tree has the same pairing structure on every backend,
        so results are bit-identical across backends for a fixed ``T``.
        """

    @abstractmethod
    def shutdown(self) -> None:
        """Release workers and any shared segments.  Idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        # Mirrors ThreadPool ownership semantics: executors handed out by
        # the get_executor cache are shared and survive `with` blocks.
        if not getattr(self, "_shared", False):
            self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_workers={self.num_workers})"


class ThreadExecutor(Executor):
    """Executor over the persistent :class:`ThreadPool` (default backend)."""

    backend = "thread"

    def __init__(self, num_workers: int | None = None, pool: ThreadPool | None = None):
        if pool is not None:
            self._pool = pool
        else:
            self._pool = get_pool(resolve_threads(num_workers))
        self.num_workers = self._pool.num_threads

    def parallel_for(
        self,
        fn: Callable[..., None],
        num_items: int,
        *,
        args: Sequence = (),
        schedule: str = "static",
        chunk: int | None = None,
        label: str | None = None,
    ) -> None:
        if args:
            work = lambda t, lo, hi: fn(t, lo, hi, *args)  # noqa: E731
        else:
            work = fn
        self._pool.parallel_for(
            work, num_items, schedule=schedule, chunk=chunk, label=label
        )

    def allocate_shared(self, shape, dtype=np.float64) -> np.ndarray:
        # When the sanitizer is on, shared allocations come back
        # instrumented so worker writes are race-checked at the barrier;
        # wrap() is the identity when it is off.
        from repro.analysis.sanitizer import get_sanitizer

        return get_sanitizer().wrap(np.zeros(tuple(shape), dtype=dtype))

    def reduce(self, buffers: np.ndarray, label: str | None = None) -> np.ndarray:
        return parallel_reduce(buffers, self._pool)

    def shutdown(self) -> None:
        self._shut = True
        _evict_cached_executor(self)
        self._pool.shutdown()


# --------------------------------------------------------------------- #
# Process backend
# --------------------------------------------------------------------- #

_ARR, _TENSOR, _SEQ, _VAL = "arr", "tensor", "seq", "val"


def _k_reduce_level(worker, start, stop, buffers, pairs):
    """One level of the reduction tree: disjoint ``dst += src`` pairs."""
    for i in range(start, stop):
        dst, src = int(pairs[i, 0]), int(pairs[i, 1])
        buffers[dst] += buffers[src]


class ProcessExecutor(Executor):
    """Persistent worker-process team over shared-memory operands.

    Parameters
    ----------
    num_workers:
        Team size; defaults to the package-wide thread count.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``REPRO_MP_START``
        or ``"fork"`` where available (instant worker startup; workers
        reset inherited runtime state), else ``"spawn"``.

    A team with ``num_workers == 1`` runs regions inline, exactly like a
    one-thread :class:`ThreadPool` — no processes, no segments.
    """

    backend = "process"

    def __init__(self, num_workers: int | None = None, start_method: str | None = None):
        if _IN_WORKER:
            raise RuntimeError(
                "nested parallel region: cannot create a process team "
                "inside a process-backend worker"
            )
        self.num_workers = resolve_threads(num_workers)
        self._pid = os.getpid()
        self._region_lock = threading.Lock()
        self._shut = False
        self._arena: ShmArena | None = None
        self._procs: list = []
        self._conns: list = []
        if self.num_workers == 1:
            return
        import multiprocessing as mp

        if start_method is None:
            start_method = os.environ.get("REPRO_MP_START", "").strip() or None
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self._arena = ShmArena()
        # Shared cursor for the dynamic schedule: created once (so it works
        # under fork inheritance and spawn argument passing alike), reset
        # by the parent before each dynamic region.
        self._cursor = ctx.Value("q", 0, lock=True)
        try:
            for rank in range(self.num_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(rank, child_conn, self._cursor),
                    name=f"repro-procpool-{rank}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except BaseException:
            self.shutdown()
            raise

    # -- argument marshalling ------------------------------------------ #

    def _marshal(self, obj):
        from repro.tensor.dense import DenseTensor

        if isinstance(obj, np.ndarray):
            return (_ARR, self._arena.export(obj))
        if isinstance(obj, DenseTensor):
            return (_TENSOR, self._arena.export(obj.data), obj.shape)
        if isinstance(obj, (list, tuple)) and any(
            isinstance(x, (np.ndarray, DenseTensor, list, tuple)) for x in obj
        ):
            return (_SEQ, type(obj) is tuple, [self._marshal(x) for x in obj])
        return (_VAL, obj)

    # -- region launch -------------------------------------------------- #

    def parallel_for(
        self,
        fn: Callable[..., None],
        num_items: int,
        *,
        args: Sequence = (),
        schedule: str = "static",
        chunk: int | None = None,
        label: str | None = None,
    ) -> None:
        num_items = int(num_items)
        if num_items < 0:
            raise ValueError(f"num_items must be non-negative, got {num_items}")
        if schedule not in ("static", "dynamic"):
            raise ValueError(
                f"schedule must be 'static' or 'dynamic', got {schedule!r}"
            )
        if schedule == "dynamic":
            if chunk is None:
                chunk = _default_chunk(num_items, self.num_workers)
            chunk = int(chunk)
            if chunk <= 0:
                raise ValueError(f"chunk must be positive, got {chunk}")
        if self._shut:
            raise RuntimeError("executor has been shut down")
        if self.num_workers == 1:
            self._run_inline(fn, num_items, args, schedule, chunk)
            return
        with self._region_lock:
            self._launch(fn, num_items, args, schedule, chunk, label)

    def _run_inline(self, fn, num_items, args, schedule, chunk) -> None:
        if num_items == 0:
            return
        if schedule == "static":
            fn(0, 0, num_items, *args)
            return
        for start in range(0, num_items, chunk):
            fn(0, start, min(start + chunk, num_items), *args)

    def _launch(self, fn, num_items, args, schedule, chunk, label) -> None:
        tracer = get_tracer()
        name = label or "pool.region"
        spec = [self._marshal(a) for a in args]
        if schedule == "static":
            ranges = contiguous_blocks(num_items, self.num_workers)
            plans = [("static", ranges[rank]) for rank in range(self.num_workers)]
        else:
            with self._cursor.get_lock():
                self._cursor.value = 0
            plans = [("dynamic", num_items, chunk)] * self.num_workers
        try:
            payloads = [
                pickle.dumps(("region", fn, spec, plans[rank], tracer.enabled))
                for rank in range(self.num_workers)
            ]
        except Exception as exc:
            raise TypeError(
                f"process backend requires a picklable region kernel and "
                f"arguments (module-level function, no closures): {exc}"
            ) from exc

        region_start = _clock()
        for conn, payload in zip(self._conns, payloads):
            conn.send_bytes(payload)

        errors: list[WorkerError] = []
        worker_seconds: list[float] = []
        replays: list[tuple[int, list, dict]] = []
        try:
            for rank, conn in enumerate(self._conns):
                msg = self._recv(rank, conn)
                kind, elapsed = msg[0], msg[1]
                if kind == "done":
                    _, _, spans, counters = msg
                    worker_seconds.append(elapsed)
                    replays.append((rank, spans, counters))
                else:
                    _, _, exc_bytes, exc_repr, tb_text = msg
                    original = _revive_exception(exc_bytes, exc_repr, tb_text)
                    errors.append(WorkerError(rank, original))
        except WorkerError:
            # A worker *process* died (not a Python exception in a kernel):
            # the team is desynchronized beyond repair — tear it down so
            # later regions fail fast instead of reading stale replies.
            self.shutdown()
            raise
        region_end = _clock()

        if tracer.enabled:
            for rank, spans, counters in replays:
                for sname, s0, s1, sargs, scounters in spans:
                    sargs = dict(sargs)
                    sargs.setdefault("worker", rank)
                    sp = tracer.record(sname, s0, s1, **sargs)
                    for key, value in scounters.items():
                        sp.add(key, value)
                for key, value in counters.items():
                    tracer.add_counter(key, value)
            tracer.record_region(name, region_start, region_end, worker_seconds)

        if errors:
            errors.sort(key=lambda e: e.worker)
            err = errors[0]
            err.others = tuple(errors[1:])
            raise err from err.original

    def _recv(self, rank: int, conn):
        proc = self._procs[rank]
        while not conn.poll(0.05):
            if not proc.is_alive():
                # One last drain: the worker may have replied just before
                # exiting (e.g. killed between send and the next recv).
                if conn.poll(0):
                    break
                raise WorkerError(
                    rank,
                    RuntimeError(
                        f"process worker {rank} died unexpectedly "
                        f"(exitcode={proc.exitcode})"
                    ),
                )
        try:
            return pickle.loads(conn.recv_bytes())
        except (EOFError, ConnectionError) as exc:
            raise WorkerError(
                rank,
                RuntimeError(
                    f"process worker {rank} closed its channel mid-region "
                    f"({exc!r}, exitcode={proc.exitcode})"
                ),
            ) from None

    # -- shared allocations and reduction ------------------------------- #

    def allocate_shared(self, shape, dtype=np.float64) -> np.ndarray:
        if self.num_workers == 1:
            return np.zeros(tuple(shape), dtype=dtype)
        view, _ = self._arena.allocate(tuple(shape), dtype)
        return view

    def owns_shared(self, array: np.ndarray) -> bool:
        return self.num_workers == 1 or self._arena.owns(array)

    def reduce(self, buffers: np.ndarray, label: str | None = None) -> np.ndarray:
        buffers = np.asarray(buffers)
        if buffers.ndim < 1 or buffers.shape[0] == 0:
            raise ValueError("buffers must have a leading axis of size >= 1")
        T = buffers.shape[0]
        if T == 1:
            return buffers[0]
        if self.num_workers == 1:
            np.sum(buffers, axis=0, out=buffers[0])
            return buffers[0]
        if not self._arena.owns(buffers):
            # Copy once into the arena so the tree levels run shared.
            shared = self.allocate_shared(buffers.shape, buffers.dtype)
            np.copyto(shared, buffers)
            buffers = shared
        stride = 1
        while stride < T:
            pairs = np.array(
                [(t, t + stride) for t in range(0, T - stride, 2 * stride)],
                dtype=np.int64,
            )
            self.parallel_for(
                _k_reduce_level,
                len(pairs),
                args=(buffers, pairs),
                label=label or "reduce.tree",
            )
            stride *= 2
        return buffers[0]

    # -- lifetime -------------------------------------------------------- #

    def shutdown(self) -> None:
        if self._shut or os.getpid() != self._pid:
            # Never tear down a parent's team (or unlink its segments)
            # from a forked child.
            return
        self._shut = True
        _evict_cached_executor(self)
        for conn in self._conns:
            try:
                conn.send_bytes(pickle.dumps(("stop",)))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._conns.clear()
        self._procs.clear()
        if self._arena is not None:
            self._arena.close()


def _revive_exception(exc_bytes, exc_repr: str, tb_text: str) -> BaseException:
    original: BaseException | None = None
    if exc_bytes is not None:
        try:
            original = pickle.loads(exc_bytes)
        except Exception:
            original = None
    if original is None:
        original = RuntimeError(f"{exc_repr}\n{tb_text}")
    else:
        original.worker_traceback = tb_text
    return original


# --------------------------------------------------------------------- #
# Worker process main loop
# --------------------------------------------------------------------- #


def reset_worker_runtime_state(
    *,
    num_threads: int | None = 1,
    blas_threads: int | None = 1,
    leaf_worker: bool = True,
) -> None:
    """Give a (possibly forked) worker process a clean parallel/obs runtime.

    Under ``fork`` the child inherits the parent's pool caches (whose
    threads do not exist here), executor caches (whose pipes belong to
    the parent), and active tracer.  All are reset.  Two kinds of worker
    call this:

    * **executor workers** (:func:`_worker_main`, the leaves of a
      :class:`ProcessExecutor` team) — the defaults: one thread, one
      BLAS thread, and ``leaf_worker=True`` so nested process teams are
      forbidden;
    * **service workers** (:mod:`repro.serve.worker`) — intermediate
      processes that *run whole decompositions* and may legitimately
      spawn their own executor teams: they pass ``leaf_worker=False``
      and leave the thread counts to the job's resource budget
      (``num_threads=None`` keeps the inherited package default, so a
      job's result matches a direct in-parent call bit-for-bit).
    """
    global _IN_WORKER
    _IN_WORKER = bool(leaf_worker)
    from repro.obs import tracer as tracer_mod
    from repro.parallel import pool as pool_mod
    from repro.parallel.config import set_num_threads

    with _executor_cache_lock:
        _executor_cache.clear()
    pool_mod._pool_cache.clear()
    tracer_mod.disable()
    if num_threads is not None:
        set_num_threads(num_threads)
    if blas_threads is not None:
        try:
            # One BLAS thread per leaf worker: the team supplies the
            # parallelism; T workers x T BLAS threads would oversubscribe.
            from repro.parallel.blas import set_blas_threads

            set_blas_threads(blas_threads)
        except Exception:  # pragma: no cover - best-effort
            pass


def _resolve(spec, cache):
    from repro.tensor.dense import DenseTensor

    kind = spec[0]
    if kind == _ARR:
        return attach(spec[1], cache)
    if kind == _TENSOR:
        return DenseTensor(attach(spec[1], cache), spec[2])
    if kind == _SEQ:
        seq = [_resolve(x, cache) for x in spec[2]]
        return tuple(seq) if spec[1] else seq
    return spec[1]


def _dump_spans(tracer) -> tuple[list, dict]:
    spans = [
        (sp.name, sp.start, sp.end, sp.args, sp.counters)
        for sp in tracer.spans()
    ]
    return spans, dict(tracer.counters)


def _worker_main(rank: int, conn, cursor) -> None:
    reset_worker_runtime_state()
    from repro.obs.tracer import Tracer, disable as tracer_disable, enable as tracer_enable

    attachments: dict = {}
    while True:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):
            break
        try:
            msg = pickle.loads(payload)
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            # An undecodable region message (e.g. a kernel defined in an
            # unimportable __main__) must not kill the worker: report it
            # and stay in the loop.
            reply = (
                "error", 0.0, None, repr(exc),
                f"worker {rank} could not unpickle the region message "
                f"(is the kernel a module-level function?):\n"
                f"{traceback.format_exc()}",
            )
            conn.send_bytes(pickle.dumps(reply))
            continue
        if msg[0] == "stop":
            break
        _, fn, spec, plan, trace = msg
        t0 = _clock()
        local_tracer = None
        try:
            args = [_resolve(s, attachments) for s in spec]
            if trace:
                local_tracer = tracer_enable(Tracer())
            if plan[0] == "static":
                start, stop = plan[1]
                if start < stop:
                    fn(rank, start, stop, *args)
            else:
                num_items, chunk = plan[1], plan[2]
                while True:
                    with cursor.get_lock():
                        start = cursor.value
                        if start >= num_items:
                            break
                        cursor.value = stop = min(start + chunk, num_items)
                    fn(rank, start, stop, *args)
            elapsed = _clock() - t0
            spans, counters = (
                _dump_spans(local_tracer) if local_tracer is not None else ([], {})
            )
            reply = ("done", elapsed, spans, counters)
        except BaseException as exc:  # noqa: BLE001 - reraised in parent
            elapsed = _clock() - t0
            tb_text = traceback.format_exc()
            try:
                exc_bytes = pickle.dumps(exc)
            except Exception:
                exc_bytes = None
            reply = ("error", elapsed, exc_bytes, repr(exc), tb_text)
        finally:
            if local_tracer is not None:
                tracer_disable()
        try:
            conn.send_bytes(pickle.dumps(reply))
        except Exception:  # pragma: no cover - parent went away
            break


# --------------------------------------------------------------------- #
# Shared executor cache
# --------------------------------------------------------------------- #

_executor_cache: dict[tuple[str, int], Executor] = {}
_executor_cache_lock = threading.Lock()


def _evict_cached_executor(executor: Executor) -> None:
    with _executor_cache_lock:
        key = (executor.backend, executor.num_workers)
        if _executor_cache.get(key) is executor:
            del _executor_cache[key]


def get_executor(
    num_workers: int | None = None, backend: str | None = None
) -> Executor:
    """Return the shared executor for ``(backend, num_workers)``.

    ``backend`` defaults to the package-wide setting
    (:func:`repro.parallel.config.get_backend` — ``REPRO_BACKEND``);
    ``num_workers`` to the package-wide thread count.  Like
    :func:`~repro.parallel.pool.get_pool`, the returned executor is owned
    by the cache: a ``with`` block does not shut it down; call
    :meth:`Executor.shutdown` or :func:`shutdown_all_executors` to retire
    it (which also evicts it deterministically).
    """
    name = resolve_backend(backend)
    T = resolve_threads(num_workers)
    key = (name, T)
    with _executor_cache_lock:
        cached = _executor_cache.get(key)
        if cached is not None and not getattr(cached, "_shut", False):
            return cached
    # Construct outside the lock: process-team startup can take a while.
    executor: Executor = (
        ThreadExecutor(T) if name == "thread" else ProcessExecutor(T)
    )
    executor._shared = True
    with _executor_cache_lock:
        cached = _executor_cache.get(key)
        if cached is not None and not getattr(cached, "_shut", False):
            racing = executor
        else:
            _executor_cache[key] = executor
            racing = None
    if racing is not None:
        racing._shared = False
        racing.shutdown()
        with _executor_cache_lock:
            return _executor_cache[key]
    return executor


def shutdown_all_executors() -> None:
    """Shut down and drop every cached executor (used by tests and atexit)."""
    with _executor_cache_lock:
        executors = list(_executor_cache.values())
        _executor_cache.clear()
    for executor in executors:
        executor.shutdown()


atexit.register(shutdown_all_executors)
