"""A persistent worker-thread pool with an OpenMP-style ``parallel_for``.

The paper's algorithms are structured as OpenMP ``parallel for`` regions
with static contiguous scheduling, thread-private temporaries, and a final
reduction.  :class:`ThreadPool` reproduces that structure:

* workers are created once and persist across regions (like an OpenMP
  runtime's thread team), so region launch overhead is a couple of
  condition-variable signals rather than thread creation;
* :meth:`ThreadPool.parallel_for` runs ``fn(t, start, stop)`` on every
  thread ``t`` with the contiguous block schedule of
  :func:`repro.parallel.partition.contiguous_blocks`;
* :meth:`ThreadPool.run_tasks` runs one arbitrary callable per thread
  (used for irregular regions such as the internal-mode block loop).

NumPy's BLAS kernels and most elementwise ufuncs release the GIL, so worker
threads overlap on real multi-core machines.  On a single-core host the pool
still executes correctly (and is exercised by the tests); wall-clock scaling
is then evaluated through :mod:`repro.machine`.

Exceptions raised inside workers are captured and re-raised in the calling
thread after the region completes, with the worker index attached.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence

from repro.analysis.sanitizer import get_sanitizer
from repro.obs.tracer import get_tracer
from repro.parallel.partition import contiguous_blocks

__all__ = ["ThreadPool", "get_pool", "shutdown_all_pools"]


class WorkerError(RuntimeError):
    """An exception raised by a pool worker, annotated with its index.

    Attributes
    ----------
    worker:
        Index of the worker that raised.
    original:
        The exception the worker raised.  It is also installed as this
        error's ``__cause__`` (so tracebacks show the worker-side frames).
    others:
        :class:`WorkerError` instances from any *other* workers that failed
        in the same region — a multi-worker failure loses no information.
    """

    def __init__(self, worker: int, original: BaseException) -> None:
        super().__init__(f"worker {worker} raised {original!r}")
        self.worker = worker
        self.original = original
        self.others: tuple["WorkerError", ...] = ()


class ThreadPool:
    """Persistent team of ``num_threads`` worker threads.

    The calling thread never executes region work itself; this keeps the
    mapping ``worker index == thread index`` stable across regions, which
    the algorithms rely on for private-buffer indexing.

    A pool with ``num_threads == 1`` short-circuits: regions run inline on
    the calling thread with zero synchronization overhead, so sequential
    benchmarks measure pure algorithm time.
    """

    def __init__(self, num_threads: int) -> None:
        num_threads = int(num_threads)
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        self.num_threads = num_threads
        self._lock = threading.Lock()
        self._work_cv = threading.Condition(self._lock)
        self._done_cv = threading.Condition(self._lock)
        # Serializes whole region launches: two caller threads sharing one
        # pool take turns instead of corrupting _tasks/_pending/_generation.
        self._region_lock = threading.Lock()
        self._worker_idents: frozenset[int] = frozenset()
        self._tasks: Sequence[Callable[[], None]] | None = None
        self._generation = 0
        self._pending = 0
        self._errors: list[WorkerError] = []
        self._shutdown = False
        self._shared = False  # True for pools owned by the get_pool cache
        self._threads: list[threading.Thread] = []
        if num_threads > 1:
            for t in range(num_threads):
                th = threading.Thread(
                    target=self._worker_loop,
                    args=(t,),
                    name=f"repro-pool-{id(self):x}-{t}",
                    daemon=True,
                )
                th.start()
                self._threads.append(th)
            # Frozen after startup: membership tests need no locking.  Set
            # before any region can run, so a worker that launches a nested
            # region is always recognized.
            self._worker_idents = frozenset(
                th.ident for th in self._threads if th.ident is not None
            )

    # ------------------------------------------------------------------ #

    def _worker_loop(self, index: int) -> None:
        seen_generation = 0
        while True:
            with self._work_cv:
                while self._generation == seen_generation and not self._shutdown:
                    self._work_cv.wait()
                if self._shutdown:
                    return
                seen_generation = self._generation
                task = self._tasks[index] if self._tasks else None
            error: WorkerError | None = None
            if task is not None:
                try:
                    task()
                except BaseException as exc:  # noqa: BLE001 - reraised in caller
                    error = WorkerError(index, exc)
            with self._done_cv:
                if error is not None:
                    self._errors.append(error)
                self._pending -= 1
                if self._pending == 0:
                    self._done_cv.notify_all()

    def run_tasks(
        self,
        tasks: Sequence[Callable[[], None]],
        label: str | None = None,
    ) -> None:
        """Execute one callable per thread; blocks until all complete.

        ``tasks`` must have exactly ``num_threads`` entries; ``None``
        entries are allowed and mean "this thread idles this region".

        When tracing is enabled (:mod:`repro.obs`), the region is recorded
        as a span named ``label`` (default ``"pool.region"``) carrying the
        per-worker wall times and the load-imbalance metric (max/mean
        worker time), plus one child span per participating worker on that
        worker's own thread lane.  With tracing disabled this adds one
        attribute check to the region launch.
        """
        if len(tasks) != self.num_threads:
            raise ValueError(
                f"expected {self.num_threads} tasks, got {len(tasks)}"
            )
        if self._shutdown:
            raise RuntimeError("pool has been shut down")
        tracer = get_tracer()
        name = label or "pool.region"
        if not tracer.enabled:
            self._dispatch(tasks, name)
            return
        times: list[float | None] = [None] * self.num_threads

        def timed(index: int, task: Callable[[], None]) -> Callable[[], None]:
            def run() -> None:
                start = time.perf_counter()
                try:
                    with tracer.span(f"{name}.worker", worker=index):
                        task()
                finally:
                    times[index] = time.perf_counter() - start

            return run

        wrapped = [
            None if task is None else timed(i, task)
            for i, task in enumerate(tasks)
        ]
        region_start = time.perf_counter()
        try:
            self._dispatch(wrapped, name)
        finally:
            tracer.record_region(
                name,
                region_start,
                time.perf_counter(),
                [s for s in times if s is not None],
            )

    def _dispatch(
        self,
        tasks: Sequence[Callable[[], None] | None],
        label: str,
    ) -> None:
        """Run a region, bracketed by the write-set sanitizer when enabled.

        Each task's thread is tagged with its worker index for the duration
        of the task, so writes to instrumented arrays attribute correctly;
        the region barrier then asserts pairwise disjointness of the
        recorded write sets (:mod:`repro.analysis.sanitizer`).  The check
        only runs when the region itself succeeded — a ``WorkerError`` must
        surface unmasked.
        """
        san = get_sanitizer()
        if not san.enabled:
            self._execute(tasks)
            return

        def tagged(index: int, task: Callable[[], None]) -> Callable[[], None]:
            def run() -> None:
                san.set_worker(index)
                try:
                    task()
                finally:
                    san.set_worker(None)

            return run

        wrapped = [
            None if task is None else tagged(i, task)
            for i, task in enumerate(tasks)
        ]
        san.region_begin(label)
        ok = False
        try:
            self._execute(wrapped)
            ok = True
        finally:
            san.region_end(label, check=ok)

    def _execute(self, tasks: Sequence[Callable[[], None] | None]) -> None:
        if self.num_threads == 1:
            if tasks[0] is not None:
                tasks[0]()
            return
        if threading.get_ident() in self._worker_idents:
            # A worker of *this* pool launching a region on it would wait
            # forever for itself; fail fast instead (nested parallelism
            # needs a different pool, as with OpenMP nested teams).
            raise RuntimeError(
                "nested parallel region: a worker of this pool cannot "
                "launch a region on its own pool; use a separate pool "
                "(or backend) for nested parallelism"
            )
        # The region lock serializes concurrent launches from independent
        # caller threads — without it they interleave on _tasks/_pending/
        # _generation and both regions misbehave.
        with self._region_lock:
            with self._work_cv:
                if self._shutdown:
                    raise RuntimeError("pool has been shut down")
                self._tasks = tasks
                self._errors = []
                self._pending = self.num_threads
                self._generation += 1
                self._work_cv.notify_all()
            with self._done_cv:
                while self._pending > 0:
                    self._done_cv.wait()
                errors = self._errors
                self._tasks = None
        if errors:
            errors.sort(key=lambda e: e.worker)
            err = errors[0]
            err.others = tuple(errors[1:])
            # Chain so the worker-side traceback survives re-raising here.
            raise err from err.original

    def parallel_for(
        self,
        fn: Callable[[int, int, int], None],
        num_items: int,
        schedule: str = "static",
        chunk: int | None = None,
        label: str | None = None,
    ) -> None:
        """OpenMP-style worksharing loop: ``fn(t, start, stop)`` per chunk.

        Parameters
        ----------
        fn:
            Receives the worker index and a contiguous half-open item
            range.  Under the static schedule each thread is invoked at
            most once (with its whole block); under the dynamic schedule a
            thread may be invoked many times with successive chunks.
        num_items:
            Iteration-space size.
        schedule:
            ``"static"`` — contiguous ceiling blocks (the paper's
            ``b = ceil(I/T)``; default, zero coordination);
            ``"dynamic"`` — threads self-schedule fixed-size chunks from a
            shared counter (OpenMP's ``schedule(dynamic, chunk)``), useful
            when per-item cost varies (e.g. matricization blocks of a
            ragged workload).
        chunk:
            Dynamic chunk size; defaults to
            ``max(num_items // (8 * num_threads), 1)``.
        label:
            Region name used when tracing is enabled (see
            :meth:`run_tasks`).
        """
        if schedule == "static":
            blocks = contiguous_blocks(num_items, self.num_threads)
            tasks: list[Callable[[], None] | None] = []
            for t, (start, stop) in enumerate(blocks):
                if start >= stop:
                    tasks.append(None)
                else:
                    tasks.append(
                        lambda t=t, start=start, stop=stop: fn(t, start, stop)
                    )
            self.run_tasks(tasks, label=label)
            return
        if schedule != "dynamic":
            raise ValueError(
                f"schedule must be 'static' or 'dynamic', got {schedule!r}"
            )
        num_items = int(num_items)
        if num_items < 0:
            raise ValueError(f"num_items must be non-negative, got {num_items}")
        if chunk is None:
            chunk = max(num_items // (8 * self.num_threads), 1)
        chunk = int(chunk)
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        cursor_lock = threading.Lock()
        cursor = 0

        def worker_loop(t: int) -> None:
            nonlocal cursor
            while True:
                with cursor_lock:
                    start = cursor
                    if start >= num_items:
                        return
                    cursor = stop = min(start + chunk, num_items)
                fn(t, start, stop)

        self.run_tasks(
            [lambda t=t: worker_loop(t) for t in range(self.num_threads)],
            label=label,
        )

    def shutdown(self) -> None:
        """Terminate worker threads.  The pool cannot be used afterwards.

        A shut-down pool is also evicted from the :func:`get_pool` cache
        (deterministically, for every thread count including 1), so the
        next :func:`get_pool` call builds a fresh pool rather than finding
        a dead one.
        """
        _evict_cached_pool(self)
        if self.num_threads == 1:
            self._shutdown = True
            return
        with self._work_cv:
            if self._shutdown:
                return
            self._shutdown = True
            self._work_cv.notify_all()
        for th in self._threads:
            th.join(timeout=5.0)

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(self, *exc) -> None:
        # Shared pools (handed out by get_pool) are owned by the cache, not
        # by any one `with` block: exiting the block must not tear down a
        # pool other callers may hold.  Call shutdown() explicitly to
        # retire a shared pool (which also evicts it from the cache).
        if not self._shared:
            self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadPool(num_threads={self.num_threads})"


_pool_cache: dict[int, ThreadPool] = {}
_pool_cache_lock = threading.Lock()


def _evict_cached_pool(pool: ThreadPool) -> None:
    """Drop ``pool`` from the cache if it is the cached entry for its size."""
    with _pool_cache_lock:
        if _pool_cache.get(pool.num_threads) is pool:
            del _pool_cache[pool.num_threads]


def get_pool(num_threads: int) -> ThreadPool:
    """Return a shared persistent pool with ``num_threads`` workers.

    Pools are cached per thread count (mirroring an OpenMP runtime that
    keeps its thread team alive between parallel regions), so benchmark
    loops do not pay thread-creation costs per call.

    Ownership: the returned pool belongs to the cache.  Using it as a
    context manager is allowed (``with get_pool(4) as pool: ...``) but the
    ``with`` block does **not** shut the pool down on exit — otherwise one
    caller's block would silently retire the pool for every later caller.
    Call :meth:`ThreadPool.shutdown` (or :func:`shutdown_all_pools`) to
    retire it explicitly; that also evicts it from the cache.
    """
    num_threads = int(num_threads)
    if num_threads <= 0:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
    with _pool_cache_lock:
        pool = _pool_cache.get(num_threads)
        if pool is None or pool._shutdown:
            pool = ThreadPool(num_threads)
            pool._shared = True
            _pool_cache[num_threads] = pool
        return pool


def shutdown_all_pools() -> None:
    """Shut down and drop every cached pool (used by tests)."""
    with _pool_cache_lock:
        pools = list(_pool_cache.values())
        _pool_cache.clear()
    for pool in pools:
        pool.shutdown()
