"""Reusable workspace arena for iteration-structured kernels.

CP-ALS runs the same contractions every iteration on buffers of identical
shapes: the dimension-tree node buffers ``T_L``/``T_R``, the partial-KRP
panels they are GEMMed against, and the per-worker private outputs of the
second-level contractions.  Allocating those afresh each iteration costs
page faults and memset time *and* — on the process backend — would force
a shared-memory export per iteration.  A :class:`Workspace` owns them
instead:

* buffers are acquired **by name** (plus shape/dtype); the first acquire
  allocates, every later acquire with the same signature returns the same
  array.  Callers must fully overwrite a buffer before reading it (the
  arena hands out scratch, not values);
* allocation goes through the owning executor's ``allocate_shared`` /
  ``allocate_private``, so buffers inherit the backend's visibility
  guarantees for free: on the thread backend they are sanitizer-wrapped
  (:mod:`repro.analysis.sanitizer` sees every worker write for race
  checking), on the process backend they live in the executor's shm arena
  (:mod:`repro.parallel.shm`), so parent writes — e.g. the partial GEMM
  filling a node — are visible to worker processes with **zero copies per
  iteration** (the arena's export-by-identity cache returns the existing
  segment handle);
* :attr:`Workspace.stats` counts allocations vs reuses — the steady-state
  invariant "zero allocations per iteration after warm-up" is therefore
  testable as ``stats.allocations`` not growing between iterations;
* private (per-worker) slabs are zero-filled on every acquire: a
  reduction over reused slabs must not pick up stale partial sums from
  workers whose block range is empty this time around.

Lifetime: :meth:`close` drops all references; on the process backend the
arena's weakref eviction then retires the underlying segments.  The
workspace is also a context manager.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Workspace", "WorkspaceStats"]


@dataclass
class WorkspaceStats:
    """Allocation accounting for one :class:`Workspace`.

    ``allocations``/``allocated_bytes`` only ever grow on a cache miss
    (new name, or a shape/dtype change under an existing name), so a
    steady-state loop must keep them constant; ``reuses`` counts hits.
    """

    allocations: int = 0
    reuses: int = 0
    allocated_bytes: int = 0

    def snapshot(self) -> "WorkspaceStats":
        return WorkspaceStats(self.allocations, self.reuses, self.allocated_bytes)


class Workspace:
    """Named, executor-backed buffer cache reused across iterations.

    Parameters
    ----------
    executor:
        The :class:`~repro.parallel.backend.Executor` whose workers will
        touch the buffers, or ``None`` for plain process-local NumPy
        allocation (serial use, tests).
    """

    def __init__(self, executor=None) -> None:
        self._executor = executor
        self._buffers: dict[str, tuple[tuple, np.ndarray]] = {}
        self.stats = WorkspaceStats()
        self._closed = False

    @property
    def executor(self):
        return self._executor

    # -- acquisition ---------------------------------------------------- #

    def _acquire(self, name: str, signature: tuple, allocate) -> np.ndarray:
        if self._closed:
            raise RuntimeError("workspace has been closed")
        entry = self._buffers.get(name)
        if entry is not None and entry[0] == signature:
            self.stats.reuses += 1
            return entry[1]
        array = allocate()
        self._buffers[name] = (signature, array)
        self.stats.allocations += 1
        self.stats.allocated_bytes += array.nbytes
        return array

    def buffer(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Shared scratch buffer: caller-visible worker writes, NOT zeroed.

        Contents are whatever the previous acquire left behind — callers
        must fully overwrite before reading (GEMM ``out=``, ``np.copyto``,
        a covering ``parallel_for`` write partition, ...).
        """
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)

        def allocate():
            if self._executor is not None:
                return self._executor.allocate_shared(shape, dtype=dt)
            return np.zeros(shape, dtype=dt, order="C")

        return self._acquire(name, (shape, dt), allocate)

    def private(
        self, name: str, copies: int, shape: tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        """Per-worker private slabs ``(copies, *shape)``, zeroed each acquire.

        Zeroing is part of the contract: the slabs feed a tree reduction,
        and a worker whose block range is empty this region leaves its slab
        untouched — stale sums from the previous iteration would silently
        corrupt the total.
        """
        copies = int(copies)
        shape = (copies,) + tuple(int(s) for s in shape)
        dt = np.dtype(dtype)

        def allocate():
            if self._executor is not None:
                return self._executor.allocate_private(copies, shape[1:], dtype=dt)
            return np.zeros(shape, dtype=dt, order="C")

        array = self._acquire(name, (shape, dt), allocate)
        array[...] = 0
        return array

    # -- lifetime -------------------------------------------------------- #

    def release(self, prefix: str) -> int:
        """Drop every buffer whose name starts with ``prefix``.

        Used to evict scratch that served a bounded setup stage — e.g.
        the autotuner's measurement buffers (``"tune."``-prefixed slots,
        see :mod:`repro.tune`) after ``cp_als(tune=True)`` has its picks —
        so a long-lived arena does not stay inflated by allocations that
        will never be reused.  Returns the number of buffers dropped;
        :attr:`stats` is left untouched (``allocations`` counts history,
        not residency, so the zero-allocations-after-warm-up invariant
        stays monotone and testable).
        """
        if self._closed:
            raise RuntimeError("workspace has been closed")
        doomed = [name for name in self._buffers if name.startswith(prefix)]
        for name in doomed:
            del self._buffers[name]
        return len(doomed)

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    def close(self) -> None:
        """Drop every buffer reference.  Idempotent.

        On the process backend this lets the shm arena's weakref eviction
        retire the segments (unless the caller still holds a view).
        """
        self._buffers.clear()
        self._closed = True

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workspace({self.num_buffers} buffers, "
            f"{self.stats.allocations} allocs, {self.stats.reuses} reuses)"
        )
