"""Thread-private output buffers and the parallel reduction of Algorithm 3.

Both 1-step parallel schemes let every thread accumulate into a private copy
of the ``I_n x C`` output matrix and then sum the copies (Alg. 3 line 19:
``M <- sum_t M_t``).  The paper notes this choice explicitly — the optimal
parallelization of the inner-product-shaped GEMM "involves write conflicts,
for which we use temporary private memory and a parallel reduction".

:func:`parallel_reduce` implements the reduction as a binary tree over the
pool: at each level, thread ``t`` adds buffer ``t + stride`` into buffer
``t``; ``log2(T)`` levels, each a GIL-releasing vectorized add.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.pool import ThreadPool

__all__ = ["allocate_private", "parallel_reduce"]


def allocate_private(
    num_threads: int, shape: tuple[int, ...], dtype=np.float64
) -> np.ndarray:
    """Allocate zero-initialized per-thread private buffers.

    Returns a ``(num_threads, *shape)`` array; ``buffers[t]`` is thread
    ``t``'s private output.  A single allocation keeps the buffers dense and
    lets the final reduction operate on contiguous slabs.
    """
    num_threads = int(num_threads)
    if num_threads <= 0:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
    return np.zeros((num_threads,) + tuple(shape), dtype=dtype)


def parallel_reduce(
    buffers: np.ndarray, pool: ThreadPool | None = None
) -> np.ndarray:
    """Sum private buffers along axis 0 with a parallel binary tree.

    Parameters
    ----------
    buffers:
        ``(T, ...)`` array of private partial results.  **Mutated in
        place**: on return ``buffers[0]`` holds the total (and is also the
        returned array); other slots hold partial sums.
    pool:
        Pool to parallelize the tree levels on, or an
        :class:`~repro.parallel.backend.Executor` (the reduction then runs
        on that backend via :meth:`~repro.parallel.backend.Executor.reduce`,
        with the identical tree pairing).  ``None`` (or a single buffer)
        reduces sequentially.

    Returns
    -------
    numpy.ndarray
        ``buffers[0]``, now containing the sum over all buffers.
    """
    # Local import: backend builds on this module, not the other way round.
    from repro.parallel.backend import Executor

    if isinstance(pool, Executor):
        return pool.reduce(buffers)
    buffers = np.asarray(buffers)
    if buffers.ndim < 1 or buffers.shape[0] == 0:
        raise ValueError("buffers must have a leading thread axis of size >= 1")
    T = buffers.shape[0]
    if T == 1:
        return buffers[0]
    if pool is None or pool.num_threads == 1:
        np.sum(buffers, axis=0, out=buffers[0])
        return buffers[0]

    stride = 1
    while stride < T:
        pairs = [
            (t, t + stride) for t in range(0, T - stride, 2 * stride)
        ]

        def level(worker: int, start: int, stop: int, pairs=pairs) -> None:
            for dst, src in pairs[start:stop]:
                buffers[dst] += buffers[src]

        pool.parallel_for(level, len(pairs), label="reduce.tree")
        stride *= 2
    return buffers[0]
