"""Best-effort control of the BLAS library's internal thread count.

The paper combines OpenMP threading *outside* BLAS with multithreaded BLAS
*inside* single calls (the 2-step algorithm's parallelism is entirely inside
its one big GEMM).  To reproduce that split we need to set the BLAS thread
count at runtime.  NumPy offers no portable API, so we locate the OpenBLAS
control functions with :mod:`ctypes` in the already-loaded shared objects.

Everything here degrades gracefully: if no known BLAS is found the setters
become no-ops and :func:`get_blas_threads` returns ``None``, which the
benchmark harness reports so results are interpretable.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import glob
import os
import threading
from contextlib import contextmanager

from repro.analysis.sanitizer import SanitizerError, is_sanitizing

__all__ = [
    "set_blas_threads",
    "get_blas_threads",
    "blas_threads",
    "assert_native_layout",
]

_lock = threading.Lock()
_lib: ctypes.CDLL | None = None
_searched = False


def _candidate_paths() -> list[str]:
    """Shared objects that may expose openblas_set_num_threads."""
    paths: list[str] = []
    try:
        import numpy

        numpy_dir = os.path.dirname(numpy.__file__)
        for pattern in (
            os.path.join(numpy_dir, ".libs", "*openblas*"),
            os.path.join(numpy_dir, "..", "numpy.libs", "*openblas*"),
            os.path.join(numpy_dir, "..", "scipy_openblas64", "lib", "*.so*"),
            os.path.join(numpy_dir, "..", "scipy_openblas32", "lib", "*.so*"),
        ):
            paths.extend(sorted(glob.glob(pattern)))
    except Exception:  # pragma: no cover - numpy always importable here
        pass
    # Already-mapped libraries (covers system OpenBLAS).
    try:
        with open("/proc/self/maps") as fh:
            for line in fh:
                part = line.strip().split()
                if part and "openblas" in part[-1].lower():
                    paths.append(part[-1])
    except OSError:  # pragma: no cover - non-Linux
        pass
    found = ctypes.util.find_library("openblas")
    if found:
        paths.append(found)
    # Preserve order, drop duplicates.
    seen: set[str] = set()
    unique = []
    for p in paths:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    return unique


def _load() -> ctypes.CDLL | None:
    global _lib, _searched
    with _lock:
        if _searched:
            return _lib
        _searched = True
        for path in _candidate_paths():
            try:
                lib = ctypes.CDLL(path)
            except OSError:
                continue
            for name in (
                "openblas_set_num_threads64_",
                "openblas_set_num_threads",
            ):
                if hasattr(lib, name):
                    _lib = lib
                    return _lib
        return None


def _symbols(lib: ctypes.CDLL) -> tuple:
    if hasattr(lib, "openblas_set_num_threads64_"):
        return (
            lib.openblas_set_num_threads64_,
            getattr(lib, "openblas_get_num_threads64_", None),
        )
    return (
        lib.openblas_set_num_threads,
        getattr(lib, "openblas_get_num_threads", None),
    )


def set_blas_threads(n: int) -> bool:
    """Request that BLAS use ``n`` threads for subsequent calls.

    Returns ``True`` if a control function was found and invoked, ``False``
    if thread control is unavailable (the request is then a no-op).
    """
    n = int(n)
    if n <= 0:
        raise ValueError(f"thread count must be positive, got {n}")
    lib = _load()
    if lib is None:
        return False
    setter, _ = _symbols(lib)
    setter(ctypes.c_int(n))
    return True


def get_blas_threads() -> int | None:
    """Current BLAS thread count, or ``None`` when control is unavailable."""
    lib = _load()
    if lib is None:
        return None
    _, getter = _symbols(lib)
    if getter is None:
        return None
    getter.restype = ctypes.c_int
    return int(getter())


def assert_native_layout(arr, context: str = "operand"):
    """Assert ``arr`` is contiguous in *some* order before a BLAS call.

    The runtime counterpart of lint rules RA003/RA004 (see
    ``docs/analysis.md``): an operand contiguous in neither order forces a
    hidden copy per call — or, as an ``out=`` destination, routes BLAS
    output through foreign strides onto a different code path.  Call sites
    use this to back layout assumptions the static lint cannot prove
    (e.g. "this reshape of a flat shared buffer is C-contiguous").

    No-op unless the write-set sanitizer is enabled (``REPRO_SANITIZE=1``
    or an open :func:`repro.analysis.sanitize` context); returns ``arr``
    either way so it composes inline.
    """
    if not is_sanitizing():
        return arr
    flags = arr.flags
    if not (flags["C_CONTIGUOUS"] or flags["F_CONTIGUOUS"]):
        raise SanitizerError(
            f"{context}: array of shape {arr.shape} with strides "
            f"{arr.strides} is contiguous in neither order — BLAS would "
            f"copy it per call (or write output through foreign strides); "
            f"materialize it explicitly (np.ascontiguousarray or an "
            f"order-pinned copy)"
        )
    return arr


@contextmanager
def blas_threads(n: int):
    """Context manager scoping a BLAS thread count, restoring the prior one.

    >>> with blas_threads(1):
    ...     pass  # BLAS calls in here are single-threaded (if controllable)
    """
    previous = get_blas_threads()
    set_blas_threads(n)
    try:
        yield
    finally:
        if previous is not None:
            set_blas_threads(previous)
