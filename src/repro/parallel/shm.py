"""Shared-memory array plumbing for the process execution backend.

The process backend (:class:`repro.parallel.backend.ProcessExecutor`) runs
the Python-level hot loops in worker *processes*, so the GIL no longer
serializes them.  That only pays off if the operands — the tensor, the
factor matrices, the per-worker private outputs — cross the process
boundary **without copying per region**.  This module provides that layer
on top of :mod:`multiprocessing.shared_memory`:

* :class:`ShmHandle` — a tiny picklable descriptor (segment name, shape,
  dtype, writability) that travels over the task pipe instead of the array
  payload;
* :class:`ShmArena` — the parent-side registry.  ``allocate()`` creates
  writable shm-backed arrays (private outputs: zero-copy on both sides);
  ``export()`` publishes an existing array (copied into a segment **once**,
  then cached by object identity with weakref eviction, so repeated regions
  over the same tensor reuse the same segment);
* :func:`attach` — the worker-side resolver mapping a handle back to a
  NumPy view of the same physical pages (zero-copy).

Lifetime: the arena owns every segment it creates and unlinks them all in
:meth:`ShmArena.close` (the process executor calls it on shutdown and at
interpreter exit).  Workers keep their attachments alive in a per-process
cache for as long as they run.
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.analysis.sanitizer import SanitizerError

__all__ = ["ShmHandle", "ShmArena", "attach"]


@dataclass(frozen=True)
class ShmHandle:
    """Picklable descriptor of one NumPy array living in a shm segment.

    ``order`` preserves the source array's contiguity (``"C"`` or ``"F"``):
    the worker-side view gets the exact strides of the parent array, so
    stride-sensitive BLAS code paths — and therefore floating-point results
    — are identical on both sides.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    writable: bool = False
    order: str = "C"

    @property
    def nbytes(self) -> int:
        size = 1
        for s in self.shape:
            size *= int(s)
        return size * np.dtype(self.dtype).itemsize


def _segment_view(seg: shared_memory.SharedMemory, handle: ShmHandle) -> np.ndarray:
    # Always-on bounds contract (one integer compare): a handle describing
    # more bytes than its segment holds is stale or corrupted, and mapping
    # it would read/write past the segment.  numpy would also refuse, but
    # with a generic buffer error that hides *which* segment went stale.
    if handle.nbytes > seg.size:
        raise SanitizerError(
            f"shm segment {handle.name!r} is {seg.size} bytes but handle "
            f"describes shape={handle.shape} dtype={handle.dtype} "
            f"({handle.nbytes} bytes) — stale or corrupted handle"
        )
    view = np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=seg.buf,
        order=handle.order,
    )
    return view


class ShmArena:
    """Parent-side registry of shared-memory segments.

    Thread-safe; one arena per :class:`ProcessExecutor`.  Arrays come in
    two flavours:

    * **allocated** — created here via :meth:`allocate`; the parent-side
      array *is* a view of the segment, so worker writes are immediately
      visible to the parent (private outputs, timing scratch);
    * **exported** — an existing parent array published via
      :meth:`export`; its contents are copied into a fresh segment once
      and the segment is reused for later regions while the array object
      is alive (read-only on the worker side).
    """

    def __init__(self, prefix: str = "repro") -> None:
        self._prefix = prefix
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        # id(array) -> (weakref, handle); the weakref callback evicts the
        # entry (and retires the segment) when the exported array dies, so
        # a recycled id can never alias a stale segment.
        self._exports: dict[int, tuple[weakref.ref, ShmHandle]] = {}
        self._counter = 0
        self._closed = False

    # -- creation ------------------------------------------------------ #

    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._closed:
            raise RuntimeError("arena has been closed")
        self._counter += 1
        # The allocating pid is part of the name: ``id(self)`` alone is
        # unique only within one process, and two sibling processes (e.g.
        # serve workers forked from the same parent) can hold arenas at
        # the same heap address with the same counter — a collision in
        # the kernel-wide shm namespace.
        name = f"{self._prefix}_{os.getpid():x}_{id(self):x}_{self._counter}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=max(nbytes, 1))
        self._segments[seg.name] = seg
        return seg

    def allocate(
        self, shape: tuple[int, ...], dtype=np.float64
    ) -> tuple[np.ndarray, ShmHandle]:
        """Create a zero-initialized writable shm-backed array.

        Returns the parent-side view and its handle; the view is also
        registered so :meth:`export` returns the same handle without a
        copy.
        """
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        handle = ShmHandle("", shape, dt.str, writable=True)
        with self._lock:
            seg = self._new_segment(handle.nbytes)
            handle = ShmHandle(seg.name, shape, dt.str, writable=True)
            view = _segment_view(seg, handle)
            view[...] = 0
            ref = weakref.ref(view, self._make_evictor(id(view)))
            self._exports[id(view)] = (ref, handle)
        return view, handle

    def _make_evictor(self, key: int):
        def evict(_ref, *, _self=weakref.ref(self), _key=key):
            arena = _self()
            if arena is None or os.getpid() != arena._pid:
                return
            with arena._lock:
                entry = arena._exports.pop(_key, None)
                if entry is None or arena._closed:
                    return
                seg = arena._segments.pop(entry[1].name, None)
            if seg is not None:
                _retire_segment(seg)

        return evict

    def export(self, array: np.ndarray) -> ShmHandle:
        """Publish ``array`` read-only, copying into a segment at most once.

        The copy is C-contiguous regardless of the source strides; callers
        that need a specific parent-side layout reconstructed in the worker
        should export the contiguous base buffer and rebuild the view there
        (:class:`repro.tensor.dense.DenseTensor` does exactly this).
        """
        array = np.asarray(array)
        key = id(array)
        with self._lock:
            entry = self._exports.get(key)
            if entry is not None and entry[0]() is array:
                return entry[1]
        dt = array.dtype
        shape = tuple(array.shape)
        # Keep Fortran contiguity (e.g. transposed GEMM/solve outputs):
        # matching strides on the worker side keeps BLAS code paths — and
        # bit-exact results — identical to the parent's.  Arrays contiguous
        # in neither order are densified C-contiguous.
        order = (
            "F"
            if array.flags.f_contiguous and not array.flags.c_contiguous
            else "C"
        )
        with self._lock:
            # Re-check: another thread may have exported meanwhile.
            entry = self._exports.get(key)
            if entry is not None and entry[0]() is array:
                return entry[1]
            seg = self._new_segment(array.nbytes)
            handle = ShmHandle(seg.name, shape, dt.str, writable=False, order=order)
            view = _segment_view(seg, handle)
            np.copyto(view, array)
            ref = weakref.ref(array, self._make_evictor(key))
            self._exports[key] = (ref, handle)
        return handle

    def view(self, handle: ShmHandle) -> np.ndarray:
        """Parent-side view of a segment this arena owns."""
        with self._lock:
            seg = self._segments.get(handle.name)
        if seg is None:
            raise SanitizerError(
                f"shm segment {handle.name!r} is not owned by this arena "
                f"(already retired, or the handle belongs to another "
                f"arena) — lifetime violation"
            )
        return _segment_view(seg, handle)

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array`` is an arena-allocated (shared-visible) array."""
        with self._lock:
            entry = self._exports.get(id(array))
            return (
                entry is not None
                and entry[0]() is array
                and entry[1].writable
            )

    # -- lifetime ------------------------------------------------------ #

    @property
    def num_segments(self) -> int:
        with self._lock:
            return len(self._segments)

    def close(self) -> None:
        """Close and unlink every segment.  Idempotent.

        Only the creating process may retire segments: a forked worker
        inherits the arena object, and unlinking from the child would pull
        the segments out from under the parent.

        Segments backing an *allocated* array that is still referenced
        outside the arena are a special case: ``SharedMemory.close`` unmaps
        the pages even while a NumPy view exists, which would turn results
        handed to callers (e.g. a multi-TTV output) into dangling pointers
        the moment the executor shuts down.  Those segments are unlinked
        now (no new process can attach) but stay mapped, and a
        :func:`weakref.finalize` releases the mapping once the last caller
        reference dies.
        """
        if os.getpid() != self._pid:
            self._closed = True
            return
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = dict(self._segments)
            exports = list(self._exports.values())
            self._segments.clear()
            self._exports.clear()
        for ref, handle in exports:
            array = ref()
            if array is None or not handle.writable:
                continue
            seg = segments.pop(handle.name, None)
            if seg is None:
                continue
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            weakref.finalize(array, _close_segment_quietly, seg)
        for seg in segments.values():
            _retire_segment(seg)

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


def _close_segment_quietly(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.close()
    except (OSError, BufferError):  # pragma: no cover - defensive
        pass


def _retire_segment(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.close()
    except (OSError, BufferError):  # pragma: no cover - defensive
        pass
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


# -- worker side ------------------------------------------------------- #


def attach(
    handle: ShmHandle, cache: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]]
) -> np.ndarray:
    """Map a handle to a NumPy view in the current (worker) process.

    ``cache`` keeps the ``SharedMemory`` objects alive for the lifetime of
    the worker (a view into a closed segment would be a use-after-free) and
    makes repeated regions over the same operands attach-free.
    """
    entry = cache.get(handle.name)
    if entry is None:
        seg = _attach_untracked(handle.name)
        cache[handle.name] = entry = (seg, np.ndarray(0, np.uint8, buffer=seg.buf))
    seg = entry[0]
    view = _segment_view(seg, handle)
    view.flags.writeable = handle.writable
    return view


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    Lifetime is owned by the parent arena, which created and will unlink
    the segment.  Before Python 3.13 (``track=False``), attaching also
    registers with the attaching process's resource tracker, which then
    reports spurious "leaked shared_memory" at worker exit and may
    double-unlink (cpython#82300) — so registration is suppressed for the
    duration of the attach.  Workers attach from their single main thread,
    so the temporary patch cannot race.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
