"""Static contiguous partitioning of iteration spaces.

The paper assigns work to threads in contiguous blocks (rows of the KRP
output, columns of a matricization, matricization blocks).  Algorithm 3
uses the block size ``b = ceil(I/T)``; :func:`contiguous_blocks` implements
that schedule, degenerating gracefully when ``T`` exceeds the item count
(trailing threads receive empty ranges, exactly as an OpenMP static schedule
would leave them idle).
"""

from __future__ import annotations

__all__ = ["contiguous_blocks", "block_bounds", "owner_of"]


def contiguous_blocks(num_items: int, num_parts: int) -> list[tuple[int, int]]:
    """Split ``range(num_items)`` into ``num_parts`` contiguous half-open
    ranges using the ceiling-block schedule ``b = ceil(num_items/num_parts)``.

    Every returned range satisfies ``0 <= start <= stop <= num_items``; the
    ranges are disjoint, ordered, and their union is the full range.  Ranges
    may be empty when ``num_parts > num_items``.

    >>> contiguous_blocks(10, 3)
    [(0, 4), (4, 8), (8, 10)]
    >>> contiguous_blocks(2, 4)
    [(0, 1), (1, 2), (2, 2), (2, 2)]
    """
    num_items = int(num_items)
    num_parts = int(num_parts)
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    if num_parts <= 0:
        raise ValueError(f"num_parts must be positive, got {num_parts}")
    if num_items == 0:
        return [(0, 0)] * num_parts
    b = -(-num_items // num_parts)  # ceil division
    out = []
    for t in range(num_parts):
        start = min(t * b, num_items)
        stop = min(start + b, num_items)
        out.append((start, stop))
    return out


def block_bounds(num_items: int, num_parts: int, part: int) -> tuple[int, int]:
    """The ``part``-th range of :func:`contiguous_blocks`, computed directly."""
    num_items = int(num_items)
    num_parts = int(num_parts)
    part = int(part)
    if not 0 <= part < num_parts:
        raise ValueError(f"part {part} out of range [0, {num_parts})")
    if num_items == 0:
        return (0, 0)
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    b = -(-num_items // num_parts)
    start = min(part * b, num_items)
    return (start, min(start + b, num_items))


def owner_of(item: int, num_items: int, num_parts: int) -> int:
    """Index of the part owning ``item`` under the ceiling-block schedule."""
    num_items = int(num_items)
    item = int(item)
    if not 0 <= item < num_items:
        raise ValueError(f"item {item} out of range [0, {num_items})")
    b = -(-num_items // int(num_parts))
    return item // b
