"""Shared-memory parallel runtime substrate.

The paper parallelizes with OpenMP ``parallel for`` loops over contiguous
blocks plus multithreaded BLAS.  This subpackage provides the Python
equivalents:

* :mod:`~repro.parallel.pool` — a persistent worker-thread pool with an
  OpenMP-style ``parallel_for`` (static contiguous scheduling).  NumPy's
  BLAS-backed kernels release the GIL, so worker threads genuinely overlap
  on multi-core hosts;
* :mod:`~repro.parallel.partition` — static contiguous block partitioning
  (the paper's ``b = ceil(I/T)`` blocking) and conformal partitions;
* :mod:`~repro.parallel.reduction` — per-thread private output buffers and
  the parallel tree reduction used by Algorithm 3 line 19;
* :mod:`~repro.parallel.blas` — best-effort control of the BLAS library's
  internal thread count (the "multithreaded BLAS" half of the paper's
  hybrid scheme);
* :mod:`~repro.parallel.config` — the package-wide default thread count.
"""

from repro.parallel.blas import blas_threads, get_blas_threads, set_blas_threads
from repro.parallel.config import get_num_threads, num_threads, set_num_threads
from repro.parallel.partition import (
    block_bounds,
    contiguous_blocks,
    owner_of,
)
from repro.parallel.pool import ThreadPool, get_pool
from repro.parallel.reduction import allocate_private, parallel_reduce

__all__ = [
    "ThreadPool",
    "get_pool",
    "contiguous_blocks",
    "block_bounds",
    "owner_of",
    "allocate_private",
    "parallel_reduce",
    "set_blas_threads",
    "get_blas_threads",
    "blas_threads",
    "get_num_threads",
    "set_num_threads",
    "num_threads",
]
