"""Shared-memory parallel runtime substrate.

The paper parallelizes with OpenMP ``parallel for`` loops over contiguous
blocks plus multithreaded BLAS.  This subpackage provides the Python
equivalents:

* :mod:`~repro.parallel.pool` — a persistent worker-thread pool with an
  OpenMP-style ``parallel_for`` (static contiguous scheduling).  NumPy's
  BLAS-backed kernels release the GIL, so worker threads genuinely overlap
  on multi-core hosts;
* :mod:`~repro.parallel.backend` — the execution-backend abstraction
  (:class:`~repro.parallel.backend.Executor`) with a thread implementation
  over the pool and a **process** implementation whose workers address the
  operands through :mod:`multiprocessing.shared_memory` segments
  (:mod:`~repro.parallel.shm`), freeing the Python-level hot loops from
  the GIL;
* :mod:`~repro.parallel.partition` — static contiguous block partitioning
  (the paper's ``b = ceil(I/T)`` blocking) and conformal partitions;
* :mod:`~repro.parallel.reduction` — per-thread private output buffers and
  the parallel tree reduction used by Algorithm 3 line 19;
* :mod:`~repro.parallel.blas` — best-effort control of the BLAS library's
  internal thread count (the "multithreaded BLAS" half of the paper's
  hybrid scheme);
* :mod:`~repro.parallel.config` — the package-wide default thread count
  and execution backend (``set_backend()`` / ``REPRO_BACKEND``).
"""

from repro.parallel.backend import (
    Executor,
    ProcessExecutor,
    ThreadExecutor,
    get_executor,
    reset_worker_runtime_state,
    shutdown_all_executors,
)
from repro.parallel.blas import blas_threads, get_blas_threads, set_blas_threads
from repro.parallel.config import (
    get_backend,
    get_num_threads,
    num_threads,
    set_backend,
    set_num_threads,
    use_backend,
)
from repro.parallel.partition import (
    block_bounds,
    contiguous_blocks,
    owner_of,
)
from repro.parallel.pool import ThreadPool, get_pool, shutdown_all_pools
from repro.parallel.reduction import allocate_private, parallel_reduce
from repro.parallel.shm import ShmArena, ShmHandle
from repro.parallel.workspace import Workspace, WorkspaceStats

__all__ = [
    "ThreadPool",
    "get_pool",
    "shutdown_all_pools",
    "Executor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "reset_worker_runtime_state",
    "shutdown_all_executors",
    "ShmArena",
    "ShmHandle",
    "Workspace",
    "WorkspaceStats",
    "contiguous_blocks",
    "block_bounds",
    "owner_of",
    "allocate_private",
    "parallel_reduce",
    "set_blas_threads",
    "get_blas_threads",
    "blas_threads",
    "get_num_threads",
    "set_num_threads",
    "num_threads",
    "get_backend",
    "set_backend",
    "use_backend",
]
