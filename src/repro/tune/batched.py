"""Empirical stacked-vs-loop crossover for the batched MTTKRP engine.

The batched engine has exactly two lanes — ``"batched"`` (stacked
panels + one batched GEMM per cache-sized chunk) and ``"batched-loop"``
(the per-item 2-D reference loop).  Which wins is a property of the
*per-item overhead-to-arithmetic ratio*: tiny items amortize Python and
gufunc dispatch across the stack, huge items render the overhead
irrelevant and the loop's smaller working set can take over.  That
ratio is machine- and BLAS-specific, so (as everywhere in
:mod:`repro.tune`) the decision is measured, not modeled, and persisted
in the standard :class:`~repro.tune.cache.TuningCache` — under a
:class:`~repro.tune.cache.TuneKey` whose ``batch`` dimension separates
fleet sizes that amortize differently.

``B == 1`` is degenerate: both lanes issue the identical single-item
calls, so the stacked lane is recorded without measurement (mirroring
the order-2 short-circuit of :func:`repro.tune.tuner.autotune`).
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext

import numpy as np

from repro.obs import get_tracer
from repro.parallel.config import resolve_backend, resolve_threads, use_backend
from repro.tune.cache import TuneKey, TuneRecord, TuningCache, get_cache
from repro.tune.tuner import Candidate
from repro.util.timing import wall_time

__all__ = ["autotune_batched", "batched_candidate_labels", "candidate_set"]

#: Measure on at most this many items: the per-item overhead the stacked
#: lane amortizes only *shrinks* relative to the arithmetic as B grows,
#: so a decision taken at this batch size is conservative for larger
#: fleets while keeping tuner probes cheap.
_PROXY_BATCH_LIMIT = 64


def candidate_set(shape: Sequence[int], n: int, batch: int) -> list[Candidate]:
    """The runnable batched candidates: ``batched`` and ``batched-loop``.

    Both lanes are eligible for every (shape, mode, batch) — the
    crossover between them is precisely what gets measured.
    """
    del shape, n, batch  # every configuration runs the same two lanes
    return [
        Candidate("batched", "batched"),
        Candidate("batched-loop", "batched-loop"),
    ]


def batched_candidate_labels() -> tuple[str, ...]:
    """Labels a cached batched record may legally carry."""
    return ("batched", "batched-loop")


def _proxy_batch(batch, factors):
    """Slice the measurement operands down to ``_PROXY_BATCH_LIMIT`` items."""
    if batch.batch <= _PROXY_BATCH_LIMIT:
        return batch, factors
    from repro.batch.tensor import BatchedTensor

    sub = BatchedTensor(
        np.ascontiguousarray(batch.flat[:_PROXY_BATCH_LIMIT]), batch.shape
    )
    sub_factors = [
        np.ascontiguousarray(np.asarray(f)[:_PROXY_BATCH_LIMIT])
        for f in factors
    ]
    return sub, sub_factors


def _measure_batched(
    candidate: Candidate, batch, factors, n, num_threads, repeats, workspace
) -> float:
    """Best-of-``repeats`` seconds for one lane (plus one warm-up)."""
    from repro.batch.mttkrp import mttkrp_batched_loop, mttkrp_batched_stacked

    runner = (
        mttkrp_batched_stacked if candidate.method == "batched"
        else mttkrp_batched_loop
    )
    tracer = get_tracer()
    best = float("inf")
    for rep in range(repeats + 1):
        with tracer.span(
            "tune.measure", candidate=candidate.label, mode=n, warmup=rep == 0
        ) as span:
            t0 = wall_time()
            runner(
                batch, factors, n, num_threads=num_threads,
                workspace=workspace, slot="tune.batch",
            )
            elapsed = wall_time() - t0
            span.args["seconds"] = elapsed
        tracer.add_counter("tune.measure", 1)
        if rep > 0:  # the warm-up run absorbs pool/buffer start-up costs
            best = min(best, elapsed)
    return best


def autotune_batched(
    batch,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    backend: str | None = None,
    cache: TuningCache | None = None,
    repeats: int = 2,
    workspace=None,
    force: bool = False,
) -> TuneRecord:
    """Pick the fastest batched lane for this configuration, cached.

    The cache key is ``(shape, rank, mode, threads, backend, dtype,
    batch)`` — one decision per fleet size, reused by every later
    :func:`~repro.batch.mttkrp.mttkrp_batched` ``method="autotune"``
    call and by ``cp_als_batched(tune=True)``.

    Parameters mirror :func:`repro.tune.tuner.autotune`; ``force=True``
    re-measures even on a cache hit.
    """
    from repro.batch.mttkrp import _validate

    n, rank = _validate(batch, factors, n)
    threads = resolve_threads(num_threads)
    backend_name = resolve_backend(backend)
    dtype = np.result_type(
        batch.dtype, *[np.asarray(f).dtype for f in factors]
    )
    key = TuneKey.make(
        batch.shape, rank, n, threads, backend_name, dtype,
        batch=batch.batch,
    )
    store = cache if cache is not None else get_cache()
    tracer = get_tracer()

    if not force:
        record = store.get(key)
        if record is not None:
            if record.label in batched_candidate_labels():
                tracer.add_counter("tune.cache_hit", 1)
                return record
            # A stale or foreign entry (e.g. a single-tensor method
            # recorded under an old key format): re-measure, overwrite.
            tracer.add_counter("tune.cache_stale", 1)

    if batch.batch == 1:
        record = TuneRecord(method="batched", source="degenerate")
        store.put(key, record)
        return record

    tracer.add_counter("tune.cache_miss", 1)
    candidates = candidate_set(batch.shape, n, batch.batch)
    bench_batch, bench_factors = _proxy_batch(batch, factors)
    times: dict[str, float] = {}
    scope = use_backend(backend) if backend is not None else nullcontext()
    with scope, tracer.span(
        "tune", mode=n, shape=list(batch.shape), rank=rank,
        threads=threads, backend=backend_name, batch=batch.batch,
    ):
        for candidate in candidates:
            times[candidate.label] = _measure_batched(
                candidate, bench_batch, bench_factors, n,
                threads, repeats, workspace,
            )
    winner = min(candidates, key=lambda c: times[c.label])
    record = TuneRecord(
        method=winner.method,
        kwargs=winner.kwargs_dict(),
        times=times,
        source="measured",
    )
    store.put(key, record)
    return record
