"""Empirical kernel selection: measure the candidates, cache the winner.

The paper's Section 5.3.3 policy ("1-step for external modes, 2-step for
internal modes") is a static heuristic derived from one machine.  This
repo has four real kernels — baseline, 1-step, 2-step (two orderings) and
the dimension-tree node path — whose crossover points move with shape,
rank, thread count, backend and dtype.  :func:`autotune` settles the
question the honest way: run each plausible candidate on the real
operands (or a shape-faithful proxy when the tensor is large), take the
best of a few repeats, and record the winner in the persisted
:class:`~repro.tune.cache.TuningCache` so every later call with the same
:class:`~repro.tune.cache.TuneKey` pays nothing.

The analytic machine model (:func:`repro.machine.predict.predict_mttkrp_candidates`)
acts as a **prior**, not an oracle: it orders the candidates so the
plausible ones are measured first, and prunes candidates it predicts to be
worse than ``prune_ratio`` times the predicted best — those cannot
plausibly win even with generous model error, so measuring them is wasted
time.  At least two candidates always survive pruning (a prior that
confident should still be checked against one rival).

Degenerate configurations are decided without measurement: on a 2-way
tensor every method collapses to the same single GEMM (the paper's
observation that the 2-step algorithm degenerates for external modes,
taken to its endpoint), so the tuner records ``"onestep"`` with
``source="degenerate"`` and runs nothing.

Observability: every microbenchmark run is a ``tune.measure`` span (with
``candidate`` and ``seconds`` args) and bumps the ``tune.measure``
counter; cache consultations bump ``tune.cache_hit`` / ``tune.cache_miss``
(and ``tune.cache_stale`` when a persisted record no longer names an
eligible candidate and is re-measured instead of replayed).
Tests assert "second invocation measures nothing" directly on these
counters.
"""

from __future__ import annotations

import threading
import warnings
from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.core.dimtree import mttkrp_dimtree
from repro.core.mttkrp_baseline import mttkrp_baseline
from repro.core.mttkrp_blocked import mttkrp_blocked
from repro.core.mttkrp_onestep import mttkrp_onestep
from repro.core.mttkrp_twostep import mttkrp_twostep
from repro.machine.model import MachineModel, host_model_default
from repro.machine.predict import predict_mttkrp_candidates
from repro.obs import get_tracer
from repro.parallel.config import resolve_backend, resolve_threads, use_backend
from repro.tensor.dense import DenseTensor
from repro.tune.cache import (
    TuneCacheWarning,
    TuneKey,
    TuneRecord,
    TuningCache,
    get_cache,
)
from repro.util import prod
from repro.util.timing import wall_time
from repro.util.validation import check_factor_matrices, check_mode

__all__ = [
    "Candidate",
    "autotune",
    "candidate_set",
    "is_degenerate",
    "proxy_operands",
]

# Largest tensor the tuner will measure on directly; beyond this a
# volumetrically scaled proxy of the same order/aspect/dtype is timed
# instead (absolute kernel ranking is shape-ratio driven, not size driven,
# the same argument DESIGN.md makes for the reduced-scale benchmarks).
_PROXY_ENTRY_LIMIT = 4_000_000


@dataclass(frozen=True)
class Candidate:
    """One runnable kernel configuration the tuner can measure."""

    label: str
    method: str
    kwargs: tuple = ()

    def kwargs_dict(self) -> dict:
        return dict(self.kwargs)


def is_degenerate(shape: Sequence[int]) -> bool:
    """Whether every candidate collapses to one GEMM (nothing to measure).

    True for 2-way tensors: the matricization is the matrix itself and
    the "KRP" is the single other factor, so 1-step, 2-step, baseline and
    the node path all perform the identical GEMM.
    """
    return len(tuple(shape)) <= 2


def candidate_set(shape: Sequence[int], n: int) -> list[Candidate]:
    """The runnable candidates for mode ``n`` of ``shape``.

    External modes exclude the 2-step orderings (the 2-step algorithm
    degenerates to the 1-step there — measuring it twice under different
    names would only add noise).
    """
    shape = tuple(int(s) for s in shape)
    N = len(shape)
    n = check_mode(n, N)
    if is_degenerate(shape):
        return [Candidate("onestep", "onestep")]
    external = n == 0 or n == N - 1
    cands = [Candidate("onestep", "onestep")]
    if not external:
        cands.append(
            Candidate("twostep:left", "twostep", (("side", "left"),))
        )
        cands.append(
            Candidate("twostep:right", "twostep", (("side", "right"),))
        )
    cands.append(Candidate("dimtree", "dimtree"))
    cands.append(Candidate("blocked", "blocked"))
    cands.append(Candidate("baseline", "baseline"))
    return cands


_RUNNERS = {
    "onestep": mttkrp_onestep,
    "twostep": mttkrp_twostep,
    "blocked": mttkrp_blocked,
    "baseline": mttkrp_baseline,
    "dimtree": mttkrp_dimtree,
}

# Cache keys whose stale-record warning has already been emitted (one
# warning per key per process keeps replay logs readable while still
# flagging every distinct stale entry).
_stale_warned: set[str] = set()
_stale_lock = threading.Lock()


def _cached_record_eligible(
    record: TuneRecord, shape: Sequence[int], n: int
) -> bool:
    """Whether a persisted decision still names a runnable candidate.

    Cache files outlive code: an entry written by an older (or newer)
    version of this package may name a method that no longer exists, or a
    2-step ordering for a key whose mode is external in the current
    candidate set.  Replaying such a record verbatim would make
    ``mttkrp(method="autotune")`` *fail* on a configuration it could
    perfectly well compute — the cache must never be load-bearing for
    correctness, so ineligible records are treated as misses.
    """
    return record.label in {c.label for c in candidate_set(shape, n)}


def run_candidate(
    candidate: Candidate,
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    workspace=None,
) -> np.ndarray:
    """Execute one candidate on the given operands (no timing)."""
    kwargs = candidate.kwargs_dict()
    if candidate.method == "dimtree":
        kwargs["workspace"] = workspace
        kwargs["slot"] = "tune.dimtree"
    return _RUNNERS[candidate.method](
        tensor, list(factors), n, num_threads=num_threads, **kwargs
    )


def proxy_operands(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    entry_limit: int = _PROXY_ENTRY_LIMIT,
) -> tuple[DenseTensor, list[np.ndarray]]:
    """Shape-faithful measurement operands.

    Returns the real operands unchanged when the tensor fits under
    ``entry_limit`` entries; otherwise a volumetrically scaled proxy with
    the same order, dtype and per-mode aspect ratios (every dimension is
    shrunk by the same factor, floored at 1), filled with deterministic
    pseudo-random data.  Kernel *ranking* depends on shape ratios and
    rank, not absolute size, so the proxy preserves the decision while
    bounding measurement cost.
    """
    size = tensor.size
    if size <= entry_limit:
        return tensor, list(factors)
    scale = (entry_limit / float(size)) ** (1.0 / tensor.ndim)
    shape = tuple(max(int(round(s * scale)), 1) for s in tensor.shape)
    rank = int(np.asarray(factors[0]).shape[1])
    rng = np.random.default_rng(2018)
    data = rng.standard_normal(prod(shape)).astype(tensor.dtype, copy=False)
    proxy = DenseTensor(data, shape)
    proxy_factors = [
        rng.standard_normal((s, rank)).astype(
            np.asarray(factors[k]).dtype, copy=False
        )
        for k, s in enumerate(shape)
    ]
    return proxy, proxy_factors


def _measure(
    candidate: Candidate,
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int,
    repeats: int,
    workspace,
) -> float:
    """Best-of-``repeats`` seconds for one candidate (plus one warm-up)."""
    tracer = get_tracer()
    best = float("inf")
    for rep in range(repeats + 1):
        with tracer.span(
            "tune.measure", candidate=candidate.label, mode=n, warmup=rep == 0
        ) as span:
            t0 = wall_time()
            run_candidate(
                candidate, tensor, factors, n,
                num_threads=num_threads, workspace=workspace,
            )
            elapsed = wall_time() - t0
            span.args["seconds"] = elapsed
        tracer.add_counter("tune.measure", 1)
        if rep > 0:  # the warm-up run absorbs pool/buffer start-up costs
            best = min(best, elapsed)
    return best


def _prior_order(
    candidates: list[Candidate],
    shape: tuple[int, ...],
    rank: int,
    threads: int,
    model: MachineModel,
    n: int,
    prune_ratio: float,
) -> list[Candidate]:
    """Sort candidates by predicted time; drop the hopeless tail.

    Unpredicted candidates sort last but are never pruned (the model
    cannot dominate what it cannot score); at least two candidates always
    survive.
    """
    if model.cores < threads:
        model = model.with_cores(threads)
    try:
        prior = predict_mttkrp_candidates(model, shape, n, rank, threads)
    except (ValueError, KeyError):
        return candidates
    scored = sorted(
        candidates,
        key=lambda c: prior.get(c.label, float("inf")),
    )
    finite = [prior[c.label] for c in scored if c.label in prior]
    if not finite:
        return scored
    cutoff = min(finite) * prune_ratio
    kept = [
        c for c in scored
        if c.label not in prior or prior[c.label] <= cutoff
    ]
    return kept if len(kept) >= 2 else scored[:2]


def autotune(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    backend: str | None = None,
    cache: TuningCache | None = None,
    repeats: int = 2,
    model: MachineModel | None = None,
    prune_ratio: float = 10.0,
    workspace=None,
    force: bool = False,
) -> TuneRecord:
    """Pick the fastest MTTKRP kernel for this configuration.

    Consults the tuning cache first (``tune.cache_hit``); on a miss
    (``tune.cache_miss``) microbenchmarks the surviving candidates in
    model-predicted order and persists the winner.  Returns the
    :class:`~repro.tune.cache.TuneRecord`; the caller runs the recorded
    method on the real operands, so the returned *result* is bit-identical
    to calling that kernel directly.

    Parameters
    ----------
    tensor, factors, n:
        The MTTKRP operands the decision is for.
    num_threads, backend:
        Execution configuration; both are part of the cache key.
        Defaults resolve against the package-wide settings.
    cache:
        Explicit :class:`~repro.tune.cache.TuningCache`; defaults to the
        shared cache for ``REPRO_TUNE_CACHE``.
    repeats:
        Timed repetitions per candidate (best-of); one additional
        warm-up run is not timed.
    model:
        Machine model for the prior; defaults to
        :func:`repro.machine.model.host_model_default`.
    prune_ratio:
        Candidates predicted slower than ``prune_ratio`` times the
        predicted best are not measured.
    workspace:
        Optional :class:`~repro.parallel.workspace.Workspace` the
        measurement runs draw scratch from (the dimension-tree candidate
        allocates node buffers).  Callers that tune ahead of a long run
        (``cp_als(tune=True)``) pass their arena and release the
        ``"tune"``-prefixed slots afterwards.
    force:
        Re-measure even on a cache hit (the CLI's ``--force``).
    """
    n = check_mode(n, tensor.ndim)
    rank = check_factor_matrices(list(factors), tensor.shape)
    threads = resolve_threads(num_threads)
    backend_name = resolve_backend(backend)
    dtype = np.result_type(tensor.dtype, *[np.asarray(f).dtype for f in factors])
    key = TuneKey.make(tensor.shape, rank, n, threads, backend_name, dtype)
    store = cache if cache is not None else get_cache()
    tracer = get_tracer()

    if not force:
        record = store.get(key)
        if record is not None:
            if _cached_record_eligible(record, tensor.shape, n):
                tracer.add_counter("tune.cache_hit", 1)
                return record
            # Stale persisted decision (e.g. written by a different
            # package version): fall through to re-measurement, which
            # overwrites the entry.  Warn once per key per process.
            tracer.add_counter("tune.cache_stale", 1)
            key_str = key.to_str()
            with _stale_lock:
                first = key_str not in _stale_warned
                _stale_warned.add(key_str)
            if first:
                warnings.warn(
                    f"stale tuning-cache entry for {key_str}: recorded "
                    f"method {record.label!r} is not an eligible "
                    f"candidate for this configuration; re-measuring",
                    TuneCacheWarning,
                    stacklevel=2,
                )

    if is_degenerate(tensor.shape):
        # Order 2: every kernel is the same single GEMM — nothing to
        # measure, nothing to warn about.
        record = TuneRecord(method="onestep", source="degenerate")
        store.put(key, record)
        return record

    tracer.add_counter("tune.cache_miss", 1)
    candidates = _prior_order(
        candidate_set(tensor.shape, n),
        tuple(tensor.shape),
        rank,
        threads,
        model if model is not None else host_model_default(),
        n,
        prune_ratio,
    )
    bench_tensor, bench_factors = proxy_operands(tensor, factors)
    times: dict[str, float] = {}
    scope = use_backend(backend) if backend is not None else nullcontext()
    with scope, tracer.span(
        "tune", mode=n, shape=list(tensor.shape), rank=rank,
        threads=threads, backend=backend_name,
    ):
        for candidate in candidates:
            times[candidate.label] = _measure(
                candidate, bench_tensor, bench_factors, n,
                threads, repeats, workspace,
            )
    winner = min(candidates, key=lambda c: times[c.label])
    source = "measured" if len(candidates) > 1 else "prior"
    record = TuneRecord(
        method=winner.method,
        kwargs=winner.kwargs_dict(),
        times=times,
        source=source,
    )
    store.put(key, record)
    return record
