"""Command-line autotuner: ``python -m repro.tune`` / ``repro-tune``.

Measures the MTTKRP kernel candidates for a given configuration, prints
the per-candidate times and the winners, and persists the decisions to the
tuning cache (``--cache`` or ``REPRO_TUNE_CACHE``) so library calls with
``method="autotune"`` find them pre-measured.

Examples
--------
Tune every mode of a 60x40x50 rank-16 problem with 4 threads::

    repro-tune 60x40x50 --rank 16 --threads 4 --cache tune.json

Inspect what a cache file holds::

    repro-tune --show --cache tune.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        dims = tuple(int(part) for part in text.replace(",", "x").split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse shape {text!r}; expected e.g. 60x40x50"
        ) from None
    if len(dims) < 2 or any(d < 1 for d in dims):
        raise argparse.ArgumentTypeError(
            f"shape {text!r} must have >= 2 positive dimensions"
        )
    return dims


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Empirical MTTKRP kernel autotuner.",
    )
    parser.add_argument(
        "shape", nargs="?", type=_parse_shape,
        help="tensor shape, e.g. 60x40x50 (omit with --show/--clear)",
    )
    parser.add_argument("--rank", type=int, default=16, help="CP rank C")
    parser.add_argument(
        "--modes", type=str, default=None,
        help="comma-separated output modes (default: all)",
    )
    parser.add_argument(
        "--threads", type=int, default=None, help="worker count"
    )
    parser.add_argument(
        "--backend", choices=("thread", "process"), default=None,
        help="execution backend (default: package setting)",
    )
    parser.add_argument(
        "--dtype", choices=("float32", "float64"), default="float64"
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per candidate (best-of)",
    )
    parser.add_argument(
        "--cache", type=str, default=None,
        help="cache file (default: REPRO_TUNE_CACHE, else in-memory)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="re-measure even if the cache already holds a decision",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="operand RNG seed"
    )
    parser.add_argument(
        "--show", action="store_true",
        help="print the cache contents and exit",
    )
    parser.add_argument(
        "--clear", action="store_true",
        help="empty the cache file and exit",
    )
    return parser


def _open_cache(path_arg: str | None):
    from repro.tune.cache import TuningCache, default_cache_path, get_cache

    if path_arg is not None:
        return TuningCache(path_arg)
    if default_cache_path() is not None:
        return get_cache()
    return TuningCache(None)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    cache = _open_cache(args.cache)

    if args.clear:
        cache.clear(delete_file=False)
        print(f"cleared {cache.path or '<memory>'}")
        return 0
    if args.show:
        entries = cache.entries()
        print(f"{cache.path or '<memory>'}: {len(entries)} entries")
        for key, record in sorted(entries.items()):
            extra = f" {record.kwargs}" if record.kwargs else ""
            print(f"  {key} -> {record.method}{extra} [{record.source}]")
        return 0
    if args.shape is None:
        parser.error("a tensor shape is required unless --show/--clear")

    from repro.tensor.generate import random_factors, random_tensor
    from repro.tune.tuner import autotune

    shape = args.shape
    modes = (
        [int(m) for m in args.modes.split(",")]
        if args.modes
        else list(range(len(shape)))
    )
    dtype = np.dtype(args.dtype)
    tensor = random_tensor(shape, rng=args.seed)
    factors = random_factors(shape, args.rank, rng=args.seed + 1)
    if dtype != np.float64:
        tensor = tensor.astype(dtype)
        factors = [f.astype(dtype) for f in factors]

    width = max(len(str(m)) for m in modes)
    for n in modes:
        record = autotune(
            tensor, factors, n,
            num_threads=args.threads, backend=args.backend,
            cache=cache, repeats=args.repeats, force=args.force,
        )
        times = ", ".join(
            f"{label}={seconds * 1e3:.3f}ms"
            for label, seconds in sorted(
                record.times.items(), key=lambda kv: kv[1]
            )
        )
        extra = f" {record.kwargs}" if record.kwargs else ""
        detail = times if times else record.source
        print(f"mode {n:>{width}}: {record.method}{extra}  ({detail})")
    where = cache.path or "<memory — set REPRO_TUNE_CACHE or --cache to persist>"
    print(f"cache: {where}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
