"""Persisted tuning cache: measured kernel picks keyed by configuration.

The autotuner's measurements are only worth their cost if they are paid
once.  :class:`TuningCache` maps a :class:`TuneKey` — the full set of
inputs that can change which MTTKRP kernel wins: tensor shape, rank,
output mode, worker count, execution backend and dtype — to a
:class:`TuneRecord` holding the winning method, its keyword arguments and
the measured candidate times, and persists the mapping as one JSON file.

File handling rules (all covered by ``tests/test_tune_cache.py``):

* **Location.**  ``REPRO_TUNE_CACHE`` names the file; when the variable is
  unset the cache is process-local (in memory only, no file I/O).  The
  explicit opt-in keeps test runs and casual imports from scattering cache
  files around the filesystem.
* **Tolerant loads.**  A missing file is an empty cache; a corrupt,
  truncated or wrong-schema file is *also* an empty cache (with a one-time
  :class:`TuneCacheWarning`) — the tuner falls back to re-measuring and the
  next ``put`` rewrites a valid file.  A broken cache must never break the
  computation it exists to speed up.
* **Atomic writes.**  Saves go to a temporary file in the target directory
  followed by :func:`os.replace`, so a reader never observes a partial
  file, and concurrent writers each land a complete file (last one wins
  per entry).  Before writing, the on-disk state is re-read and merged so
  concurrent writers of *different* keys do not clobber each other;
  writers within one process additionally serialize on a lock.

Schema (version ``1``)::

    {"version": 1,
     "entries": {"<key-string>": {"method": "twostep",
                                  "kwargs": {"side": "left"},
                                  "times": {"onestep": 1.2e-4, ...},
                                  "source": "measured"}}}
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TuneKey",
    "TuneRecord",
    "TuningCache",
    "TuneCacheWarning",
    "default_cache_path",
    "get_cache",
    "reset_cache",
]

_SCHEMA_VERSION = 1


class TuneCacheWarning(UserWarning):
    """Raised (as a warning) when a cache file cannot be parsed."""


@dataclass(frozen=True)
class TuneKey:
    """Everything that can change which kernel is fastest.

    ``backend`` is part of the key because the two backends have different
    region-launch and marshalling costs: a decision measured under the
    process backend must not be served to a thread-backend caller.

    ``batch`` is the number of stacked same-shape tensors the decision
    was measured for (:mod:`repro.tune.batched`); single-tensor kernels
    keep the default of 1, so their keys are unaffected by fleet-sized
    entries sharing the cache.
    """

    shape: tuple[int, ...]
    rank: int
    mode: int
    num_threads: int
    backend: str
    dtype: str
    batch: int = 1

    @classmethod
    def make(
        cls,
        shape,
        rank: int,
        mode: int,
        num_threads: int,
        backend: str,
        dtype,
        batch: int = 1,
    ) -> "TuneKey":
        return cls(
            shape=tuple(int(s) for s in shape),
            rank=int(rank),
            mode=int(mode),
            num_threads=int(num_threads),
            backend=str(backend),
            dtype=np.dtype(dtype).name,
            batch=int(batch),
        )

    def to_str(self) -> str:
        """Stable string form used as the JSON dictionary key."""
        dims = "x".join(str(s) for s in self.shape)
        return (
            f"shape={dims};rank={self.rank};mode={self.mode};"
            f"threads={self.num_threads};backend={self.backend};"
            f"dtype={self.dtype};batch={self.batch}"
        )


@dataclass
class TuneRecord:
    """One cached decision.

    Attributes
    ----------
    method:
        The winning method name (a member of
        :data:`repro.core.dispatch.MTTKRP_METHODS`).
    kwargs:
        Method keyword arguments that were part of the winning candidate
        (e.g. ``{"side": "left"}`` for the 2-step orderings).
    times:
        Measured best-of-repeats seconds per candidate label; empty for
        degenerate (unmeasured) decisions.
    source:
        ``"measured"`` for a microbenchmark decision, ``"degenerate"``
        when every candidate collapses to the same kernel (2-way tensors)
        and measurement was skipped, ``"prior"`` when only the machine
        model ranked the single surviving candidate.
    """

    method: str
    kwargs: dict = field(default_factory=dict)
    times: dict = field(default_factory=dict)
    source: str = "measured"

    @property
    def label(self) -> str:
        """Replayable method spec (``"twostep:left"`` pins the ordering).

        Accepted verbatim by :func:`repro.core.dispatch.mttkrp` and the
        per-mode ``method`` list of :func:`repro.cpd.cp_als.cp_als`.
        """
        side = self.kwargs.get("side")
        if self.method == "twostep" and side in ("left", "right"):
            return f"twostep:{side}"
        return self.method

    def to_json(self) -> dict:
        return {
            "method": self.method,
            "kwargs": dict(self.kwargs),
            "times": {k: float(v) for k, v in self.times.items()},
            "source": self.source,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "TuneRecord":
        if not isinstance(obj, dict) or "method" not in obj:
            raise ValueError(f"malformed tune record: {obj!r}")
        return cls(
            method=str(obj["method"]),
            kwargs=dict(obj.get("kwargs", {})),
            times={str(k): float(v) for k, v in obj.get("times", {}).items()},
            source=str(obj.get("source", "measured")),
        )


class TuningCache:
    """JSON-backed key/record store with tolerant loads and atomic saves.

    Parameters
    ----------
    path:
        Cache file location, or ``None`` for a purely in-memory cache
        (used when ``REPRO_TUNE_CACHE`` is unset).
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._lock = threading.Lock()
        self._entries: dict[str, TuneRecord] = {}
        self._warned = False
        if self.path is not None:
            self._entries = self._read_file()

    # -- persistence ---------------------------------------------------- #

    def _warn_once(self, message: str) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(message, TuneCacheWarning, stacklevel=3)

    def _read_file(self) -> dict[str, TuneRecord]:
        """Parse the cache file; any failure yields an empty mapping."""
        if self.path is None or not os.path.exists(self.path):
            return {}
        try:
            with open(self.path, encoding="utf-8") as fh:
                raw = json.load(fh)
            if not isinstance(raw, dict) or raw.get("version") != _SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported cache schema: {raw.get('version')!r}"
                    if isinstance(raw, dict)
                    else "top-level JSON value is not an object"
                )
            entries = raw.get("entries", {})
            if not isinstance(entries, dict):
                raise ValueError("'entries' is not an object")
            return {
                str(k): TuneRecord.from_json(v) for k, v in entries.items()
            }
        except (OSError, ValueError, TypeError, KeyError) as exc:
            # json.JSONDecodeError subclasses ValueError.
            self._warn_once(
                f"ignoring unreadable tuning cache {self.path!r} "
                f"({exc}); decisions will be re-measured"
            )
            return {}

    def _save_locked(self, merge: bool = True) -> None:
        """Merge-and-replace the on-disk file (caller holds ``self._lock``).

        Concurrency is layered: ``self._lock`` serializes writers sharing
        this instance; an advisory ``flock`` on ``<path>.lock`` serializes
        writers in *other* instances and processes around the
        read-merge-write cycle, so no writer's keys are lost; and the
        write-to-temp + :func:`os.replace` publication means readers (who
        take no lock at all) only ever see complete files even against a
        writer without flock support.
        """
        if self.path is None:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with self._writer_flock(directory):
            if merge:
                # Merge with what is on disk so a concurrent writer of
                # *other* keys is not clobbered; our own entries win on
                # conflict.  ``clear`` opts out — there the on-disk state
                # is exactly what must be discarded.
                merged = self._read_file()
                merged.update(self._entries)
                self._entries = merged
            merged = self._entries
            payload = {
                "version": _SCHEMA_VERSION,
                "entries": {k: r.to_json() for k, r in merged.items()},
            }
            fd, tmp_path = tempfile.mkstemp(
                prefix=".tune-", suffix=".json.tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=1, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise

    @contextmanager
    def _writer_flock(self, directory: str):
        """Advisory cross-process writer lock (no-op where unsupported)."""
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-posix fallback
            yield
            return
        lock_path = self.path + ".lock"
        try:
            lock_file = open(lock_path, "a")
        except OSError:  # pragma: no cover - unwritable directory
            yield
            return
        try:
            fcntl.flock(lock_file, fcntl.LOCK_EX)
            yield
        finally:
            lock_file.close()  # closing drops the flock

    # -- mapping interface ---------------------------------------------- #

    def get(self, key: TuneKey) -> TuneRecord | None:
        with self._lock:
            return self._entries.get(key.to_str())

    def put(self, key: TuneKey, record: TuneRecord) -> None:
        with self._lock:
            self._entries[key.to_str()] = record
            self._save_locked()

    def reload(self) -> None:
        """Re-read the backing file (picks up other processes' writes)."""
        with self._lock:
            if self.path is not None:
                self._entries = self._read_file()

    def clear(self, *, delete_file: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            if self.path is not None:
                if delete_file:
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass
                else:
                    self._save_locked(merge=False)

    def entries(self) -> dict[str, TuneRecord]:
        with self._lock:
            return dict(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.path if self.path is not None else "<memory>"
        return f"TuningCache({len(self)} entries, {where})"


# --------------------------------------------------------------------- #
# Module-wide cache instance
# --------------------------------------------------------------------- #

def default_cache_path() -> str | None:
    """The configured cache file, or ``None`` for in-memory caching."""
    value = os.environ.get("REPRO_TUNE_CACHE", "").strip()
    return value or None


_state_lock = threading.Lock()
_global_cache: TuningCache | None = None


def get_cache() -> TuningCache:
    """The shared cache for the configured path.

    Re-resolves ``REPRO_TUNE_CACHE`` on every call, so changing the
    variable (tests do) transparently switches files; the instance is
    reused while the path is stable so the in-memory view persists.
    """
    global _global_cache
    path = default_cache_path()
    with _state_lock:
        if _global_cache is None or _global_cache.path != path:
            _global_cache = TuningCache(path)
        return _global_cache


def reset_cache() -> None:
    """Drop the shared instance (next :func:`get_cache` re-creates it)."""
    global _global_cache
    with _state_lock:
        _global_cache = None
