"""``python -m repro.tune`` entry point."""

import sys

from repro.tune.cli import main

if __name__ == "__main__":
    sys.exit(main())
