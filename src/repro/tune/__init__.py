"""Empirical MTTKRP autotuning with a persisted decision cache.

``repro.tune`` replaces the paper's static Section 5.3.3 kernel policy
with measurement: for a ``(shape, rank, mode, threads, backend, dtype)``
configuration it microbenchmarks the real kernel candidates (1-step,
2-step in both orderings, the dimension-tree node path, the baseline),
persists the winner in a JSON cache (``REPRO_TUNE_CACHE``), and serves
every later call from the cache at zero measurement cost.  The analytic
machine model (:mod:`repro.machine`) seeds the search order and prunes
dominated candidates, so the model remains a prior while the decision is
empirical.

Entry points:

* :func:`autotune` — the library API (used by
  ``mttkrp(method="autotune")`` and ``cp_als(tune=True)``);
* ``python -m repro.tune`` / ``repro-tune`` — the CLI;
* :class:`TuningCache` / :func:`get_cache` — the persistence layer.

See ``docs/autotune.md``.
"""

from repro.tune.cache import (
    TuneCacheWarning,
    TuneKey,
    TuneRecord,
    TuningCache,
    default_cache_path,
    get_cache,
    reset_cache,
)
from repro.tune.tuner import (
    Candidate,
    autotune,
    candidate_set,
    is_degenerate,
    proxy_operands,
)

__all__ = [
    "Candidate",
    "TuneCacheWarning",
    "TuneKey",
    "TuneRecord",
    "TuningCache",
    "autotune",
    "candidate_set",
    "default_cache_path",
    "get_cache",
    "is_degenerate",
    "proxy_operands",
    "reset_cache",
]
