"""Serialization: tensors and CP models to/from ``.npz`` files.

A downstream user running the fMRI pipeline needs to persist fitted models
(multiple random starts across sessions, Section 3) and occasionally whole
tensors.  The format is plain numpy ``.npz`` with a small schema:

* tensors: ``kind="dense-tensor"``, ``data`` (flat natural-layout buffer),
  ``shape``;
* Kruskal models: ``kind="kruskal"``, ``weights``, ``factor_0..N-1``;
* Tucker models: ``kind="tucker"``, ``core_data``, ``core_shape``,
  ``factor_0..N-1``.

Files written by this module are self-describing and load without any
pickle (``allow_pickle=False`` throughout — safe to share).
"""

from __future__ import annotations

import os

import numpy as np

from repro.cpd.kruskal import KruskalTensor
from repro.cpd.tucker import TuckerTensor
from repro.tensor.dense import DenseTensor

__all__ = [
    "save_tensor",
    "load_tensor",
    "save_model",
    "load_model",
]


def save_tensor(path: str | os.PathLike, tensor: DenseTensor) -> None:
    """Write a :class:`DenseTensor` to ``path`` (``.npz``)."""
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    np.savez_compressed(
        path,
        kind=np.array("dense-tensor"),
        data=tensor.data,
        shape=np.array(tensor.shape, dtype=np.int64),
    )


def load_tensor(path: str | os.PathLike) -> DenseTensor:
    """Read a :class:`DenseTensor` written by :func:`save_tensor`."""
    with np.load(path, allow_pickle=False) as f:
        kind = str(f["kind"])
        if kind != "dense-tensor":
            raise ValueError(
                f"{path!s} holds a {kind!r}, not a dense tensor; "
                f"use load_model for models"
            )
        return DenseTensor(f["data"], tuple(int(s) for s in f["shape"]))


def save_model(
    path: str | os.PathLike, model: KruskalTensor | TuckerTensor
) -> None:
    """Write a Kruskal or Tucker model to ``path`` (``.npz``)."""
    if isinstance(model, KruskalTensor):
        arrays = {
            "kind": np.array("kruskal"),
            "weights": model.weights,
        }
        for n, f in enumerate(model.factors):
            arrays[f"factor_{n}"] = np.asarray(f)
        np.savez_compressed(path, **arrays)
    elif isinstance(model, TuckerTensor):
        arrays = {
            "kind": np.array("tucker"),
            "core_data": model.core.data,
            "core_shape": np.array(model.core.shape, dtype=np.int64),
        }
        for n, f in enumerate(model.factors):
            arrays[f"factor_{n}"] = np.asarray(f)
        np.savez_compressed(path, **arrays)
    else:
        raise TypeError(
            f"model must be a KruskalTensor or TuckerTensor, got "
            f"{type(model).__name__}"
        )


def load_model(path: str | os.PathLike) -> KruskalTensor | TuckerTensor:
    """Read a model written by :func:`save_model` (kind auto-detected)."""
    with np.load(path, allow_pickle=False) as f:
        kind = str(f["kind"])
        factor_keys = sorted(
            (k for k in f.files if k.startswith("factor_")),
            key=lambda k: int(k.split("_")[1]),
        )
        factors = [f[k] for k in factor_keys]
        if kind == "kruskal":
            return KruskalTensor(factors, f["weights"])
        if kind == "tucker":
            core = DenseTensor(
                f["core_data"], tuple(int(s) for s in f["core_shape"])
            )
            return TuckerTensor(core=core, factors=factors)
        raise ValueError(f"{path!s} holds unknown kind {kind!r}")
