"""Batched small-tensor engine: fleet MTTKRP and CP-ALS.

Millions of users means millions of *small* same-shape tensors, where
per-call Python/dispatch overhead dominates any single-tensor kernel
win.  This package stacks a fleet into one contiguous buffer
(:class:`~repro.batch.tensor.BatchedTensor`), runs the mode-``n``
MTTKRP for the whole fleet through stacked GEMMs
(:func:`~repro.batch.mttkrp.mttkrp_batched`), and decomposes every item
simultaneously with batched ALS sweeps
(:func:`~repro.batch.cp_als.cp_als_batched`).  Ad-hoc groups of
independent jobs — each with its own tensor and seed — enter through
:func:`~repro.batch.fleet.cp_als_fleet`, which stacks them with
per-item seeded initialization (the entry the job service's coalescing
scheduler uses; see ``docs/serving.md``).  See ``docs/batching.md`` for
the formulation, the empirical stacked-vs-loop crossover, and the
arena layout.
"""

from repro.batch.cp_als import BatchedCPResult, cp_als_batched
from repro.batch.fleet import cp_als_fleet, stack_seeded_init
from repro.batch.mttkrp import (
    BATCHED_MTTKRP_METHODS,
    BatchPlan,
    choose_batch_chunk,
    mttkrp_batched,
    mttkrp_batched_loop,
    mttkrp_batched_stacked,
)
from repro.batch.tensor import BatchedTensor

__all__ = [
    "BATCHED_MTTKRP_METHODS",
    "BatchPlan",
    "BatchedCPResult",
    "BatchedTensor",
    "choose_batch_chunk",
    "cp_als_batched",
    "cp_als_fleet",
    "stack_seeded_init",
    "mttkrp_batched",
    "mttkrp_batched_loop",
    "mttkrp_batched_stacked",
]
