"""Batched dense tensors: B same-shape tensors as one stacked buffer.

The ROADMAP's fleet workload is millions of *small* same-shape tensors
(one per user), not one huge one.  For those, per-call Python and
dispatch overhead dominates any GEMM-level win, so the batched engine
stores a whole fleet as a single ``(B, prod(shape))`` C-contiguous
array whose row ``b`` is tensor ``b``'s **natural-layout** flat buffer
— exactly the buffer a :class:`~repro.tensor.dense.DenseTensor` of the
same shape would hold.  Every batched matricization is then a zero-copy
reshape of the stack, and one stacked ``np.matmul`` replaces ``B``
kernel invocations (see :mod:`repro.batch.mttkrp`).

Row ``b`` aliasing a ``DenseTensor`` buffer bit-for-bit is the load-
bearing property: :meth:`BatchedTensor.item` is a zero-copy view, and
the batched kernels are bit-identical to the per-item loop because the
stacked views hand BLAS the same 2-D slices the per-item kernels do.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.tensor.layout import mode_products
from repro.util import prod

__all__ = ["BatchedTensor"]


class BatchedTensor:
    """``B`` same-shape dense tensors stacked as one C-contiguous array.

    Parameters
    ----------
    data:
        Either a 2-D ``(B, prod(shape))`` array whose rows are natural-
        layout flat buffers (``shape`` required), or a conventional
        ``(B, I_1, ..., I_N)`` array indexed ``[b, i_1, ..., i_N]``
        (``shape`` omitted; each item is re-laid-out into natural
        order, which copies).
    shape:
        Per-item tensor shape.  Required for 2-D ``data``; must be
        omitted (or match) for stacked N-D ``data``.
    """

    __slots__ = ("_flat", "_shape")

    def __init__(
        self, data: np.ndarray, shape: Sequence[int] | None = None
    ) -> None:
        arr = np.asarray(data)
        if shape is not None:
            shape = tuple(int(s) for s in shape)
            if arr.ndim != 2:
                raise ValueError(
                    f"flat batched data must be 2-D (B, prod(shape)), "
                    f"got {arr.ndim}-D"
                )
            if arr.shape[1] != prod(shape):
                raise ValueError(
                    f"flat rows have {arr.shape[1]} entries, shape "
                    f"{shape} needs {prod(shape)}"
                )
            flat = np.ascontiguousarray(arr)
        else:
            if arr.ndim < 3:
                raise ValueError(
                    "batched data without an explicit shape must be "
                    f"(B, I_1, ..., I_N) with N >= 2, got {arr.ndim}-D"
                )
            shape = arr.shape[1:]
            # Per-item Fortran ravel: item b's natural-layout buffer is
            # arr[b].ravel(order="F"), i.e. the reversed-axes C ravel.
            perm = (0,) + tuple(range(arr.ndim - 1, 0, -1))
            flat = np.ascontiguousarray(
                arr.transpose(perm).reshape(arr.shape[0], -1)
            )
        if len(shape) < 2:
            raise ValueError("batched tensors must be order >= 2")
        if any(s <= 0 for s in shape):
            raise ValueError(f"all dimensions must be positive, got {shape}")
        if flat.shape[0] < 1:
            raise ValueError("batch must hold at least one tensor")
        self._flat = flat
        self._shape = tuple(int(s) for s in shape)

    # ----------------------------------------------------------------- #
    # Construction helpers
    # ----------------------------------------------------------------- #

    @classmethod
    def from_tensors(cls, tensors: Sequence[DenseTensor]) -> "BatchedTensor":
        """Stack same-shape :class:`DenseTensor` items (copies once)."""
        if not tensors:
            raise ValueError("from_tensors needs at least one tensor")
        shape = tensors[0].shape
        for i, t in enumerate(tensors):
            if not isinstance(t, DenseTensor):
                raise TypeError(
                    f"item {i} is {type(t).__name__}, expected DenseTensor"
                )
            if t.shape != shape:
                raise ValueError(
                    f"item {i} has shape {t.shape}, expected {shape}"
                )
        return cls(np.stack([t.data for t in tensors]), shape)

    # ----------------------------------------------------------------- #
    # Properties
    # ----------------------------------------------------------------- #

    @property
    def flat(self) -> np.ndarray:
        """The ``(B, prod(shape))`` C-contiguous stack (mutable view)."""
        return self._flat

    @property
    def batch(self) -> int:
        return self._flat.shape[0]

    @property
    def shape(self) -> tuple[int, ...]:
        """Per-item tensor shape."""
        return self._shape

    @property
    def ndim(self) -> int:
        """Per-item order."""
        return len(self._shape)

    @property
    def size(self) -> int:
        """Entries per item."""
        return self._flat.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self._flat.dtype

    @property
    def nbytes(self) -> int:
        return self._flat.nbytes

    # ----------------------------------------------------------------- #
    # Views
    # ----------------------------------------------------------------- #

    def item(self, b: int) -> DenseTensor:
        """Tensor ``b`` as a zero-copy :class:`DenseTensor` view."""
        b = int(b)
        if not -self.batch <= b < self.batch:
            raise IndexError(f"item {b} out of range for batch {self.batch}")
        return DenseTensor(self._flat[b], self._shape)

    def to_ndarray(self) -> np.ndarray:
        """Conventional ``(B, I_1, ..., I_N)`` view (zero-copy)."""
        rev = self._flat.reshape((self.batch,) + self._shape[::-1])
        return rev.transpose((0,) + tuple(range(self.ndim, 0, -1)))

    def unfold_mode0(self) -> np.ndarray:
        """Batched mode-0 matricization: ``(B, I_0, prod(I_1..))``.

        Each 2-D slice is the item's F-order ``unfold_mode0`` view.
        """
        p = mode_products(self._shape, 0)
        return self._flat.reshape(self.batch, p.other, p.size).transpose(
            0, 2, 1
        )

    def unfold_last(self) -> np.ndarray:
        """Batched last-mode matricization: ``(B, I_{N-1}, prod(..I_{N-2}))``."""
        p = mode_products(self._shape, self.ndim - 1)
        return self._flat.reshape(self.batch, p.size, p.left)

    def mode_blocks(self, n: int) -> np.ndarray:
        """Batched block view ``(B, I^R_n, I_n, I^L_n)`` for mode ``n``."""
        p = mode_products(self._shape, n)
        return self._flat.reshape(self.batch, p.right, p.size, p.left)

    # ----------------------------------------------------------------- #
    # Misc
    # ----------------------------------------------------------------- #

    def norms(self) -> np.ndarray:
        """Per-item Frobenius norms, shape ``(B,)``."""
        return np.linalg.norm(self._flat, axis=1)

    def copy(self) -> "BatchedTensor":
        return BatchedTensor(self._flat.copy(), self._shape)

    def astype(self, dtype) -> "BatchedTensor":
        return BatchedTensor(self._flat.astype(dtype), self._shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedTensor(batch={self.batch}, shape={self._shape}, "
            f"dtype={self.dtype})"
        )
