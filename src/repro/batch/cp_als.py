"""Fleet CP-ALS: decompose B small same-shape tensors simultaneously.

One ALS iteration for the whole fleet: every mode update runs one
batched MTTKRP (:func:`repro.batch.mttkrp.mttkrp_batched`), one stacked
Gram/Hadamard product ``(B, C, C)``, and one stacked
``np.linalg.solve`` — so per-item Python cost is amortized over the
batch exactly where it dominates (small tensors).  The per-item update
math mirrors :func:`repro.cpd.cp_als.cp_als` line by line (same weight
normalization, same fit-via-last-MTTKRP trick), so each item's iterates
match an independent single-tensor run to solver precision.

Items converge independently: a per-item convergence mask retires
finished items from the working set.  Once any item has converged the
remaining active items are gathered into workspace-held compaction
buffers (the tensor data is copied once per *shrink event*, not per
iteration), so finished items stop consuming MTTKRP, Gram, and solve
work entirely.
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.batch.mttkrp import mttkrp_batched
from repro.batch.tensor import BatchedTensor
from repro.cpd.kruskal import KruskalTensor
from repro.obs import get_tracer
from repro.parallel.config import use_backend
from repro.util.timing import PhaseTimer, wall_time

__all__ = ["cp_als_batched", "BatchedCPResult"]


@dataclass
class BatchedCPResult:
    """Outcome of one fleet CP-ALS run.

    Attributes
    ----------
    factors:
        One stacked ``(B, I_k, C)`` array per mode (not normalized;
        pair with ``weights`` or use :meth:`model`).
    weights:
        Per-item column weights, shape ``(B, C)``.
    fits:
        Final fit ``1 - |X_b - Y_b|/|X_b|`` per item, shape ``(B,)``.
    converged:
        Per-item early-stop flags, shape ``(B,)``.
    iterations:
        Iterations each item actually ran, shape ``(B,)``.
    iteration_times:
        Wall seconds per fleet iteration (the active-item count falls
        as items converge, so late entries cover fewer items).
    timers:
        Aggregated phase timings (MTTKRP phases + ``gram``/``solve``).
    tuning:
        The :class:`~repro.tune.cache.TuneRecord` behind the run's
        kernel pick when started with ``tune=True``, else ``None``.
    """

    factors: list[np.ndarray]
    weights: np.ndarray
    fits: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray
    iteration_times: list[float] = field(default_factory=list)
    timers: PhaseTimer = field(default_factory=PhaseTimer)
    tuning: object | None = None

    @property
    def batch(self) -> int:
        return int(self.weights.shape[0])

    def model(self, b: int) -> KruskalTensor:
        """Item ``b``'s fitted model (normalized, weight-sorted)."""
        return KruskalTensor(
            [np.array(f[b]) for f in self.factors], np.array(self.weights[b])
        ).normalize()


def cp_als_batched(
    batch: BatchedTensor,
    rank: int,
    n_iter_max: int = 50,
    tol: float = 1e-8,
    init: str | Sequence[np.ndarray] = "random",
    method: str = "auto",
    num_threads: int | None = None,
    backend: str | None = None,
    rng: np.random.Generator | int | None = None,
    workspace=None,
    tune: bool = False,
    cancel: "CancelToken | None" = None,
) -> BatchedCPResult:
    """Fit a rank-``C`` CP decomposition to every item of a batch.

    Parameters
    ----------
    batch:
        ``B`` same-shape dense tensors (:class:`BatchedTensor`).
    rank:
        Number of CP components ``C`` (shared across the fleet).
    n_iter_max:
        Maximum ALS iterations per item.
    tol:
        Per-item convergence tolerance on the fit change; ``tol <= 0``
        disables early stopping (every item runs ``n_iter_max``).
    init:
        ``"random"`` (seeded by ``rng``) or one explicit ``(B, I_k, C)``
        array per mode.
    method:
        Batched MTTKRP method for every mode update, one of
        :data:`~repro.batch.mttkrp.BATCHED_MTTKRP_METHODS`.  Ignored
        when ``tune=True``.
    num_threads / backend:
        Forwarded to the batched kernels (workers split the batch axis;
        iterates are bit-identical across backends and thread counts).
    rng:
        Seed/generator for random initialization.
    workspace:
        Optional :class:`~repro.parallel.workspace.Workspace` owning the
        kernel panels, Gram/Hadamard stacks and compaction buffers.  By
        default one is created and closed internally; pass your own to
        verify the zero-steady-state-allocation property (buffers are
        re-acquired only when the active set shrinks).
    tune:
        Resolve the stacked-vs-loop crossover once up front via
        :func:`repro.tune.batched.autotune_batched` and use that lane
        for every iteration (overrides ``method``).
    cancel:
        Optional :class:`~repro.util.cancel.CancelToken` polled at every
        *fleet* iteration boundary (the whole batch advances in
        lock-step, so cancellation is fleet-granular here; per-item
        retirement is what the convergence mask is for).  The token's
        ``on_progress(iteration, fit)`` hook receives the mean fit over
        the items still active this iteration.

    Returns
    -------
    BatchedCPResult

    Raises
    ------
    ValueError
        On rank/shape inconsistencies or if any item is a zero tensor.
    """
    if not isinstance(batch, BatchedTensor):
        raise TypeError(
            f"batch must be a BatchedTensor, got {type(batch).__name__}"
        )
    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    if n_iter_max <= 0:
        raise ValueError(f"n_iter_max must be positive, got {n_iter_max}")
    B = batch.batch
    N = batch.ndim
    shape = batch.shape

    if isinstance(init, str):
        if init != "random":
            raise ValueError(
                f"unknown batched init {init!r} (use 'random' or explicit "
                f"stacked factors)"
            )
        if rng is None or isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        factors = [
            rng.random((B, s, rank)) for s in shape
        ]
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init]
        if len(factors) != N:
            raise ValueError(
                f"expected {N} initial stacked factors, got {len(factors)}"
            )
        for n, f in enumerate(factors):
            if f.shape != (B, shape[n], rank):
                raise ValueError(
                    f"init[{n}] has shape {f.shape}, expected "
                    f"{(B, shape[n], rank)}"
                )

    norm_x = batch.norms()
    if np.any(norm_x == 0.0):
        bad = np.flatnonzero(norm_x == 0.0)
        raise ValueError(
            f"cannot decompose zero tensors (items {bad.tolist()})"
        )

    timers = PhaseTimer()
    tracer = get_tracer()
    flat = batch.flat

    weights = np.ones((B, rank))
    fits = np.zeros(B)
    previous_fit = np.full(B, -np.inf)
    iterations = np.zeros(B, dtype=np.int64)
    converged = np.zeros(B, dtype=bool)
    active = np.ones(B, dtype=bool)
    result = BatchedCPResult(
        factors=factors, weights=weights, fits=fits, converged=converged,
        iterations=iterations, timers=timers,
    )

    backend_scope = use_backend(backend) if backend is not None else nullcontext()
    with backend_scope, tracer.span(
        "cp_als_batched", rank=rank, batch=B, shape=list(shape),
        method=method, tune=tune,
    ):
        from repro.parallel.backend import get_executor
        from repro.parallel.config import resolve_threads
        from repro.parallel.workspace import Workspace

        T = resolve_threads(num_threads)
        executor = get_executor(T) if T > 1 else None
        ws = workspace if workspace is not None else Workspace(executor)
        own_ws = workspace is None
        if tune:
            from repro.tune.batched import autotune_batched

            record = autotune_batched(
                batch, factors, 0, num_threads=num_threads,
                workspace=ws,
            )
            result.tuning = record
            method = record.method
            ws.release("tune.")
        try:
            if cancel is not None:
                cancel.raise_if_cancelled()
            for it in range(n_iter_max):
                idx = np.flatnonzero(active)
                m = idx.size
                if m == 0:
                    break
                with tracer.span(f"iter[{it}]", active=int(m)):
                    t_start = wall_time()
                    if m == B:
                        sub = batch
                        sub_factors = factors
                    else:
                        # Compact the active items.  The gather buffers
                        # are full-size and acquired once; data moves
                        # only when the active set shrank this round.
                        tbuf = ws.buffer(
                            "cpb.gather.tensor", (B, batch.size),
                            dtype=flat.dtype,
                        )
                        np.take(flat, idx, axis=0, out=tbuf[:m])
                        sub = BatchedTensor(tbuf[:m], shape)
                        sub_factors = []
                        for k in range(N):
                            fbuf = ws.buffer(
                                f"cpb.gather.factor{k}",
                                (B, shape[k], rank),
                            )
                            np.take(factors[k], idx, axis=0, out=fbuf[:m])
                            sub_factors.append(fbuf[:m])
                    sub_weights, M, h_all = _iterate_once(
                        sub, sub_factors, rank, it, method, num_threads,
                        timers, tracer, ws,
                    )
                    if m != B:
                        for k in range(N):
                            factors[k][idx] = sub_factors[k]
                    weights[idx] = sub_weights
                    result.iteration_times.append(wall_time() - t_start)

                    # Fit via the last mode's MTTKRP (see cp_als).
                    inner = np.einsum(
                        "bic,bic,bc->b", M, sub_factors[N - 1], sub_weights
                    )
                    norm_y_sq = np.einsum(
                        "bc,bcd,bd->b", sub_weights, h_all, sub_weights
                    )
                    nx = norm_x[idx]
                    residual_sq = np.maximum(
                        nx**2 - 2.0 * inner + norm_y_sq, 0.0
                    )
                    fit = 1.0 - np.sqrt(residual_sq) / nx
                    fits[idx] = fit
                    iterations[idx] = it + 1
                    if tol > 0:
                        done = np.abs(fit - previous_fit[idx]) < tol
                        converged[idx[done]] = True
                        active[idx[done]] = False
                    previous_fit[idx] = fit
                    # Fleet iteration boundary: stream the active-set
                    # mean fit, then honour cancellation/deadline.
                    if cancel is not None:
                        if cancel.on_progress is not None:
                            cancel.on_progress(it, float(np.mean(fit)))
                        cancel.raise_if_cancelled()
        finally:
            if own_ws:
                ws.close()
    return result


def _iterate_once(
    sub, sub_factors, rank, it, method, num_threads, timers, tracer, ws
):
    """One full ALS sweep over the active sub-batch.

    Returns ``(weights, M, h_all)``: the per-item weights after the
    last mode's update, the last mode's MTTKRP result, and the Hadamard
    of all N Gram stacks — the three ingredients of the caller's
    no-extra-pass fit computation.
    """
    m = sub.batch
    N = sub.ndim
    grams = ws.buffer("cpb.grams", (N, m, rank, rank))
    with timers.phase("gram"), tracer.span("gram"):
        for k in range(N):
            np.matmul(
                sub_factors[k].transpose(0, 2, 1), sub_factors[k],
                out=grams[k],
            )
    weights = None
    M = None
    for n in range(N):
        with tracer.span(f"mode[{n}]"):
            M = mttkrp_batched(
                sub, sub_factors, n, method=method,
                num_threads=num_threads, timers=timers,
                workspace=ws, slot="cpb.mttkrp",
            )
            with timers.phase("gram"), tracer.span("gram"):
                H = ws.buffer("cpb.hadamard", (m, rank, rank))
                H[...] = 1.0
                for k in range(N):
                    if k != n:
                        np.multiply(H, grams[k], out=H)
            with timers.phase("solve"), tracer.span("solve"):
                U = _solve_update_batched(M, H)
                # Same normalization schedule as cp_als: column 2-norms
                # on the first iteration, max-norms (floored at 1) after.
                if it == 0:
                    weights = np.linalg.norm(U, axis=1)
                else:
                    weights = np.maximum(np.abs(U).max(axis=1), 1.0)
                weights = np.where(weights > 0, weights, 1.0)
                # Rebind rather than write in place: the process
                # backend's operand marshalling caches exports by array
                # identity, so an in-place update would re-serve the
                # pre-update factor to the workers.
                sub_factors[n] = U / weights[:, None, :]
            np.matmul(
                sub_factors[n].transpose(0, 2, 1), sub_factors[n],
                out=grams[n],
            )
    h_all = ws.buffer("cpb.hadamard_all", (m, rank, rank))
    h_all[...] = 1.0
    for k in range(N):
        np.multiply(h_all, grams[k], out=h_all)
    return weights, M, h_all


def _solve_update_batched(M: np.ndarray, H: np.ndarray) -> np.ndarray:
    """Stacked ``U_b = M_b H_b^+`` (one LAPACK call for the fleet).

    A single singular item would fail the stacked solve, so on
    ``LinAlgError`` the batch degrades to per-item solves with the same
    pseudoinverse fallback :func:`repro.cpd.cp_als._solve_update` uses.
    """
    try:
        return np.linalg.solve(H, M.transpose(0, 2, 1)).transpose(0, 2, 1)
    except np.linalg.LinAlgError:
        out = np.empty_like(M)
        for b in range(M.shape[0]):
            try:
                out[b] = np.linalg.solve(H[b], M[b].T).T
            except np.linalg.LinAlgError:
                out[b] = M[b] @ np.linalg.pinv(H[b])
        return out
