"""Fleet entry point: run CP-ALS over an ad-hoc group of same-shape tensors.

:func:`repro.batch.cp_als.cp_als_batched` wants a pre-stacked
:class:`~repro.batch.tensor.BatchedTensor` plus *stacked* initial
factors.  A job scheduler holds neither — it holds a list of independent
jobs, each with its own tensor and its own seed.  :func:`cp_als_fleet`
is the bridge: it stacks the tensors, builds every item's initial
factors **exactly as a solo** :func:`repro.cpd.cp_als.cp_als` **call
with that item's seed would** (same
:func:`~repro.cpd.init.initialize_factors` draws), and dispatches one
batched run.

The load-bearing property is determinism in the group composition: the
result is a pure function of the *ordered* tensor list, the seeds, and
the options — not of who coalesced the group or when.  A service that
batches jobs A, B, C therefore produces bit-for-bit the results of a
direct ``cp_als_fleet([A, B, C], ...)`` call, which is what the serve
differential oracle (``tests/test_oracle_serve.py``) pins.

Note the fleet iterates are *numerically* (to solver precision, not
bitwise) equal to per-item solo runs: the stacked Gram/solve operate on
the same values but through batched BLAS calls.  Bit-identity holds
along each path separately — solo-vs-solo and fleet-vs-fleet — which is
exactly the guarantee a deterministic service needs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.batch.cp_als import BatchedCPResult, cp_als_batched
from repro.batch.tensor import BatchedTensor
from repro.cpd.init import initialize_factors
from repro.tensor.dense import DenseTensor

__all__ = ["cp_als_fleet", "stack_seeded_init"]


def stack_seeded_init(
    tensors: Sequence[DenseTensor],
    rank: int,
    seeds: Sequence[int | None],
    init: str = "random",
) -> list[np.ndarray]:
    """Per-item seeded initial factors, stacked to ``(B, I_k, C)``.

    Item ``b``'s slice reproduces ``initialize_factors(tensors[b], rank,
    method=init, rng=seeds[b])`` exactly, so a fleet run started from
    this stack shares its initialization with the corresponding solo
    runs.
    """
    if len(seeds) != len(tensors):
        raise ValueError(
            f"got {len(seeds)} seeds for {len(tensors)} tensors"
        )
    per_item = [
        initialize_factors(t, rank, method=init, rng=seed)
        for t, seed in zip(tensors, seeds)
    ]
    N = tensors[0].ndim
    return [
        np.stack([item[k] for item in per_item]) for k in range(N)
    ]


def cp_als_fleet(
    tensors: Sequence[DenseTensor],
    rank: int,
    *,
    seeds: Sequence[int | None] | None = None,
    init: str = "random",
    n_iter_max: int = 50,
    tol: float = 1e-8,
    method: str = "auto",
    num_threads: int | None = None,
    backend: str | None = None,
    workspace=None,
    tune: bool = False,
    cancel=None,
) -> BatchedCPResult:
    """Decompose a group of same-shape tensors in one batched run.

    Parameters
    ----------
    tensors:
        Same-shape :class:`DenseTensor` items (the group is stacked via
        :meth:`BatchedTensor.from_tensors`, one copy).
    rank:
        Shared CP rank.
    seeds:
        Per-item initialization seeds (``None`` entries draw from fresh
        OS entropy, like a solo run without a seed).  Defaults to all
        ``None``.  With seeds given, item ``b``'s initial factors are
        bit-identical to a solo ``cp_als(tensors[b], rank,
        rng=seeds[b])`` run's.
    init:
        Initialization method forwarded to
        :func:`~repro.cpd.init.initialize_factors` per item.
    n_iter_max / tol / method / num_threads / backend / workspace / tune / cancel:
        Forwarded to :func:`~repro.batch.cp_als.cp_als_batched`.

    Returns
    -------
    BatchedCPResult
        Item ``b``'s model via :meth:`BatchedCPResult.model`.
    """
    if not tensors:
        raise ValueError("cp_als_fleet needs at least one tensor")
    if seeds is None:
        seeds = [None] * len(tensors)
    batch = BatchedTensor.from_tensors(list(tensors))
    stacked = stack_seeded_init(tensors, int(rank), seeds, init=init)
    return cp_als_batched(
        batch,
        int(rank),
        n_iter_max=n_iter_max,
        tol=tol,
        init=stacked,
        method=method,
        num_threads=num_threads,
        backend=backend,
        workspace=workspace,
        tune=tune,
        cancel=cancel,
    )
