"""Batched MTTKRP: the 1-step formulation lifted over a batch axis.

For one small tensor the 1-step kernel is a KRP plus one GEMM; at fleet
scale (``B`` small same-shape tensors) the Python/dispatch overhead of
``B`` separate kernel calls dwarfs the arithmetic.  This module lifts
the formulation to 3-D: per-item Khatri-Rao panels are formed into a
cache-resident stacked buffer (chunked by the same machine-model cache
capacity the blocked kernel's tiles use), then one batched
``np.matmul`` — ``(bc, I_n, J) @ (bc, J, C)`` — computes a whole chunk
of MTTKRPs in a single call.  Internal modes use the 4-D form
``(bc, I^R_n, I_n, I^L_n) @ (bc, I^R_n, I^L_n, C)`` summed over the
block axis.

NumPy executes a stacked matmul as one BLAS call per 2-D slice with
exactly the strides the per-item kernel would pass, so ``"batched"``
and the ``"batched-loop"`` reference lane are **bit-identical** — and,
items being independent, results are invariant to thread count,
backend, and batch partition.  The differential oracle
(``tests/test_oracle_batch.py``) pins both properties.

Methods (``BATCHED_MTTKRP_METHODS``):

* ``"auto"`` — the stacked kernel (``"batched"``);
* ``"autotune"`` — empirical stacked-vs-loop crossover from
  :func:`repro.tune.batched.autotune_batched`, cached per
  ``(shape, rank, mode, threads, backend, dtype, batch)``;
* ``"batched"`` — stacked panels + one batched GEMM per chunk;
* ``"batched-loop"`` — the per-item 2-D loop over the same stacked
  storage (the crossover baseline; wins only when items are large
  enough that per-call overhead is already negligible).
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter as _clock

import numpy as np

from repro.batch.tensor import BatchedTensor
from repro.core.flops import record_mttkrp_cost
from repro.core.krp import khatri_rao
from repro.core.mttkrp_blocked import _resolve_cache_bytes
from repro.obs import get_tracer
from repro.parallel.backend import get_executor
from repro.parallel.config import resolve_threads, use_backend
from repro.tensor.layout import mode_products
from repro.util.timing import NULL_TIMER, PhaseTimer
from repro.util.validation import check_mode

__all__ = [
    "BATCHED_MTTKRP_METHODS",
    "BatchPlan",
    "choose_batch_chunk",
    "mttkrp_batched",
    "mttkrp_batched_stacked",
    "mttkrp_batched_loop",
]

BATCHED_MTTKRP_METHODS = (
    "auto",
    "autotune",
    "batched",
    "batched-loop",
)

# Execution-environment kwargs forwarded from the caller when
# ``method="autotune"`` resolves to a concrete lane (the tuning record
# itself carries no mathematical kwargs for the batched lanes).
_TUNE_PASSTHROUGH = ("workspace", "slot", "cache_bytes")


@dataclass(frozen=True)
class BatchPlan:
    """Chunking decision for one batched MTTKRP invocation.

    ``chunk`` items are processed per stacked GEMM so that the panel
    chunk, the tensor chunk, and the output chunk together stay within
    half the fast-memory capacity — the same budget rule the blocked
    kernel's :func:`~repro.core.mttkrp_blocked.choose_tiles` applies to
    one large tensor.
    """

    chunk: int
    num_chunks: int
    cache_bytes: float


def choose_batch_chunk(
    shape: Sequence[int],
    n: int,
    C: int,
    batch: int,
    itemsize: int = 8,
    cache_bytes: float | None = None,
) -> BatchPlan:
    """Pick the batch-chunk size for ``batch`` items of ``shape``.

    Per item the working set is the KRP panel (``I^o_n * C``), the
    tensor row (``prod(shape)``), the output (``I_n * C``) and, for
    internal modes, the pre-reduction product (``I^R_n * I_n * C``).
    The chunk is the largest item count whose working set fits in half
    of ``cache_bytes`` (floored at 1, capped at ``batch``).
    """
    shape = [int(s) for s in shape]
    batch = int(batch)
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    cache = _resolve_cache_bytes(cache_bytes)
    p = mode_products(shape, n)
    C = int(C)
    target_words = max(int(cache) // 2 // int(itemsize), 1)
    per_item = p.other * C + p.total + p.size * C
    if 0 < n < len(shape) - 1:
        per_item += p.right * p.size * C
    chunk = min(max(target_words // per_item, 1), batch)
    return BatchPlan(int(chunk), -(-batch // int(chunk)), float(cache))


# --------------------------------------------------------------------- #
# Dispatch
# --------------------------------------------------------------------- #


def mttkrp_batched(
    batch: BatchedTensor,
    factors: Sequence[np.ndarray],
    n: int,
    method: str = "auto",
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    backend: str | None = None,
    **kwargs,
) -> np.ndarray:
    """Mode-``n`` MTTKRP for every item of a batch in one call.

    ``out[b] = X_b_(n) . (U_{N-1}[b] krp ... krp U_0[b])`` for each of
    the ``B`` stacked tensors.

    Parameters
    ----------
    batch:
        ``B`` same-shape dense tensors (:class:`BatchedTensor`).
    factors:
        One stacked ``(B, I_k, C)`` factor array per mode.
    n:
        Output mode (negative values allowed, numpy-style).
    method:
        One of ``BATCHED_MTTKRP_METHODS`` (see module docstring).
    num_threads:
        Worker count; workers split the **batch axis** into contiguous
        blocks (items are independent, so no reduction is needed and
        any split is bit-identical).
    timers:
        Optional :class:`~repro.util.timing.PhaseTimer`
        (``"full_krp"`` / ``"gemm"`` phases).
    backend:
        ``"thread"`` or ``"process"``; defaults to the package setting.
    **kwargs:
        Forwarded to the selected lane (``workspace=``, ``slot=``,
        ``cache_bytes=``).

    Returns
    -------
    numpy.ndarray
        The stacked ``(B, I_n, C)`` MTTKRP results.  With a
        ``workspace=``, the array is arena-owned and overwritten by the
        next call on the same slot — copy it to keep it.
    """
    if not isinstance(batch, BatchedTensor):
        raise TypeError(
            f"batch must be a BatchedTensor, got {type(batch).__name__}"
        )
    n = check_mode(n, batch.ndim)
    if method == "auto":
        method = "batched"
    autotuned = method == "autotune"
    if autotuned:
        from repro.tune.batched import autotune_batched

        record = autotune_batched(
            batch,
            factors,
            n,
            num_threads=num_threads,
            backend=backend,
            workspace=kwargs.get("workspace"),
        )
        method = record.method
        resolved_kwargs = dict(record.kwargs)
        for key in _TUNE_PASSTHROUGH:
            if key in kwargs:
                resolved_kwargs[key] = kwargs[key]
        kwargs = resolved_kwargs
    if method not in BATCHED_MTTKRP_METHODS or method in ("auto", "autotune"):
        raise ValueError(
            f"unknown method {method!r}; expected one of "
            f"{BATCHED_MTTKRP_METHODS}"
        )

    tracer = get_tracer()
    backend_scope = use_backend(backend) if backend is not None else nullcontext()
    with backend_scope:
        if not tracer.enabled:
            return _run(batch, factors, n, method, num_threads, timers, kwargs)
        with tracer.span(
            f"batch.mttkrp.{method}", mode=n, batch=batch.batch,
            shape=list(batch.shape), autotuned=autotuned,
        ) as span:
            out = _run(batch, factors, n, method, num_threads, timers, kwargs)
            span.args["rank"] = int(out.shape[-1])
            return out


def _run(batch, factors, n, method, num_threads, timers, kwargs):
    if method == "batched":
        return mttkrp_batched_stacked(
            batch, factors, n, num_threads=num_threads, timers=timers,
            **kwargs,
        )
    assert method == "batched-loop"
    return mttkrp_batched_loop(
        batch, factors, n, num_threads=num_threads, timers=timers, **kwargs
    )


# --------------------------------------------------------------------- #
# Shared pieces
# --------------------------------------------------------------------- #


def _validate(
    batch: BatchedTensor, factors: Sequence[np.ndarray], n: int
) -> tuple[int, int]:
    if not isinstance(batch, BatchedTensor):
        raise TypeError(
            f"batch must be a BatchedTensor, got {type(batch).__name__}"
        )
    n = check_mode(n, batch.ndim)
    if len(factors) != batch.ndim:
        raise ValueError(
            f"expected {batch.ndim} stacked factors, got {len(factors)}"
        )
    rank = None
    for k, f in enumerate(factors):
        f = np.asarray(f)
        if f.ndim != 3:
            raise ValueError(
                f"stacked factor {k} must be 3-D (B, I_k, C), got "
                f"{f.ndim}-D"
            )
        if f.shape[0] != batch.batch:
            raise ValueError(
                f"stacked factor {k} has batch {f.shape[0]}, tensor batch "
                f"is {batch.batch}"
            )
        if f.shape[1] != batch.shape[k]:
            raise ValueError(
                f"stacked factor {k} has {f.shape[1]} rows, mode extent "
                f"is {batch.shape[k]}"
            )
        if rank is None:
            rank = int(f.shape[2])
        elif f.shape[2] != rank:
            raise ValueError(
                f"stacked factor {k} has {f.shape[2]} columns, expected "
                f"{rank}"
            )
    return n, rank


def _stacked_operands(
    factors: Sequence[np.ndarray], n: int
) -> list[np.ndarray]:
    """KRP operand stacks in row-convention order (first = slowest)."""
    return [
        np.ascontiguousarray(factors[k])
        for k in range(len(factors) - 1, -1, -1)
        if k != n
    ]


def _acquire(workspace, name, shape, dtype):
    if workspace is not None:
        return workspace.buffer(name, shape, dtype)
    return np.empty(shape, dtype=dtype, order="C")


def _stacked_chunk(flat, shape, n, ops, b0, b1, out, pan, prod):
    """One chunk ``[b0, b1)``: per-item KRP panels, then stacked GEMMs.

    ``out``/``pan``/``prod`` are the chunk-sized views; ``prod`` is the
    pre-reduction ``(bc, I^R_n, I_n, C)`` buffer (internal modes only).
    Returns (krp seconds, gemm seconds).
    """
    bc = b1 - b0
    t0 = _clock()
    for i in range(bc):
        khatri_rao([op[b0 + i] for op in ops], out=pan[i])
    t1 = _clock()
    N = len(shape)
    p = mode_products(shape, n)
    if n == N - 1:
        X3 = flat.reshape(flat.shape[0], p.size, p.left)
        np.matmul(X3[b0:b1], pan, out=out)
    elif n == 0:
        X3 = flat.reshape(flat.shape[0], p.other, p.size)
        np.matmul(X3[b0:b1].transpose(0, 2, 1), pan, out=out)
    else:
        X4 = flat.reshape(flat.shape[0], p.right, p.size, p.left)
        K4 = pan.reshape(bc, p.right, p.left, pan.shape[-1])
        np.matmul(X4[b0:b1], K4, out=prod)
        np.sum(prod, axis=1, out=out)
    return t1 - t0, _clock() - t1


def _loop_item(flat, shape, n, ops, b, out2, pan, prod):
    """Item ``b`` with per-item 2-D arithmetic (the reference lane)."""
    t0 = _clock()
    khatri_rao([op[b] for op in ops], out=pan)
    t1 = _clock()
    N = len(shape)
    p = mode_products(shape, n)
    row = flat[b]
    if n == N - 1:
        np.matmul(row.reshape(p.size, p.left), pan, out=out2)
    elif n == 0:
        np.matmul(row.reshape(p.other, p.size).T, pan, out=out2)
    else:
        X3 = row.reshape(p.right, p.size, p.left)
        K3 = pan.reshape(p.right, p.left, pan.shape[-1])
        np.matmul(X3, K3, out=prod)
        np.sum(prod, axis=0, out=out2)
    return t1 - t0, _clock() - t1


# --------------------------------------------------------------------- #
# Region kernels (module-level so the process backend ships them by
# reference; all shared writes are worker- or partition-indexed)
# --------------------------------------------------------------------- #


def _k_batched_stacked(
    worker: int,
    start: int,
    stop: int,
    flat: np.ndarray,
    shape: tuple,
    n: int,
    ops: list,
    chunk: int,
    out: np.ndarray,
    panel: np.ndarray,
    prod: np.ndarray | None,
    krp_seconds: np.ndarray,
    gemm_seconds: np.ndarray,
) -> None:
    tk = 0.0
    tg = 0.0
    pan = panel[worker]
    pr = None if prod is None else prod[worker]
    for b0 in range(start, stop, chunk):
        b1 = min(b0 + chunk, stop)
        bc = b1 - b0
        k, g = _stacked_chunk(
            flat, shape, n, ops, b0, b1, out[b0:b1], pan[:bc],
            None if pr is None else pr[:bc],
        )
        tk += k
        tg += g
    krp_seconds[worker] = tk
    gemm_seconds[worker] = tg


def _k_batched_loop(
    worker: int,
    start: int,
    stop: int,
    flat: np.ndarray,
    shape: tuple,
    n: int,
    ops: list,
    out: np.ndarray,
    panel: np.ndarray,
    prod: np.ndarray | None,
    krp_seconds: np.ndarray,
    gemm_seconds: np.ndarray,
) -> None:
    tk = 0.0
    tg = 0.0
    pan = panel[worker]
    pr = None if prod is None else prod[worker]
    for b in range(start, stop):
        k, g = _loop_item(flat, shape, n, ops, b, out[b], pan, pr)
        tk += k
        tg += g
    krp_seconds[worker] = tk
    gemm_seconds[worker] = tg


# --------------------------------------------------------------------- #
# Kernel entries
# --------------------------------------------------------------------- #


def mttkrp_batched_stacked(
    batch: BatchedTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    workspace=None,
    slot: str = "batch",
    cache_bytes: float | None = None,
) -> np.ndarray:
    """The stacked lane: chunked panels + one batched GEMM per chunk."""
    n, rank = _validate(batch, factors, n)
    T = resolve_threads(num_threads)
    t = timers if timers is not None else NULL_TIMER
    tr = get_tracer()
    record_mttkrp_cost(
        tr, batch.shape, n, rank, "batched", T, cache_bytes=cache_bytes,
        batch=batch.batch,
    )
    dtype = np.result_type(
        batch.dtype, *[np.asarray(f).dtype for f in factors]
    )
    p = mode_products(batch.shape, n)
    B = batch.batch
    plan = choose_batch_chunk(
        batch.shape, n, rank, B,
        itemsize=np.dtype(dtype).itemsize, cache_bytes=cache_bytes,
    )
    ops = _stacked_operands(factors, n)
    internal = 0 < n < batch.ndim - 1
    flat = batch.flat
    pfx = f"{slot}.m{n}"

    if T == 1:
        out = _acquire(workspace, f"{pfx}.out", (B, p.size, rank), dtype)
        pan = _acquire(
            workspace, f"{pfx}.stacked.panel",
            (plan.chunk, p.other, rank), dtype,
        )
        prod = (
            _acquire(
                workspace, f"{pfx}.stacked.prod",
                (plan.chunk, p.right, p.size, rank), dtype,
            )
            if internal else None
        )
        tk = tg = 0.0
        for b0 in range(0, B, plan.chunk):
            b1 = min(b0 + plan.chunk, B)
            bc = b1 - b0
            k, g = _stacked_chunk(
                flat, batch.shape, n, ops, b0, b1, out[b0:b1], pan[:bc],
                None if prod is None else prod[:bc],
            )
            tk += k
            tg += g
        t.add("full_krp", tk)
        t.add("gemm", tg)
        tr.add_counter("gemm_calls", plan.num_chunks)
        return out

    ex = get_executor(T)
    owned = workspace is not None and workspace.executor is ex
    if owned:
        out = workspace.buffer(f"{pfx}.out", (B, p.size, rank), dtype)
        panel = workspace.buffer(
            f"{pfx}.stacked.panel", (T, plan.chunk, p.other, rank), dtype
        )
        prod = (
            workspace.buffer(
                f"{pfx}.stacked.prod",
                (T, plan.chunk, p.right, p.size, rank), dtype,
            )
            if internal else None
        )
        krp_seconds = workspace.buffer(f"{slot}.krp_seconds", (T,))
        gemm_seconds = workspace.buffer(f"{slot}.gemm_seconds", (T,))
    else:
        out = ex.allocate_shared((B, p.size, rank), dtype=dtype)
        panel = ex.allocate_shared(
            (T, plan.chunk, p.other, rank), dtype=dtype
        )
        prod = (
            ex.allocate_shared(
                (T, plan.chunk, p.right, p.size, rank), dtype=dtype
            )
            if internal else None
        )
        krp_seconds = ex.allocate_shared((T,))
        gemm_seconds = ex.allocate_shared((T,))
    ex.parallel_for(
        _k_batched_stacked,
        B,
        args=(
            flat, batch.shape, n, ops, plan.chunk, out, panel, prod,
            krp_seconds, gemm_seconds,
        ),
        label="batch.mttkrp.stacked",
    )
    t.add("full_krp", float(krp_seconds.max()))
    t.add("gemm", float(gemm_seconds.max()))
    tr.add_counter("gemm_calls", plan.num_chunks)
    return out if owned else out.copy()


def mttkrp_batched_loop(
    batch: BatchedTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    workspace=None,
    slot: str = "batch",
    cache_bytes: float | None = None,
) -> np.ndarray:
    """The per-item reference lane: one 2-D kernel call per item.

    Identical arithmetic to the stacked lane item by item (the stacked
    GEMM is executed per 2-D slice anyway); exists as the crossover
    baseline the autotuner measures against and as the oracle's
    bit-identity anchor.
    """
    n, rank = _validate(batch, factors, n)
    T = resolve_threads(num_threads)
    t = timers if timers is not None else NULL_TIMER
    tr = get_tracer()
    record_mttkrp_cost(
        tr, batch.shape, n, rank, "batched", T, cache_bytes=cache_bytes,
        batch=batch.batch,
    )
    dtype = np.result_type(
        batch.dtype, *[np.asarray(f).dtype for f in factors]
    )
    p = mode_products(batch.shape, n)
    B = batch.batch
    ops = _stacked_operands(factors, n)
    internal = 0 < n < batch.ndim - 1
    flat = batch.flat
    pfx = f"{slot}.m{n}"

    if T == 1:
        out = _acquire(workspace, f"{pfx}.out", (B, p.size, rank), dtype)
        pan = _acquire(
            workspace, f"{pfx}.loop.panel", (p.other, rank), dtype
        )
        prod = (
            _acquire(
                workspace, f"{pfx}.loop.prod",
                (p.right, p.size, rank), dtype,
            )
            if internal else None
        )
        tk = tg = 0.0
        for b in range(B):
            k, g = _loop_item(flat, batch.shape, n, ops, b, out[b], pan, prod)
            tk += k
            tg += g
        t.add("full_krp", tk)
        t.add("gemm", tg)
        tr.add_counter("gemm_calls", B)
        return out

    ex = get_executor(T)
    owned = workspace is not None and workspace.executor is ex
    if owned:
        out = workspace.buffer(f"{pfx}.out", (B, p.size, rank), dtype)
        panel = workspace.buffer(
            f"{pfx}.loop.panel", (T, p.other, rank), dtype
        )
        prod = (
            workspace.buffer(
                f"{pfx}.loop.prod", (T, p.right, p.size, rank), dtype
            )
            if internal else None
        )
        krp_seconds = workspace.buffer(f"{slot}.krp_seconds", (T,))
        gemm_seconds = workspace.buffer(f"{slot}.gemm_seconds", (T,))
    else:
        out = ex.allocate_shared((B, p.size, rank), dtype=dtype)
        panel = ex.allocate_shared((T, p.other, rank), dtype=dtype)
        prod = (
            ex.allocate_shared((T, p.right, p.size, rank), dtype=dtype)
            if internal else None
        )
        krp_seconds = ex.allocate_shared((T,))
        gemm_seconds = ex.allocate_shared((T,))
    ex.parallel_for(
        _k_batched_loop,
        B,
        args=(
            flat, batch.shape, n, ops, out, panel, prod,
            krp_seconds, gemm_seconds,
        ),
        label="batch.mttkrp.loop",
    )
    t.add("full_krp", float(krp_seconds.max()))
    t.add("gemm", float(gemm_seconds.max()))
    tr.add_counter("gemm_calls", B)
    return out if owned else out.copy()
