"""Anomaly detection via CP model residuals (the introduction's second
application).

The paper's introduction motivates CP "in anomaly detection (identifying
data points that are not explained by the model [Sun, Tao & Faloutsos])".
The recipe: fit a low-rank model to the bulk of the data, then score each
slice of a chosen mode (a time step, a subject, ...) by how much of its
energy the model fails to explain.  Slices dominated by structure the
model captures score near 0; injected or aberrant slices stand out.

Implemented on the natural layout: per-slice residual norms for mode ``n``
are column norms of the residual's mode-``n`` matricization, evaluated
blockwise on zero-copy views — no reordering, O(I) total work.
"""

from __future__ import annotations

import numpy as np

from repro.cpd.kruskal import KruskalTensor
from repro.tensor.dense import DenseTensor
from repro.util.validation import check_mode

__all__ = ["slice_residual_norms", "anomaly_scores", "detect_anomalies"]


def slice_residual_norms(
    tensor: DenseTensor,
    model: KruskalTensor,
    mode: int,
    relative: bool = True,
) -> np.ndarray:
    """Residual norm of every mode-``mode`` slice under ``model``.

    Parameters
    ----------
    tensor:
        Data tensor.
    model:
        Fitted CP model of the same shape.
    mode:
        The mode whose slices (hyperslabs) are scored; entry ``i`` of the
        result covers all tensor entries with ``i_mode == i``.
    relative:
        Divide each slice's residual norm by that slice's data norm
        (slices of very different energy become comparable).  Slices with
        zero data norm get a relative residual of 0 if also exactly
        modeled, else ``inf``.

    Returns
    -------
    numpy.ndarray
        Length ``I_mode`` array of (relative) residual norms.
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    if model.shape != tensor.shape:
        raise ValueError(
            f"model shape {model.shape} does not match tensor {tensor.shape}"
        )
    mode = check_mode(mode, tensor.ndim)
    # Residual in natural layout (one dense pass; the model reconstruction
    # dominates, O(I * C)).
    resid = model.full().data - tensor.data
    # Mode-n slice i collects entries at offsets l + i*IL + j*IL*In: i.e.
    # row i of every block of the (IRn, In, ILn) view.
    res3 = DenseTensor(resid, tensor.shape).mode_blocks_view(mode)
    sq = np.einsum("jil,jil->i", res3, res3)
    norms = np.sqrt(sq)
    if not relative:
        return norms
    dat3 = tensor.mode_blocks_view(mode)
    dsq = np.einsum("jil,jil->i", dat3, dat3)
    dnorm = np.sqrt(dsq)
    out = np.empty_like(norms)
    nz = dnorm > 0
    out[nz] = norms[nz] / dnorm[nz]
    out[~nz] = np.where(norms[~nz] > 0, np.inf, 0.0)
    return out


def anomaly_scores(
    tensor: DenseTensor, model: KruskalTensor, mode: int
) -> np.ndarray:
    """Robust z-scores of the per-slice relative residuals.

    Scores are ``(r_i - median) / (1.4826 * MAD)`` — the median/MAD
    standardization that stays meaningful when anomalies inflate the
    spread.  A score of 0 means "as well explained as a typical slice".
    """
    r = slice_residual_norms(tensor, model, mode, relative=True)
    finite = r[np.isfinite(r)]
    if finite.size == 0:
        raise ValueError("no finite residuals to standardize")
    med = float(np.median(finite))
    mad = float(np.median(np.abs(finite - med)))
    scale = 1.4826 * mad
    if scale == 0.0:
        # Degenerate spread (e.g. exact model): fall back to std.
        scale = float(finite.std()) or 1.0
    return (r - med) / scale


def detect_anomalies(
    tensor: DenseTensor,
    model: KruskalTensor,
    mode: int,
    threshold: float = 3.5,
) -> np.ndarray:
    """Indices of mode-``mode`` slices whose anomaly score exceeds
    ``threshold`` (3.5 is the conventional robust-z cutoff)."""
    scores = anomaly_scores(tensor, model, mode)
    return np.flatnonzero(scores > float(threshold))
