"""Kruskal tensors: the CP model object ``Y = [[w; U_0, ..., U_{N-1}]]``.

A rank-``C`` Kruskal tensor is a sum of ``C`` rank-1 terms (Figure 1 of the
paper), stored as per-mode factor matrices plus per-component weights.  This
class provides the operations CP-ALS and the analysis examples need:
normalization, full reconstruction, efficient norm and inner product
(through Gram matrices, never materializing the dense tensor), and
component sorting.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.tensor.generate import from_kruskal
from repro.util.validation import check_same_columns

__all__ = ["KruskalTensor"]


class KruskalTensor:
    """CP model: weights ``w`` (length ``C``) and factors ``U_n (I_n x C)``.

    Parameters
    ----------
    factors:
        Factor matrices, one per mode, each with ``C`` columns.
    weights:
        Component weights; defaults to all ones.

    Notes
    -----
    Instances are lightweight views over the provided arrays (no copies);
    use :meth:`copy` for an independent model.
    """

    def __init__(
        self,
        factors: Sequence[np.ndarray],
        weights: np.ndarray | None = None,
    ) -> None:
        self.factors = [np.asarray(f, dtype=np.float64) for f in factors]
        self.rank = check_same_columns(self.factors, "factors")
        if weights is None:
            weights = np.ones(self.rank)
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.shape != (self.rank,):
            raise ValueError(
                f"weights must have shape ({self.rank},), got "
                f"{self.weights.shape}"
            )

    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the modeled dense tensor."""
        return tuple(f.shape[0] for f in self.factors)

    @property
    def ndim(self) -> int:
        """Number of modes."""
        return len(self.factors)

    def copy(self) -> "KruskalTensor":
        """Deep copy."""
        return KruskalTensor(
            [f.copy() for f in self.factors], self.weights.copy()
        )

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"KruskalTensor({dims}, rank={self.rank})"

    # ------------------------------------------------------------------ #
    # Model algebra (all O(rank^2 * sum I_n) — never materializes X)
    # ------------------------------------------------------------------ #

    def full(self) -> DenseTensor:
        """Materialize the dense tensor (use sparingly; O(prod I_n))."""
        return from_kruskal(self.factors, self.weights)

    def norm(self) -> float:
        """Frobenius norm of the modeled tensor, via Gram matrices.

        ``|Y|^2 = w^T ( (*)_n U_n^T U_n ) w`` — ``O(C^2 sum I_n)`` instead
        of materializing ``prod I_n`` entries.
        """
        had = np.ones((self.rank, self.rank))
        for f in self.factors:
            had *= f.T @ f
        val = float(self.weights @ had @ self.weights)
        return float(np.sqrt(max(val, 0.0)))

    def inner(self, tensor: DenseTensor) -> float:
        """Inner product ``<Y, X>`` with a dense tensor.

        Computed as ``sum_c w_c * <x_c, U_{N-1}(:,c) o ... o U_0(:,c)>``
        via one mode-0 MTTKRP of ``X`` — the same trick CP-ALS uses for its
        fit computation, reusing the final MTTKRP.
        """
        from repro.core.dispatch import mttkrp

        M = mttkrp(tensor, self.factors, 0)
        return float(np.einsum("ic,ic,c->", self.factors[0], M, self.weights))

    def normalize(self, sort: bool = True) -> "KruskalTensor":
        """Return an equivalent model with unit-norm factor columns.

        Column norms are folded into the weights; with ``sort=True``
        components are ordered by decreasing weight (the conventional
        presentation for analysis).
        """
        factors = []
        weights = self.weights.copy()
        for f in self.factors:
            norms = np.linalg.norm(f, axis=0)
            norms_safe = np.where(norms > 0, norms, 1.0)
            factors.append(f / norms_safe)
            weights *= norms
        if sort:
            order = np.argsort(-np.abs(weights))
            factors = [f[:, order] for f in factors]
            weights = weights[order]
        return KruskalTensor(factors, weights)

    def residual_norm(self, tensor: DenseTensor, tensor_norm: float | None = None) -> float:
        """``|X - Y|_F`` without materializing ``Y``.

        Uses ``|X - Y|^2 = |X|^2 - 2 <X, Y> + |Y|^2``; pass ``tensor_norm``
        to avoid recomputing ``|X|`` across ALS iterations.
        """
        xnorm = tensor.norm() if tensor_norm is None else float(tensor_norm)
        val = xnorm**2 - 2.0 * self.inner(tensor) + self.norm() ** 2
        return float(np.sqrt(max(val, 0.0)))

    def fit(self, tensor: DenseTensor, tensor_norm: float | None = None) -> float:
        """Model fit ``1 - |X - Y| / |X|`` (1 is perfect)."""
        xnorm = tensor.norm() if tensor_norm is None else float(tensor_norm)
        if xnorm == 0:
            raise ValueError("fit is undefined for a zero tensor")
        return 1.0 - self.residual_norm(tensor, xnorm) / xnorm
