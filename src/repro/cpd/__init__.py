"""CP decomposition substrate.

The paper's application layer: CP-ALS (Section 2.2) built on the MTTKRP
kernels, plus the Kruskal-tensor model object and diagnostics used by the
fMRI analysis examples.

* :mod:`~repro.cpd.kruskal` — :class:`KruskalTensor` (weights + factors);
* :mod:`~repro.cpd.gram` — Hadamard-of-Grams ``H = (*)_{k != n} U_k^T U_k``;
* :mod:`~repro.cpd.init` — random and HOSVD-flavoured initialization;
* :mod:`~repro.cpd.cp_als` — the alternating-least-squares driver with
  per-phase timing (per-iteration times are Figure 7's measurement);
* :mod:`~repro.cpd.diagnostics` — fit, factor match score, congruence;
* :mod:`~repro.cpd.nncp` — nonnegative CP via HALS (extension);
* :mod:`~repro.cpd.tucker` — (ST-)HOSVD / Tucker compression (extension);
* :mod:`~repro.cpd.gradient` — CP gradients + L-BFGS CP-OPT (extension,
  demonstrating the paper's point that gradient methods are
  MTTKRP-bottlenecked too);
* :mod:`~repro.cpd.missing` — CP-WOPT for missing data (the introduction's
  prediction application);
* :mod:`~repro.cpd.anomaly` — residual-based slice anomaly detection (the
  introduction's anomaly-detection application).
"""

from repro.cpd.anomaly import anomaly_scores, detect_anomalies, slice_residual_norms
from repro.cpd.cp_als import CPALSResult, cp_als
from repro.cpd.diagnostics import factor_match_score, fit_score
from repro.cpd.gradient import cp_gradient, cp_loss, cp_opt
from repro.cpd.gram import gram_matrices, hadamard_of_grams
from repro.cpd.init import initialize_factors
from repro.cpd.kruskal import KruskalTensor
from repro.cpd.missing import cp_wopt, random_mask
from repro.cpd.nncp import NNCPResult, cp_nnhals
from repro.cpd.tucker import TuckerTensor, hosvd

__all__ = [
    "KruskalTensor",
    "cp_als",
    "CPALSResult",
    "cp_nnhals",
    "NNCPResult",
    "cp_opt",
    "cp_loss",
    "cp_gradient",
    "cp_wopt",
    "random_mask",
    "hosvd",
    "TuckerTensor",
    "gram_matrices",
    "hadamard_of_grams",
    "initialize_factors",
    "factor_match_score",
    "fit_score",
    "slice_residual_norms",
    "anomaly_scores",
    "detect_anomalies",
]
