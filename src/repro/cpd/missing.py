"""CP with missing data (CP-WOPT): weighted optimization over observed
entries.

The paper's introduction motivates CP with "predicting missing or future
data" (Acar, Dunlavy, Kolda & Morup [1]).  CP-WOPT fits only the observed
entries:

    f(U) = 1/2 || W * (X - [[U]]) ||_F^2 ,

with ``W`` a binary observation mask and ``*`` elementwise.  The gradient
is

    df/dU_n = MTTKRP_n( W * ([[U]] - X) ) ,

i.e. one *masked-residual* tensor build plus one all-modes MTTKRP per
gradient — again exactly the kernel this library optimizes (evaluated here
with the dimension tree, since all modes share one iterate).  L-BFGS-B
drives the optimization, as in the original CP-WOPT.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import minimize

from repro.cpd.gradient import _pack, _unpack
from repro.cpd.init import initialize_factors
from repro.cpd.kruskal import KruskalTensor
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import from_kruskal

__all__ = ["cp_wopt", "random_mask"]


def random_mask(
    shape: Sequence[int],
    fraction_observed: float,
    rng: np.random.Generator | int | None = None,
) -> DenseTensor:
    """Binary observation mask with roughly the given observed fraction.

    Returns a :class:`DenseTensor` of 0.0/1.0 entries.  A fraction below
    ~``rank * max(I_n) / prod(I_n)`` leaves CP underdetermined; the
    function does not police that, but :func:`cp_wopt`'s recovery degrades
    gracefully.
    """
    if not 0.0 < fraction_observed <= 1.0:
        raise ValueError(
            f"fraction_observed must be in (0, 1], got {fraction_observed}"
        )
    gen = np.random.default_rng(rng)
    import math

    size = math.prod(int(s) for s in shape)
    data = (gen.random(size) < fraction_observed).astype(np.float64)
    return DenseTensor(data, tuple(int(s) for s in shape))


def cp_wopt(
    tensor: DenseTensor,
    mask: DenseTensor,
    rank: int,
    n_iter_max: int = 300,
    gtol: float = 1e-7,
    init: str | Sequence[np.ndarray] = "random",
    num_threads: int | None = None,
    rng: np.random.Generator | int | None = None,
):
    """Fit a CP model to the *observed* entries of ``tensor``.

    Parameters
    ----------
    tensor:
        Data tensor; entries where ``mask`` is 0 are ignored (their values
        never enter the computation).
    mask:
        0/1 tensor of the same shape marking observed entries.
    rank:
        CP rank.
    n_iter_max, gtol:
        L-BFGS iteration cap and projected-gradient tolerance.
    init:
        ``"random"``, ``"hosvd"`` (computed on the zero-filled tensor), or
        explicit factors.
    num_threads:
        Thread count for the MTTKRP kernels.
    rng:
        Seed for random initialization.

    Returns
    -------
    CPALSResult
        ``fits`` holds the *observed-entry* fit
        ``1 - ||W*(X - Y)|| / ||W*X||`` per objective evaluation.
    """
    from repro.core.dimtree import (
        left_partial,
        node_mttkrp,
        right_partial,
        split_point,
    )
    from repro.cpd.cp_als import CPALSResult

    if not isinstance(tensor, DenseTensor) or not isinstance(
        mask, DenseTensor
    ):
        raise TypeError("tensor and mask must be DenseTensor instances")
    if tensor.shape != mask.shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match tensor {tensor.shape}"
        )
    mvals = mask.data
    if not np.isin(mvals, (0.0, 1.0)).all():
        raise ValueError("mask entries must be 0 or 1")
    if not mvals.any():
        raise ValueError("mask observes no entries")
    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")

    N = tensor.ndim
    shape = tensor.shape
    # Zero unobserved entries once; they must not influence anything.
    x_obs = tensor.data * mvals
    norm_obs = float(np.linalg.norm(x_obs))
    if norm_obs == 0.0:
        raise ValueError("observed entries are all zero")
    X_obs = DenseTensor(x_obs, shape)

    if isinstance(init, str):
        from repro.cpd.gradient import rescale_init

        factors = initialize_factors(X_obs, rank, method=init, rng=rng)
        # Scale to the *full-tensor* norm estimate implied by the observed
        # fraction, so the initial model magnitude matches the data.
        frac = float(mvals.mean())
        factors = rescale_init(factors, norm_obs / np.sqrt(frac))
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init]
        if len(factors) != N:
            raise ValueError(f"expected {N} initial factors, got {len(factors)}")

    m = split_point(N)
    fits: list[float] = []

    def objective(x: np.ndarray):
        U = _unpack(x, shape, rank)
        model_dense = from_kruskal(U)
        resid = DenseTensor((model_dense.data - x_obs) * mvals, shape)
        loss = 0.5 * float(resid.data @ resid.data)
        T_L = left_partial(resid, U, m, num_threads=num_threads)
        T_R = right_partial(resid, U, m, num_threads=num_threads)
        grad = [
            node_mttkrp(T_L, U[:m], keep=n) for n in range(m)
        ] + [
            node_mttkrp(T_R, U[m:], keep=n - m) for n in range(m, N)
        ]
        fits.append(1.0 - np.sqrt(max(2.0 * loss, 0.0)) / norm_obs)
        return loss, _pack(grad)

    res = minimize(
        objective,
        _pack(factors),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": n_iter_max, "gtol": gtol},
    )
    final = _unpack(res.x, shape, rank)
    result = CPALSResult(model=KruskalTensor(final).normalize())
    result.fits = fits
    result.iterations = int(res.nit)
    result.converged = bool(res.success)
    return result
