"""Nonnegative CP decomposition via HALS, built on the fast MTTKRP kernels.

The paper's related work (Liavas et al. [16]) concerns parallel
*nonnegative* tensor factorization — and the fMRI application itself is
naturally nonnegative (network loadings, subject expressions).  This module
adds NCP to the application layer using exactly the same MTTKRP kernels, so
the paper's performance work carries over unchanged: per sweep, the cost is
one MTTKRP per mode plus ``O(C^2 I_n)`` column updates.

Algorithm: HALS (hierarchical alternating least squares; Cichocki et al.).
For mode ``n`` with MTTKRP ``M`` and Hadamard-of-Grams ``H``:

    for each component c:
        u_c <- max( u_c + (M(:,c) - U_n H(:,c)) / H(c,c) , 0 )

which is the exact coordinate-wise minimizer of the mode-``n`` subproblem
under nonnegativity.  HALS converges monotonically (each column update
cannot increase the objective).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.dispatch import mttkrp
from repro.cpd.gram import GramCache
from repro.cpd.kruskal import KruskalTensor
from repro.tensor.dense import DenseTensor
from repro.util.timing import PhaseTimer, wall_time

__all__ = ["cp_nnhals", "NNCPResult"]


@dataclass
class NNCPResult:
    """Outcome of a nonnegative CP (HALS) run."""

    model: KruskalTensor
    fits: list[float] = field(default_factory=list)
    converged: bool = False
    iterations: int = 0
    iteration_times: list[float] = field(default_factory=list)
    timers: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def final_fit(self) -> float:
        """Fit after the last sweep."""
        if not self.fits:
            raise ValueError("no iterations were run")
        return self.fits[-1]


def cp_nnhals(
    tensor: DenseTensor,
    rank: int,
    n_iter_max: int = 100,
    tol: float = 1e-8,
    init: str | Sequence[np.ndarray] = "random",
    method: str = "auto",
    num_threads: int | None = None,
    rng: np.random.Generator | int | None = None,
    epsilon: float = 1e-12,
) -> NNCPResult:
    """Fit a rank-``C`` *nonnegative* CP decomposition with HALS.

    Parameters
    ----------
    tensor:
        Dense tensor (entries need not be nonnegative, but the model will
        be; for data with negative entries the fit ceiling is < 1).
    rank:
        Number of components.
    n_iter_max, tol:
        Sweep limit and fit-change convergence tolerance (``tol <= 0``
        disables early stopping).
    init:
        ``"random"`` (uniform, hence feasible) or explicit nonnegative
        factor matrices.
    method:
        MTTKRP method (as in :func:`repro.cpd.cp_als.cp_als`).
    num_threads:
        Thread count for the MTTKRP kernels.
    rng:
        Seed/generator for random initialization.
    epsilon:
        Floor applied inside column updates to avoid exact-zero columns
        (standard HALS safeguard: a zero column would make its Gram
        diagonal zero and stall the component forever).

    Returns
    -------
    NNCPResult
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    if n_iter_max <= 0:
        raise ValueError(f"n_iter_max must be positive, got {n_iter_max}")
    N = tensor.ndim
    if N < 2:
        raise ValueError("NCP requires an order >= 2 tensor")

    gen = np.random.default_rng(rng)
    if isinstance(init, str):
        if init != "random":
            raise ValueError("cp_nnhals supports only random init by name")
        factors = [gen.random((s, rank)) for s in tensor.shape]
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init]
        if len(factors) != N:
            raise ValueError(f"expected {N} initial factors, got {len(factors)}")
        for n, f in enumerate(factors):
            if f.shape != (tensor.shape[n], rank):
                raise ValueError(
                    f"init[{n}] has shape {f.shape}, expected "
                    f"{(tensor.shape[n], rank)}"
                )
            if (f < 0).any():
                raise ValueError(f"init[{n}] has negative entries")

    norm_x = tensor.norm()
    if norm_x == 0.0:
        raise ValueError("cannot decompose a zero tensor")

    grams = GramCache(factors)
    timers = PhaseTimer()
    result = NNCPResult(
        model=KruskalTensor(factors, np.ones(rank)), timers=timers
    )
    previous_fit = -np.inf

    for it in range(n_iter_max):
        t_start = wall_time()
        M = None
        for n in range(N):
            M = mttkrp(
                tensor,
                factors,
                n,
                method=method,
                num_threads=num_threads,
                timers=timers,
            )
            with timers.phase("gram"):
                H = grams.hadamard(skip=n)
            with timers.phase("hals"):
                U = factors[n]
                for c in range(rank):
                    h_cc = H[c, c]
                    if h_cc <= 0:
                        continue
                    # Exact coordinate minimizer, projected to >= 0.
                    update = U[:, c] + (M[:, c] - U @ H[:, c]) / h_cc
                    np.maximum(update, 0.0, out=update)
                    # Safeguard against a dead (all-zero) component.
                    if not update.any():
                        update[:] = epsilon
                    U[:, c] = update
            grams.update(n)
        result.iteration_times.append(wall_time() - t_start)

        # Fit via the final mode's MTTKRP (same trick as cp_als; weights
        # are implicit/unit in HALS).
        assert M is not None
        inner = float(np.einsum("ic,ic->", M, factors[N - 1]))
        H_all = grams.hadamard_all()
        norm_y_sq = float(H_all.sum())
        residual_sq = max(norm_x**2 - 2.0 * inner + norm_y_sq, 0.0)
        fit = 1.0 - np.sqrt(residual_sq) / norm_x
        result.fits.append(fit)
        result.iterations = it + 1
        if tol > 0 and abs(fit - previous_fit) < tol:
            result.converged = True
            break
        previous_fit = fit

    result.model = KruskalTensor(
        [f.copy() for f in factors], np.ones(rank)
    ).normalize()
    return result
