"""Tucker decomposition substrate: (sequentially truncated) HOSVD.

The paper's 1-step MTTKRP borrows its block-matricization idea from dense
TTM/Tucker work (Austin, Ballard & Kolda [5]; Li et al. [14]).  This module
closes that loop: a HOSVD built on the same zero-copy views and the
:func:`repro.tensor.ttm.ttm` kernel, useful in its own right (compression)
and as a practical CP preprocessing step — compress first, run CP-ALS on
the small core, expand (the standard CANDELINC trick, exercised in the
tests).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.tensor.matricize import unfold_explicit
from repro.tensor.ttm import ttm

__all__ = ["TuckerTensor", "hosvd"]


@dataclass
class TuckerTensor:
    """Tucker model: a core tensor plus one orthonormal factor per mode.

    ``X ~= core x_0 U_0 x_1 U_1 ... x_{N-1} U_{N-1}`` with each ``U_n`` of
    shape ``I_n x r_n`` having orthonormal columns.
    """

    core: DenseTensor
    factors: list[np.ndarray]

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the modeled (full-size) tensor."""
        return tuple(f.shape[0] for f in self.factors)

    @property
    def ranks(self) -> tuple[int, ...]:
        """Multilinear ranks (core shape)."""
        return self.core.shape

    def full(self) -> DenseTensor:
        """Materialize the dense tensor (TTM chain, no reordering)."""
        out = self.core
        for n, f in enumerate(self.factors):
            # ttm computes Y_(n) = M^T X_(n); to expand we need M = U_n^T's
            # transpose, i.e. multiply by U_n with rows indexing the core.
            out = ttm(out, np.ascontiguousarray(f.T), n)
        return out

    def compression_ratio(self) -> float:
        """Stored entries of the dense tensor / stored entries of the model."""
        import math

        dense = math.prod(self.shape)
        model = self.core.size + sum(f.size for f in self.factors)
        return dense / model


def hosvd(
    tensor: DenseTensor,
    ranks: Sequence[int],
    sequentially_truncated: bool = True,
) -> TuckerTensor:
    """(Sequentially truncated) higher-order SVD.

    Parameters
    ----------
    tensor:
        Input tensor.
    ranks:
        Target multilinear rank per mode (each ``1 <= r_n <= I_n``).
    sequentially_truncated:
        ``True`` (default) computes the ST-HOSVD: each mode's basis is
        taken from the *partially compressed* tensor, which is cheaper and
        at least as accurate in practice; ``False`` computes the classic
        HOSVD (all bases from the original tensor).

    Returns
    -------
    TuckerTensor

    Notes
    -----
    Mode bases are the leading eigenvectors of ``X_(n) X_(n)^T``
    (``I_n x I_n`` — small for typical mode sizes), avoiding an SVD of the
    wide matricization, as in [5].
    """
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != tensor.ndim:
        raise ValueError(
            f"expected {tensor.ndim} ranks, got {len(ranks)}"
        )
    for n, (r, s) in enumerate(zip(ranks, tensor.shape)):
        if not 1 <= r <= s:
            raise ValueError(
                f"ranks[{n}]={r} out of range [1, {s}] for mode {n}"
            )

    def leading_basis(t: DenseTensor, n: int, r: int) -> np.ndarray:
        Xn = unfold_explicit(t, n)
        G = Xn @ Xn.T
        eigvals, eigvecs = np.linalg.eigh(G)
        order = np.argsort(eigvals)[::-1][:r]
        return np.ascontiguousarray(eigvecs[:, order])

    factors: list[np.ndarray] = []
    if sequentially_truncated:
        core = tensor
        for n in range(tensor.ndim):
            U = leading_basis(core, n, ranks[n])
            factors.append(U)
            core = ttm(core, U, n)  # compress mode n immediately
    else:
        factors = [
            leading_basis(tensor, n, ranks[n]) for n in range(tensor.ndim)
        ]
        core = tensor
        for n, U in enumerate(factors):
            core = ttm(core, U, n)
    return TuckerTensor(core=core, factors=factors)
