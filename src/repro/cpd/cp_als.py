"""CP-ALS: alternating least squares for the CP decomposition (Section 2.2).

Each factor update consists of the three operations the paper lists:

1. MTTKRP: ``M = X_(n) (U_{N-1} krp ... krp U_{n+1} krp U_{n-1} ... U_0)``,
   dispatched to the best algorithm per mode (1-step for external modes,
   2-step for internal modes — the paper's Section 5.3.3 policy);
2. Gram/Hadamard: ``H = (*)_{k != n} U_k^T U_k`` (cached, single-mode
   refresh);
3. linear solve: ``U_n = M H^+``.

Since MTTKRP dominates (``O(I C)`` vs ``O(C^2 sum I_k)`` and ``O(C^3)``),
per-iteration time is essentially ``N`` MTTKRPs — which is what Figure 7
measures.  The fit is computed per iteration by *reusing the final mode's
MTTKRP* (standard trick, also used by Tensor Toolbox), so convergence
checking adds no extra pass over the tensor.
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.dispatch import mttkrp
from repro.cpd.gram import GramCache
from repro.obs import get_tracer
from repro.cpd.init import initialize_factors
from repro.cpd.kruskal import KruskalTensor
from repro.parallel.config import use_backend
from repro.tensor.dense import DenseTensor
from repro.util.timing import PhaseTimer, wall_time

__all__ = ["cp_als", "CPALSResult"]


@dataclass
class CPALSResult:
    """Outcome of a CP-ALS run.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.cpd.kruskal.KruskalTensor` (normalized,
        components sorted by weight).
    fits:
        Model fit ``1 - |X - Y|/|X|`` after each iteration.
    converged:
        Whether the fit change dropped below ``tol`` before ``n_iter_max``.
    iterations:
        Number of iterations executed.
    iteration_times:
        Wall-clock seconds per iteration (Figure 7's quantity).
    timers:
        Aggregated per-phase timings across all iterations (MTTKRP phases
        plus ``"gram"`` and ``"solve"``).
    tuning:
        Per-mode :class:`~repro.tune.cache.TuneRecord` list when the run
        was started with ``tune=True`` (``None`` otherwise).  Each
        record's :attr:`~repro.tune.cache.TuneRecord.label` is a method
        spec accepted back by :func:`cp_als`/:func:`~repro.core.dispatch.mttkrp`,
        so a tuned run is exactly replayable.
    """

    model: KruskalTensor
    fits: list[float] = field(default_factory=list)
    converged: bool = False
    iterations: int = 0
    iteration_times: list[float] = field(default_factory=list)
    timers: PhaseTimer = field(default_factory=PhaseTimer)
    tuning: list | None = None

    @property
    def final_fit(self) -> float:
        """Fit after the last iteration."""
        if not self.fits:
            raise ValueError("no iterations were run")
        return self.fits[-1]

    @property
    def mean_iteration_time(self) -> float:
        """Average per-iteration wall time (excludes the first iteration
        when more than two iterations ran, to skip warm-up effects)."""
        times = self.iteration_times
        if not times:
            raise ValueError("no iterations were run")
        if len(times) > 2:
            times = times[1:]
        return float(np.mean(times))


def cp_als(
    tensor: DenseTensor,
    rank: int,
    n_iter_max: int = 50,
    tol: float = 1e-8,
    init: str | Sequence[np.ndarray] = "random",
    method: str | Sequence[str] = "auto",
    mode_strategy: str = "per-mode",
    num_threads: int | None = None,
    backend: str | None = None,
    rng: np.random.Generator | int | None = None,
    verbose: bool = False,
    workspace: "Workspace | None" = None,
    tune: bool = False,
    cancel: "CancelToken | None" = None,
) -> CPALSResult:
    """Fit a rank-``C`` CP decomposition with alternating least squares.

    Parameters
    ----------
    tensor:
        Dense tensor in natural layout.
    rank:
        Number of CP components ``C``.
    n_iter_max:
        Maximum ALS iterations (each updates every mode once).
    tol:
        Convergence tolerance on the fit change between iterations;
        ``tol <= 0`` disables early stopping (useful for benchmarking a
        fixed iteration count, as Figure 7 does).
    init:
        ``"random"``, ``"hosvd"``, or explicit initial factor matrices.
    method:
        MTTKRP method passed to :func:`repro.core.dispatch.mttkrp`
        (``"auto"`` = the paper's per-mode policy; ``"baseline"`` gives the
        Tensor-Toolbox-style comparison point), or a sequence of one
        method spec per mode (spec forms like ``"twostep:left"``
        allowed) — the shape ``result.tuning`` picks replay as.  Ignored
        when ``mode_strategy="dimtree"`` (a string is tolerated there; a
        per-mode list is an error) and when ``tune=True``.
    mode_strategy:
        ``"per-mode"`` — one independent MTTKRP per mode per iteration
        (the paper's implementation); ``"dimtree"`` — the Phan et al.
        Section III.C extension the paper's conclusion proposes: two
        partial contractions per iteration shared across all modes (see
        :mod:`repro.core.dimtree`), cutting the dominant GEMM count from
        ``N`` to 2.  Both strategies produce mathematically identical
        iterates.
    num_threads:
        Thread count for the MTTKRP kernels.
    backend:
        Execution backend for the parallel regions, ``"thread"`` or
        ``"process"`` (see :mod:`repro.parallel.backend`); defaults to the
        package-wide setting (``set_backend()`` / ``REPRO_BACKEND``).  The
        iterates are bit-identical across backends.
    rng:
        Seed/generator for random initialization.
    verbose:
        Print fit per iteration.
    workspace:
        Optional :class:`~repro.parallel.workspace.Workspace` for
        iteration-reused buffers: the dimtree strategy's node buffers,
        KRP panels and per-worker private outputs, the autotuner's
        measurement scratch (released after tuning so it does not
        pollute the arena), and any per-mode ``"dimtree"`` picks.  By
        default one is created internally and closed when the run
        finishes; pass your own to inspect its allocation stats (after
        warm-up, iterations allocate nothing) or to share buffers across
        runs on equal shapes.  Ignored by plain ``mode_strategy="per-mode"``
        runs that neither tune nor use a dimtree pick.
    tune:
        Run the empirical autotuner (:func:`repro.tune.autotune`) once
        per mode before the iteration loop and use its picks for every
        iteration (requires ``mode_strategy="per-mode"``; overrides
        ``method``).  Decisions come from / go to the persisted tuning
        cache, so only the first run on a new configuration pays
        measurement time; the picks are recorded in ``result.tuning``.
    cancel:
        Optional :class:`~repro.util.cancel.CancelToken` polled at every
        iteration boundary: a cancelled token (or an expired deadline)
        raises :class:`~repro.util.cancel.Cancelled` /
        :class:`~repro.util.cancel.DeadlineExceeded` *between* iterations
        — never mid-kernel, so no factor update is ever torn.  The
        token's ``on_progress(iteration, fit)`` hook, if set, fires once
        per iteration before the check (progress streaming for services).

    Returns
    -------
    CPALSResult

    Raises
    ------
    ValueError
        On rank/shape inconsistencies or a zero input tensor.
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    if n_iter_max <= 0:
        raise ValueError(f"n_iter_max must be positive, got {n_iter_max}")
    N = tensor.ndim
    if N < 2:
        raise ValueError("CP-ALS requires an order >= 2 tensor")

    if isinstance(init, str):
        factors = initialize_factors(tensor, rank, method=init, rng=rng)
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init]
        if len(factors) != N:
            raise ValueError(
                f"expected {N} initial factors, got {len(factors)}"
            )
        for n, f in enumerate(factors):
            if f.shape != (tensor.shape[n], rank):
                raise ValueError(
                    f"init[{n}] has shape {f.shape}, expected "
                    f"{(tensor.shape[n], rank)}"
                )

    norm_x = tensor.norm()
    if norm_x == 0.0:
        raise ValueError("cannot decompose a zero tensor")
    if mode_strategy not in ("per-mode", "dimtree"):
        raise ValueError(
            f"mode_strategy must be 'per-mode' or 'dimtree', "
            f"got {mode_strategy!r}"
        )
    if isinstance(method, str):
        methods = [method] * N
    else:
        if mode_strategy != "per-mode":
            raise ValueError(
                "a per-mode method list requires mode_strategy='per-mode'"
            )
        methods = [str(m) for m in method]
        if len(methods) != N:
            raise ValueError(
                f"expected {N} per-mode methods, got {len(methods)}"
            )
    if tune and mode_strategy != "per-mode":
        raise ValueError("tune=True requires mode_strategy='per-mode'")

    weights = np.ones(rank)
    grams = GramCache(factors)
    timers = PhaseTimer()
    tracer = get_tracer()
    result = CPALSResult(model=KruskalTensor(factors, weights), timers=timers)
    previous_fit = -np.inf

    def update_mode(n: int, M: np.ndarray, it: int) -> None:
        nonlocal weights
        with timers.phase("gram"), tracer.span("gram"):
            H = grams.hadamard(skip=n)
        with timers.phase("solve"), tracer.span("solve"):
            factors[n] = _solve_update(M, H)
            # Column normalization keeps factor magnitudes balanced
            # across modes (2-norms first iteration, max-norms after,
            # following Tensor Toolbox's cp_als).
            if it == 0:
                weights = np.linalg.norm(factors[n], axis=0)
            else:
                weights = np.maximum(np.abs(factors[n]).max(axis=0), 1.0)
            weights = np.where(weights > 0, weights, 1.0)
            factors[n] /= weights
        grams.update(n)

    backend_scope = use_backend(backend) if backend is not None else nullcontext()
    with backend_scope, tracer.span(
        "cp_als",
        rank=rank,
        shape=list(tensor.shape),
        mode_strategy=mode_strategy,
        method=method if isinstance(method, str) else list(methods),
        tune=tune,
    ):
        # Long-lived runtime state, acquired once and reused by every
        # iteration: the executor team and the workspace arena owning the
        # node buffers, KRP panels and private outputs (zero per-iteration
        # allocations after the first iteration warms the arena up).  The
        # arena also backs the autotuner's measurement runs and any
        # per-mode "dimtree" picks.
        ws = None
        own_ws = False
        executor = None
        needs_ws = (
            mode_strategy == "dimtree"
            or tune
            or any(spec == "dimtree" for spec in methods)
        )
        if needs_ws:
            from repro.parallel.backend import get_executor
            from repro.parallel.config import resolve_threads
            from repro.parallel.workspace import Workspace

            T = resolve_threads(num_threads)
            executor = get_executor(T) if T > 1 else None
            ws = workspace if workspace is not None else Workspace(executor)
            own_ws = workspace is None
        if mode_strategy == "dimtree":
            from repro.core.dimtree import (
                left_partial,
                node_mttkrp,
                right_partial,
                split_point,
            )

            m = split_point(N)
        mode_kwargs: list[dict] = [{} for _ in range(N)]
        if tune:
            # Tune once, before the loop; every iteration then replays
            # the recorded picks, so the iterates are bit-identical to a
            # run with an explicit per-mode method list matching them.
            from repro.tune.tuner import autotune

            records = [
                autotune(
                    tensor, factors, n,
                    num_threads=num_threads, workspace=ws,
                )
                for n in range(N)
            ]
            result.tuning = records
            methods = [r.method for r in records]
            mode_kwargs = [dict(r.kwargs) for r in records]
            # Measurement scratch is dead weight from here on; drop it so
            # the arena holds only what the iterations will reuse.
            ws.release("tune.")
            if not any(spec == "dimtree" for spec in methods):
                ws.release("dimtree.")
        for n in range(N):
            if methods[n] == "dimtree":
                mode_kwargs[n]["workspace"] = ws
                mode_kwargs[n]["executor"] = executor
        try:
            if cancel is not None:
                cancel.raise_if_cancelled()
            for it in range(n_iter_max):
                with tracer.span(f"iter[{it}]"):
                    t_start = wall_time()
                    M = None
                    if mode_strategy == "per-mode":
                        for n in range(N):
                            with tracer.span(f"mode[{n}]"):
                                M = mttkrp(
                                    tensor,
                                    factors,
                                    n,
                                    method=methods[n],
                                    num_threads=num_threads,
                                    timers=timers,
                                    **mode_kwargs[n],
                                )
                                update_mode(n, M, it)
                    else:
                        # Dimension tree (Phan et al. III.C): one partial
                        # contraction per half-iteration, shared by all
                        # modes of that half.
                        # T_L depends only on the right factors -> valid
                        # while the left modes update in sequence.
                        with tracer.span("partial[left]"):
                            T_L = left_partial(
                                tensor, factors, m,
                                num_threads=num_threads, timers=timers,
                                executor=executor, workspace=ws,
                            )
                        for n in range(m):
                            with tracer.span(f"mode[{n}]"):
                                M = node_mttkrp(
                                    T_L, factors[:m], keep=n,
                                    num_threads=num_threads, timers=timers,
                                    executor=executor, workspace=ws,
                                    slot=f"nodeL[{n}]",
                                )
                                update_mode(n, M, it)
                        # T_R must see the freshly updated left factors.
                        with tracer.span("partial[right]"):
                            T_R = right_partial(
                                tensor, factors, m,
                                num_threads=num_threads, timers=timers,
                                executor=executor, workspace=ws,
                            )
                        for n in range(m, N):
                            with tracer.span(f"mode[{n}]"):
                                M = node_mttkrp(
                                    T_R, factors[m:], keep=n - m,
                                    num_threads=num_threads, timers=timers,
                                    executor=executor, workspace=ws,
                                    slot=f"nodeR[{n - m}]",
                                )
                                update_mode(n, M, it)
                    result.iteration_times.append(wall_time() - t_start)

                    # Fit via the last mode's MTTKRP (no extra tensor
                    # pass): <X, Y> = sum_{i,c} M(i,c) U_{N-1}(i,c) w_c ;
                    # |Y|^2 = w^T H* w.
                    assert M is not None
                    inner = float(
                        np.einsum("ic,ic,c->", M, factors[N - 1], weights)
                    )
                    norm_y_sq = float(
                        weights @ grams.hadamard_all() @ weights
                    )
                    residual_sq = max(
                        norm_x**2 - 2.0 * inner + norm_y_sq, 0.0
                    )
                    fit = 1.0 - np.sqrt(residual_sq) / norm_x
                    result.fits.append(fit)
                    result.iterations = it + 1
                    if verbose:
                        print(f"iter {it + 1:3d}: fit = {fit:.8f}")
                    # Iteration boundary: stream progress first (so the
                    # final fit is observable even when the next line
                    # stops the run), then honour cancellation/deadline.
                    if cancel is not None and cancel.on_progress is not None:
                        cancel.on_progress(it, float(fit))
                    if tol > 0 and abs(fit - previous_fit) < tol:
                        result.converged = True
                        break
                    previous_fit = fit
                    if cancel is not None:
                        cancel.raise_if_cancelled()
        finally:
            if own_ws and ws is not None:
                ws.close()

    result.model = KruskalTensor(
        [f.copy() for f in factors], weights.copy()
    ).normalize()
    return result


def _solve_update(M: np.ndarray, H: np.ndarray) -> np.ndarray:
    """Solve ``U = M H^+`` (Section 2.2's linear-system step).

    Tries a Cholesky-backed symmetric solve first (``H`` is a Hadamard
    product of Gram matrices, hence positive semidefinite and usually
    positive definite); falls back to the pseudoinverse when ``H`` is
    singular (e.g. duplicate components).
    """
    try:
        # Solve H U^T = M^T; H is symmetric so no transpose is needed.
        return np.linalg.solve(H, M.T).T
    except np.linalg.LinAlgError:
        return M @ np.linalg.pinv(H)
