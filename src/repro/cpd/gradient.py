"""CP gradients and a quasi-Newton CP-OPT driver.

Section 2.2 of the paper: "there are alternative optimization schemes to
CP-ALS, but because MTTKRP is part of the gradient, nearly all of them
require computing and are bottlenecked by MTTKRP."  This module makes that
concrete: the gradient of the CP objective

    f(U_0, ..., U_{N-1}) = 1/2 || X - [[U_0, ..., U_{N-1}]] ||_F^2

with respect to factor ``U_n`` is

    df/dU_n = U_n * H_n - M_n,

where ``M_n`` is the mode-``n`` MTTKRP of ``X`` and ``H_n`` the
Hadamard-of-Grams excluding mode ``n`` — i.e. one MTTKRP per mode per
gradient evaluation, the same kernels CP-ALS uses (and the same
cross-mode-reuse opportunity: :func:`cp_gradient` supports the dimension
tree).  :func:`cp_opt` wraps scipy's L-BFGS-B around it, the classic
CP-OPT method (Acar, Dunlavy & Kolda).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import minimize

from repro.core.dispatch import mttkrp
from repro.cpd.gram import gram_matrices, hadamard_of_grams
from repro.cpd.init import initialize_factors
from repro.cpd.kruskal import KruskalTensor
from repro.tensor.dense import DenseTensor

__all__ = ["cp_loss", "cp_gradient", "cp_opt"]


def cp_loss(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    norm_x: float | None = None,
) -> float:
    """``1/2 ||X - [[U]]||_F^2`` without materializing the model tensor.

    Uses the same Gram/MTTKRP identities as the CP-ALS fit computation:
    ``||X - Y||^2 = ||X||^2 - 2 <X, Y> + ||Y||^2`` with
    ``<X, Y> = sum(M_0 * U_0)`` for the mode-0 MTTKRP ``M_0``.
    """
    factors = [np.asarray(f) for f in factors]
    nx = tensor.norm() if norm_x is None else float(norm_x)
    M0 = mttkrp(tensor, factors, 0)
    inner = float(np.sum(M0 * factors[0]))
    grams = gram_matrices(factors)
    norm_y_sq = float(hadamard_of_grams(grams).sum())
    return 0.5 * max(nx**2 - 2.0 * inner + norm_y_sq, 0.0)


def cp_gradient(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    mode_strategy: str = "per-mode",
    num_threads: int | None = None,
) -> list[np.ndarray]:
    """Gradient of the CP objective with respect to every factor matrix.

    Parameters
    ----------
    tensor, factors:
        The data tensor and current factor matrices.
    mode_strategy:
        ``"per-mode"`` — one MTTKRP per mode; ``"dimtree"`` — all MTTKRPs
        via two shared partial contractions (:mod:`repro.core.dimtree`).
        Unlike ALS, a gradient evaluates all modes at the *same* iterate,
        so the dimension tree applies with no ordering subtleties.
    num_threads:
        Thread count for the kernels.

    Returns
    -------
    list of numpy.ndarray
        ``[U_n @ H_n - M_n for n]``, each shaped like its factor.
    """
    factors = [np.asarray(f) for f in factors]
    N = tensor.ndim
    grams = gram_matrices(factors)
    if mode_strategy == "per-mode":
        mttkrps = [
            mttkrp(tensor, factors, n, num_threads=num_threads)
            for n in range(N)
        ]
    elif mode_strategy == "dimtree":
        from repro.core.dimtree import (
            left_partial,
            node_mttkrp,
            right_partial,
            split_point,
        )

        m = split_point(N)
        T_L = left_partial(tensor, factors, m, num_threads=num_threads)
        T_R = right_partial(tensor, factors, m, num_threads=num_threads)
        mttkrps = [
            node_mttkrp(T_L, factors[:m], keep=n) for n in range(m)
        ] + [
            node_mttkrp(T_R, factors[m:], keep=n - m) for n in range(m, N)
        ]
    else:
        raise ValueError(
            f"mode_strategy must be 'per-mode' or 'dimtree', "
            f"got {mode_strategy!r}"
        )
    return [
        factors[n] @ hadamard_of_grams(grams, skip=n) - mttkrps[n]
        for n in range(N)
    ]


def rescale_init(
    factors: list[np.ndarray], target_norm: float
) -> list[np.ndarray]:
    """Scale factor matrices so the model norm matches ``target_norm``.

    Gradient-based CP fitting is sensitive to the initial model magnitude
    (a model orders of magnitude larger than the data puts L-BFGS on a
    plateau of near-identical quadratic-growth directions).  Scaling each
    factor by the ``N``-th root of the norm ratio is the standard fix and
    leaves ALS-style methods unaffected.
    """
    model_norm = KruskalTensor(factors).norm()
    if model_norm <= 0 or target_norm <= 0:
        return factors
    s = (target_norm / model_norm) ** (1.0 / len(factors))
    return [f * s for f in factors]


def _pack(factors: Sequence[np.ndarray]) -> np.ndarray:
    return np.concatenate([np.asarray(f).ravel() for f in factors])


def _unpack(
    x: np.ndarray, shape: tuple[int, ...], rank: int
) -> list[np.ndarray]:
    out = []
    pos = 0
    for s in shape:
        out.append(x[pos : pos + s * rank].reshape(s, rank))
        pos += s * rank
    return out


def cp_opt(
    tensor: DenseTensor,
    rank: int,
    n_iter_max: int = 200,
    gtol: float = 1e-7,
    init: str | Sequence[np.ndarray] = "random",
    mode_strategy: str = "dimtree",
    num_threads: int | None = None,
    rng: np.random.Generator | int | None = None,
):
    """All-at-once CP fitting with L-BFGS (CP-OPT).

    Often more robust than ALS against swamps, at the price of more
    gradient evaluations — each of which is exactly the all-modes MTTKRP
    workload this library optimizes (``mode_strategy="dimtree"`` by
    default, since gradients evaluate every mode at one iterate).

    Returns
    -------
    CPALSResult
        Reusing the ALS result type: fitted (normalized) model, per-
        evaluation fits, convergence flag.
    """
    from repro.cpd.cp_als import CPALSResult

    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    if isinstance(init, str):
        factors = initialize_factors(tensor, rank, method=init, rng=rng)
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init]
        if len(factors) != tensor.ndim:
            raise ValueError(
                f"expected {tensor.ndim} initial factors, got {len(factors)}"
            )
    norm_x = tensor.norm()
    if norm_x == 0.0:
        raise ValueError("cannot decompose a zero tensor")
    if isinstance(init, str):
        factors = rescale_init(factors, norm_x)
    shape = tensor.shape
    fits: list[float] = []

    def objective(x: np.ndarray):
        U = _unpack(x, shape, rank)
        loss = cp_loss(tensor, U, norm_x=norm_x)
        grad = cp_gradient(
            tensor, U, mode_strategy=mode_strategy, num_threads=num_threads
        )
        fits.append(1.0 - np.sqrt(max(2.0 * loss, 0.0)) / norm_x)
        return loss, _pack(grad)

    res = minimize(
        objective,
        _pack(factors),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": n_iter_max, "gtol": gtol},
    )
    final = _unpack(res.x, shape, rank)
    result = CPALSResult(model=KruskalTensor(final).normalize())
    result.fits = fits
    result.iterations = int(res.nit)
    result.converged = bool(res.success)
    return result
