"""Factor-matrix initialization for CP-ALS.

Two standard strategies:

* ``"random"`` — i.i.d. uniform entries (Tensor Toolbox's default; also
  what the paper's CP-ALS benchmarks use, where multiple random starts are
  the norm);
* ``"hosvd"`` — leading left singular vectors of each mode-``n``
  matricization (a.k.a. "nvecs"/HOSVD initialization), which typically
  converges in fewer iterations on structured data like the fMRI tensors.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.tensor.matricize import unfold_explicit

__all__ = ["initialize_factors"]


def initialize_factors(
    tensor: DenseTensor,
    rank: int,
    method: str = "random",
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """Build initial factor matrices for CP-ALS.

    Parameters
    ----------
    tensor:
        The tensor to be decomposed (only shapes are used for ``"random"``).
    rank:
        CP rank ``C``.
    method:
        ``"random"`` or ``"hosvd"``.
    rng:
        Generator or seed for the random entries.

    Returns
    -------
    list of numpy.ndarray
        One ``I_n x C`` matrix per mode.

    Notes
    -----
    For ``"hosvd"`` with ``rank > I_n`` for some mode, the remaining
    columns are filled with random entries (the standard fallback; the
    mode-``n`` matricization has at most ``I_n`` singular vectors).
    """
    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    rng = np.random.default_rng(rng)
    if method == "random":
        return [
            rng.random((s, rank)) for s in tensor.shape
        ]
    if method == "hosvd":
        factors = []
        for n, s in enumerate(tensor.shape):
            Xn = unfold_explicit(tensor, n)
            # Leading eigenvectors of X_(n) X_(n)^T (s x s, cheap for the
            # mode sizes CP uses) == leading left singular vectors of X_(n).
            G = Xn @ Xn.T
            eigvals, eigvecs = np.linalg.eigh(G)
            order = np.argsort(eigvals)[::-1]
            k = min(rank, s)
            f = eigvecs[:, order[:k]]
            if k < rank:
                f = np.hstack([f, rng.random((s, rank - k))])
            factors.append(np.ascontiguousarray(f))
        return factors
    raise ValueError(f"unknown init method {method!r}")
