"""Model diagnostics: fit and factor match score (FMS).

The factor match score measures whether a fitted CP model recovered a
planted ground-truth model up to the CP ambiguities (component permutation
and per-mode scaling).  It is the standard recovery metric in the tensor
literature and is what the fMRI example uses to demonstrate that the
pipeline extracts the planted brain networks.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.cpd.kruskal import KruskalTensor
from repro.tensor.dense import DenseTensor

__all__ = ["fit_score", "factor_match_score", "congruence_matrix"]


def fit_score(model: KruskalTensor, tensor: DenseTensor) -> float:
    """Convenience alias for ``model.fit(tensor)``."""
    return model.fit(tensor)


def congruence_matrix(a: KruskalTensor, b: KruskalTensor) -> np.ndarray:
    """Pairwise component congruence between two models.

    Entry ``(r, s)`` is the product over modes of the cosine similarity
    between component ``r`` of ``a`` and component ``s`` of ``b`` —
    1.0 means the rank-1 terms are collinear.
    """
    if a.shape != b.shape:
        raise ValueError(
            f"models describe different tensor shapes: {a.shape} vs {b.shape}"
        )
    C = np.ones((a.rank, b.rank))
    for fa, fb in zip(a.factors, b.factors):
        na = np.linalg.norm(fa, axis=0)
        nb = np.linalg.norm(fb, axis=0)
        na = np.where(na > 0, na, 1.0)
        nb = np.where(nb > 0, nb, 1.0)
        C *= (fa / na).T @ (fb / nb)
    return C


def factor_match_score(
    estimated: KruskalTensor,
    reference: KruskalTensor,
    weight_penalty: bool = True,
) -> float:
    """Factor match score in ``[0, 1]`` (1 = exact recovery).

    Components are matched with the Hungarian algorithm on the absolute
    congruence matrix; the score averages the matched congruences,
    optionally penalized by relative weight mismatch (the standard FMS
    definition of Acar et al.).

    Parameters
    ----------
    estimated, reference:
        Models to compare; must have equal rank and tensor shape.
    weight_penalty:
        Multiply each matched congruence by
        ``1 - |w_est - w_ref| / max(w_est, w_ref)``.
    """
    if estimated.rank != reference.rank:
        raise ValueError(
            f"rank mismatch: {estimated.rank} vs {reference.rank}"
        )
    est = estimated.normalize(sort=False)
    ref = reference.normalize(sort=False)
    C = np.abs(congruence_matrix(est, ref))
    row, col = linear_sum_assignment(-C)
    scores = C[row, col]
    if weight_penalty:
        we = np.abs(est.weights[row])
        wr = np.abs(ref.weights[col])
        denom = np.maximum(np.maximum(we, wr), np.finfo(float).tiny)
        scores = scores * (1.0 - np.abs(we - wr) / denom)
    return float(np.mean(scores))
