"""Gram matrices and the Hadamard-of-Grams product of CP-ALS.

Each CP-ALS factor update solves ``U_n = M H^+`` where
``H = (*)_{k != n} U_k^T U_k`` (Section 2.2).  Forming ``H`` costs
``O(C^2 sum_{k != n} I_k)`` — negligible next to MTTKRP — but recomputing
every Gram matrix for every mode is still wasteful, so :class:`GramCache`
keeps one Gram per mode and refreshes only the factor that just changed
(standard CP-ALS practice, also what Tensor Toolbox does).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.util.validation import check_same_columns

__all__ = ["gram_matrices", "hadamard_of_grams", "GramCache"]


def gram_matrices(factors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """``[U_k^T U_k for k]`` — one ``C x C`` Gram matrix per factor."""
    check_same_columns(list(factors), "factors")
    return [np.asarray(f).T @ np.asarray(f) for f in factors]


def hadamard_of_grams(
    grams: Sequence[np.ndarray], skip: int | None = None
) -> np.ndarray:
    """Elementwise product of Gram matrices, optionally skipping one mode.

    ``H = (*)_{k != skip} G_k``; with ``skip=None`` all matrices enter the
    product (used for the model norm).
    """
    if len(grams) == 0:
        raise ValueError("grams must be non-empty")
    C = np.asarray(grams[0]).shape[0]
    H = np.ones((C, C), dtype=np.asarray(grams[0]).dtype)
    for k, g in enumerate(grams):
        if skip is not None and k == skip:
            continue
        g = np.asarray(g)
        if g.shape != (C, C):
            raise ValueError(
                f"grams[{k}] has shape {g.shape}, expected {(C, C)}"
            )
        H *= g
    return H


class GramCache:
    """Per-mode Gram matrices with single-mode refresh.

    >>> import numpy as np
    >>> U = [np.ones((3, 2)), np.eye(2)]
    >>> cache = GramCache(U)
    >>> cache.hadamard(skip=0).shape
    (2, 2)
    """

    def __init__(self, factors: Sequence[np.ndarray]) -> None:
        self._factors = factors
        self._grams = gram_matrices(factors)

    def update(self, n: int) -> None:
        """Refresh the Gram of mode ``n`` after its factor changed."""
        if not 0 <= n < len(self._grams):
            raise ValueError(f"mode {n} out of range")
        f = np.asarray(self._factors[n])
        self._grams[n] = f.T @ f

    def hadamard(self, skip: int) -> np.ndarray:
        """``H`` for the mode-``skip`` ALS update."""
        return hadamard_of_grams(self._grams, skip=skip)

    def hadamard_all(self) -> np.ndarray:
        """Hadamard product of all Grams (for norms/fit)."""
        return hadamard_of_grams(self._grams, skip=None)

    @property
    def grams(self) -> list[np.ndarray]:
        """The cached per-mode Gram matrices (do not mutate)."""
        return self._grams
