"""Baseline MTTKRP implementations from Section 2.3 / Section 5.3.

Two baselines appear in the paper:

* :func:`mttkrp_baseline` — the straightforward approach of Bader & Kolda:
  explicitly form the matricized tensor (reordering entries in memory),
  explicitly form the full KRP, and perform one GEMM.  This is what the
  Matlab packages do, and it is what the paper's algorithms improve on.
* :func:`mttkrp_gemm_lower_bound` — the paper's benchmark "Baseline": a
  *single GEMM between column-major matrices of the same dimensions as the
  matricized tensor and the KRP*.  It can be viewed as a lower bound on the
  straightforward approach because it excludes both the reorder time and
  the KRP-formation time.  The returned value is meaningless; only its cost
  matters, so the function returns the product *and* is instrumented for the
  harness.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.flops import gemm_lower_bound_cost, record_mttkrp_cost
from repro.core.krp import khatri_rao
from repro.core.mttkrp_onestep import krp_operands
from repro.obs import get_tracer
from repro.parallel.blas import blas_threads
from repro.parallel.config import resolve_threads
from repro.tensor.dense import DenseTensor
from repro.tensor.matricize import unfold_explicit
from repro.util.timing import NULL_TIMER, PhaseTimer
from repro.util.validation import check_factor_matrices, check_mode

__all__ = ["mttkrp_baseline", "mttkrp_gemm_lower_bound"]


def mttkrp_baseline(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
) -> np.ndarray:
    """Straightforward MTTKRP: explicit reorder + explicit KRP + one GEMM.

    Parallelism is only inside the BLAS call (as in the Matlab packages).

    Parameters
    ----------
    tensor, factors, n:
        As in :func:`repro.core.mttkrp_onestep.mttkrp_onestep`.
    num_threads:
        BLAS thread budget.
    timers:
        Optional phase timer; phases are ``"reorder"``, ``"full_krp"`` and
        ``"gemm"``.

    Returns
    -------
    numpy.ndarray
        The ``I_n x C`` MTTKRP result.
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    n = check_mode(n, tensor.ndim)
    rank = check_factor_matrices(list(factors), tensor.shape)
    T = resolve_threads(num_threads)
    t = timers if timers is not None else NULL_TIMER
    tr = get_tracer()
    record_mttkrp_cost(tr, tensor.shape, n, rank, "baseline", T)
    with t.phase("reorder"), tr.span("reorder"):
        # The memory-bound entry reordering the paper's algorithms avoid.
        Xn = unfold_explicit(tensor, n, order="F")
    with t.phase("full_krp"), tr.span("full_krp"):
        K = khatri_rao(krp_operands(factors, n))
    with blas_threads(T), t.phase("gemm"), tr.span("gemm"):
        tr.add_counter("gemm_calls", 1)
        return Xn @ K


def mttkrp_gemm_lower_bound(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    _scratch: dict | None = None,
) -> np.ndarray:
    """The paper's "Baseline" benchmark: one DGEMM of MTTKRP dimensions.

    Multiplies *column-major* matrices shaped like ``X_(n)``
    (``I_n x I_{!=n}``) and the KRP (``I_{!=n} x C``) filled with
    placeholder data — the time of this call is the lower bound the paper
    plots, since it charges neither the reorder nor the KRP formation.

    Parameters
    ----------
    _scratch:
        Optional dict reused across benchmark repetitions to cache the
        operand allocations (keyed by shape), so repeated timing measures
        only the GEMM.

    Returns
    -------
    numpy.ndarray
        The GEMM product (numerically meaningless for MTTKRP).
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    n = check_mode(n, tensor.ndim)
    rank = check_factor_matrices(list(factors), tensor.shape)
    T = resolve_threads(num_threads)
    t = timers if timers is not None else NULL_TIMER
    tr = get_tracer()
    rows = tensor.shape[n]
    inner = tensor.size // rows
    key = (rows, inner, rank)
    if _scratch is not None and _scratch.get("key") == key:
        A, B = _scratch["A"], _scratch["B"]
    else:
        # Column-major operands of the exact MTTKRP GEMM shape.  The first
        # operand reuses the tensor's own buffer (reinterpreted, not
        # reordered) for realistic data; the values are irrelevant to cost.
        A = tensor.data.reshape((rows, inner), order="F")
        B = np.ones((inner, rank), order="F")
        if _scratch is not None:
            _scratch.update(key=key, A=A, B=B)
    with blas_threads(T), t.phase("gemm"), tr.span("gemm-lower-bound") as sp:
        cost = gemm_lower_bound_cost(tensor.shape, n, rank)
        sp.add("flops", cost.flops)
        sp.add("bytes_read", sum(p.read_bytes for p in cost.phases))
        sp.add("bytes_written", sum(p.write_bytes for p in cost.phases))
        sp.add("gemm_calls", 1)
        return A @ B
