"""1-step MTTKRP (Algorithms 2 and 3 of the paper).

Computes ``M = X_(n) . (U_{N-1} krp ... krp U_{n+1} krp U_{n-1} krp ... krp
U_0)`` by multiplying the matricized tensor against an (explicit or
block-computed) Khatri-Rao product, **without reordering tensor entries**:

* mode 0: ``X_(0)`` is column-major, one GEMM against the full KRP;
* mode N-1: ``X_(N-1)`` is row-major, one GEMM against the full KRP;
* internal modes: ``X_(n)`` is a contiguous sequence of ``I^R_n`` row-major
  ``I_n x I^L_n`` blocks (Figure 2); the KRP is conformally partitioned
  into ``I^R_n`` row blocks of height ``I^L_n`` and the product is a block
  inner product — one GEMM per block.

Parallelization (Algorithm 3) distinguishes external and internal modes:

* **external** (``n = 0`` or ``n = N-1``): threads own contiguous *column*
  blocks of the matricization; each thread forms only its rows of the KRP
  (a variant of Algorithm 1 starting mid-stream) and GEMMs its slice into a
  private output, followed by a parallel reduction;
* **internal**: the *left* partial KRP ``K_L`` is precomputed in parallel;
  threads own contiguous ranges of matricization blocks, and for each block
  ``j`` compute the ``j``-th row of the right KRP, the rank-1 "KRP block"
  ``K_t = K_R(j,:) (hadamard-broadcast) K_L``, and one GEMM into a private
  output; a parallel reduction finishes.

As the paper notes (Section 5.3), running Algorithm 3 with one thread is
slightly more efficient and uses less memory than Algorithm 2 for internal
modes (it never materializes the full KRP), so :func:`mttkrp_onestep` with
``num_threads=1`` is the recommended sequential entry point; Algorithm 2 is
kept as :func:`mttkrp_onestep_sequential` for completeness and testing.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.flops import record_mttkrp_cost
from repro.core.krp import khatri_rao, krp_rows
from repro.core.krp_parallel import khatri_rao_parallel
from repro.obs import get_tracer
from repro.parallel.backend import get_executor
from repro.parallel.config import resolve_threads
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import mode_products
from repro.util.timing import NULL_TIMER, PhaseTimer, wall_time as _clock
from repro.util.validation import check_factor_matrices, check_mode

__all__ = ["mttkrp_onestep", "mttkrp_onestep_sequential", "krp_operands"]


def krp_operands(
    factors: Sequence[np.ndarray], n: int
) -> list[np.ndarray]:
    """KRP inputs for mode-``n`` MTTKRP, in the paper's order.

    ``K = U_{N-1} krp ... krp U_{n+1} krp U_{n-1} krp ... krp U_0``: all
    factors except mode ``n``, highest mode first.  With
    :func:`repro.core.krp.khatri_rao`'s convention (first input slowest)
    this makes mode 0's row index vary fastest — matching the natural-layout
    column ordering of ``X_(n)``.
    """
    return [np.asarray(factors[k]) for k in range(len(factors) - 1, -1, -1) if k != n]


def _validate(
    tensor: DenseTensor, factors: Sequence[np.ndarray], n: int
) -> tuple[int, int]:
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    n = check_mode(n, tensor.ndim)
    rank = check_factor_matrices(list(factors), tensor.shape)
    if tensor.ndim < 2:
        raise ValueError("MTTKRP requires an order >= 2 tensor")
    return n, rank


def mttkrp_onestep_sequential(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    timers: PhaseTimer | None = None,
) -> np.ndarray:
    """Algorithm 2: sequential 1-step MTTKRP with an explicit full KRP.

    Parameters
    ----------
    tensor:
        Input tensor in natural layout.
    factors:
        One ``I_k x C`` factor matrix per mode (mode ``n``'s entry is
        ignored by the math but must be present and well-shaped).
    n:
        Output mode.
    timers:
        Optional :class:`~repro.util.timing.PhaseTimer`; phases are
        ``"full_krp"`` and ``"gemm"``.

    Returns
    -------
    numpy.ndarray
        The ``I_n x C`` MTTKRP result.
    """
    n, rank = _validate(tensor, factors, n)
    t = timers if timers is not None else NULL_TIMER
    tr = get_tracer()
    record_mttkrp_cost(tr, tensor.shape, n, rank, "onestep-seq", 1)
    with t.phase("full_krp"), tr.span("full_krp"):
        K = khatri_rao(krp_operands(factors, n))
    p = mode_products(tensor.shape, n)
    if n == 0:
        with t.phase("gemm"), tr.span("gemm"):
            tr.add_counter("gemm_calls", 1)
            return tensor.unfold_mode0() @ K  # X_(0) is column-major
    M = np.zeros(
        (p.size, rank),
        dtype=np.result_type(tensor.dtype, K.dtype),
        order="C",
    )
    blocks = tensor.mode_blocks_view(n)  # (IRn, In, ILn), row-major blocks
    with t.phase("gemm"), tr.span("gemm"):
        tr.add_counter("gemm_calls", p.right)
        for j in range(p.right):
            # Conformal partition: KRP row block j has height I^L_n.
            M += blocks[j] @ K[j * p.left : (j + 1) * p.left]
    return M


def mttkrp_onestep(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
) -> np.ndarray:
    """Algorithm 3: parallel 1-step MTTKRP.

    With ``num_threads=1`` this is the paper's preferred sequential variant
    (for internal modes it forms the left partial KRP and streams blocks of
    the full KRP instead of materializing it).

    Parameters
    ----------
    tensor:
        Input tensor in natural layout.
    factors:
        One ``I_k x C`` factor matrix per mode.
    n:
        Output mode.
    num_threads:
        Thread count ``T``; defaults to the package-wide setting.
    timers:
        Optional phase timer.  Phases: ``"full_krp"`` (external modes),
        ``"lr_krp"`` (internal modes: left KRP + per-block right-KRP rows
        and Hadamard broadcasts), ``"gemm"``, and ``"reduce"``.

    Returns
    -------
    numpy.ndarray
        The ``I_n x C`` MTTKRP result.
    """
    n, rank = _validate(tensor, factors, n)
    T = resolve_threads(num_threads)
    t = timers if timers is not None else NULL_TIMER
    record_mttkrp_cost(get_tracer(), tensor.shape, n, rank, "onestep", T)
    if n == 0 or n == tensor.ndim - 1:
        return _onestep_external(tensor, factors, n, rank, T, t)
    return _onestep_internal(tensor, factors, n, rank, T, t)


def _k_external(
    worker: int,
    start: int,
    stop: int,
    tensor: DenseTensor,
    n: int,
    operands: list[np.ndarray],
    out: np.ndarray,
    krp_seconds: np.ndarray,
    gemm_seconds: np.ndarray,
) -> None:
    """Region kernel for Alg. 3 lines 2-9: one worker's column block.

    Worker-private: rows ``[start, stop)`` of the KRP (Alg. 1 variant
    starting mid-stream) and the private output slab ``out[worker]``.
    Module-level (not a closure) so the process backend can ship it by
    reference; the matricization view is rebuilt inside the worker, which
    under shared memory has the exact strides of the parent's view.
    """
    # X_(0) is the column-major unfold; X_(N-1) the row-major one.  Either
    # way a contiguous *column* slice is directly GEMM-able.
    Xn = tensor.unfold_mode0() if n == 0 else tensor.unfold_last()
    t0 = _clock()
    Kt = krp_rows(operands, start, stop)
    t1 = _clock()
    np.matmul(Xn[:, start:stop], Kt, out=out[worker])
    t2 = _clock()
    krp_seconds[worker] = t1 - t0
    gemm_seconds[worker] = t2 - t1
    tr = get_tracer()
    if tr.enabled:
        tr.record("full_krp", t0, t1, worker=worker)
        tr.record("gemm", t1, t2, worker=worker)


def _onestep_external(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    rank: int,
    T: int,
    t,
) -> np.ndarray:
    """External modes: parallelize over matricization columns (Alg. 3 l.2-9)."""
    p = mode_products(tensor.shape, n)
    operands = krp_operands(factors, n)
    tr = get_tracer()

    if T == 1:
        Xn = tensor.unfold_mode0() if n == 0 else tensor.unfold_last()
        with t.phase("full_krp"), tr.span("full_krp"):
            K = krp_rows(operands, 0, p.other)
        with t.phase("gemm"), tr.span("gemm"):
            tr.add_counter("gemm_calls", 1)
            return Xn @ K

    ex = get_executor(T)
    out = ex.allocate_private(T, (p.size, rank), dtype=tensor.dtype)
    # Per-worker phase clocks: the wall-clock contribution of a phase inside
    # a parallel region is its maximum across workers (the paper instruments
    # its OpenMP regions the same way for Figure 6).
    krp_seconds = ex.allocate_shared((T,))
    gemm_seconds = ex.allocate_shared((T,))
    ex.parallel_for(
        _k_external,
        p.other,
        args=(tensor, n, operands, out, krp_seconds, gemm_seconds),
        label="mttkrp.onestep.external",
    )
    t.add("full_krp", float(krp_seconds.max()))
    t.add("gemm", float(gemm_seconds.max()))
    tr.add_counter("gemm_calls", T)
    with t.phase("reduce"), tr.span("reduce"):
        return ex.reduce(out, label="mttkrp.reduce").copy()


def _internal_chunk(block_cols: int, rank: int, total_blocks: int) -> int:
    """Blocks per batched-GEMM chunk for the internal-mode loop.

    The per-block work (one ``I_n x I^L_n`` GEMM plus one broadcast
    Hadamard) is identical whether blocks are issued one BLAS call at a
    time (as in the paper's C code) or as a strided-batch GEMM; batching
    ``chunk`` consecutive blocks amortizes the Python dispatch overhead
    that a C implementation does not have.  The chunk is sized to keep the
    temporary KRP block panel around 4 MiB (cache-friendly, bounded
    memory), mirroring how vendor BLAS batch interfaces are used.
    """
    target_bytes = 4 << 20
    chunk = max(target_bytes // max(block_cols * rank * 8, 1), 1)
    return int(min(chunk, total_blocks, 8192))


def _internal_range(
    blocks3: np.ndarray,
    right_ops: list[np.ndarray],
    KL: np.ndarray,
    Mt: np.ndarray,
    jstart: int,
    jstop: int,
    tracer=None,
) -> tuple[float, float, int]:
    """Process matricization blocks ``[jstart, jstop)`` into ``Mt``.

    Returns (krp seconds, gemm seconds, batched-GEMM call count) for the
    breakdown figures and trace counters; when ``tracer`` is live, each
    chunk's KRP and GEMM intervals are recorded as spans on the calling
    (worker) thread.
    """
    rank = KL.shape[1]
    chunk = _internal_chunk(KL.shape[0], rank, jstop - jstart)
    tk = tg = 0.0
    calls = 0
    traced = tracer is not None and tracer.enabled
    for j0 in range(jstart, jstop, chunk):
        j1 = min(j0 + chunk, jstop)
        t0 = _clock()
        # Rows j0..j1 of the right KRP (Alg. 1 variant, mid-stream start),
        # then the conformal KRP blocks K_t = K_R(j,:) (krp) K_L.
        kr = krp_rows(right_ops, j0, j1)  # (b, C)
        Kt = kr[:, None, :] * KL[None, :, :]  # (b, ILn, C)
        t1 = _clock()
        # One GEMM per block, issued as a strided batch:
        # (b, In, ILn) @ (b, ILn, C) -> (b, In, C), summed into Mt.
        Mt += np.matmul(blocks3[j0:j1], Kt).sum(axis=0)
        t2 = _clock()
        tk += t1 - t0
        tg += t2 - t1
        calls += 1
        if traced:
            tracer.record("lr_krp", t0, t1, blocks=j1 - j0)
            tracer.record("gemm", t1, t2, blocks=j1 - j0)
    return tk, tg, calls


def _k_internal(
    worker: int,
    jstart: int,
    jstop: int,
    tensor: DenseTensor,
    n: int,
    right_ops: list[np.ndarray],
    KL: np.ndarray,
    out: np.ndarray,
    krp_seconds: np.ndarray,
    gemm_seconds: np.ndarray,
    gemm_calls: np.ndarray,
) -> None:
    """Region kernel for Alg. 3 lines 10-17: one worker's block range.

    Module-level for the process backend; the 3-D block view of the
    matricization is rebuilt in the worker over the shared tensor buffer.
    """
    blocks3 = tensor.mode_blocks_view(n)  # (IRn, In, ILn)
    krp_seconds[worker], gemm_seconds[worker], gemm_calls[worker] = (
        _internal_range(
            blocks3, right_ops, KL, out[worker], jstart, jstop,
            tracer=get_tracer(),
        )
    )


def _onestep_internal(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    rank: int,
    T: int,
    t,
) -> np.ndarray:
    """Internal modes: parallelize over matricization blocks (Alg. 3 l.10-17)."""
    p = mode_products(tensor.shape, n)
    tr = get_tracer()
    right_ops = [np.asarray(factors[k]) for k in range(tensor.ndim - 1, n, -1)]
    left_ops = [np.asarray(factors[k]) for k in range(n - 1, -1, -1)]

    if T == 1:
        with t.phase("lr_krp"), tr.span("lr_krp"):
            KL = khatri_rao_parallel(left_ops, num_threads=T)
        M = np.zeros((p.size, rank), dtype=tensor.dtype)
        tk, tg, calls = _internal_range(
            tensor.mode_blocks_view(n), right_ops, KL, M, 0, p.right, tracer=tr
        )
        t.add("lr_krp", tk)
        t.add("gemm", tg)
        tr.add_counter("gemm_calls", calls)
        return M

    ex = get_executor(T)
    with t.phase("lr_krp"), tr.span("lr_krp"):
        # Left partial KRP K_L = U_{n-1} krp ... krp U_0, formed in parallel
        # on the same executor (under the process backend it lands directly
        # in a shared segment, so the region below attaches it zero-copy).
        KL = khatri_rao_parallel(left_ops, num_threads=T, executor=ex)

    out = ex.allocate_private(T, (p.size, rank), dtype=tensor.dtype)
    krp_seconds = ex.allocate_shared((T,))
    gemm_seconds = ex.allocate_shared((T,))
    gemm_calls = ex.allocate_shared((T,), dtype=np.int64)
    ex.parallel_for(
        _k_internal,
        p.right,
        args=(
            tensor, n, right_ops, KL, out,
            krp_seconds, gemm_seconds, gemm_calls,
        ),
        label="mttkrp.onestep.internal",
    )
    t.add("lr_krp", float(krp_seconds.max()))
    t.add("gemm", float(gemm_seconds.max()))
    tr.add_counter("gemm_calls", int(gemm_calls.sum()))
    with t.phase("reduce"), tr.span("reduce"):
        return ex.reduce(out, label="mttkrp.reduce").copy()
