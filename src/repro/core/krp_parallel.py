"""Parallel row-wise Khatri-Rao product (Section 4.1.2).

The parallel variant of Algorithm 1 assigns the rows of the output matrix
to threads in contiguous blocks.  Each thread initializes its multi-index
and intermediate products according to its starting row (rather than row 0)
and then proceeds exactly as in the sequential case, stopping after its last
assigned row — which is precisely what :func:`repro.core.krp.krp_rows` does
for an arbitrary row range.

The output rows live in a single shared matrix; because the blocks are
disjoint there are no write conflicts and no reduction is needed.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.krp import krp_rows, krp_rows_naive
from repro.obs import get_tracer
from repro.parallel.config import resolve_threads
from repro.parallel.pool import get_pool
from repro.util import prod
from repro.util.validation import check_same_columns

__all__ = ["khatri_rao_parallel"]


def khatri_rao_parallel(
    matrices: Sequence[np.ndarray],
    num_threads: int | None = None,
    out: np.ndarray | None = None,
    schedule: str = "reuse",
) -> np.ndarray:
    """Khatri-Rao product computed by a team of threads over row blocks.

    Parameters
    ----------
    matrices:
        KRP inputs (first matrix's row index slowest, as in
        :func:`repro.core.krp.khatri_rao`).
    num_threads:
        Thread count; defaults to the package-wide setting
        (:func:`repro.parallel.config.get_num_threads`).
    out:
        Optional preallocated ``(prod J_z, C)`` row-major output.
    schedule:
        ``"reuse"`` (Algorithm 1) or ``"naive"`` (the Figure 4 baseline);
        both are parallelized identically.

    Returns
    -------
    numpy.ndarray
        The ``prod(J_z) x C`` Khatri-Rao product.
    """
    mats = [np.asarray(m) for m in matrices]
    C = check_same_columns(mats, "matrices")
    rows = prod(m.shape[0] for m in mats)
    T = resolve_threads(num_threads)
    if schedule == "reuse":
        kernel = krp_rows
    elif schedule == "naive":
        kernel = krp_rows_naive
    else:
        raise ValueError(f"unknown schedule {schedule!r}")
    if out is None:
        out = np.empty((rows, C), dtype=np.result_type(*mats))
    elif out.shape != (rows, C):
        raise ValueError(f"out has shape {out.shape}, expected {(rows, C)}")

    tracer = get_tracer()
    with tracer.span("krp.parallel", rows=rows, C=C, schedule=schedule):
        if T == 1:
            return kernel(mats, 0, rows, out=out)

        pool = get_pool(T)

        def work(t: int, start: int, stop: int) -> None:
            # Each thread writes only its disjoint row block of the shared
            # output; krp_rows re-derives the multi-index state from `start`.
            kernel(mats, start, stop, out=out[start:stop])

        pool.parallel_for(work, rows, label="krp.rows")
        return out
