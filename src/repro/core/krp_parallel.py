"""Parallel row-wise Khatri-Rao product (Section 4.1.2).

The parallel variant of Algorithm 1 assigns the rows of the output matrix
to threads in contiguous blocks.  Each thread initializes its multi-index
and intermediate products according to its starting row (rather than row 0)
and then proceeds exactly as in the sequential case, stopping after its last
assigned row — which is precisely what :func:`repro.core.krp.krp_rows` does
for an arbitrary row range.

The output rows live in a single shared matrix; because the blocks are
disjoint there are no write conflicts and no reduction is needed.  Under the
process backend (:mod:`repro.parallel.backend`) the shared matrix is a
shared-memory segment, so the row-wise Python loop — the part the GIL
serializes on the thread backend — runs genuinely parallel.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.flops import krp_cost
from repro.core.krp import krp_rows, krp_rows_naive
from repro.obs import get_tracer
from repro.parallel.backend import Executor, get_executor
from repro.parallel.config import resolve_threads
from repro.util import prod
from repro.util.validation import check_same_columns

__all__ = ["khatri_rao_parallel"]


def _k_krp_rows(worker, start, stop, mats, out, naive) -> None:
    """Region kernel: rows ``[start, stop)`` of the KRP into shared ``out``.

    Each worker writes only its disjoint row block; ``krp_rows`` re-derives
    the multi-index state from ``start``, so results are independent of the
    partition (and hence of the backend).
    """
    kernel = krp_rows_naive if naive else krp_rows
    kernel(mats, start, stop, out=out[start:stop])


def khatri_rao_parallel(
    matrices: Sequence[np.ndarray],
    num_threads: int | None = None,
    out: np.ndarray | None = None,
    schedule: str = "reuse",
    executor: Executor | None = None,
) -> np.ndarray:
    """Khatri-Rao product computed by a team of workers over row blocks.

    Parameters
    ----------
    matrices:
        KRP inputs (first matrix's row index slowest, as in
        :func:`repro.core.krp.khatri_rao`).
    num_threads:
        Worker count; defaults to the package-wide setting
        (:func:`repro.parallel.config.get_num_threads`).
    out:
        Optional preallocated ``(prod J_z, C)`` row-major output.  Under the
        process backend, an ``out`` the workers cannot address directly is
        filled through one extra copy from a shared staging buffer.
    schedule:
        ``"reuse"`` (Algorithm 1) or ``"naive"`` (the Figure 4 baseline);
        both are parallelized identically.
    executor:
        Explicit executor to run on; defaults to the shared executor for
        the configured backend (:func:`repro.parallel.backend.get_executor`).

    Returns
    -------
    numpy.ndarray
        The ``prod(J_z) x C`` Khatri-Rao product.
    """
    mats = [np.asarray(m) for m in matrices]
    C = check_same_columns(mats, "matrices")
    rows = prod(m.shape[0] for m in mats)
    T = resolve_threads(num_threads)
    if schedule == "reuse":
        naive = False
    elif schedule == "naive":
        naive = True
    else:
        raise ValueError(f"unknown schedule {schedule!r}")
    dtype = np.result_type(*mats)
    if out is not None and out.shape != (rows, C):
        raise ValueError(f"out has shape {out.shape}, expected {(rows, C)}")

    tracer = get_tracer()
    with tracer.span("krp.parallel", rows=rows, C=C, schedule=schedule) as sp:
        cost = krp_cost([m.shape[0] for m in mats], C, schedule=schedule)
        sp.add("flops", cost.flops)
        sp.add("bytes_read", cost.read_bytes)
        sp.add("bytes_written", cost.write_bytes)
        if T == 1 and executor is None:
            if out is None:
                out = np.empty((rows, C), dtype=dtype)
            kernel = krp_rows_naive if naive else krp_rows
            return kernel(mats, 0, rows, out=out)

        ex = executor if executor is not None else get_executor(T)
        target = out
        if target is None or not ex.owns_shared(target):
            target = ex.allocate_shared((rows, C), dtype)
        ex.parallel_for(
            _k_krp_rows, rows, args=(mats, target, naive), label="krp.rows"
        )
        if out is not None and target is not out:
            np.copyto(out, target)
            return out
        return target
