"""The paper's primary contribution: KRP and MTTKRP algorithms.

* :mod:`~repro.core.krp` — row-wise Khatri-Rao product with reuse of
  partial Hadamard products (Algorithm 1), a naive variant, row-range
  evaluation, and a literal pseudocode transcription used as a test oracle;
* :mod:`~repro.core.krp_parallel` — the parallel KRP (contiguous row
  blocks per thread, Section 4.1.2);
* :mod:`~repro.core.mttkrp_onestep` — 1-step MTTKRP (Algorithms 2 and 3);
* :mod:`~repro.core.mttkrp_twostep` — 2-step MTTKRP (Algorithm 4);
* :mod:`~repro.core.mttkrp_blocked` — cache-blocked MTTKRP with tile
  shapes derived from the Ballard-Rouse-Knight communication lower bound;
* :mod:`~repro.core.mttkrp_baseline` — the explicit-reorder baseline and
  the DGEMM-only lower bound used in the paper's figures;
* :mod:`~repro.core.dispatch` — the per-mode algorithm selection used by
  CP-ALS (1-step for external modes, 2-step for internal modes);
* :mod:`~repro.core.flops` — exact flop/byte counts per algorithm phase
  (consumed by the machine model and the benchmark harness);
* :mod:`~repro.core.dimtree` — the cross-mode-reuse extension the paper's
  conclusion proposes (Phan et al. Section III.C): two shared partial
  contractions per CP-ALS iteration instead of one MTTKRP per mode.
"""

from repro.core.dimtree import (
    left_partial,
    node_mttkrp,
    right_partial,
    split_point,
)
from repro.core.dispatch import mttkrp
from repro.core.krp import (
    khatri_rao,
    khatri_rao_naive,
    krp_reference,
    krp_row,
    krp_rows,
)
from repro.core.krp_parallel import khatri_rao_parallel
from repro.core.mttkrp_baseline import mttkrp_baseline, mttkrp_gemm_lower_bound
from repro.core.mttkrp_blocked import choose_tiles, mttkrp_blocked
from repro.core.mttkrp_onestep import mttkrp_onestep, mttkrp_onestep_sequential
from repro.core.mttkrp_twostep import mttkrp_twostep

__all__ = [
    "khatri_rao",
    "khatri_rao_naive",
    "khatri_rao_parallel",
    "krp_rows",
    "krp_row",
    "krp_reference",
    "mttkrp",
    "mttkrp_onestep",
    "mttkrp_onestep_sequential",
    "mttkrp_twostep",
    "mttkrp_blocked",
    "choose_tiles",
    "mttkrp_baseline",
    "mttkrp_gemm_lower_bound",
    "left_partial",
    "right_partial",
    "node_mttkrp",
    "split_point",
]
