"""Cache-blocked MTTKRP guided by the communication lower bound.

The 1-step kernels (:mod:`repro.core.mttkrp_onestep`) already avoid
reordering tensor entries, but they still materialize Khatri-Rao panels in
memory: external modes form each worker's full KRP slice (``I_other/T x C``
words written and re-read), internal modes write every broadcast block
``K_t = K_R(j,:) (hadamard) K_L`` to a ~4 MiB panel.  Against the
Ballard-Rouse-Knight floor (:func:`repro.core.flops.mttkrp_comm_lower_bound`)
that panel traffic is pure overhead: the compulsory terms are one read of
the tensor, one read of the factors and one write of the output.

This module's kernels close that gap by **tiling the contraction over
cache-sized blocks** chosen analytically from the bound instantiated
against the machine model's measured cache capacity
(:attr:`repro.machine.model.MachineModel.cache_bytes`):

* **external modes** (``n = 0`` or ``n = N-1``): the matricization's
  columns are cut into tiles of ``tile`` columns such that the tensor tile
  (``I_n x tile``), the KRP tile (``tile x C``) and the output
  (``I_n x C``) together fit in half the cache.  Each KRP tile is formed
  in a *reused cache-resident buffer* (:func:`repro.core.krp.krp_rows`
  starting mid-stream) and consumed by one GEMM-accumulate — the full KRP
  never exists, so its ``I_other * C`` words of write+read traffic
  disappear;
* **internal modes**: within the natural ``(I^R_n, I_n, I^L_n)`` block
  structure, the ``I^L_n`` extent is tiled so the tensor tile, the
  ``K_L`` tile, the broadcast ``K_t`` tile and the output stay
  cache-resident; ``K_t`` is formed tile-by-tile in a reused buffer
  instead of being written to a memory panel.

The parallel path partitions *tiles* (external) or *blocks* (internal)
across the existing executor abstraction — contiguous ranges via
``parallel_for``, private output slabs, tree reduction — so thread and
process backends produce bit-identical results at fixed ``T`` and the
RA001 shared-write analysis stays clean (all shared writes are indexed by
``worker`` or derived from the partition).

Tile selection is exposed as :func:`choose_tiles` so the tests, the cost
model (:func:`repro.core.flops.blocked_cost`) and the docs
(``docs/blocking.md``) can all point at one derivation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.flops import record_mttkrp_cost
from repro.core.krp import krp_rows
from repro.core.mttkrp_onestep import krp_operands
from repro.obs import get_tracer
from repro.parallel.backend import get_executor
from repro.parallel.config import resolve_threads
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import mode_products
from repro.util.timing import NULL_TIMER, PhaseTimer, wall_time as _clock
from repro.util.validation import check_factor_matrices, check_mode

__all__ = ["mttkrp_blocked", "choose_tiles", "TilePlan"]


@dataclass(frozen=True)
class TilePlan:
    """Analytic tile choice for one mode-``n`` blocked MTTKRP.

    Attributes
    ----------
    external:
        Whether mode ``n`` is external (tile = matricization columns) or
        internal (tile = ``I^L_n`` extent within each block).
    tile:
        Tile length in the tiled dimension (columns of ``X_(n)`` for
        external modes, ``I^L_n`` sub-range for internal modes).
    num_tasks:
        Parallel work items: column tiles (external) or matricization
        blocks ``I^R_n`` (internal).
    cache_bytes:
        The fast-memory capacity the plan was derived for.
    """

    external: bool
    tile: int
    num_tasks: int
    cache_bytes: float


def _resolve_cache_bytes(cache_bytes: float | None) -> float:
    if cache_bytes is not None:
        if cache_bytes <= 0:
            raise ValueError(f"cache_bytes must be positive, got {cache_bytes}")
        return float(cache_bytes)
    # Lazy import: repro.core must stay importable without repro.machine.
    from repro.machine.model import host_model_default

    return float(host_model_default().cache_bytes)


def choose_tiles(
    shape: Sequence[int],
    n: int,
    C: int,
    itemsize: int = 8,
    cache_bytes: float | None = None,
) -> TilePlan:
    """Pick the tile length that keeps the working set cache-resident.

    Derivation (see ``docs/blocking.md``): with a fast-memory target of
    ``M = cache_bytes / 2 / itemsize`` words (half the cache, leaving room
    for the streamed tensor lines), the per-tile working set is

    * external: tensor tile ``I_n * t`` + KRP tile ``t * C`` + output
      ``I_n * C``  =>  ``t <= (M - I_n C) / (I_n + C)``;
    * internal: tensor tile ``I_n * t`` + ``K_L`` tile ``t * C`` + ``K_t``
      tile ``t * C`` + output ``I_n C``  =>  ``t <= (M - I_n C) / (I_n + 2C)``,

    clamped to ``[1, extent]``.  When the output alone exceeds the target
    (tiny caches, fat modes) the tile degrades gracefully to the smallest
    useful length instead of failing — correctness never depends on the
    cache estimate.
    """
    shape = tuple(int(s) for s in shape)
    N = len(shape)
    n = check_mode(n, N)
    C = int(C)
    cache = _resolve_cache_bytes(cache_bytes)
    target_words = max(cache / 2.0 / max(int(itemsize), 1), 1.0)
    p = mode_products(shape, n)
    external = n == 0 or n == N - 1
    extent = p.other if external else p.left
    denom = p.size + (C if external else 2 * C)
    free = target_words - p.size * C
    if free >= denom:
        tile = int(free // denom)
    else:
        tile = max(int(target_words // denom), 1)
    tile = max(1, min(tile, extent))
    if external:
        num_tasks = -(-p.other // tile)  # ceil
    else:
        num_tasks = p.right
    return TilePlan(
        external=external,
        tile=tile,
        num_tasks=num_tasks,
        cache_bytes=cache,
    )


def _validate(
    tensor: DenseTensor, factors: Sequence[np.ndarray], n: int
) -> tuple[int, int]:
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    n = check_mode(n, tensor.ndim)
    rank = check_factor_matrices(list(factors), tensor.shape)
    if tensor.ndim < 2:
        raise ValueError("MTTKRP requires an order >= 2 tensor")
    return n, rank


def mttkrp_blocked(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    cache_bytes: float | None = None,
) -> np.ndarray:
    """Communication-aware blocked MTTKRP for mode ``n``.

    Numerically equivalent to the other kernels (same tolerance class as
    the 1-step algorithm: per-tile GEMM partial sums accumulated in
    order); thread vs process backends are bit-identical at fixed ``T``.

    Parameters
    ----------
    tensor:
        Dense tensor in natural layout.
    factors:
        One ``I_k x C`` factor matrix per mode.
    n:
        Output mode.
    num_threads:
        Worker count ``T``; defaults to the package-wide setting.
    timers:
        Optional phase timer.  Phases: ``"full_krp"`` (external) or
        ``"lr_krp"`` (internal), ``"gemm"``, and ``"reduce"`` (``T > 1``).
    cache_bytes:
        Fast-memory capacity for tile sizing; defaults to the host
        machine model's calibrated/default
        :attr:`~repro.machine.model.MachineModel.cache_bytes`.

    Returns
    -------
    numpy.ndarray
        The ``I_n x C`` MTTKRP result.
    """
    n, rank = _validate(tensor, factors, n)
    T = resolve_threads(num_threads)
    t = timers if timers is not None else NULL_TIMER
    record_mttkrp_cost(
        get_tracer(), tensor.shape, n, rank, "blocked", T,
        cache_bytes=cache_bytes,
    )
    dtype = np.result_type(
        tensor.dtype, *[np.asarray(f).dtype for f in factors]
    )
    plan = choose_tiles(
        tensor.shape, n, rank,
        itemsize=np.dtype(dtype).itemsize,
        cache_bytes=cache_bytes,
    )
    if plan.external:
        return _blocked_external(tensor, factors, n, rank, T, t, plan, dtype)
    return _blocked_internal(tensor, factors, n, rank, T, t, plan, dtype)


# --------------------------------------------------------------------- #
# External modes: tile the matricization columns
# --------------------------------------------------------------------- #


def _external_range(
    Xn: np.ndarray,
    operands: list[np.ndarray],
    Mt: np.ndarray,
    tile: int,
    kstart: int,
    kstop: int,
    tracer=None,
) -> tuple[float, float, int]:
    """Accumulate column tiles ``[kstart, kstop)`` into ``Mt``.

    Tile ``k`` covers columns ``[k*tile, (k+1)*tile)``; the KRP tile for
    that range is formed mid-stream into a reused buffer (never touching
    memory at steady state) and immediately consumed by one
    GEMM-accumulate.  Returns (krp seconds, gemm seconds, gemm calls).
    """
    total_cols = Xn.shape[1]
    C = Mt.shape[1]
    kbuf = np.empty((tile, C), dtype=np.result_type(*operands), order="C")
    gbuf = np.empty(Mt.shape, dtype=Mt.dtype, order="C")
    tk = tg = 0.0
    calls = 0
    traced = tracer is not None and tracer.enabled
    span_start = _clock()
    for k in range(kstart, kstop):
        c0 = k * tile
        c1 = min(c0 + tile, total_cols)
        t0 = _clock()
        Kt = krp_rows(operands, c0, c1, out=kbuf[: c1 - c0])
        t1 = _clock()
        np.matmul(Xn[:, c0:c1], Kt, out=gbuf)
        Mt += gbuf
        t2 = _clock()
        tk += t1 - t0
        tg += t2 - t1
        calls += 1
    if traced and calls:
        # One span pair per worker range (per-tile spans would dominate
        # the trace at fine tiles).
        mid = span_start + tk
        tracer.record("full_krp", span_start, mid, tiles=calls)
        tracer.record("gemm", mid, mid + tg, tiles=calls)
    return tk, tg, calls


def _k_blocked_external(
    worker: int,
    start: int,
    stop: int,
    tensor: DenseTensor,
    n: int,
    operands: list[np.ndarray],
    tile: int,
    out: np.ndarray,
    krp_seconds: np.ndarray,
    gemm_seconds: np.ndarray,
    gemm_calls: np.ndarray,
) -> None:
    """Region kernel: one worker's contiguous range of column tiles.

    Module-level (not a closure) so the process backend ships it by
    reference; the matricization view is rebuilt inside the worker over
    the shared buffer.  All shared writes are indexed by ``worker``.
    """
    Xn = tensor.unfold_mode0() if n == 0 else tensor.unfold_last()
    krp_seconds[worker], gemm_seconds[worker], gemm_calls[worker] = (
        _external_range(
            Xn, operands, out[worker], tile, start, stop,
            tracer=get_tracer(),
        )
    )


def _blocked_external(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    rank: int,
    T: int,
    t,
    plan: TilePlan,
    dtype,
) -> np.ndarray:
    p = mode_products(tensor.shape, n)
    operands = krp_operands(factors, n)
    tr = get_tracer()

    if T == 1:
        Xn = tensor.unfold_mode0() if n == 0 else tensor.unfold_last()
        M = np.zeros((p.size, rank), dtype=dtype, order="C")
        tk, tg, calls = _external_range(
            Xn, operands, M, plan.tile, 0, plan.num_tasks, tracer=tr
        )
        t.add("full_krp", tk)
        t.add("gemm", tg)
        tr.add_counter("gemm_calls", calls)
        return M

    ex = get_executor(T)
    out = ex.allocate_private(T, (p.size, rank), dtype=dtype)
    krp_seconds = ex.allocate_shared((T,))
    gemm_seconds = ex.allocate_shared((T,))
    gemm_calls = ex.allocate_shared((T,), dtype=np.int64)
    ex.parallel_for(
        _k_blocked_external,
        plan.num_tasks,
        args=(
            tensor, n, operands, plan.tile, out,
            krp_seconds, gemm_seconds, gemm_calls,
        ),
        label="mttkrp.blocked.external",
    )
    t.add("full_krp", float(krp_seconds.max()))
    t.add("gemm", float(gemm_seconds.max()))
    tr.add_counter("gemm_calls", int(gemm_calls.sum()))
    with t.phase("reduce"), tr.span("reduce"):
        return ex.reduce(out, label="mttkrp.reduce").copy()


# --------------------------------------------------------------------- #
# Internal modes: tile the I^L_n extent within each block
# --------------------------------------------------------------------- #


def _internal_tiled_range(
    blocks3: np.ndarray,
    right_ops: list[np.ndarray],
    KL: np.ndarray,
    Mt: np.ndarray,
    tile: int,
    jstart: int,
    jstop: int,
    tracer=None,
) -> tuple[float, float, int]:
    """Accumulate matricization blocks ``[jstart, jstop)`` into ``Mt``.

    The right-KRP rows for the whole range are formed once (a ``range x C``
    strip, cache-resident); each block's broadcast ``K_t`` is then built
    one ``tile x C`` slice at a time in a reused buffer and consumed by a
    GEMM-accumulate, so no KRP panel ever reaches memory.
    """
    ILn = KL.shape[0]
    C = KL.shape[1]
    t0 = _clock()
    kr = krp_rows(right_ops, jstart, jstop)  # (range, C), small
    t1 = _clock()
    ktile = np.empty((tile, C), dtype=np.result_type(kr, KL), order="C")
    gbuf = np.empty(Mt.shape, dtype=Mt.dtype, order="C")
    tk = t1 - t0
    tg = 0.0
    calls = 0
    traced = tracer is not None and tracer.enabled
    for j in range(jstart, jstop):
        krj = kr[j - jstart]
        g0 = _clock()
        for l0 in range(0, ILn, tile):
            l1 = min(l0 + tile, ILn)
            # K_t tile: K_R(j,:) broadcast-Hadamard K_L rows [l0, l1).
            np.multiply(krj[None, :], KL[l0:l1], out=ktile[: l1 - l0])
            np.matmul(blocks3[j][:, l0:l1], ktile[: l1 - l0], out=gbuf)
            Mt += gbuf
            calls += 1
        tg += _clock() - g0
    if traced:
        tracer.record("lr_krp", t0, t1, blocks=jstop - jstart)
        if calls:
            tracer.record("gemm", t1, t1 + tg, tiles=calls)
    return tk, tg, calls


def _k_blocked_internal(
    worker: int,
    jstart: int,
    jstop: int,
    tensor: DenseTensor,
    n: int,
    right_ops: list[np.ndarray],
    KL: np.ndarray,
    tile: int,
    out: np.ndarray,
    krp_seconds: np.ndarray,
    gemm_seconds: np.ndarray,
    gemm_calls: np.ndarray,
) -> None:
    """Region kernel: one worker's contiguous range of matricization blocks."""
    blocks3 = tensor.mode_blocks_view(n)  # (IRn, In, ILn)
    krp_seconds[worker], gemm_seconds[worker], gemm_calls[worker] = (
        _internal_tiled_range(
            blocks3, right_ops, KL, out[worker], tile, jstart, jstop,
            tracer=get_tracer(),
        )
    )


def _blocked_internal(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    rank: int,
    T: int,
    t,
    plan: TilePlan,
    dtype,
) -> np.ndarray:
    p = mode_products(tensor.shape, n)
    tr = get_tracer()
    right_ops = [np.asarray(factors[k]) for k in range(tensor.ndim - 1, n, -1)]
    left_ops = [np.asarray(factors[k]) for k in range(n - 1, -1, -1)]

    with t.phase("lr_krp"), tr.span("lr_krp"):
        # K_L = U_{n-1} krp ... krp U_0, formed once.  Unlike the 1-step
        # kernel this is the *only* KRP that touches memory; the broadcast
        # K_t tiles stay in the workers' cache-resident buffers.
        KL = krp_rows(left_ops, 0, p.left)

    if T == 1:
        M = np.zeros((p.size, rank), dtype=dtype, order="C")
        tk, tg, calls = _internal_tiled_range(
            tensor.mode_blocks_view(n), right_ops, KL, M,
            plan.tile, 0, p.right, tracer=tr,
        )
        t.add("lr_krp", tk)
        t.add("gemm", tg)
        tr.add_counter("gemm_calls", calls)
        return M

    ex = get_executor(T)
    out = ex.allocate_private(T, (p.size, rank), dtype=dtype)
    krp_seconds = ex.allocate_shared((T,))
    gemm_seconds = ex.allocate_shared((T,))
    gemm_calls = ex.allocate_shared((T,), dtype=np.int64)
    ex.parallel_for(
        _k_blocked_internal,
        p.right,
        args=(
            tensor, n, right_ops, KL, plan.tile, out,
            krp_seconds, gemm_seconds, gemm_calls,
        ),
        label="mttkrp.blocked.internal",
    )
    t.add("lr_krp", float(krp_seconds.max()))
    t.add("gemm", float(gemm_seconds.max()))
    tr.add_counter("gemm_calls", int(gemm_calls.sum()))
    with t.phase("reduce"), tr.span("reduce"):
        return ex.reduce(out, label="mttkrp.reduce").copy()
