"""Unified MTTKRP entry point with the paper's per-mode algorithm policy.

Section 5.3.3: "Our C implementation of CP-ALS employs Algorithm 3 (1-step)
for both outer modes and Algorithm 4 (2-step) for all inner modes."  That is
exactly what ``method="auto"`` does (noting the two algorithms coincide for
external modes anyway).
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from contextlib import nullcontext

import numpy as np

from repro.core.dimtree import mttkrp_dimtree
from repro.core.mttkrp_baseline import mttkrp_baseline
from repro.core.mttkrp_blocked import mttkrp_blocked
from repro.core.mttkrp_onestep import mttkrp_onestep, mttkrp_onestep_sequential
from repro.core.mttkrp_twostep import mttkrp_twostep
from repro.obs import get_tracer
from repro.parallel.config import use_backend
from repro.tensor.dense import DenseTensor
from repro.util.timing import PhaseTimer
from repro.util.validation import check_mode

__all__ = ["mttkrp", "MTTKRP_METHODS"]

MTTKRP_METHODS = (
    "auto",
    "autotune",
    "onestep",
    # onestep-seq is strictly dominated by "onestep" at every thread
    # count the tuner would measure, so it is deliberately absent from
    # the autotuner candidate set (it exists for oracle/ablation use).
    "onestep-seq",  # repro: ignore[RA010]
    "twostep",
    "blocked",
    "dimtree",
    "baseline",
)

# Keyword arguments that configure the *execution environment* of a
# kernel rather than its mathematics.  When the autotuner resolves
# ``method="autotune"`` to a concrete kernel, only these are forwarded
# from the caller's kwargs (and only to kernels that accept them) — the
# mathematical kwargs come from the tuning record itself.
_TUNE_PASSTHROUGH = ("workspace", "executor", "slot")


def mttkrp(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    method: str = "auto",
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    backend: str | None = None,
    **kwargs,
) -> np.ndarray:
    """Matricized-tensor times Khatri-Rao product for mode ``n``.

    ``M = X_(n) . (U_{N-1} krp ... krp U_{n+1} krp U_{n-1} krp ... krp U_0)``

    Parameters
    ----------
    tensor:
        Dense tensor in natural layout.
    factors:
        One ``I_k x C`` factor matrix per mode (the mode-``n`` matrix does
        not enter the computation but fixes shapes, matching CP-ALS usage).
    n:
        Output mode (negative values allowed, numpy-style).
    method:
        * ``"auto"`` — the paper's CP-ALS policy: 1-step for external
          modes, 2-step for internal modes;
        * ``"autotune"`` — empirical selection (:mod:`repro.tune`): the
          fastest kernel measured for this ``(shape, rank, mode,
          threads, backend, dtype)`` key, served from the persisted
          tuning cache after the first call.  2-way tensors skip
          measurement entirely (every kernel is the same single GEMM).
          Caller kwargs other than ``workspace``/``executor``/``slot``
          are ignored — the tuning record supplies the kernel kwargs;
        * ``"onestep"`` — Algorithm 3 (the recommended 1-step variant,
          also for ``num_threads=1``);
        * ``"onestep-seq"`` — Algorithm 2 (explicit full KRP);
        * ``"twostep"`` — Algorithm 4 (internal modes only; external modes
          fall back to 1-step, which it degenerates to).  The spec forms
          ``"twostep:left"``/``"twostep:right"`` pin the ordering (same
          as ``side=``) — this is the label syntax tuning records use,
          so a recorded pick can be replayed verbatim;
        * ``"blocked"`` — the cache-blocked kernel family
          (:mod:`repro.core.mttkrp_blocked`): KRP tiles formed in
          cache-resident buffers, tile shapes derived from the
          Ballard-Rouse-Knight communication lower bound against the
          machine model's cache capacity; accepts ``cache_bytes=``;
        * ``"dimtree"`` — the dimension-tree node path for a single mode
          (half-tensor partial contraction + node MTTKRP, see
          :func:`repro.core.dimtree.mttkrp_dimtree`); accepts
          ``workspace=``/``executor=``/``slot=``;
        * ``"baseline"`` — explicit reorder + full KRP + single GEMM.
    num_threads:
        Thread count; defaults to the package-wide setting.
    timers:
        Optional :class:`~repro.util.timing.PhaseTimer` for breakdowns.
    backend:
        Execution backend for the parallel regions, ``"thread"`` or
        ``"process"`` (see :mod:`repro.parallel.backend`); defaults to the
        package-wide setting (``set_backend()`` / ``REPRO_BACKEND``).
    **kwargs:
        Forwarded to the selected implementation (e.g. ``side=`` for
        ``"twostep"``).

    Returns
    -------
    numpy.ndarray
        The ``I_n x C`` MTTKRP result.
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    n = check_mode(n, tensor.ndim)
    external = n == 0 or n == tensor.ndim - 1
    if method == "auto":
        method = "onestep" if external else "twostep"
    autotuned = method == "autotune"
    if autotuned:
        from repro.tune.tuner import autotune

        record = autotune(
            tensor,
            factors,
            n,
            num_threads=num_threads,
            backend=backend,
            workspace=kwargs.get("workspace"),
        )
        method = record.method
        resolved_kwargs = dict(record.kwargs)
        if method == "dimtree":
            for key in _TUNE_PASSTHROUGH:
                if key in kwargs:
                    resolved_kwargs[key] = kwargs[key]
        kwargs = resolved_kwargs
    if method.startswith("twostep:"):
        side_spec = method.partition(":")[2]
        if side_spec not in ("left", "right"):
            raise ValueError(
                f"unknown method {method!r}; the twostep spec form is "
                f"'twostep:left' or 'twostep:right'"
            )
        method = "twostep"
        kwargs.setdefault("side", side_spec)
    if method == "twostep" and external:
        # The paper: "for external modes, the 2-step algorithm degenerates
        # to the 1-step algorithm."
        method = "onestep"
        if kwargs:
            warnings.warn(
                f"mttkrp(method='twostep') degenerates to the 1-step "
                f"algorithm for external mode {n}; ignoring keyword "
                f"arguments {sorted(kwargs)} that the 1-step "
                f"implementation does not accept",
                UserWarning,
                stacklevel=2,
            )
            kwargs = {}
    if method not in MTTKRP_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {MTTKRP_METHODS}"
        )

    tracer = get_tracer()
    backend_scope = use_backend(backend) if backend is not None else nullcontext()
    with backend_scope:
        if not tracer.enabled:
            return _run(tensor, factors, n, method, num_threads, timers, kwargs)
        with tracer.span(
            f"mttkrp.{method}", mode=n, shape=list(tensor.shape),
            autotuned=autotuned,
        ) as span:
            # Each kernel attaches its own analytic flop/byte counters on
            # entry (record_mttkrp_cost) — they accumulate on this open
            # span; the dimtree path's phases carry theirs on the nested
            # partial/node spans.
            out = _run(tensor, factors, n, method, num_threads, timers, kwargs)
            span.args["rank"] = int(out.shape[1])
            return out


def _run(tensor, factors, n, method, num_threads, timers, kwargs):
    if method == "onestep":
        return mttkrp_onestep(
            tensor, factors, n, num_threads=num_threads, timers=timers, **kwargs
        )
    if method == "onestep-seq":
        return mttkrp_onestep_sequential(
            tensor, factors, n, timers=timers, **kwargs
        )
    if method == "twostep":
        return mttkrp_twostep(
            tensor, factors, n, num_threads=num_threads, timers=timers, **kwargs
        )
    if method == "blocked":
        return mttkrp_blocked(
            tensor, factors, n, num_threads=num_threads, timers=timers, **kwargs
        )
    if method == "dimtree":
        return mttkrp_dimtree(
            tensor, factors, n, num_threads=num_threads, timers=timers, **kwargs
        )
    assert method == "baseline"
    return mttkrp_baseline(
        tensor, factors, n, num_threads=num_threads, timers=timers, **kwargs
    )
