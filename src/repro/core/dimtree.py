"""All-modes MTTKRP with cross-mode reuse (dimension tree).

The paper's conclusion names this as the natural next step: "implement the
algorithm proposed by Phan et al. [19, Section III.C] for avoiding
recomputation across MTTKRPs of different modes ... we could expect a
further reduction in per-iteration CP-ALS time of around 50% in the 3D
case and 2x in the 4D case (and higher for larger N)."

The idea: one ALS iteration needs the MTTKRP for *every* mode, and the
dominant cost of each is a partial contraction over roughly half the
tensor.  Split the modes into a left half ``L = {0..m-1}`` and right half
``R = {m..N-1}``:

* ``T_L = X_(0:m-1) . K_R`` contracts all right modes — **one** BLAS GEMM
  (exactly the right-first partial MTTKRP of Algorithm 4).  Every left
  mode's MTTKRP is then a cheap column-wise contraction of ``T_L`` over
  the *other* left modes.
* symmetrically, ``T_R = X_(0:m-1)^T . K_L`` contracts all left modes; it
  serves every right mode.

One iteration therefore does 2 large GEMMs instead of ``N`` — the
predicted ~``N/2``-fold reduction of the dominant term.

ALS update-order correctness: ``T_L`` depends only on the *right* factors,
so the left modes can be updated in sequence against a fixed ``T_L``
(each second-level contraction reads the current — possibly just updated —
left factors).  ``T_R`` is then computed from the *updated* left factors
before the right half proceeds.  The iterates are bitwise the mathematics
of standard CP-ALS, which the tests verify trajectory-for-trajectory.

Execution (this module's second generation):

* the first level (:func:`left_partial`/:func:`right_partial`) computes
  the partial KRP with :func:`~repro.core.krp_parallel.khatri_rao_parallel`
  on the executor backend and GEMMs into a preallocated node buffer via
  ``out=``;
* the second level (:func:`node_mttkrp`) is **batched**: the node is
  viewed as a ``(C, DL, d_keep, DR)`` stack of per-rank-column slabs (one
  zero-copy ``reshape``+``transpose`` of the natural layout) and both
  contractions run as batched BLAS calls over *all* rank columns at once,
  parallelized with an executor ``parallel_for`` over contiguous block
  ranges of the contracted axis into per-worker private outputs plus a
  tree ``reduce`` — the same pattern as
  :func:`~repro.core.mttkrp_onestep.mttkrp_onestep`;
* all scratch (KRP panels, node buffers, Kronecker panels, private
  outputs) comes from a :class:`~repro.parallel.workspace.Workspace`, so a
  caller that reuses one across iterations (as ``cp_als`` does) performs
  zero per-iteration allocations after warm-up, and on the process backend
  every operand already lives in shared memory (zero marshalling copies
  per region).

The pre-batching implementation is kept as
:func:`node_mttkrp_columnwise` (one kron+GEMV chain per rank column):
it is the readable reference the batched kernel is tested bit-for-bit
against, and the baseline the benchmarks measure the rewrite's speedup
from.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.krp_parallel import khatri_rao_parallel
from repro.obs import get_tracer
from repro.parallel.backend import Executor, get_executor
from repro.parallel.blas import blas_threads
from repro.parallel.config import resolve_threads
from repro.parallel.workspace import Workspace
from repro.tensor.dense import DenseTensor
from repro.util import prod
from repro.util.timing import NULL_TIMER, PhaseTimer, wall_time as _clock
from repro.util.validation import check_factor_matrices

__all__ = [
    "left_partial",
    "right_partial",
    "node_mttkrp",
    "node_mttkrp_columnwise",
    "mttkrp_dimtree",
    "split_point",
]


def mttkrp_dimtree(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    executor: "Executor | None" = None,
    workspace: "Workspace | None" = None,
    slot: str | None = None,
) -> np.ndarray:
    """Single-mode MTTKRP through the dimension-tree node path.

    Computes the half-tensor partial contraction that covers mode ``n``
    (:func:`left_partial` or :func:`right_partial`) and finishes with one
    :func:`node_mttkrp`.  In CP-ALS the partial is shared across all
    modes of its half (``mode_strategy="dimtree"``); as a *single-mode*
    kernel the partial is paid in full, so this path wins only where the
    node contraction is disproportionately cheap — which is exactly the
    kind of machine/shape-dependent call the autotuner
    (:mod:`repro.tune`) measures instead of guessing.

    ``workspace``/``slot`` follow :func:`node_mttkrp`: with a reused
    workspace, repeated calls on equal shapes allocate nothing after the
    first.  The returned array is a workspace buffer when a workspace is
    passed (valid until the next same-slot call), a fresh array otherwise.
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    N = tensor.ndim
    check_factor_matrices(list(factors), tensor.shape)
    if not -N <= n < N:
        raise ValueError(f"mode {n} out of range for order {N}")
    n = n % N
    m = split_point(N)
    if slot is None:
        slot = f"dimtree.mode[{n}]"
    if n < m:
        node = left_partial(
            tensor, factors, m, num_threads=num_threads, timers=timers,
            executor=executor, workspace=workspace,
        )
        return node_mttkrp(
            node, factors[:m], keep=n, num_threads=num_threads,
            timers=timers, executor=executor, workspace=workspace,
            slot=slot,
        )
    node = right_partial(
        tensor, factors, m, num_threads=num_threads, timers=timers,
        executor=executor, workspace=workspace,
    )
    return node_mttkrp(
        node, factors[m:], keep=n - m, num_threads=num_threads,
        timers=timers, executor=executor, workspace=workspace,
        slot=slot,
    )


def split_point(N: int) -> int:
    """Mode count of the left half (``ceil(N/2)``, at least 1, at most N-1).

    Both halves' partial contractions cost the same ``2*I*C`` flops, so
    the split only balances the *second*-level contraction sizes; the
    ceiling split keeps the left node no larger than the right.
    """
    if N < 2:
        raise ValueError(f"need at least 2 modes, got {N}")
    return max(min((N + 1) // 2, N - 1), 1)


def _partial_setup(tensor, factors, m, timers, workspace, executor, num_threads):
    N = tensor.ndim
    C = check_factor_matrices(list(factors), tensor.shape)
    if not 1 <= m <= N - 1:
        raise ValueError(f"split m={m} out of range for order {N}")
    t = timers if timers is not None else NULL_TIMER
    T = resolve_threads(num_threads)
    ex = executor
    if ex is None and T > 1:
        ex = get_executor(T)
    ws = workspace if workspace is not None else Workspace(ex)
    return N, C, t, T, ex, ws


def left_partial(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    m: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    executor: Executor | None = None,
    workspace: Workspace | None = None,
) -> DenseTensor:
    """``T_L``: contract modes ``m..N-1`` against the right partial KRP.

    Returns the order-``m+1`` node of shape ``(I_0, ..., I_{m-1}, C)`` in
    natural layout.  The KRP runs row-parallel on the executor
    (:func:`~repro.core.krp_parallel.khatri_rao_parallel`); the node is
    one GEMM on the column-major ``X_(0:m-1)`` view (Figure 3a of the
    paper, with ``n = m-1``) written ``out=`` into a workspace buffer.

    With a caller-provided ``workspace`` the KRP panel and node buffer are
    reused across calls: after the first call this function allocates
    nothing.  The returned node's flat data *is* the workspace buffer —
    valid until the next ``left_partial`` call on the same workspace.
    """
    N, C, t, T, ex, ws = _partial_setup(
        tensor, factors, m, timers, workspace, executor, num_threads
    )
    tr = get_tracer()
    ops = [np.asarray(factors[k]) for k in range(N - 1, m - 1, -1)]
    rows = prod(tensor.shape[m:])
    dt_k = np.result_type(*ops)
    with t.phase("lr_krp"):
        KR = ws.buffer("dimtree.left.krp", (rows, C), dt_k)
        khatri_rao_parallel(ops, num_threads=T, out=KR, executor=ex)
    size_l = prod(tensor.shape[:m])
    dt = np.result_type(dt_k, tensor.dtype)
    node = ws.buffer("dimtree.left.node", (C * size_l,), dt)
    node2d = node.reshape(C, size_l)
    with blas_threads(T), t.phase("gemm"), tr.span("gemm", side="left"):
        # Transposed GEMM so the C-contiguous output is the natural layout
        # of the node (same trick as mttkrp_twostep).
        np.matmul(KR.T, tensor.unfold_front(m - 1).T, out=node2d)
        tr.add_counter("gemm_calls", 1)
    return DenseTensor(node, tensor.shape[:m] + (C,))


def right_partial(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    m: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    executor: Executor | None = None,
    workspace: Workspace | None = None,
) -> DenseTensor:
    """``T_R``: contract modes ``0..m-1`` against the left partial KRP.

    Returns the node of shape ``(I_m, ..., I_{N-1}, C)`` in natural
    layout.  One GEMM on the row-major ``X_(0:m-1)^T`` view (Figure 3c);
    KRP/workspace semantics as in :func:`left_partial`.
    """
    N, C, t, T, ex, ws = _partial_setup(
        tensor, factors, m, timers, workspace, executor, num_threads
    )
    tr = get_tracer()
    ops = [np.asarray(factors[k]) for k in range(m - 1, -1, -1)]
    rows = prod(tensor.shape[:m])
    dt_k = np.result_type(*ops)
    with t.phase("lr_krp"):
        KL = ws.buffer("dimtree.right.krp", (rows, C), dt_k)
        khatri_rao_parallel(ops, num_threads=T, out=KL, executor=ex)
    size_r = prod(tensor.shape[m:])
    dt = np.result_type(dt_k, tensor.dtype)
    node = ws.buffer("dimtree.right.node", (C * size_r,), dt)
    node2d = node.reshape(C, size_r)
    with blas_threads(T), t.phase("gemm"), tr.span("gemm", side="right"):
        np.matmul(KL.T, tensor.unfold_front(m - 1), out=node2d)
        tr.add_counter("gemm_calls", 1)
    return DenseTensor(node, tensor.shape[m:] + (C,))


# --------------------------------------------------------------------- #
# Second level: node MTTKRP                                             #
# --------------------------------------------------------------------- #


def _validate_node(node, factors, keep):
    k = node.ndim - 1
    C = node.shape[-1]
    if len(factors) != k:
        raise ValueError(
            f"expected {k} factor matrices for the node's tensor modes, "
            f"got {len(factors)}"
        )
    for j, f in enumerate(factors):
        f = np.asarray(f)
        if f.shape != (node.shape[j], C):
            raise ValueError(
                f"factors[{j}] has shape {f.shape}, expected "
                f"{(node.shape[j], C)}"
            )
    if not 0 <= keep < k:
        raise ValueError(f"keep={keep} out of range for {k} node modes")
    return k, C


def _kron_panel_T(mats, C, ws, name):
    """Transposed Kronecker panel: row ``c`` is the natural-layout
    Kronecker product of the ``c``-th columns (first mode fastest).

    Built as a chain of broadcast multiplies entirely inside workspace
    buffers; each row is C-contiguous and bit-identical to the
    ``np.kron`` chain of :func:`_kron_column` on a contiguous start
    column (same association order, same operand order).
    """
    dt = np.result_type(*mats)
    PT = ws.buffer(f"{name}.0", (C, mats[0].shape[0]), dt)
    np.copyto(PT, mats[0].T)
    for i, mat in enumerate(mats[1:]):
        J, D = mat.shape[0], PT.shape[1]
        new = ws.buffer(f"{name}.{i + 1}", (C, J * D), dt)
        new3 = new.reshape(C, J, D)
        np.multiply(mat.T[:, :, None], PT[:, None, :], out=new3)
        PT = new
    return PT


def _k_node_right(
    worker, start, stop, node_buf, C, DL, d_keep, DR, KRT, priv, gemm_seconds
) -> None:
    """Region kernel: right contraction of DR-blocks ``[start, stop)``.

    The node's flat natural-layout buffer, viewed C-order as
    ``(C, DR, d_keep, DL)`` and transposed to ``(C, DL, d_keep, DR)``, is
    a stack of per-rank-column slabs with exactly the strides of the
    column-wise implementation's ``order="F"`` slab view.  Each worker
    contracts its contiguous DR range against the matching rows of the
    Kronecker panel into its private ``(C, DL, d_keep, 1)`` slab — one
    batched BLAS call over all rank columns; a tree reduce sums the
    partial contractions (the contracted sum is linear in the DR blocks).
    """
    if start >= stop:
        return
    t0 = _clock()
    S = node_buf.reshape((C, DR, d_keep, DL)).transpose(0, 3, 2, 1)
    np.matmul(
        S[..., start:stop], KRT[:, None, start:stop, None], out=priv[worker]
    )
    t1 = _clock()
    gemm_seconds[worker] = t1 - t0
    tr = get_tracer()
    if tr.enabled:
        tr.record("node_gemm", t0, t1, worker=worker)


def _k_node_left(
    worker, start, stop, node_buf, C, DL, d_keep, KLT, priv, gemm_seconds
) -> None:
    """Region kernel: left contraction of DL-blocks ``[start, stop)``.

    Used when the node has no right modes (``keep`` is the last node
    mode), where the left contraction is the dominant cost.  Each worker
    contracts its contiguous DL range into a private ``(C, 1, d_keep)``
    slab; the reduce sums the partials.
    """
    if start >= stop:
        return
    t0 = _clock()
    S = node_buf.reshape((C, 1, d_keep, DL)).transpose(0, 3, 2, 1)[..., 0]
    np.matmul(
        KLT[:, None, start:stop], S[:, start:stop, :], out=priv[worker]
    )
    t1 = _clock()
    gemm_seconds[worker] = t1 - t0
    tr = get_tracer()
    if tr.enabled:
        tr.record("node_gemm", t0, t1, worker=worker)


def node_mttkrp(
    node: DenseTensor,
    factors: Sequence[np.ndarray],
    keep: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
    executor: Executor | None = None,
    workspace: Workspace | None = None,
    slot: str = "node",
) -> np.ndarray:
    """MTTKRP of a partial node for one of its tensor modes (batched).

    ``node`` has shape ``(d_0, ..., d_{k-1}, C)`` (trailing rank mode);
    ``factors`` are the ``d_j x C`` factor matrices of its ``k`` tensor
    modes.  Computes, for each rank column ``c``,

        M(i, c) = sum_{others} node(..., c) * prod_{j != keep} U_j(i_j, c)

    as two batched contractions over all rank columns at once: the slab
    stack ``(C, DL, d_keep, DR)`` is contracted against the right
    Kronecker panel (parallelized over DR blocks with private outputs and
    a tree reduce), then the left Kronecker panel contracts the ``DL``
    axis.  Results are bit-identical to
    :func:`node_mttkrp_columnwise` when run serially
    (``num_threads=1``); the parallel reduction changes summation order
    at the usual ulp level but is bit-identical across backends for a
    fixed thread count.

    Parameters
    ----------
    node, factors, keep:
        As above.
    num_threads:
        Worker count for the block-parallel contraction; defaults to the
        package-wide setting.
    timers:
        Optional phase timer.  Phases: ``"node_krp"`` (Kronecker panels),
        ``"node_gemm"`` (batched contractions), ``"node_reduce"``.
    executor:
        Explicit executor; defaults to the shared executor for the
        configured backend when ``num_threads > 1``.
    workspace:
        :class:`~repro.parallel.workspace.Workspace` for all scratch; a
        caller looping over iterations passes one to make every call
        after warm-up allocation-free.  The returned array is a workspace
        buffer, valid until the next same-``slot`` call.
    slot:
        Workspace key namespace.  Callers issuing node MTTKRPs of
        different shapes in one loop (``cp_als`` does: one per mode) use
        distinct slots so each mode's buffers stay cached across
        iterations.

    Returns
    -------
    numpy.ndarray
        The ``d_keep x C`` MTTKRP output.
    """
    t = timers if timers is not None else NULL_TIMER
    tr = get_tracer()
    k, C = _validate_node(node, factors, keep)
    T = resolve_threads(num_threads)
    ex = executor
    if ex is None and T > 1:
        ex = get_executor(T)
    ws = workspace if workspace is not None else Workspace(ex)

    dims = node.shape[:-1]
    d_keep = dims[keep]
    DL = prod(dims[:keep])
    DR = prod(dims[keep + 1 :])
    left = [np.asarray(factors[j]) for j in range(keep)]
    right = [np.asarray(factors[j]) for j in range(keep + 1, k)]

    with tr.span(
        "node_mttkrp", keep=keep, rank=C, shape=list(node.shape)
    ) as sp:
        with t.phase("node_krp"):
            KRT = _kron_panel_T(right, C, ws, f"{slot}.krpT_right") if right else None
            KLT = _kron_panel_T(left, C, ws, f"{slot}.krpT_left") if left else None
        buf = node.data
        dt_r = np.result_type(node.dtype, KRT.dtype) if right else node.dtype
        dt_o = np.result_type(dt_r, KLT.dtype) if left else dt_r
        if tr.enabled:
            sp.add("flops", 2.0 * C * DL * d_keep * (DR if right else 0)
                   + (2.0 * C * DL * d_keep if left else 0.0))

        use_parallel = T > 1 and ex is not None and (right or left)
        if use_parallel and right:
            priv = ws.private(f"{slot}.priv", T, (C, DL, d_keep, 1), dt_r)
            clk = ws.private(f"{slot}.clk", T, (), np.float64)
            ex.parallel_for(
                _k_node_right,
                DR,
                args=(buf, C, DL, d_keep, DR, KRT, priv, clk),
                label="dimtree.node",
            )
            t.add("node_gemm", float(clk.max()))
            tr.add_counter("gemm_calls", T)
            with t.phase("node_reduce"), tr.span("node_reduce"):
                tmp = ex.reduce(priv, label="dimtree.node.reduce")[..., 0]
        elif use_parallel:  # right empty, left present: contract DL blocks
            priv = ws.private(f"{slot}.priv", T, (C, 1, d_keep), dt_o)
            clk = ws.private(f"{slot}.clk", T, (), np.float64)
            ex.parallel_for(
                _k_node_left,
                DL,
                args=(buf, C, DL, d_keep, KLT, priv, clk),
                label="dimtree.node",
            )
            t.add("node_gemm", float(clk.max()))
            tr.add_counter("gemm_calls", T)
            with t.phase("node_reduce"), tr.span("node_reduce"):
                out_c = ex.reduce(priv, label="dimtree.node.reduce")[:, 0, :]
            out = ws.buffer(f"{slot}.out", (d_keep, C), node.dtype)
            np.copyto(out, out_c.T)
            return out
        elif right:
            S = buf.reshape((C, DR, d_keep, DL)).transpose(0, 3, 2, 1)
            tmp4 = ws.buffer(f"{slot}.tmp", (C, DL, d_keep, 1), dt_r)
            with t.phase("node_gemm"):
                np.matmul(S, KRT[:, None, :, None], out=tmp4)
                tr.add_counter("gemm_calls", 1)
            tmp = tmp4[..., 0]
        else:
            tmp = buf.reshape((C, DR, d_keep, DL)).transpose(0, 3, 2, 1)[..., 0]

        if left:
            oc = ws.buffer(f"{slot}.oc", (C, 1, d_keep), dt_o)
            with t.phase("node_gemm"):
                np.matmul(KLT[:, None, :], tmp, out=oc)
                tr.add_counter("gemm_calls", 1)
            out_c = oc[:, 0, :]
        else:
            out_c = tmp[:, 0, :]
        out = ws.buffer(f"{slot}.out", (d_keep, C), node.dtype)
        np.copyto(out, out_c.T)
        return out


def node_mttkrp_columnwise(
    node: DenseTensor,
    factors: Sequence[np.ndarray],
    keep: int,
    timers: PhaseTimer | None = None,
) -> np.ndarray:
    """Reference node MTTKRP: one kron+GEMV chain per rank column.

    The pre-batching implementation, kept as the readable specification
    of the second-level contraction and the baseline the benchmarks
    measure :func:`node_mttkrp` against.  For each rank column ``c``,
    evaluates (left-Kronecker vector) x (matricized slab) x
    (right-Kronecker vector) on zero-copy views.

    :func:`node_mttkrp` run serially is bit-identical to this function:
    the batched contraction issues the same BLAS shapes per rank column
    on identically-strided slab views and contiguous Kronecker
    rows/columns.

    Returns the ``d_keep x C`` MTTKRP output.
    """
    t = timers if timers is not None else NULL_TIMER
    k, C = _validate_node(node, factors, keep)
    dims = node.shape[:-1]
    d_keep = dims[keep]
    DL = prod(dims[:keep])
    DR = prod(dims[keep + 1 :])
    flat = node.unfold_front(node.ndim - 2)  # (prod dims, C) column-major
    out = np.empty((d_keep, C), dtype=node.dtype, order="C")
    left = [np.asarray(factors[j]) for j in range(keep)]
    right = [np.asarray(factors[j]) for j in range(keep + 1, k)]
    with t.phase("gemv"):
        for c in range(C):
            slab = flat[:, c].reshape((DL, d_keep, DR), order="F")
            tmp = slab  # (DL, d_keep, DR)
            if right:
                colR = _kron_column(right, c)
                tmp = tmp @ colR  # (DL, d_keep)
            else:
                tmp = tmp[:, :, 0]
            if left:
                colL = _kron_column(left, c)
                out[:, c] = colL @ tmp
            else:
                out[:, c] = tmp[0]
    return out


def _kron_column(mats: list[np.ndarray], c: int) -> np.ndarray:
    """Column ``c`` of the natural-layout Kronecker product of factor
    columns (first listed mode's index fastest).

    The start column is densified so the single-matrix case hands BLAS a
    contiguous vector exactly like the multi-matrix ``np.kron`` outputs —
    keeping every GEMV's operand layout (and hence its bits) uniform, and
    matching the batched panel rows of :func:`_kron_panel_T`.
    """
    col = np.ascontiguousarray(mats[0][:, c])
    for m in mats[1:]:
        col = np.kron(m[:, c], col)
    return col
