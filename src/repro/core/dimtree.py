"""All-modes MTTKRP with cross-mode reuse (dimension tree).

The paper's conclusion names this as the natural next step: "implement the
algorithm proposed by Phan et al. [19, Section III.C] for avoiding
recomputation across MTTKRPs of different modes ... we could expect a
further reduction in per-iteration CP-ALS time of around 50% in the 3D
case and 2x in the 4D case (and higher for larger N)."

The idea: one ALS iteration needs the MTTKRP for *every* mode, and the
dominant cost of each is a partial contraction over roughly half the
tensor.  Split the modes into a left half ``L = {0..m-1}`` and right half
``R = {m..N-1}``:

* ``T_L = X_(0:m-1) . K_R`` contracts all right modes — **one** BLAS GEMM
  (exactly the right-first partial MTTKRP of Algorithm 4).  Every left
  mode's MTTKRP is then a cheap column-wise contraction of ``T_L`` over
  the *other* left modes.
* symmetrically, ``T_R = X_(0:m-1)^T . K_L`` contracts all left modes; it
  serves every right mode.

One iteration therefore does 2 large GEMMs instead of ``N`` — the
predicted ~``N/2``-fold reduction of the dominant term.

ALS update-order correctness: ``T_L`` depends only on the *right* factors,
so the left modes can be updated in sequence against a fixed ``T_L``
(each column-wise contraction reads the current — possibly just updated —
left factors).  ``T_R`` is then computed from the *updated* left factors
before the right half proceeds.  The iterates are bitwise the mathematics
of standard CP-ALS, which the tests verify trajectory-for-trajectory.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.krp import khatri_rao
from repro.parallel.blas import blas_threads
from repro.parallel.config import resolve_threads
from repro.tensor.dense import DenseTensor
from repro.util import prod
from repro.util.timing import NULL_TIMER, PhaseTimer
from repro.util.validation import check_factor_matrices

__all__ = ["left_partial", "right_partial", "node_mttkrp", "split_point"]


def split_point(N: int) -> int:
    """Mode count of the left half (``ceil(N/2)``, at least 1, at most N-1).

    Both halves' partial contractions cost the same ``2*I*C`` flops, so
    the split only balances the *second*-level contraction sizes; the
    ceiling split keeps the left node no larger than the right.
    """
    if N < 2:
        raise ValueError(f"need at least 2 modes, got {N}")
    return max(min((N + 1) // 2, N - 1), 1)


def left_partial(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    m: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
) -> DenseTensor:
    """``T_L``: contract modes ``m..N-1`` against the right partial KRP.

    Returns the order-``m+1`` node of shape ``(I_0, ..., I_{m-1}, C)`` in
    natural layout.  One GEMM on the column-major ``X_(0:m-1)`` view
    (Figure 3a of the paper, with ``n = m-1``).
    """
    N = tensor.ndim
    C = check_factor_matrices(list(factors), tensor.shape)
    if not 1 <= m <= N - 1:
        raise ValueError(f"split m={m} out of range for order {N}")
    t = timers if timers is not None else NULL_TIMER
    T = resolve_threads(num_threads)
    with t.phase("lr_krp"):
        KR = khatri_rao([np.asarray(factors[k]) for k in range(N - 1, m - 1, -1)])
    with blas_threads(T), t.phase("gemm"):
        # Transposed GEMM so the C-contiguous output is the natural layout
        # of the node (same trick as mttkrp_twostep).
        outT = KR.T @ tensor.unfold_front(m - 1).T
    return DenseTensor(outT.ravel(), tensor.shape[:m] + (C,))


def right_partial(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    m: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
) -> DenseTensor:
    """``T_R``: contract modes ``0..m-1`` against the left partial KRP.

    Returns the node of shape ``(I_m, ..., I_{N-1}, C)`` in natural
    layout.  One GEMM on the row-major ``X_(0:m-1)^T`` view (Figure 3c).
    """
    N = tensor.ndim
    C = check_factor_matrices(list(factors), tensor.shape)
    if not 1 <= m <= N - 1:
        raise ValueError(f"split m={m} out of range for order {N}")
    t = timers if timers is not None else NULL_TIMER
    T = resolve_threads(num_threads)
    with t.phase("lr_krp"):
        KL = khatri_rao([np.asarray(factors[k]) for k in range(m - 1, -1, -1)])
    with blas_threads(T), t.phase("gemm"):
        outT = KL.T @ tensor.unfold_front(m - 1)
    return DenseTensor(outT.ravel(), tensor.shape[m:] + (C,))


def node_mttkrp(
    node: DenseTensor,
    factors: Sequence[np.ndarray],
    keep: int,
    timers: PhaseTimer | None = None,
) -> np.ndarray:
    """MTTKRP of a partial node for one of its tensor modes.

    ``node`` has shape ``(d_0, ..., d_{k-1}, C)`` (trailing rank mode);
    ``factors`` are the ``d_j x C`` factor matrices of its ``k`` tensor
    modes.  Computes, for each rank column ``c``,

        M(i, c) = sum_{others} node(..., c) * prod_{j != keep} U_j(i_j, c)

    — i.e. a column-wise MTTKRP, one small contraction per rank column,
    each evaluated as (left-Kronecker vector) x (matricized slab) x
    (right-Kronecker vector) on zero-copy views.

    Returns the ``d_keep x C`` MTTKRP output.
    """
    t = timers if timers is not None else NULL_TIMER
    k = node.ndim - 1
    C = node.shape[-1]
    if len(factors) != k:
        raise ValueError(
            f"expected {k} factor matrices for the node's tensor modes, "
            f"got {len(factors)}"
        )
    for j, f in enumerate(factors):
        f = np.asarray(f)
        if f.shape != (node.shape[j], C):
            raise ValueError(
                f"factors[{j}] has shape {f.shape}, expected "
                f"{(node.shape[j], C)}"
            )
    if not 0 <= keep < k:
        raise ValueError(f"keep={keep} out of range for {k} node modes")

    dims = node.shape[:-1]
    d_keep = dims[keep]
    DL = prod(dims[:keep])
    DR = prod(dims[keep + 1 :])
    flat = node.unfold_front(node.ndim - 2)  # (prod dims, C) column-major
    out = np.empty((d_keep, C), dtype=node.dtype, order="C")
    left = [np.asarray(factors[j]) for j in range(keep)]
    right = [np.asarray(factors[j]) for j in range(keep + 1, k)]
    with t.phase("gemv"):
        for c in range(C):
            slab = flat[:, c].reshape((DL, d_keep, DR), order="F")
            tmp = slab  # (DL, d_keep, DR)
            if right:
                colR = _kron_column(right, c)
                tmp = tmp @ colR  # (DL, d_keep)
            else:
                tmp = tmp[:, :, 0]
            if left:
                colL = _kron_column(left, c)
                out[:, c] = colL @ tmp
            else:
                out[:, c] = tmp[0]
    return out


def _kron_column(mats: list[np.ndarray], c: int) -> np.ndarray:
    """Column ``c`` of the natural-layout Kronecker product of factor
    columns (first listed mode's index fastest)."""
    col = mats[0][:, c]
    for m in mats[1:]:
        col = np.kron(m[:, c], col)
    return col
