"""Row-wise Khatri-Rao product with reuse of partial Hadamard products.

This implements Algorithm 1 of the paper.  Given ``Z >= 1`` input matrices
``U_0 (J_0 x C), ..., U_{Z-1} (J_{Z-1} x C)``, the Khatri-Rao product
``K = U_0 (krp) U_1 (krp) ... (krp) U_{Z-1}`` is the ``(prod J_z) x C``
matrix whose row ``j`` is the Hadamard product of one row from each input:

    K(j, :) = U_0(l_0, :) * ... * U_{Z-1}(l_{Z-1}, :),

with ``j = l_0 * J_1 ... J_{Z-1} + ... + l_{Z-2} * J_{Z-1} + l_{Z-1}``
(the **last** input's row index varies fastest, matching the paper's
row-index convention ``j = a*I_B*I_C + b*I_C + c`` for ``A (krp) B (krp) C``).

Naively each output row costs ``Z-1`` Hadamard products; Algorithm 1 stores
the ``Z-2`` partial products of prefixes so the amortized cost is ~one
Hadamard product per row.  Three implementations are provided:

* :func:`khatri_rao` — vectorized reuse schedule (hierarchical expansion:
  each prefix's Hadamard products are computed exactly once).  This is the
  production kernel.
* :func:`khatri_rao_naive` — vectorized *naive* schedule (all ``Z-1``
  Hadamards per row, via row gathers), benchmarked in Figure 4.
* :func:`krp_reference` — a literal transcription of Algorithm 1's
  pseudocode (multi-index + intermediate-product table), used as the test
  oracle and as executable documentation.

:func:`krp_rows` evaluates an arbitrary contiguous row range with the reuse
schedule; it is the building block of the parallel KRP (each thread starts
at its block's first row, Section 4.1.2) and of 1-step MTTKRP's
external-mode scheme (each thread forms only its rows of ``K``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.layout import MultiIndex
from repro.util import prod
from repro.util.validation import check_same_columns

__all__ = [
    "khatri_rao",
    "khatri_rao_naive",
    "krp_rows",
    "krp_rows_naive",
    "krp_row",
    "krp_reference",
]


def _as_matrices(matrices: Sequence[np.ndarray]) -> list[np.ndarray]:
    mats = [np.asarray(m) for m in matrices]
    check_same_columns(mats, "matrices")
    return mats


def khatri_rao(
    matrices: Sequence[np.ndarray], out: np.ndarray | None = None
) -> np.ndarray:
    """Khatri-Rao product of ``Z >= 1`` matrices with the reuse schedule.

    Vectorized equivalent of Algorithm 1: the partial product of the first
    ``z`` inputs is expanded level by level, so the Hadamard product for
    every prefix combination is computed exactly once — the same arithmetic
    as the pseudocode's intermediate-product table ``P``, ordered for
    vectorization.  Total multiply count is

        C * (J_0 J_1 + J_0 J_1 J_2 + ... + J_0 ... J_{Z-1})
        ~= C * prod(J_z)   (one Hadamard per output row),

    versus ``(Z-1) * C * prod(J_z)`` for the naive schedule.

    Parameters
    ----------
    matrices:
        Input matrices, first matrix's row index slowest.
    out:
        Optional preallocated ``(prod J_z, C)`` output (row-major).

    Returns
    -------
    numpy.ndarray
        The ``prod(J_z) x C`` Khatri-Rao product, C-contiguous.
    """
    mats = _as_matrices(matrices)
    C = mats[0].shape[1]
    rows = prod(m.shape[0] for m in mats)
    if out is not None:
        if out.shape != (rows, C):
            raise ValueError(
                f"out has shape {out.shape}, expected {(rows, C)}"
            )
    if len(mats) == 1:
        if out is None:
            return np.ascontiguousarray(mats[0])
        out[...] = mats[0]
        return out
    # Hierarchical expansion.  The final level writes directly into `out`.
    partial = mats[0]
    for m in mats[1:-1]:
        partial = (partial[:, None, :] * m[None, :, :]).reshape(-1, C)
    last = mats[-1]
    if out is None:
        out = np.empty((rows, C), dtype=np.result_type(*mats))
    out3 = out.reshape(partial.shape[0], last.shape[0], C)
    np.multiply(partial[:, None, :], last[None, :, :], out=out3)
    return out


def khatri_rao_naive(
    matrices: Sequence[np.ndarray], out: np.ndarray | None = None
) -> np.ndarray:
    """Khatri-Rao product with the *naive* schedule (no reuse).

    Performs ``Z-1`` Hadamard products for every output row, exactly the
    arithmetic of the "Naive" series in Figure 4: each input matrix is
    expanded (gathered) to full output height and the ``Z`` expanded
    matrices are multiplied elementwise.
    """
    mats = _as_matrices(matrices)
    rows = prod(m.shape[0] for m in mats)
    return krp_rows_naive(mats, 0, rows, out=out)


def krp_rows(
    matrices: Sequence[np.ndarray],
    start: int,
    stop: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Rows ``[start, stop)`` of the Khatri-Rao product, with reuse.

    The core primitive behind the parallel KRP: a thread assigned a
    contiguous row block calls this with its bounds.  The range is split
    into (a) a *head* of rows before the first complete last-matrix panel,
    (b) an aligned *middle* of complete panels, evaluated by recursively
    computing the prefix KRP rows once and broadcasting against the last
    matrix (the reuse schedule), and (c) a *tail* after the last complete
    panel.  Head and tail are at most ``J_{Z-1}-1`` rows each and are
    evaluated directly.

    Parameters
    ----------
    matrices:
        KRP inputs (first matrix's index slowest).
    start, stop:
        Half-open row range, ``0 <= start <= stop <= prod(J_z)``.
    out:
        Optional preallocated ``(stop-start, C)`` row-major output.
    """
    mats = _as_matrices(matrices)
    C = mats[0].shape[1]
    total = prod(m.shape[0] for m in mats)
    start, stop = int(start), int(stop)
    if not 0 <= start <= stop <= total:
        raise ValueError(
            f"row range [{start}, {stop}) invalid for {total} total rows"
        )
    n = stop - start
    if out is None:
        out = np.empty((n, C), dtype=np.result_type(*mats))
    elif out.shape != (n, C):
        raise ValueError(f"out has shape {out.shape}, expected {(n, C)}")
    if n == 0:
        return out
    if len(mats) == 1:
        out[...] = mats[0][start:stop]
        return out

    J_last = mats[-1].shape[0]
    if start // J_last == (stop - 1) // J_last:
        # Range lies within a single panel: one prefix row, broadcast.
        prefix_row = krp_row(mats[:-1], start // J_last)
        lo = start % J_last
        np.multiply(
            prefix_row[None, :], mats[-1][lo : lo + n], out=out
        )
        return out

    # The range crosses at least one panel boundary, so the head/middle/tail
    # decomposition below is well defined (head and tail are partial panels,
    # the middle holds every complete panel, any part may be empty).
    first_panel = -(-start // J_last)  # first complete panel index
    last_panel = stop // J_last  # one past the last complete panel
    pos = 0
    head = first_panel * J_last - start
    if head > 0:
        prefix_row = krp_row(mats[:-1], start // J_last)
        np.multiply(
            prefix_row[None, :],
            mats[-1][start % J_last :],
            out=out[:head],
        )
        pos = head
    # Aligned middle: complete panels [first_panel, last_panel).
    npanels = last_panel - first_panel
    if npanels > 0:
        prefix = krp_rows(mats[:-1], first_panel, last_panel)
        mid = out[pos : pos + npanels * J_last].reshape(npanels, J_last, C)
        np.multiply(prefix[:, None, :], mats[-1][None, :, :], out=mid)
        pos += npanels * J_last
    tail = stop - last_panel * J_last
    if tail > 0:
        prefix_row = krp_row(mats[:-1], last_panel)
        np.multiply(
            prefix_row[None, :], mats[-1][:tail], out=out[pos:]
        )
    return out


def krp_rows_naive(
    matrices: Sequence[np.ndarray],
    start: int,
    stop: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Rows ``[start, stop)`` with the naive schedule (``Z-1`` Hadamards/row)."""
    mats = _as_matrices(matrices)
    C = mats[0].shape[1]
    total = prod(m.shape[0] for m in mats)
    start, stop = int(start), int(stop)
    if not 0 <= start <= stop <= total:
        raise ValueError(
            f"row range [{start}, {stop}) invalid for {total} total rows"
        )
    n = stop - start
    if len(mats) <= 2:
        # "For Z = 2 there is no difference in algorithm" (Section 5.2):
        # with at most one Hadamard per row there is nothing to re-use, so
        # the naive schedule is the reuse schedule.
        return krp_rows(mats, start, stop, out=out)
    if out is None:
        out = np.empty((n, C), dtype=np.result_type(*mats))
    elif out.shape != (n, C):
        raise ValueError(f"out has shape {out.shape}, expected {(n, C)}")
    if n == 0:
        return out
    # One pass per input matrix: broadcast the matrix's periodic row
    # pattern into the output in place — exactly (Z-1) Hadamard products
    # per output row, no partial-product reuse.  (This is the fair
    # vectorized analog of the naive C row loop; a gather-based expansion
    # would charge Python-only index overheads the paper's C
    # implementation does not pay.)  Within level z, absolute row r reads
    # input row ``(r // inner_z) % J_z``; for an arbitrary row range the
    # pattern decomposes into at most five broadcastable segments per
    # level (partial leading inner-block, partial leading cycle, whole
    # cycles, partial trailing cycle, partial trailing inner-block).
    inner = total
    first = True
    for m in mats:
        inner //= m.shape[0]
        _naive_apply_level(out, m, start, stop, inner, first)
        first = False
    return out


def _naive_apply_level(
    out: np.ndarray,
    m: np.ndarray,
    start: int,
    stop: int,
    inner: int,
    first: bool,
) -> None:
    """Multiply (or copy, for the first level) one input matrix's periodic
    row pattern into ``out``, which holds absolute rows ``[start, stop)``.

    Row ``r`` uses ``m[(r // inner) % J]``.
    """
    J = m.shape[0]
    C = m.shape[1]

    def apply(r0: int, r1: int, src: np.ndarray) -> None:
        """Apply ``src`` (broadcastable to ``(r1-r0, C)``) to that slice."""
        view = out[r0 - start : r1 - start]
        if first:
            view[...] = np.broadcast_to(src, view.shape)
        else:
            np.multiply(view, np.broadcast_to(src, view.shape), out=view)

    pos = start
    # 1. Partial leading inner-block: rows up to the next inner boundary
    #    share one input row.
    if pos % inner:
        r1 = min((pos // inner + 1) * inner, stop)
        apply(pos, r1, m[(pos // inner) % J][None, :])
        pos = r1
    if pos >= stop:
        return
    # Body: whole inner-blocks [b0, b1), then a trailing partial block.
    b0 = pos // inner
    b1 = stop // inner
    if b0 < b1:
        # 2. Partial leading cycle: blocks up to the next multiple of J use
        #    a contiguous slice of input rows.
        phase = b0 % J
        if phase:
            k = min(b1 - b0, J - phase)
            r1 = (b0 + k) * inner
            view_src = m[phase : phase + k][:, None, :]  # (k, 1, C)
            view = out[pos - start : r1 - start].reshape(k, inner, C)
            if first:
                view[...] = view_src
            else:
                np.multiply(view, view_src, out=view)
            pos, b0 = r1, b0 + k
        # 3. Whole cycles of J blocks.
        cycles = (b1 - b0) // J
        if cycles:
            r1 = (b0 + cycles * J) * inner
            view = out[pos - start : r1 - start].reshape(cycles, J, inner, C)
            src = m[None, :, None, :]
            if first:
                view[...] = src
            else:
                np.multiply(view, src, out=view)
            pos, b0 = r1, b0 + cycles * J
        # 4. Partial trailing cycle.
        if b0 < b1:
            k = b1 - b0
            r1 = b1 * inner
            view_src = m[:k][:, None, :]
            view = out[pos - start : r1 - start].reshape(k, inner, C)
            if first:
                view[...] = view_src
            else:
                np.multiply(view, view_src, out=view)
            pos = r1
    # 5. Partial trailing inner-block.
    if pos < stop:
        apply(pos, stop, m[(pos // inner) % J][None, :])


def krp_row(matrices: Sequence[np.ndarray], j: int) -> np.ndarray:
    """Single row ``j`` of the Khatri-Rao product (freshly allocated)."""
    mats = _as_matrices(matrices)
    total = prod(m.shape[0] for m in mats)
    j = int(j)
    if not 0 <= j < total:
        raise ValueError(f"row {j} out of range [0, {total})")
    # Peel the per-matrix indices (last input fastest), then multiply
    # left-to-right — the same association order as the hierarchical
    # expansion in khatri_rao/krp_rows, so every code path produces
    # bit-identical floating-point results.
    digits = []
    for m in reversed(mats):
        digits.append(j % m.shape[0])
        j //= m.shape[0]
    digits.reverse()
    row = mats[0][digits[0]].copy()
    for m, d in zip(mats[1:], digits[1:]):
        row *= m[d]
    return row


def krp_reference(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Literal transcription of Algorithm 1 (test oracle; pure Python loop).

    Computes the output one row at a time, maintaining the multi-index ``l``
    and the ``(Z-2) x C`` intermediate-product table ``P`` exactly as the
    pseudocode does: ``P(z, :)`` holds the Hadamard product of rows
    ``U_0(l_0), ..., U_{z+1}(l_{z+1})`` and is recomputed only from the
    smallest changed digit upward after each increment.

    Only suitable for small inputs; quadratically slower than
    :func:`khatri_rao` in wall-clock terms but identical in arithmetic.
    """
    mats = _as_matrices(matrices)
    Z = len(mats)
    C = mats[0].shape[1]
    rows = prod(m.shape[0] for m in mats)
    K = np.empty((rows, C), dtype=np.result_type(*mats))
    if Z == 1:
        K[...] = mats[0]
        return K
    if Z == 2:
        idx = MultiIndex([m.shape[0] for m in mats])
        for j in range(rows):
            K[j] = mats[0][idx.digits[0]] * mats[1][idx.digits[1]]
            idx.increment()
        return K

    idx = MultiIndex([m.shape[0] for m in mats])
    P = np.empty((Z - 2, C), dtype=K.dtype)

    def rebuild(from_digit: int) -> None:
        # P[z] = U_0(l_0) * ... * U_{z+1}(l_{z+1}); rebuild stale prefixes.
        z0 = max(from_digit - 1, 0)
        for z in range(z0, Z - 2):
            if z == 0:
                P[0] = mats[0][idx.digits[0]] * mats[1][idx.digits[1]]
            else:
                P[z] = P[z - 1] * mats[z + 1][idx.digits[z + 1]]

    rebuild(0)
    for j in range(rows):
        K[j] = P[Z - 3] * mats[Z - 1][idx.digits[Z - 1]]
        changed = idx.increment()
        if changed < Z - 1:  # a non-final digit rolled: refresh P
            rebuild(changed)
    return K
