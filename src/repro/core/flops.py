"""Exact arithmetic and traffic counts for every algorithm phase.

These counts drive two things:

* the **machine model** (:mod:`repro.machine`), which turns them into
  predicted times for the paper's 12-core machine (and any other), and
* the benchmark harness, which reports achieved GFLOP/s and GB/s so the
  measured results are interpretable (e.g. Figure 4's claim that KRP runs
  at STREAM bandwidth).

Conventions: one fused multiply-add counts as 2 flops (matching how GEMM
peak rates are quoted); traffic counts are *algorithmic* reads/writes of
8-byte doubles — compulsory traffic, ignoring caches, which is the right
granularity for the streaming kernels here (KRP, reorder, reduction) and a
standard approximation for large GEMMs.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.tensor.layout import mode_products
from repro.util import prod

__all__ = [
    "PhaseCost",
    "AlgorithmCost",
    "krp_cost",
    "stream_cost",
    "gemm_cost",
    "onestep_cost",
    "twostep_cost",
    "baseline_cost",
    "blocked_cost",
    "batched_cost",
    "gemm_lower_bound_cost",
    "mttkrp_comm_lower_bound",
    "multi_ttv_cost",
    "record_mttkrp_cost",
]

_DOUBLE = 8  # bytes per entry, double precision throughout the paper

#: Fallback fast-memory capacity when no calibrated machine model is in
#: scope (``repro.machine.model.MachineModel.cache_bytes`` is the
#: authoritative value).  8 MiB of last-level cache is a conservative
#: lower bound for any machine this package targets.
DEFAULT_CACHE_BYTES = 8 << 20


@dataclass(frozen=True)
class PhaseCost:
    """Arithmetic (flops) and memory traffic (bytes) of one phase.

    ``gemm_shape`` records the (m, n, k) of the dominant matrix multiply,
    if any — the machine model uses it to estimate BLAS efficiency, which
    the paper identifies as shape-dependent (Section 5.3.1).
    """

    name: str
    flops: float
    read_bytes: float
    write_bytes: float
    gemm_shape: tuple[int, int, int] | None = None

    @property
    def bytes(self) -> float:
        """Total traffic."""
        return self.read_bytes + self.write_bytes

    def scaled(self, factor: float) -> "PhaseCost":
        """Cost with all counts multiplied by ``factor``."""
        return PhaseCost(
            self.name,
            self.flops * factor,
            self.read_bytes * factor,
            self.write_bytes * factor,
            self.gemm_shape,
        )


@dataclass(frozen=True)
class AlgorithmCost:
    """Phase-decomposed cost of one algorithm invocation."""

    algorithm: str
    phases: tuple[PhaseCost, ...] = field(default_factory=tuple)

    @property
    def flops(self) -> float:
        return sum(p.flops for p in self.phases)

    @property
    def bytes(self) -> float:
        return sum(p.bytes for p in self.phases)

    def phase(self, name: str) -> PhaseCost:
        """Look up a phase by name (raises ``KeyError`` if absent)."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"{self.algorithm} has no phase {name!r}")


# --------------------------------------------------------------------- #
# Building blocks
# --------------------------------------------------------------------- #


def krp_cost(dims: Sequence[int], C: int, schedule: str = "reuse") -> PhaseCost:
    """Cost of a Khatri-Rao product of matrices ``J_z x C``.

    * ``"reuse"`` (Algorithm 1): each prefix's Hadamard products are
      computed once — ``C * sum_z prod(J_0..J_z)`` multiplies for
      ``z >= 1`` — and every level is written once and read once by the
      next level (the final level only written).
    * ``"naive"``: ``(Z-1)`` Hadamard products per output row.

    For ``Z == 1`` the KRP is a copy (zero flops).
    """
    dims = [int(d) for d in dims]
    C = int(C)
    Z = len(dims)
    if Z == 0:
        raise ValueError("KRP requires at least one matrix")
    rows = prod(dims)
    out_entries = rows * C
    input_entries = sum(d * C for d in dims)
    if schedule == "reuse":
        flops = 0.0
        level_entries = []
        r = dims[0]
        for d in dims[1:]:
            r *= d
            flops += r * C
            level_entries.append(r * C)
        # Each intermediate level is written then read by the next level.
        inter = sum(level_entries[:-1]) if level_entries else 0
        reads = (input_entries + inter) * _DOUBLE
        writes = out_entries * _DOUBLE + inter * _DOUBLE
    elif schedule == "naive":
        flops = max(Z - 1, 0) * rows * C
        # Z gathered operands per output row (reads served from the small
        # inputs but charged per access: this is the stream the naive
        # algorithm actually issues), one write.
        reads = Z * out_entries * _DOUBLE
        writes = out_entries * _DOUBLE
    else:
        raise ValueError(f"unknown schedule {schedule!r}")
    return PhaseCost("krp", float(flops), float(reads), float(writes))


def stream_cost(entries: int) -> PhaseCost:
    """The STREAM scale benchmark on ``entries`` doubles: read + write."""
    entries = int(entries)
    return PhaseCost(
        "stream",
        float(entries),
        float(entries * _DOUBLE),
        float(entries * _DOUBLE),
    )


def gemm_cost(m: int, n: int, k: int, name: str = "gemm") -> PhaseCost:
    """``(m x k) . (k x n)``: ``2mnk`` flops, compulsory traffic."""
    m, n, k = int(m), int(n), int(k)
    return PhaseCost(
        name,
        2.0 * m * n * k,
        float((m * k + k * n) * _DOUBLE),
        float(m * n * _DOUBLE),
        gemm_shape=(m, n, k),
    )


def multi_ttv_cost(out_dim: int, inner: int, C: int) -> PhaseCost:
    """Second step of 2-step MTTKRP: ``C`` GEMVs of ``out_dim x inner``."""
    out_dim, inner, C = int(out_dim), int(inner), int(C)
    return PhaseCost(
        "gemv",
        2.0 * C * out_dim * inner,
        float(C * (out_dim * inner + inner) * _DOUBLE),
        float(C * out_dim * _DOUBLE),
        gemm_shape=(out_dim, 1, inner),
    )


# --------------------------------------------------------------------- #
# Full algorithms
# --------------------------------------------------------------------- #


def onestep_cost(
    shape: Sequence[int], n: int, C: int, num_threads: int = 1
) -> AlgorithmCost:
    """Cost of 1-step MTTKRP (Algorithm 3) for mode ``n``.

    External modes: full KRP (reuse schedule) + one GEMM slice per thread +
    reduction.  Internal modes: left partial KRP + per-block right-KRP row
    and Hadamard broadcast + one GEMM per block + reduction.
    """
    shape = [int(s) for s in shape]
    N = len(shape)
    C = int(C)
    T = int(num_threads)
    p = mode_products(shape, n)
    phases: list[PhaseCost] = []
    if n == 0 or n == N - 1:
        other_dims = [shape[k] for k in range(N - 1, -1, -1) if k != n]
        phases.append(
            krp_cost(other_dims, C).scaled(1.0)._replace_name("full_krp")
        )
        phases.append(gemm_cost(p.size, C, p.other))
    else:
        left_dims = [shape[k] for k in range(n - 1, -1, -1)]
        phases.append(krp_cost(left_dims, C)._replace_name("lr_krp"))
        # Per block j: right-KRP row ((N-n-2) row Hadamards, negligible) and
        # the broadcast K_t = K_L * k_r (I^L_n * C multiplies + traffic).
        per_block = PhaseCost(
            "lr_krp",
            float(p.left * C + max(N - n - 2, 0) * C),
            float((p.left * C + C) * _DOUBLE),
            float(p.left * C * _DOUBLE),
        )
        phases.append(per_block.scaled(p.right))
        phases.append(gemm_cost(p.size, C, p.other, name="gemm"))
    if T > 1:
        # Tree reduction of private I_n x C outputs: T-1 pairwise adds.
        entries = p.size * C
        phases.append(
            PhaseCost(
                "reduce",
                float((T - 1) * entries),
                float(2 * (T - 1) * entries * _DOUBLE),
                float((T - 1) * entries * _DOUBLE),
            )
        )
    return AlgorithmCost("onestep", tuple(_merge(phases)))


def twostep_cost(
    shape: Sequence[int], n: int, C: int, side: str = "auto"
) -> AlgorithmCost:
    """Cost of 2-step MTTKRP (Algorithm 4) for internal mode ``n``."""
    shape = [int(s) for s in shape]
    N = len(shape)
    C = int(C)
    if n <= 0 or n >= N - 1:
        raise ValueError(f"2-step cost defined for internal modes, got n={n}")
    p = mode_products(shape, n)
    if side == "auto":
        side = "left" if p.left > p.right else "right"
    left_dims = [shape[k] for k in range(n - 1, -1, -1)]
    right_dims = [shape[k] for k in range(N - 1, n, -1)]
    phases = [
        krp_cost(left_dims, C)._replace_name("lr_krp"),
        krp_cost(right_dims, C)._replace_name("lr_krp"),
    ]
    if side == "left":
        # L = X_(0:n-1)^T . K_L : (In*IRn x ILn) . (ILn x C)
        phases.append(gemm_cost(p.size * p.right, C, p.left))
        phases.append(multi_ttv_cost(p.size, p.right, C))
    elif side == "right":
        # R = X_(0:n) . K_R : (ILn*In x IRn) . (IRn x C)
        phases.append(gemm_cost(p.left * p.size, C, p.right))
        phases.append(multi_ttv_cost(p.size, p.left, C))
    else:
        raise ValueError(f"side must be 'auto', 'left' or 'right', got {side!r}")
    return AlgorithmCost("twostep", tuple(_merge(phases)))


def baseline_cost(shape: Sequence[int], n: int, C: int) -> AlgorithmCost:
    """Cost of the straightforward baseline (reorder + full KRP + GEMM)."""
    shape = [int(s) for s in shape]
    N = len(shape)
    C = int(C)
    p = mode_products(shape, n)
    phases: list[PhaseCost] = []
    if 0 < n < N - 1 or n == N - 1:
        # Entry reordering: read + write of the whole tensor (memory-bound).
        total = p.total
        phases.append(
            PhaseCost(
                "reorder", 0.0, float(total * _DOUBLE), float(total * _DOUBLE)
            )
        )
    other_dims = [shape[k] for k in range(N - 1, -1, -1) if k != n]
    phases.append(krp_cost(other_dims, C)._replace_name("full_krp"))
    phases.append(gemm_cost(p.size, C, p.other))
    return AlgorithmCost("baseline", tuple(_merge(phases)))


def gemm_lower_bound_cost(shape: Sequence[int], n: int, C: int) -> AlgorithmCost:
    """The paper's DGEMM-only Baseline benchmark for mode ``n``."""
    shape = [int(s) for s in shape]
    p = mode_products(shape, n)
    return AlgorithmCost("gemm-baseline", (gemm_cost(p.size, C, p.other),))


def mttkrp_comm_lower_bound(
    shape: Sequence[int],
    n: int,
    C: int,
    cache_bytes: float = DEFAULT_CACHE_BYTES,
) -> float:
    """Ballard-Rouse-Knight data-movement floor for one mode-``n`` MTTKRP.

    For a fast memory of ``M`` words, the Loomis-Whitney box argument of
    "Communication Lower Bounds for MTTKRP" (PAPERS.md) bounds the work an
    ``M``-word segment of the execution can cover: a tensor-index box of
    side ``b`` with ``b^N <= M`` combined with a rank block ``c = M / b``
    covers at most ``M^(2 - 1/N)`` elementary multiplies, so the whole
    ``I * C``-multiply computation moves at least

        ``W >= I * C / M^(1 - 1/N)``

    words, in addition to the compulsory traffic (read the tensor and the
    ``N-1`` input factors once, write the output once).  For ``N = 2``
    this recovers the classical ``Omega(m n k / sqrt(M))`` GEMM bound.

    Returns the bound in **bytes** under this module's 8-bytes-per-word
    convention (the same convention every achieved-traffic count here
    uses, so achieved/bound ratios are internally consistent regardless
    of the run's dtype).
    """
    shape = [int(s) for s in shape]
    N = len(shape)
    C = int(C)
    if not 0 <= n < N:
        raise ValueError(f"mode {n} out of range for order-{N} shape")
    total = prod(shape)
    M_words = max(float(cache_bytes) / _DOUBLE, 2.0)
    # Compulsory: tensor read + factor reads (all modes but n) + output
    # write; the output has I_n rows, so the factor/output terms together
    # are C * sum(shape).
    compulsory = float(total) + float(C) * float(sum(shape))
    loomis_whitney = float(total) * C / M_words ** (1.0 - 1.0 / N)
    return max(compulsory, loomis_whitney) * _DOUBLE


def blocked_cost(
    shape: Sequence[int],
    n: int,
    C: int,
    num_threads: int = 1,
    cache_bytes: float = DEFAULT_CACHE_BYTES,
) -> AlgorithmCost:
    """Cost of the cache-blocked MTTKRP (:mod:`repro.core.mttkrp_blocked`).

    The blocked kernel never materializes a Khatri-Rao panel in memory:
    KRP tiles are formed in cache-resident buffers and consumed
    immediately, so the only DRAM traffic charged beyond the compulsory
    reads/writes is re-reading the left partial KRP when it exceeds the
    cache (internal modes).  This is what moves the predicted traffic
    toward :func:`mttkrp_comm_lower_bound`.
    """
    shape = [int(s) for s in shape]
    N = len(shape)
    C = int(C)
    T = int(num_threads)
    p = mode_products(shape, n)
    external = n == 0 or n == N - 1
    factor_read = float(sum(shape[k] for k in range(N) if k != n) * C * _DOUBLE)
    phases: list[PhaseCost] = []
    if external:
        other_dims = [shape[k] for k in range(N - 1, -1, -1) if k != n]
        # KRP tiles: same arithmetic as the reuse schedule, but every tile
        # lives in cache — only the factor inputs are charged to memory.
        phases.append(
            PhaseCost(
                "full_krp", krp_cost(other_dims, C).flops, factor_read, 0.0
            )
        )
        gemm = PhaseCost(
            "gemm",
            2.0 * p.total * C,
            float(p.total * _DOUBLE),
            float(p.size * C * _DOUBLE),
            gemm_shape=(p.size, C, min(p.other, max(p.other // max(T, 1), 1))),
        )
        phases.append(gemm)
    else:
        left_dims = [shape[k] for k in range(n - 1, -1, -1)]
        right_dims = [shape[k] for k in range(N - 1, n, -1)]
        kl = krp_cost(left_dims, C)
        kr = krp_cost(right_dims, C)
        # K_L is materialized once; it is re-read from memory for every
        # right block only when it does not fit in (half) the cache.
        kl_bytes = float(p.left * C * _DOUBLE)
        reloads = 1.0 if 2.0 * kl_bytes <= cache_bytes else float(p.right)
        phases.append(
            PhaseCost(
                "lr_krp",
                # K_L formation + right-KRP rows + per-tile Hadamard
                # broadcasts (K_t tiles: I^L_n * C multiplies per block).
                kl.flops + kr.flops + float(p.right) * p.left * C,
                kl.read_bytes + max(reloads - 1.0, 0.0) * kl_bytes
                + float(p.right * C * _DOUBLE),
                kl.write_bytes,
            )
        )
        phases.append(
            PhaseCost(
                "gemm",
                2.0 * p.total * C,
                float(p.total * _DOUBLE),
                float(p.size * C * _DOUBLE),
                gemm_shape=(p.size, C, p.left),
            )
        )
    if T > 1:
        entries = p.size * C
        phases.append(
            PhaseCost(
                "reduce",
                float((T - 1) * entries),
                float(2 * (T - 1) * entries * _DOUBLE),
                float((T - 1) * entries * _DOUBLE),
            )
        )
    return AlgorithmCost("blocked", tuple(_merge(phases)))


def batched_cost(
    shape: Sequence[int], n: int, C: int, batch: int, num_threads: int = 1
) -> AlgorithmCost:
    """Cost of the batched MTTKRP (:mod:`repro.batch.mttkrp`).

    Per item: a full KRP panel (reuse schedule, materialized into the
    chunk buffer) and the mode-``n`` GEMM; internal modes add the
    pre-reduction product traffic and the block-axis sum.  Scaled by
    ``batch``.  Workers own disjoint batch blocks, so unlike the
    single-tensor kernels there is **no** reduction term at any ``T``.
    """
    shape = [int(s) for s in shape]
    N = len(shape)
    C = int(C)
    batch = int(batch)
    p = mode_products(shape, n)
    other_dims = [shape[k] for k in range(N - 1, -1, -1) if k != n]
    phases = [
        krp_cost(other_dims, C)._replace_name("full_krp"),
        gemm_cost(p.size, C, p.other),
    ]
    if 0 < n < N - 1:
        # The (I^R_n, I_n, C) product is written by the batched GEMM and
        # re-read by the block-axis sum ((I^R_n - 1) * I_n * C adds).
        entries = p.right * p.size * C
        phases.append(
            PhaseCost(
                "reduce",
                float(max(p.right - 1, 0) * p.size * C),
                float(entries * _DOUBLE),
                float(entries * _DOUBLE),
            )
        )
    return AlgorithmCost(
        "batched", tuple(q.scaled(batch) for q in _merge(phases))
    )


# --------------------------------------------------------------------- #
# Tracer accounting
# --------------------------------------------------------------------- #


def record_mttkrp_cost(
    tracer,
    shape: Sequence[int],
    n: int,
    rank: int,
    kind: str,
    num_threads: int = 1,
    cache_bytes: float | None = None,
    batch: int = 1,
) -> None:
    """Attach one MTTKRP call's analytic cost as obs counters.

    Every dispatch-registered kernel calls this on entry (the analyzer's
    RA009 rule enforces it), *before* opening its phase spans, so the
    counters land on the innermost open span — the ``mttkrp.<method>``
    span when the call came through :func:`repro.core.dispatch.mttkrp`,
    the tracer-level counters on a direct kernel call (tuner probes,
    bench suites).  Alongside the achieved flop/byte counts, every call
    carries ``bytes_lower_bound`` — the Ballard-Rouse-Knight
    data-movement floor for this (shape, mode, rank) — so any traced run
    can report its achieved-vs-lower-bound byte ratio.

    ``batch`` scales the batched kind (``kind="batched"``, both the
    stacked and loop lanes of :mod:`repro.batch.mttkrp`) and the lower
    bound by the number of stacked items; single-tensor kinds leave it
    at 1.

    No-op when ``tracer`` is ``None`` or disabled, so untraced hot loops
    pay only the guard.
    """
    if tracer is None or not getattr(tracer, "enabled", False):
        return
    if cache_bytes is None:
        from repro.machine.model import host_model_default

        cache_bytes = float(host_model_default().cache_bytes)
    if kind in ("onestep", "onestep-seq"):
        cost = onestep_cost(shape, n, rank, num_threads)
    elif kind == "twostep":
        cost = twostep_cost(shape, n, rank)
    elif kind == "blocked":
        cost = blocked_cost(shape, n, rank, num_threads, cache_bytes=cache_bytes)
    elif kind == "baseline":
        cost = baseline_cost(shape, n, rank)
    elif kind == "batched":
        cost = batched_cost(shape, n, rank, batch, num_threads)
    else:
        raise ValueError(f"unknown cost kind {kind!r}")
    tracer.add_counter("flops", cost.flops)
    tracer.add_counter("bytes_read", sum(p.read_bytes for p in cost.phases))
    tracer.add_counter("bytes_written", sum(p.write_bytes for p in cost.phases))
    tracer.add_counter(
        "bytes_lower_bound",
        float(batch)
        * mttkrp_comm_lower_bound(shape, n, rank, cache_bytes=cache_bytes),
    )


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #


def _merge(phases: list[PhaseCost]) -> list[PhaseCost]:
    """Merge same-named phases, preserving first-seen order."""
    order: list[str] = []
    acc: dict[str, PhaseCost] = {}
    for p in phases:
        if p.name not in acc:
            order.append(p.name)
            acc[p.name] = p
        else:
            q = acc[p.name]
            acc[p.name] = PhaseCost(
                p.name,
                p.flops + q.flops,
                p.read_bytes + q.read_bytes,
                p.write_bytes + q.write_bytes,
                q.gemm_shape or p.gemm_shape,
            )
    return [acc[name] for name in order]


def _replace_name(self: PhaseCost, name: str) -> PhaseCost:
    return PhaseCost(
        name, self.flops, self.read_bytes, self.write_bytes, self.gemm_shape
    )


# Attach as a method (keeps the dataclass frozen and the call sites tidy).
PhaseCost._replace_name = _replace_name  # type: ignore[attr-defined]
