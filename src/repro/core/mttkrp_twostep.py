"""2-step MTTKRP (Algorithm 4; Phan et al. [19] as presented in the paper).

The computation is split into a **partial MTTKRP** — one large GEMM between
a multi-mode matricization of the tensor (which the natural layout makes
column- or row-major, so no entries are reordered) and a *partial* KRP —
followed by a **multi-TTV** that contracts the intermediate against the
remaining factor matrices' columns, one GEMV per rank column.

Either ordering is mathematically valid:

* **right-first** (Figure 3a/3b): ``R_(0:n) = X_(0:n) . K_R`` (``X_(0:n)``
  is column-major), then the multi-TTV contracts modes ``0..n-1`` against
  ``K_L``'s columns;
* **left-first** (Figure 3c/3d): ``L = X_(0:n-1)^T . K_L`` (the transpose
  is row-major), then the multi-TTV contracts modes ``n+1..N-1`` against
  ``K_R``'s columns.

Both orderings do the same flops in step 1; Algorithm 4 picks the ordering
whose *second* step touches the smaller intermediate — left-first iff
``I^L_n > I^R_n``.  ``side="left"``/``"right"`` force an ordering (the
ablation benchmark uses this); ``side="auto"`` applies the paper's rule.

For external modes the 2-step algorithm degenerates to the 1-step
algorithm, so this module only defines behaviour for internal modes
(``0 < n < N-1``) and raises otherwise — callers wanting transparent
fallback should use :func:`repro.core.dispatch.mttkrp`.

Parallelism lives entirely inside the BLAS calls (the paper's Algorithm 4
serves as both the sequential and parallel variant); ``num_threads`` is
forwarded to the BLAS runtime via :func:`repro.parallel.blas.blas_threads`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.flops import record_mttkrp_cost
from repro.core.krp import khatri_rao
from repro.obs import get_tracer
from repro.parallel.backend import get_executor
from repro.parallel.blas import assert_native_layout, blas_threads
from repro.parallel.config import get_backend, resolve_threads
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import mode_products
from repro.tensor.ttv import multi_ttv
from repro.util.timing import NULL_TIMER, PhaseTimer
from repro.util.validation import check_factor_matrices, check_mode

__all__ = ["mttkrp_twostep", "mttkrp_twostep_blocked", "choose_side"]


def choose_side(shape: Sequence[int], n: int) -> str:
    """The paper's ordering rule: left-first iff ``I^L_n > I^R_n``.

    The 2nd step's flop count is ``2 * C * I_n * I^R_n`` (left-first) or
    ``2 * C * I_n * I^L_n`` (right-first); picking the larger of
    ``I^L_n, I^R_n`` for step 1 leaves the smaller for step 2.
    """
    p = mode_products(tuple(int(s) for s in shape), int(n))
    return "left" if p.left > p.right else "right"


def mttkrp_twostep(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    side: str = "auto",
    timers: PhaseTimer | None = None,
) -> np.ndarray:
    """Algorithm 4: 2-step MTTKRP for an internal mode.

    Parameters
    ----------
    tensor:
        Input tensor in natural layout.
    factors:
        One ``I_k x C`` factor matrix per mode.
    n:
        Output mode; must be internal (``0 < n < N-1``).
    num_threads:
        BLAS thread budget for the two steps; defaults to the package-wide
        setting.
    side:
        ``"auto"`` (paper rule), ``"left"``, or ``"right"``.
    timers:
        Optional :class:`~repro.util.timing.PhaseTimer`; phases are
        ``"lr_krp"`` (forming both partial KRPs), ``"gemm"`` (the partial
        MTTKRP) and ``"gemv"`` (the multi-TTV).

    Returns
    -------
    numpy.ndarray
        The ``I_n x C`` MTTKRP result.
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    n = check_mode(n, tensor.ndim)
    rank = check_factor_matrices(list(factors), tensor.shape)
    if tensor.ndim < 3 or n == 0 or n == tensor.ndim - 1:
        raise ValueError(
            f"2-step MTTKRP is defined only for internal modes "
            f"(0 < n < N-1); got n={n} for an order-{tensor.ndim} tensor. "
            f"Use repro.core.dispatch.mttkrp for automatic fallback."
        )
    if side not in ("auto", "left", "right"):
        raise ValueError(f"side must be 'auto', 'left' or 'right', got {side!r}")
    T = resolve_threads(num_threads)
    t = timers if timers is not None else NULL_TIMER
    tr = get_tracer()
    N = tensor.ndim
    record_mttkrp_cost(tr, tensor.shape, n, rank, "twostep", T)

    with t.phase("lr_krp"), tr.span("lr_krp"):
        # K_L = U_{n-1} krp ... krp U_0 (mode-0 index fastest);
        # K_R = U_{N-1} krp ... krp U_{n+1} (mode-(n+1) index fastest).
        KL = khatri_rao([np.asarray(factors[k]) for k in range(n - 1, -1, -1)])
        KR = khatri_rao([np.asarray(factors[k]) for k in range(N - 1, n, -1)])

    if side == "auto":
        side = choose_side(tensor.shape, n)

    # Under the process backend the multi-TTV's Python-level column loop is
    # fanned over worker processes; step 1's GEMM output is then computed
    # straight into a shared-memory buffer so the workers attach it
    # zero-copy.  Otherwise (thread backend, or one worker) everything runs
    # as in the sequential algorithm — step 1 is a single BLAS call either
    # way, so the two backends issue identical GEMMs.
    ex = (
        get_executor(T, backend="process")
        if T > 1 and get_backend() == "process"
        else None
    )
    C = KL.shape[1]
    res_dtype = np.result_type(tensor.dtype, KL.dtype)

    def _intermediate_buffer(entries: int) -> np.ndarray | None:
        if ex is None:
            return None
        return ex.allocate_shared((entries,), dtype=res_dtype)

    with blas_threads(T):
        if side == "left":
            cols = tensor.size // int(np.prod(tensor.shape[:n]))
            buf = _intermediate_buffer(C * cols)
            # Step 1 (Fig. 3c): L = X_(0:n-1)^T . K_L; the transpose view is
            # row-major, so this is a single well-shaped GEMM.
            with t.phase("gemm"), tr.span("gemm", side="left"):
                # Computed transposed (L^T = K_L^T . X_(0:n-1)) so the
                # C-contiguous GEMM output *is* the natural layout of L —
                # same BLAS call, no data movement afterwards.
                tr.add_counter("gemm_calls", 1)
                if buf is None:
                    LmatT = KL.T @ tensor.unfold_front(n - 1)
                    flat = LmatT.ravel()
                else:
                    # Runtime backing for the RA004 suppression below
                    # (checked only under REPRO_SANITIZE).
                    assert_native_layout(
                        buf.reshape((C, cols)), "twostep.gemm.left.out"
                    )
                    np.matmul(
                        KL.T, tensor.unfold_front(n - 1),
                        # buf is a flat 1-D shared allocation, so this
                        # reshape is C-contiguous.  # repro: ignore[RA004]
                        out=buf.reshape((C, cols)),
                    )
                    flat = buf
            # L is the (I_n x I_{n+1} x ... x I_{N-1} x C) intermediate in
            # natural layout (rows of L linearize modes n.., mode n fastest),
            # reinterpreted for free.
            L = DenseTensor(flat, tensor.shape[n:] + (C,))
            with t.phase("gemv"), tr.span("gemv", side="left"):
                # Step 2 (Fig. 3d): contract trailing modes against K_R's
                # columns, one GEMV per rank column.
                tr.add_counter("gemv_calls", C)
                return multi_ttv(
                    L, [np.asarray(factors[k]) for k in range(n + 1, N)],
                    leading=True, executor=ex,
                )
        else:
            cols = int(np.prod(tensor.shape[: n + 1]))
            buf = _intermediate_buffer(C * cols)
            # Step 1 (Fig. 3a): R = X_(0:n) . K_R on the column-major view.
            with t.phase("gemm"), tr.span("gemm", side="right"):
                # Transposed form (R^T = K_R^T . X_(0:n)^T) for the same
                # reason: the GEMM writes R directly in natural layout.
                tr.add_counter("gemm_calls", 1)
                if buf is None:
                    RmatT = KR.T @ tensor.unfold_front(n).T
                    flat = RmatT.ravel()
                else:
                    # Runtime backing for the RA004 suppression below
                    # (checked only under REPRO_SANITIZE).
                    assert_native_layout(
                        buf.reshape((C, cols)), "twostep.gemm.right.out"
                    )
                    np.matmul(
                        KR.T, tensor.unfold_front(n).T,
                        # buf is a flat 1-D shared allocation, so this
                        # reshape is C-contiguous.  # repro: ignore[RA004]
                        out=buf.reshape((C, cols)),
                    )
                    flat = buf
            R = DenseTensor(flat, tensor.shape[: n + 1] + (C,))
            with t.phase("gemv"), tr.span("gemv", side="right"):
                # Step 2 (Fig. 3b): contract leading modes against K_L's
                # columns.
                tr.add_counter("gemv_calls", C)
                return multi_ttv(
                    R, [np.asarray(factors[k]) for k in range(n)],
                    leading=False, executor=ex,
                )


def mttkrp_twostep_blocked(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    max_intermediate_entries: int,
    num_threads: int | None = None,
    side: str = "auto",
    timers: PhaseTimer | None = None,
) -> np.ndarray:
    """Constant-memory 2-step MTTKRP via blocking (Vannieuwenhoven et al.).

    The plain 2-step algorithm materializes an intermediate of
    ``I^L_n * I_n * C`` (right-first) or ``I_n * I^R_n * C`` (left-first)
    entries — for large tensors this temporary can rival the tensor
    itself.  Vannieuwenhoven, Meerbergen and Vandebril [25] observe the
    partial MTTKRP and the multi-TTV can be *interleaved blockwise*: each
    block of the intermediate is produced by a GEMM on a contiguous slice
    of the matricization view and consumed immediately by its multi-TTV
    contribution, so only one block is ever alive.  They report (and the
    paper relays) that capping the footprint does not hurt performance;
    the ablation benchmark ``test_ablation_blocked_twostep`` checks that
    here.

    Blocking axes (both keep every GEMM on contiguous natural-layout
    views):

    * right-first: block over the output mode ``I_n`` — intermediate rows
      ``[i0*I^L_n, i1*I^L_n)`` are a contiguous row range of ``X_(0:n)``;
      each block finishes its own output rows ``M[i0:i1, :]``.
    * left-first: block over ``I^R_n`` — intermediate rows
      ``[r0*I_n, r1*I_n)`` are a contiguous row range of
      ``X_(0:n-1)^T``; blocks *accumulate* into the full output.

    Parameters
    ----------
    max_intermediate_entries:
        Upper bound on the number of intermediate entries alive at once
        (the block size is derived from it; at least one block row-group
        is always used, so pathologically small budgets degrade to
        fine-grained blocking rather than failing).
    Other parameters as in :func:`mttkrp_twostep`.
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    n = check_mode(n, tensor.ndim)
    check_factor_matrices(list(factors), tensor.shape)
    if tensor.ndim < 3 or n == 0 or n == tensor.ndim - 1:
        raise ValueError(
            "blocked 2-step MTTKRP is defined only for internal modes"
        )
    if side not in ("auto", "left", "right"):
        raise ValueError(f"side must be 'auto', 'left' or 'right', got {side!r}")
    max_intermediate_entries = int(max_intermediate_entries)
    if max_intermediate_entries <= 0:
        raise ValueError("max_intermediate_entries must be positive")
    T = resolve_threads(num_threads)
    t = timers if timers is not None else NULL_TIMER
    N = tensor.ndim
    p = mode_products(tensor.shape, n)
    rank = np.asarray(factors[0]).shape[1]

    with t.phase("lr_krp"):
        KL = khatri_rao([np.asarray(factors[k]) for k in range(n - 1, -1, -1)])
        KR = khatri_rao([np.asarray(factors[k]) for k in range(N - 1, n, -1)])
    if side == "auto":
        side = choose_side(tensor.shape, n)

    M = np.zeros((p.size, rank), dtype=tensor.dtype, order="C")
    with blas_threads(T):
        if side == "right":
            # Block over I_n: rows_per_group intermediate rows = group*ILn.
            group = max(max_intermediate_entries // (p.left * rank), 1)
            X = tensor.unfold_front(n)  # (ILn*In, IRn) column-major view
            for i0 in range(0, p.size, group):
                i1 = min(i0 + group, p.size)
                with t.phase("gemm"):
                    # Contiguous row slice of the column-major view.
                    Rb = KR.T @ X[i0 * p.left : i1 * p.left].T
                    # Rb is (C, (i1-i0)*ILn) C-contiguous == natural layout
                    # of the block of R.
                with t.phase("gemv"):
                    for j in range(rank):
                        sub = Rb[j].reshape((p.left, i1 - i0), order="F")
                        M[i0:i1, j] = KL[:, j] @ sub
        else:
            # Block over I^R_n; contributions accumulate into M.
            group = max(max_intermediate_entries // (p.size * rank), 1)
            XT = tensor.unfold_front(n - 1).T  # (In*IRn, ILn) row-major view
            for r0 in range(0, p.right, group):
                r1 = min(r0 + group, p.right)
                with t.phase("gemm"):
                    Lb = KL.T @ XT[r0 * p.size : r1 * p.size].T
                    # (C, (r1-r0)*In) C-contiguous.
                with t.phase("gemv"):
                    for j in range(rank):
                        sub = Lb[j].reshape((p.size, r1 - r0), order="F")
                        M[:, j] += sub @ KR[r0:r1, j]
    return M
