"""Observability: structured tracing and metrics for the MTTKRP stack.

This package gives every layer of the reproduction — the worker pool, the
KRP/MTTKRP kernels, the CP-ALS driver, the benchmark harness — a shared,
thread-aware span tracer with per-span counters (FLOPs, bytes, GEMM call
counts) and per-parallel-region load-imbalance metrics, exportable as
Chrome trace-event JSON or a Figure 6/8-style phase-breakdown table.

Quickstart
----------
>>> import repro.obs as obs
>>> tracer = obs.enable()               # or: REPRO_TRACE=1 in the env
>>> # ... run cp_als / mttkrp ...
>>> text = obs.summary(tracer)          # phase breakdown + imbalance
>>> _ = obs.disable()

See ``docs/observability.md`` for the span model and export formats, and
``python -m repro.obs.report trace.json`` for the offline report CLI.
"""

from repro.obs.export import (
    chrome_trace,
    counter_total,
    counters_snapshot,
    phase_timer_from_trace,
    phase_totals,
    save_chrome_trace,
    summary,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    capture,
    disable,
    enable,
    get_tracer,
    is_enabled,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "enable",
    "disable",
    "is_enabled",
    "capture",
    "chrome_trace",
    "save_chrome_trace",
    "summary",
    "phase_totals",
    "phase_timer_from_trace",
    "counter_total",
    "counters_snapshot",
]
