"""Trace exporters: Chrome trace-event JSON and phase-breakdown tables.

Two consumers of a :class:`~repro.obs.tracer.Tracer`:

* :func:`chrome_trace` / :func:`save_chrome_trace` — the Chrome
  trace-event format (the ``traceEvents`` JSON loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev).  Every span becomes a
  complete ("X") event on its recording thread's lane; span args and
  counters ride along in ``args``, so FLOPs, byte counts and per-region
  imbalance are inspectable per event.
* :func:`summary` — a text table reproducing the paper's Figure 6/8
  phase-breakdown view from a single trace: leaf spans aggregated by name
  (calls, seconds, share, achieved GFLOP/s where a ``flops`` counter is
  present), followed by a per-region load-imbalance table.

:func:`phase_totals` / :func:`phase_timer_from_trace` bridge back into the
pre-existing :class:`~repro.util.timing.PhaseTimer` world, so anything
written against phase-total dicts (the figure harnesses, the report
helpers) can consume a trace unchanged.
"""

from __future__ import annotations

import json
import os

from repro.obs.tracer import Tracer
from repro.util.timing import PhaseTimer

__all__ = [
    "chrome_trace",
    "save_chrome_trace",
    "summary",
    "summarize_records",
    "records_from_events",
    "phase_totals",
    "phase_timer_from_trace",
    "counter_total",
    "counters_snapshot",
]

#: Counters aggregated into benchmark records by :func:`counters_snapshot`.
_SNAPSHOT_COUNTERS = (
    "flops",
    "bytes_read",
    "bytes_written",
    "bytes_lower_bound",
    "gemm_calls",
    "gemv_calls",
)


def counter_total(tracer: Tracer, name: str) -> float:
    """Sum of counter ``name`` across all spans plus the tracer level.

    Counters recorded while a span was open live on that span
    (:meth:`~repro.obs.tracer.Span.add`); counters recorded outside any
    span accumulate on the tracer itself.  A trace-wide total — e.g. the
    autotuner's ``tune.measure`` / ``tune.cache_hit`` counts, which tests
    assert on — needs both.
    """
    total = float(getattr(tracer, "counters", {}).get(name, 0.0))
    for span in tracer.spans():
        total += float(span.counters.get(name, 0.0))
    return total


def counters_snapshot(tracer: Tracer) -> dict[str, float]:
    """Flatten a trace into the counter dict benchmark records carry.

    The export hook the benchmark harness runs each measured point
    through: analytic FLOP/byte totals and GEMM/GEMV call counts summed
    across all spans (plus tracer-level spillover), and the per-region
    load-imbalance distilled to ``regions`` / ``imbalance_mean`` /
    ``imbalance_max``.  Zero-valued totals are omitted — a missing key
    reads as "not instrumented", a present key as a real measurement.
    """
    snapshot: dict[str, float] = {}
    for name in _SNAPSHOT_COUNTERS:
        total = counter_total(tracer, name)
        if total:
            snapshot[name] = total
    imbalances = [
        sp.counters["imbalance"]
        for sp in tracer.spans()
        if "imbalance" in sp.counters
    ]
    if imbalances:
        snapshot["regions"] = float(len(imbalances))
        snapshot["imbalance_mean"] = sum(imbalances) / len(imbalances)
        snapshot["imbalance_max"] = max(imbalances)
    return snapshot


def _json_default(obj):
    """Coerce numpy scalars (and anything else numeric-ish) for json."""
    try:
        return float(obj)
    except (TypeError, ValueError):
        return str(obj)


def chrome_trace(tracer: Tracer) -> dict:
    """Render a tracer as a Chrome trace-event dict.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms", ...}``;
    timestamps are microseconds relative to the tracer's epoch.
    """
    pid = os.getpid()
    events: list[dict] = []
    thread_names: dict[int, str] = {}
    for sp in tracer.spans():
        thread_names.setdefault(sp.tid, sp.thread_name)
        args = {"path": sp.path}
        args.update(sp.args)
        args.update(sp.counters)
        events.append(
            {
                "name": sp.name,
                "cat": sp.path.split("/", 1)[0],
                "ph": "X",
                "ts": (sp.start - tracer.epoch) * 1e6,
                "dur": sp.duration * 1e6,
                "pid": pid,
                "tid": sp.tid,
                "args": args,
            }
        )
    for tid, name in sorted(thread_names.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "epoch_unix_s": tracer.epoch_unix,
            "tracer_counters": dict(tracer.counters),
        },
    }


def save_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    trace = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, default=_json_default)
    return path


# --------------------------------------------------------------------- #
# Aggregation (shared between live tracers and loaded trace files)
# --------------------------------------------------------------------- #


def _records_from_tracer(tracer: Tracer) -> list[dict]:
    return [
        {
            "name": sp.name,
            "path": sp.path,
            "seconds": sp.duration,
            "counters": sp.counters,
        }
        for sp in tracer.spans()
    ]


def records_from_events(events: list[dict]) -> list[dict]:
    """Normalize loaded Chrome trace events into aggregation records.

    Only complete ("X") events are considered; counters are recovered from
    the numeric entries of each event's ``args``.
    """
    records = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {}) or {}
        counters = {
            k: v
            for k, v in args.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        records.append(
            {
                "name": ev.get("name", "?"),
                "path": args.get("path", ev.get("name", "?")),
                "seconds": float(ev.get("dur", 0.0)) / 1e6,
                "counters": counters,
            }
        )
    return records


def _leaf_records(records: list[dict]) -> list[dict]:
    """Records whose path never appears as another record's ancestor."""
    parents = set()
    for rec in records:
        path = rec["path"]
        if "/" in path:
            parents.add(path.rsplit("/", 1)[0])
    return [rec for rec in records if rec["path"] not in parents]


def _phase_leaf_records(records: list[dict]) -> list[dict]:
    """Leaf records for the phase breakdown.

    Parallel-region spans (``imbalance`` counter) and the pool's per-worker
    wrapper spans (``*.worker``) are bookkeeping around the real phase
    spans recorded inside the workers; dropping them *before* the leaf
    computation both avoids double-counting their wall time and lets an
    enclosing phase span (e.g. ``reduce``) surface as the leaf when its
    only children were regions.
    """
    filtered = [
        rec
        for rec in records
        if "imbalance" not in rec["counters"]
        and not rec["name"].endswith(".worker")
    ]
    return _leaf_records(filtered)


def phase_totals(source: Tracer | list[dict]) -> dict[str, float]:
    """Leaf-span wall time aggregated by span name (a ``totals`` dict).

    Mirrors :attr:`repro.util.timing.PhaseTimer.totals` so trace-derived
    breakdowns plug into the existing figure machinery.
    """
    records = (
        _records_from_tracer(source) if isinstance(source, Tracer) else source
    )
    totals: dict[str, float] = {}
    for rec in _phase_leaf_records(records):
        totals[rec["name"]] = totals.get(rec["name"], 0.0) + rec["seconds"]
    return totals


def phase_timer_from_trace(tracer: Tracer) -> PhaseTimer:
    """Build a :class:`PhaseTimer` from a trace's leaf spans.

    The backward-compatibility bridge: any consumer written against
    ``PhaseTimer`` (report tables, figure drivers) can be fed a trace.
    """
    records = _records_from_tracer(tracer)
    timer = PhaseTimer()
    for rec in _phase_leaf_records(records):
        timer.add(rec["name"], rec["seconds"])
    return timer


def summarize_records(records: list[dict]) -> str:
    """Text summary (phase breakdown + region imbalance) of trace records."""
    lines: list[str] = []
    leaves = _phase_leaf_records(records)
    by_name: dict[str, dict] = {}
    for rec in leaves:
        agg = by_name.setdefault(
            rec["name"], {"calls": 0, "seconds": 0.0, "flops": 0.0}
        )
        agg["calls"] += 1
        agg["seconds"] += rec["seconds"]
        agg["flops"] += rec["counters"].get("flops", 0.0)
    total = sum(a["seconds"] for a in by_name.values()) or 1.0

    lines.append("phase breakdown (leaf spans)")
    lines.append(
        f"{'phase':<28} {'calls':>7} {'seconds':>10} {'share':>7} "
        f"{'GFLOP/s':>9}"
    )
    for name, agg in sorted(
        by_name.items(), key=lambda kv: -kv[1]["seconds"]
    ):
        rate = (
            f"{agg['flops'] / agg['seconds'] / 1e9:9.2f}"
            if agg["flops"] > 0 and agg["seconds"] > 0
            else f"{'-':>9}"
        )
        lines.append(
            f"{name:<28} {agg['calls']:>7d} {agg['seconds']:>10.4f} "
            f"{agg['seconds'] / total:>6.1%} {rate}"
        )

    flop_spans = [r for r in records if r["counters"].get("flops", 0.0) > 0]
    if flop_spans:
        by_algo: dict[str, dict] = {}
        for rec in flop_spans:
            agg = by_algo.setdefault(
                rec["name"],
                {"calls": 0, "seconds": 0.0, "flops": 0.0, "bytes": 0.0},
            )
            agg["calls"] += 1
            agg["seconds"] += rec["seconds"]
            agg["flops"] += rec["counters"]["flops"]
            agg["bytes"] += rec["counters"].get("bytes_read", 0.0)
            agg["bytes"] += rec["counters"].get("bytes_written", 0.0)
        lines.append("")
        lines.append("algorithm spans (analytic FLOP/byte counters)")
        lines.append(
            f"{'span':<28} {'calls':>7} {'seconds':>10} {'GFLOP/s':>9} "
            f"{'GB/s':>9}"
        )
        for name, agg in sorted(
            by_algo.items(), key=lambda kv: -kv[1]["seconds"]
        ):
            secs = agg["seconds"] or float("inf")
            lines.append(
                f"{name:<28} {agg['calls']:>7d} {agg['seconds']:>10.4f} "
                f"{agg['flops'] / secs / 1e9:>9.2f} "
                f"{agg['bytes'] / secs / 1e9:>9.2f}"
            )

    regions = [r for r in records if "imbalance" in r["counters"]]
    if regions:
        by_region: dict[str, dict] = {}
        for rec in regions:
            agg = by_region.setdefault(
                rec["name"],
                {"regions": 0, "seconds": 0.0, "imb_sum": 0.0,
                 "imb_max": 0.0, "workers": 0.0},
            )
            agg["regions"] += 1
            agg["seconds"] += rec["seconds"]
            agg["imb_sum"] += rec["counters"]["imbalance"]
            agg["imb_max"] = max(agg["imb_max"], rec["counters"]["imbalance"])
            agg["workers"] = max(
                agg["workers"], rec["counters"].get("workers", 0.0)
            )
        lines.append("")
        lines.append("parallel regions (load imbalance = max/mean worker time)")
        lines.append(
            f"{'region':<32} {'regions':>7} {'seconds':>10} {'workers':>7} "
            f"{'imb avg':>8} {'imb max':>8}"
        )
        for name, agg in sorted(
            by_region.items(), key=lambda kv: -kv[1]["seconds"]
        ):
            lines.append(
                f"{name:<32} {agg['regions']:>7d} {agg['seconds']:>10.4f} "
                f"{int(agg['workers']):>7d} "
                f"{agg['imb_sum'] / agg['regions']:>8.3f} "
                f"{agg['imb_max']:>8.3f}"
            )
    return "\n".join(lines)


def summary(tracer: Tracer) -> str:
    """Figure 6/8-style phase-breakdown text table for a live tracer."""
    return summarize_records(_records_from_tracer(tracer))
