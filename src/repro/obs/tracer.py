"""Hierarchical, thread-aware span tracer for the MTTKRP/CP-ALS stack.

The paper's evaluation (Figures 4-8) is built on *attribution*: which phase
of which algorithm, on which mode of which iteration, spent the time — and
how evenly the worker threads shared it.  :class:`Tracer` records exactly
that structure as nested **spans**:

    cp_als > iter[3] > mode[1] > mttkrp.twostep > gemm

Each span carries wall-clock start/end (one monotonic clock for the whole
trace), the recording thread, free-form ``args`` (mode, shape, rank, ...)
and accumulating ``counters`` (FLOPs from :mod:`repro.core.flops`, bytes
read/written, GEMM call counts).  :class:`~repro.parallel.pool.ThreadPool`
additionally records one span per parallel region with a **load-imbalance**
metric — max/mean of the per-worker wall times, the key diagnostic for the
paper's static contiguous-block schedule (imbalance 1.0 = perfectly even,
``T`` = one worker did everything).

Nesting is tracked *per thread* (a thread-local span stack), so pool
workers never corrupt the orchestrating thread's hierarchy; completed spans
are appended to a shared, lock-protected list.

Enabling
--------
Tracing is **off by default** and costs nothing when off: every
instrumented call site fetches the module-wide tracer once via
:func:`get_tracer`, which returns the :data:`NULL_TRACER` singleton —
whose ``span()`` returns one shared no-op context manager (no per-call
allocations) and whose ``enabled`` attribute lets parallel regions skip
instrumentation wholesale (mirroring ``NULL_TIMER`` in
:mod:`repro.util.timing`).

Turn it on with :func:`enable` (returns the live :class:`Tracer`) or by
setting the ``REPRO_TRACE`` environment variable before the first traced
call: ``REPRO_TRACE=1`` enables collection; any other non-false value is
treated as an output path to which a Chrome trace-event JSON is written at
interpreter exit (``REPRO_TRACE=trace.json python examples/quickstart.py``).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "enable",
    "disable",
    "is_enabled",
    "capture",
]

_clock = time.perf_counter


class Span:
    """One timed, named region of the execution, recorded by a tracer.

    Attributes
    ----------
    name:
        Leaf name, e.g. ``"gemm"`` or ``"iter[3]"``.
    path:
        ``"/"``-joined ancestry on the recording thread, e.g.
        ``"cp_als/iter[3]/mode[1]/mttkrp.twostep/gemm"``.
    tid / thread_name:
        Identity of the recording thread (pool workers show up on their
        own timeline lanes in the Chrome trace).
    start / end:
        Monotonic seconds (shared clock across the trace); ``end`` is
        ``None`` while the span is open.
    args:
        Free-form metadata set at creation (mode, shape, schedule, ...).
    counters:
        Numeric accumulators attached while the span is current
        (``flops``, ``bytes_read``, ``gemm_calls``, ``imbalance``, ...).
    """

    __slots__ = ("name", "path", "tid", "thread_name", "start", "end",
                 "args", "counters")

    def __init__(self, name: str, path: str, tid: int, thread_name: str,
                 start: float, args: dict | None = None) -> None:
        self.name = name
        self.path = path
        self.tid = tid
        self.thread_name = thread_name
        self.start = start
        self.end: float | None = None
        self.args: dict = args or {}
        self.counters: dict[str, float] = {}

    @property
    def duration(self) -> float:
        """Span wall time in seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def add(self, counter: str, value: float) -> None:
        """Accumulate ``value`` into a named counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0.0) + float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.path!r}, {self.duration * 1e3:.3f} ms, "
                f"counters={self.counters})")


class Tracer:
    """Collects nested spans from any number of threads.

    A tracer is usable directly (instantiate and pass around / install via
    :func:`enable`); the instrumented library code always goes through
    :func:`get_tracer` so a single ``enable()`` call traces the whole
    stack.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()
        # Tracer-level counters catch add_counter() calls made while no
        # span is open on the calling thread.
        self.counters: dict[str, float] = {}
        self.epoch = _clock()
        self.epoch_unix = time.time()

    # -- span recording ------------------------------------------------ #

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **args):
        """Open a nested span on the calling thread.

        >>> tr = Tracer()
        >>> with tr.span("outer"):
        ...     with tr.span("inner", mode=1) as sp:
        ...         sp.add("flops", 10)
        >>> [s.path for s in tr.spans()]
        ['outer/inner', 'outer']
        """
        stack = self._stack()
        path = f"{stack[-1].path}/{name}" if stack else name
        thread = threading.current_thread()
        sp = Span(name, path, thread.ident or 0, thread.name, _clock(),
                  args or None)
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.end = _clock()
            stack.pop()
            with self._lock:
                self._spans.append(sp)

    def record(self, name: str, start: float, end: float, **args) -> Span:
        """Record a retrospective span from already-measured clock values.

        Used where the measurement already exists (per-worker phase clocks
        inside kernels); the span nests under the calling thread's current
        span, and ``start``/``end`` must come from the same monotonic
        clock (:func:`time.perf_counter`).
        """
        stack = self._stack()
        path = f"{stack[-1].path}/{name}" if stack else name
        thread = threading.current_thread()
        sp = Span(name, path, thread.ident or 0, thread.name, float(start),
                  args or None)
        sp.end = float(end)
        with self._lock:
            self._spans.append(sp)
        return sp

    def record_region(self, name: str, start: float, end: float,
                      worker_seconds: list[float]) -> Span:
        """Record a parallel region and its load-imbalance metric.

        ``worker_seconds`` holds the wall time of each *participating*
        worker.  The span's counters are ``workers``, ``max_worker_s``,
        ``mean_worker_s`` and ``imbalance`` = max/mean, which lies in
        ``[1, workers]`` (1.0 for a perfectly balanced region; defined as
        1.0 for empty/zero-time regions).
        """
        sp = self.record(name, start, end)
        n = len(worker_seconds)
        mx = max(worker_seconds) if worker_seconds else 0.0
        mean = (sum(worker_seconds) / n) if n else 0.0
        sp.counters["workers"] = float(n)
        sp.counters["max_worker_s"] = float(mx)
        sp.counters["mean_worker_s"] = float(mean)
        sp.counters["imbalance"] = float(mx / mean) if mean > 0.0 else 1.0
        sp.args["worker_seconds"] = [round(float(s), 9) for s in worker_seconds]
        return sp

    def add_counter(self, name: str, value: float) -> None:
        """Accumulate into the innermost open span on this thread.

        Falls back to the tracer-level :attr:`counters` dict when no span
        is open (e.g. a kernel called outside any traced context).
        """
        stack = self._stack()
        if stack:
            stack[-1].add(name, value)
        else:
            with self._lock:
                self.counters[name] = self.counters.get(name, 0.0) + float(value)

    # -- access -------------------------------------------------------- #

    def spans(self) -> list[Span]:
        """Snapshot of all completed spans (in completion order)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop all completed spans and tracer-level counters."""
        with self._lock:
            self._spans.clear()
            self.counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer({len(self.spans())} spans)"


class _NullSpan:
    """Shared no-op stand-in for :class:`Span`; one instance, zero state."""

    __slots__ = ()
    counters: dict = {}
    args: dict = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def add(self, counter, value):
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stub used when tracing is disabled.

    ``span()``/``record()`` return one shared singleton object, so the
    disabled path allocates nothing per call and parallel regions can gate
    their instrumentation on the class attribute :attr:`enabled`.
    """

    __slots__ = ()
    enabled = False

    def span(self, name, **args):
        return _NULL_SPAN

    def record(self, name, start, end, **args):
        return _NULL_SPAN

    def record_region(self, name, start, end, worker_seconds):
        return _NULL_SPAN

    def add_counter(self, name, value):
        pass

    def spans(self):
        return []

    def clear(self):
        pass


NULL_TRACER = NullTracer()

_state_lock = threading.Lock()
_active: Tracer | None = None
_env_checked = False


def _check_env() -> None:
    global _env_checked, _active
    with _state_lock:
        if _env_checked:
            return
        _env_checked = True
        value = os.environ.get("REPRO_TRACE", "").strip()
        if not value or value.lower() in ("0", "false", "off", "no"):
            return
        _active = Tracer()
        if value.lower() not in ("1", "true", "on", "yes"):
            # Treat the value as an output path; dump at interpreter exit.
            import atexit

            tracer = _active
            path = value

            def _dump() -> None:  # pragma: no cover - exercised via subprocess
                from repro.obs.export import save_chrome_trace

                try:
                    save_chrome_trace(tracer, path)
                except OSError as exc:
                    import sys

                    print(f"repro.obs: could not write trace to {path!r}: "
                          f"{exc}", file=sys.stderr)

            atexit.register(_dump)


def get_tracer() -> Tracer | NullTracer:
    """The active tracer, or :data:`NULL_TRACER` when tracing is off.

    This is the hot-path accessor every instrumented call site uses; it is
    a global read plus (on the first call only) one ``REPRO_TRACE``
    environment check.
    """
    if not _env_checked:
        _check_env()
    active = _active
    return active if active is not None else NULL_TRACER


def enable(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    global _active, _env_checked
    with _state_lock:
        _env_checked = True
        _active = tracer if tracer is not None else Tracer()
        return _active


def disable() -> Tracer | None:
    """Stop tracing; returns the tracer that was active (for export)."""
    global _active
    with _state_lock:
        previous = _active
        _active = None
        return previous


def is_enabled() -> bool:
    """Whether a live tracer is currently installed."""
    return get_tracer().enabled


@contextmanager
def capture(tracer: Tracer | None = None):
    """Temporarily install a fresh tracer; restores the prior state.

    The benchmark harness uses this to run one instrumented repetition of
    a measured kernel and snapshot its FLOP/byte/imbalance counters
    without clobbering a user-enabled tracer (or enabling tracing for the
    rest of the process):

    >>> import repro.obs as obs
    >>> with obs.capture() as tr:
    ...     pass  # run the kernel once
    >>> tr.spans()
    []
    """
    global _active, _env_checked
    with _state_lock:
        previous = _active
        previously_checked = _env_checked
        _env_checked = True
        _active = tracer if tracer is not None else Tracer()
        installed = _active
    try:
        yield installed
    finally:
        with _state_lock:
            _active = previous
            _env_checked = previously_checked
