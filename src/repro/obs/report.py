"""Command-line report over an exported Chrome trace file.

Usage::

    python -m repro.obs.report trace.json
    repro-trace-report trace.json            # console script

Prints the Figure 6/8-style phase breakdown (leaf spans aggregated by
name, with achieved GFLOP/s where FLOP counters are present) and the
per-region load-imbalance table, reconstructed purely from the exported
JSON — no live tracer required.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import records_from_events, summarize_records

__all__ = ["main", "report_from_file"]


def report_from_file(path: str) -> str:
    """Load a Chrome trace-event JSON file and render the summary table."""
    with open(path, encoding="utf-8") as fh:
        trace = json.load(fh)
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    if not isinstance(events, list):
        raise ValueError(
            f"{path}: expected a Chrome trace (traceEvents list), "
            f"got {type(events).__name__}"
        )
    return summarize_records(records_from_events(events))


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.obs.report`` / the console script."""
    parser = argparse.ArgumentParser(
        prog="repro-trace-report",
        description=(
            "Summarize a repro Chrome trace: phase breakdown and "
            "per-region load imbalance."
        ),
    )
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    args = parser.parse_args(argv)
    try:
        print(report_from_file(args.trace))
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
