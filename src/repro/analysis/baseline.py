"""Suppression baseline and ratchet for the analyzer.

``repro-analysis baseline write`` records the current unsuppressed
finding counts (total, per rule, per file); ``baseline check`` fails when
any count *rises*.  Counts going down is the point — the baseline is a
ratchet, not a snapshot: CI stays green while existing debt is paid off,
and goes red the moment new debt is added.  After paying debt down,
re-run ``baseline write`` to lock in the lower counts.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "baseline_from_findings",
    "write_baseline",
    "check_baseline",
]

_VERSION = 1

DEFAULT_BASELINE_PATH = "analysis-baseline.json"


def baseline_from_findings(findings) -> dict:
    """The baseline payload for a finding list (unsuppressed only)."""
    active = [f for f in findings if not f.suppressed]
    by_rule = Counter(f.rule for f in active)
    by_file = Counter(f.path for f in active)
    return {
        "version": _VERSION,
        "total": len(active),
        "by_rule": dict(sorted(by_rule.items())),
        "by_file": dict(sorted(by_file.items())),
    }


def write_baseline(path: str | Path, findings) -> dict:
    payload = baseline_from_findings(findings)
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return payload


def check_baseline(path: str | Path, findings) -> tuple[bool, list[str]]:
    """Ratchet check: ``(ok, problems)``.

    Fails when the total or any per-rule count exceeds the recorded
    baseline (a rule absent from the baseline has a recorded count of
    zero).  Reports — but does not fail on — counts that went down, as a
    nudge to re-write the baseline and lock in the improvement.
    """
    path = Path(path)
    if not path.exists():
        return False, [
            f"no baseline at {path} — run `baseline write` first"
        ]
    try:
        recorded = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return False, [f"unreadable baseline {path}: {exc}"]
    current = baseline_from_findings(findings)
    problems: list[str] = []
    if current["total"] > recorded.get("total", 0):
        problems.append(
            f"total findings rose: {recorded.get('total', 0)} -> "
            f"{current['total']}"
        )
    recorded_rules = recorded.get("by_rule", {})
    for rule, count in current["by_rule"].items():
        old = recorded_rules.get(rule, 0)
        if count > old:
            problems.append(f"{rule} findings rose: {old} -> {count}")
    ok = not problems
    if ok:
        improved = [
            f"{rule}: {old} -> {current['by_rule'].get(rule, 0)}"
            for rule, old in recorded_rules.items()
            if current["by_rule"].get(rule, 0) < old
        ]
        if improved:
            problems.append(
                "counts went down (" + ", ".join(improved)
                + ") — re-run `baseline write` to ratchet"
            )
    return ok, problems
