"""Command-line entry point: ``python -m repro.analysis`` / ``repro-analysis``.

Exit status is designed for CI: 0 when no *unsuppressed error-severity*
findings remain, 1 otherwise.  ``--strict`` promotes warnings to the same
treatment.  ``--json`` emits the machine-readable report instead of text.

``repro-analysis baseline write [paths]`` records current finding counts
into ``analysis-baseline.json``; ``baseline check`` exits 2 when any
count rose above the recorded baseline (the ratchet).

``--changed [BASE]`` lints only files changed in git relative to BASE
(default ``HEAD``); ``--cache [PATH]`` enables the incremental result
cache.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    check_baseline,
    write_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_PATH, LintCache
from repro.analysis.lint import lint_paths, render_json, render_text
from repro.analysis.rules import get_project_rules, get_rules

__all__ = ["main"]


def _changed_files(base: str, paths: list[str]) -> list[str]:
    """Changed/untracked ``.py`` files from git, restricted to ``paths``."""
    cmd = ["git", "diff", "--name-only", "--diff-filter=d", base, "--"]
    out = subprocess.run(
        cmd, capture_output=True, text=True, check=True,
    ).stdout
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard"],
        capture_output=True, text=True, check=True,
    ).stdout
    roots = [Path(p).resolve() for p in paths]
    changed: list[str] = []
    for line in (out + untracked).splitlines():
        f = Path(line.strip())
        if not line.strip() or f.suffix != ".py" or not f.exists():
            continue
        r = f.resolve()
        if any(r == root or root in r.parents for root in roots):
            changed.append(str(f))
    return sorted(set(changed))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=(
            "Parallel-hazard lint for the MTTKRP reproduction: checks the "
            "partition/layout/lifetime invariants of the paper's parallel "
            "algorithms (see docs/analysis.md for the rule catalog)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list suppressed findings in text output",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="BASE",
        help="lint only files changed in git vs BASE (default HEAD), "
             "plus untracked files, restricted to the given paths",
    )
    parser.add_argument(
        "--cache", nargs="?", const=DEFAULT_CACHE_PATH, default=None,
        metavar="PATH",
        help=f"use an incremental result cache (default {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--baseline-file", default=DEFAULT_BASELINE_PATH, metavar="PATH",
        help=f"baseline location for the baseline subcommand "
             f"(default {DEFAULT_BASELINE_PATH})",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    baseline_action: str | None = None
    if argv and argv[0] == "baseline":
        if len(argv) < 2 or argv[1] not in ("write", "check"):
            print("usage: repro-analysis baseline {write,check} [paths...]",
                  file=sys.stderr)
            return 2
        baseline_action = argv[1]
        argv = argv[2:]

    parser = _build_parser()
    args = parser.parse_args(argv)

    ids = ([s.strip() for s in args.rules.split(",") if s.strip()]
           if args.rules else None)
    try:
        rules = get_rules(ids)
    except ValueError as exc:
        parser.error(str(exc))
    project_rules = get_project_rules(ids)

    paths = args.paths
    if args.changed is not None:
        try:
            paths = _changed_files(args.changed, args.paths)
        except (subprocess.CalledProcessError, OSError) as exc:
            print(f"repro-analysis: --changed failed: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print("0 error(s), 0 warning(s), 0 suppressed (no changed files)")
            return 0

    cache = None
    if args.cache is not None:
        cache = LintCache(
            args.cache, LintCache.rules_signature(rules, project_rules),
        )

    findings = lint_paths(paths, rules, project_rules, cache=cache)
    if cache is not None:
        cache.save()

    if baseline_action == "write":
        payload = write_baseline(args.baseline_file, findings)
        print(f"baseline written to {args.baseline_file}: "
              f"{payload['total']} finding(s)")
        return 0
    if baseline_action == "check":
        ok, problems = check_baseline(args.baseline_file, findings)
        for p in problems:
            print(p)
        if ok:
            print(f"baseline check passed ({args.baseline_file})")
            return 0
        return 2

    if args.json:
        print(render_json(findings))
    else:
        print(render_text(findings, verbose=args.verbose))

    active = [f for f in findings if not f.suppressed]
    bad = [f for f in active
           if f.severity == "error" or (args.strict and f.severity == "warning")]
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
