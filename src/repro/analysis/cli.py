"""Command-line entry point: ``python -m repro.analysis`` / ``repro-analysis``.

Exit status is designed for CI: 0 when no *unsuppressed error-severity*
findings remain, 1 otherwise.  ``--strict`` promotes warnings to the same
treatment.  ``--json`` emits the machine-readable report instead of text.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import lint_paths, render_json, render_text
from repro.analysis.rules import get_rules

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=(
            "Parallel-hazard lint for the MTTKRP reproduction: checks the "
            "partition/layout/lifetime invariants of the paper's parallel "
            "algorithms (see docs/analysis.md for the rule catalog)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list suppressed findings in text output",
    )
    args = parser.parse_args(argv)

    ids = ([s.strip() for s in args.rules.split(",") if s.strip()]
           if args.rules else None)
    try:
        rules = get_rules(ids)
    except ValueError as exc:
        parser.error(str(exc))

    findings = lint_paths(args.paths, rules)
    if args.json:
        print(render_json(findings))
    else:
        print(render_text(findings, verbose=args.verbose))

    active = [f for f in findings if not f.suppressed]
    bad = [f for f in active
           if f.severity == "error" or (args.strict and f.severity == "warning")]
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
