"""Driver for the parallel-hazard lint: file collection, suppression
handling, and text/JSON rendering.

The rules themselves live in :mod:`repro.analysis.rules`; this module turns
their :class:`~repro.analysis.rules.base.RawFinding` hits into
:class:`Finding` records with severity, hint, and ``# repro:
ignore[RAxxx]`` suppression applied, and renders them for humans (text) or
CI (JSON + exit code).

Suppression syntax
------------------
A comment of the form ``# repro: ignore[RA001]`` (comma-separated list
allowed: ``ignore[RA001, RA003]``) on the flagged line **or the line
directly above it** suppresses matching findings.  Suppressed findings are
retained (``suppressed=True``) so the CLI can report them with ``-v`` and
tests can assert a suppression actually matched something.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.analysis.callgraph import Project
from repro.analysis.rules import ALL_RULES, PROJECT_RULES, ProjectRule, Rule

__all__ = [
    "Finding",
    "collect_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "render_text",
    "render_json",
]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One lint hit, post-suppression."""

    rule: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    col: int
    message: str
    hint: str
    suppressed: bool = False


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    out: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(
                f for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            out.append(p)
    return out


def _suppressions(source: str) -> dict[int, set[str]]:
    """line number -> rule ids suppressed *at* that line.

    A directive on line N covers findings on line N and line N+1, matching
    the documented "same line or the line above" contract.
    """
    by_line: dict[int, set[str]] = {}
    for i, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
        by_line.setdefault(i, set()).update(ids)
        by_line.setdefault(i + 1, set()).update(ids)
    return by_line


def lint_file(path: str | Path,
              rules: tuple[Rule, ...] = ALL_RULES,
              source: str | None = None) -> list[Finding]:
    """Lint one file.  A syntax error yields a single PARSE error finding
    rather than crashing the whole run."""
    path = Path(path)
    if source is None:
        source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(
            rule="PARSE", severity="error", path=str(path),
            line=exc.lineno or 0, col=exc.offset or 0,
            message=f"could not parse file: {exc.msg}", hint="",
        )]
    suppressed_at = _suppressions(source)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(str(path)):
            continue
        for raw in rule.check(tree, str(path)):
            sup = rule.id in suppressed_at.get(raw.line, ())
            findings.append(Finding(
                rule=rule.id, severity=rule.severity, path=str(path),
                line=raw.line, col=raw.col, message=raw.message,
                hint=rule.hint, suppressed=sup,
            ))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_project(files: list[Path],
                 project_rules: tuple[ProjectRule, ...] = PROJECT_RULES,
                 sources: dict[str, str] | None = None) -> list[Finding]:
    """Run the project-level (cross-module) rules over ``files``.

    Suppression directives work exactly as for per-file rules: findings
    are anchored to a concrete file/line, and a ``# repro: ignore[RAxxx]``
    on (or directly above) that line suppresses them.
    """
    if not project_rules or not files:
        return []
    project = Project.load(files, sources=sources)
    sup_by_path: dict[str, dict[int, set[str]]] = {}

    def suppressed_at(path: str) -> dict[int, set[str]]:
        if path not in sup_by_path:
            src = (sources or {}).get(path)
            if src is None:
                try:
                    src = Path(path).read_text(encoding="utf-8")
                except OSError:
                    src = ""
            sup_by_path[path] = _suppressions(src)
        return sup_by_path[path]

    findings: list[Finding] = []
    for rule in project_rules:
        for raw in rule.check_project(project):
            sup = rule.id in suppressed_at(raw.path).get(raw.line, ())
            findings.append(Finding(
                rule=rule.id, severity=rule.severity, path=raw.path,
                line=raw.line, col=raw.col, message=raw.message,
                hint=rule.hint, suppressed=sup,
            ))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(paths: list[str | Path],
               rules: tuple[Rule, ...] = ALL_RULES,
               project_rules: tuple[ProjectRule, ...] = PROJECT_RULES,
               cache=None) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``: per-file rules, then the
    project rules over the same file set.

    ``cache`` is an optional :class:`repro.analysis.cache.LintCache`;
    per-file results are reused when a file's content hash is unchanged,
    and the project-rule pass is reused when the whole file set (plus the
    auxiliary oracle/docs sources) is unchanged.  The caller saves the
    cache.
    """
    files = collect_files(paths)
    sources: dict[str, str] = {}
    for f in files:
        try:
            sources[str(f)] = f.read_text(encoding="utf-8")
        except OSError:
            continue
    files = [f for f in files if str(f) in sources]

    findings: list[Finding] = []
    for f in files:
        src = sources[str(f)]
        if cache is not None:
            hit = cache.get_file(str(f), src)
            if hit is not None:
                findings.extend(hit)
                continue
        per_file = lint_file(f, rules, source=src)
        if cache is not None:
            cache.put_file(str(f), src, per_file)
        findings.extend(per_file)

    if cache is not None:
        digest = cache.project_digest(files, sources)
        hit = cache.get_project(digest)
        if hit is not None:
            findings.extend(hit)
            return findings
        proj = lint_project(files, project_rules, sources=sources)
        cache.put_project(digest, proj)
        findings.extend(proj)
        return findings

    findings.extend(lint_project(files, project_rules, sources=sources))
    return findings


def render_text(findings: list[Finding], *, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus its fix hint."""
    lines: list[str] = []
    active = [f for f in findings if not f.suppressed]
    for f in active:
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}"
        )
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    if verbose:
        for f in findings:
            if f.suppressed:
                lines.append(
                    f"{f.path}:{f.line}:{f.col}: {f.rule} suppressed: "
                    f"{f.message}"
                )
    n_err = sum(1 for f in active if f.severity == "error")
    n_warn = sum(1 for f in active if f.severity == "warning")
    n_sup = sum(1 for f in findings if f.suppressed)
    lines.append(
        f"{n_err} error(s), {n_warn} warning(s), {n_sup} suppressed"
    )
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable report for CI consumption."""
    active = [f for f in findings if not f.suppressed]
    payload = {
        "findings": [asdict(f) for f in findings],
        "summary": {
            "errors": sum(1 for f in active if f.severity == "error"),
            "warnings": sum(1 for f in active if f.severity == "warning"),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }
    return json.dumps(payload, indent=2)
