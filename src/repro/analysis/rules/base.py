"""Shared AST machinery for the parallel-hazard lint rules.

The rules in this package are *repo-specific*: they know the shapes of this
codebase's parallel regions (``ThreadPool.run_tasks`` task lists,
``parallel_for``/``Executor.parallel_for`` region kernels, the ``_k_*``
module-level kernel naming convention) and the partition contract they must
obey (every shared write goes through an index derived from the worker's
``(worker, start, stop)`` block, i.e. ultimately from
:func:`repro.parallel.partition.contiguous_blocks`).

This module provides the pieces every rule needs:

* :class:`Rule` — the rule interface (id, severity, hint, ``check``);
* :class:`RawFinding` — a pre-suppression finding location + message;
* :func:`find_task_contexts` — discovery of *task contexts*: function or
  lambda bodies that execute on pool/executor workers;
* :func:`derived_names` — the fixed-point set of names derived from a task
  context's partition parameters (loop variables over ``range(start,
  stop)``, values unpacked from partition-indexed containers, ...);
* small name/scope utilities (:func:`names_loaded`, :func:`bound_names`,
  :func:`free_names`, :func:`attach_parents`).

Everything is purely syntactic (single file at a time, no imports executed,
no type inference).  The rules err on the side of precision: they flag the
patterns that violate the paper's invariants in *this* codebase's idiom and
stay quiet about constructs they cannot prove hazardous.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "Rule",
    "ProjectRule",
    "RawFinding",
    "ProjectRawFinding",
    "TaskContext",
    "attach_parents",
    "bound_names",
    "free_names",
    "names_loaded",
    "find_task_contexts",
    "derived_names",
    "subscript_root",
    "subscript_indices",
]

#: Calls whose results are, by construction, valid partition bounds.
PARTITION_SOURCES = frozenset({"contiguous_blocks", "block_bounds", "owner_of"})

#: Methods that launch a parallel region with one callable per worker.
REGION_LAUNCHERS = frozenset({"run_tasks", "parallel_for"})


@dataclass(frozen=True)
class RawFinding:
    """A rule hit before suppression handling: location plus message."""

    line: int
    col: int
    message: str


@dataclass(frozen=True)
class ProjectRawFinding:
    """A project-rule hit: a :class:`RawFinding` plus the file it lands in.

    Project rules see the whole :class:`~repro.analysis.callgraph.Project`
    at once, so — unlike per-file rules — the flagged location is not
    implied by the lint driver's current file.
    """

    path: str
    line: int
    col: int
    message: str


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`, which
    receives the parsed module (with parent links attached, see
    :func:`attach_parents`) and the path being linted, and returns raw
    findings.  ``allowed_paths`` entries are path *suffixes* exempt from the
    rule (e.g. the module that owns an otherwise-forbidden construct).
    """

    id: str = ""
    severity: str = "error"  # "error" | "warning"
    title: str = ""
    hint: str = ""
    allowed_paths: tuple[str, ...] = ()

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        raise NotImplementedError

    def applies_to(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        return not any(norm.endswith(suffix) for suffix in self.allowed_paths)


class ProjectRule:
    """Base class for call-graph-aware rules (RA007, RA009, RA010).

    Same id/severity/title/hint surface as :class:`Rule`, but
    :meth:`check_project` receives the whole parsed
    :class:`~repro.analysis.callgraph.Project` and returns findings that
    name their own file.  The lint driver applies per-file suppression
    comments to them exactly as for per-file rules.
    """

    id: str = ""
    severity: str = "error"
    title: str = ""
    hint: str = ""

    def check_project(self, project) -> list[ProjectRawFinding]:
        raise NotImplementedError


# --------------------------------------------------------------------- #
# Generic AST utilities
# --------------------------------------------------------------------- #


def attach_parents(tree: ast.AST) -> None:
    """Attach a ``_repro_parent`` link to every node (rules need context)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_repro_parent", None)


def names_loaded(node: ast.AST) -> set[str]:
    """Every name read anywhere inside ``node``."""
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _function_body(fn: ast.AST) -> list[ast.stmt] | ast.expr:
    if isinstance(fn, ast.Lambda):
        return fn.body
    return fn.body  # type: ignore[return-value]


def _param_names(fn: ast.AST) -> list[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names += [a.arg for a in args.kwonlyargs]
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def bound_names(fn: ast.AST) -> set[str]:
    """Names bound inside a function/lambda: params, assignments, loop and
    comprehension targets, ``with ... as`` targets, local imports and defs.

    Nested function bodies are *not* descended into (their bindings are not
    visible in the enclosing scope), but their names are bound.
    """
    bound = set(_param_names(fn))
    body = _function_body(fn)
    nodes = body if isinstance(body, list) else [body]
    for stmt in nodes:
        for node in _walk_same_scope(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    bound |= _target_names(t)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bound |= _target_names(node.target)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
            elif isinstance(node, ast.withitem) and node.optional_vars:
                bound |= _target_names(node.optional_vars)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                # Comprehension targets leak nothing in py3, but treat them
                # as bound so they never look like captured state.
                for gen in node.generators:
                    bound |= _target_names(gen.target)
    return bound


def _walk_same_scope(node: ast.AST):
    """``ast.walk`` that does not descend into nested function bodies."""
    yield node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    for child in ast.iter_child_nodes(node):
        yield from _walk_same_scope(child)


def _target_names(target: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def free_names(fn: ast.AST) -> set[str]:
    """Names a function/lambda reads from enclosing scopes (captures)."""
    return names_loaded(fn if isinstance(fn, ast.Lambda) else fn) - bound_names(fn)


def subscript_root(node: ast.expr) -> ast.expr:
    """The base expression under a chain of subscripts: ``a[i][j]`` -> ``a``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def subscript_indices(node: ast.expr) -> list[ast.expr]:
    """All index expressions along a chain of subscripts."""
    indices = []
    while isinstance(node, ast.Subscript):
        indices.append(node.slice)
        node = node.value
    return indices


# --------------------------------------------------------------------- #
# Task-context discovery
# --------------------------------------------------------------------- #


@dataclass
class TaskContext:
    """A function or lambda body that executes on a pool/executor worker.

    Attributes
    ----------
    node:
        The ``FunctionDef`` or ``Lambda`` node.
    kind:
        ``"kernel"`` (``fn(worker, start, stop, *shared)`` region kernels)
        or ``"task"`` (zero/few-arg callables from ``run_tasks`` lists).
    partition:
        Parameter names that carry the worker's partition (worker index
        and block bounds).  Writes indexed through these (or names derived
        from them) respect the contiguous-block contract.
    shared:
        Names visible in the body that refer to *shared* state: non-
        partition parameters (kernel operands) and captured free variables.
    """

    node: ast.AST
    kind: str
    partition: set[str] = field(default_factory=set)
    shared: set[str] = field(default_factory=set)

    @property
    def line(self) -> int:
        return self.node.lineno


def _is_region_launch(call: ast.Call) -> str | None:
    """``"run_tasks"``/``"parallel_for"`` if ``call`` launches a region."""
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr in REGION_LAUNCHERS:
        return fn.attr
    if isinstance(fn, ast.Name) and fn.id in REGION_LAUNCHERS:
        return fn.id
    return None


def _local_defs(tree: ast.AST) -> dict[str, ast.AST]:
    """Every named function definition in the module, by name."""
    defs: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs[node.name] = node
    return defs


def _kernel_context(fn: ast.AST) -> TaskContext:
    params = _param_names(fn)
    partition = set(params[:3])
    shared = set(params[3:]) | free_names(fn)
    return TaskContext(fn, "kernel", partition, shared)


def _task_closure_context(fn: ast.AST) -> TaskContext:
    # run_tasks callables carry their identity via default-bound params
    # (``lambda t=t, start=start, stop=stop: ...``); those params are the
    # partition.  Everything captured is shared.
    partition = set(_param_names(fn))
    shared = free_names(fn)
    return TaskContext(fn, "task", partition, shared)


def _closures_in(expr: ast.expr, defs: dict[str, ast.AST],
                 scope: ast.AST) -> list[ast.AST]:
    """Callables contributed by a run_tasks argument expression.

    Handles inline lambdas, list literals and comprehensions of lambdas,
    and a local name assigned/appended such callables within ``scope``.
    """
    found: list[ast.AST] = []
    if isinstance(expr, ast.Lambda):
        return [expr]
    if isinstance(expr, (ast.List, ast.Tuple)):
        for elt in expr.elts:
            found.extend(_closures_in(elt, defs, scope))
        return found
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
        return _closures_in(expr.elt, defs, scope)
    if isinstance(expr, ast.IfExp):
        return (_closures_in(expr.body, defs, scope)
                + _closures_in(expr.orelse, defs, scope))
    if isinstance(expr, ast.Name):
        name = expr.id
        if name in defs:
            return [defs[name]]
        # A list built locally: ``name = [...]`` / ``name.append(...)``.
        for node in ast.walk(scope):
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == name
                            for t in node.targets)):
                found.extend(_closures_in(node.value, defs, scope))
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "append"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                    and node.args):
                found.extend(_closures_in(node.args[0], defs, scope))
    if isinstance(expr, ast.Call):
        # e.g. ``timed(i, task)`` wrappers — look inside the arguments.
        for arg in expr.args:
            found.extend(_closures_in(arg, defs, scope))
    return found


def find_task_contexts(tree: ast.Module) -> list[TaskContext]:
    """Discover every task context in a module (see module docstring).

    Three sources, matching this repo's region idioms:

    1. module-level functions named ``_k_*`` (the documented kernel naming
       convention for the process backend);
    2. the first argument of any ``*.parallel_for(fn, ...)`` call, resolved
       to a lambda or a locally/module-defined function;
    3. callables inside the first argument of any ``*.run_tasks(...)``
       call (inline lambdas, list literals/comprehensions, or a local name
       those were assigned/appended to).
    """
    defs = _local_defs(tree)
    contexts: dict[int, TaskContext] = {}

    for name, fn in defs.items():
        if name.startswith("_k_"):
            contexts[id(fn)] = _kernel_context(fn)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        launcher = _is_region_launch(node)
        if launcher is None or not node.args:
            continue
        scope = _enclosing_scope(node, tree)
        first = node.args[0]
        if launcher == "parallel_for":
            target: ast.AST | None = None
            if isinstance(first, ast.Lambda):
                target = first
            elif isinstance(first, ast.Name) and first.id in defs:
                target = defs[first.id]
            if target is not None and id(target) not in contexts:
                contexts[id(target)] = _kernel_context(target)
        else:  # run_tasks
            for fn in _closures_in(first, defs, scope):
                if id(fn) not in contexts:
                    if isinstance(fn, ast.Lambda):
                        contexts[id(fn)] = _task_closure_context(fn)
                    else:
                        ctx = (_kernel_context(fn)
                               if len(_param_names(fn)) >= 3
                               else _task_closure_context(fn))
                        contexts[id(fn)] = ctx
    return list(contexts.values())


def _enclosing_scope(node: ast.AST, tree: ast.Module) -> ast.AST:
    cur = parent_of(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            return cur
        cur = parent_of(cur)
    return tree


# --------------------------------------------------------------------- #
# Partition-derived name propagation
# --------------------------------------------------------------------- #


def derived_names(ctx: TaskContext) -> set[str]:
    """Names provably derived from the context's partition parameters.

    Seeds with the partition params and any name assigned from a
    :data:`PARTITION_SOURCES` call, then iterates to a fixed point over the
    body: an assignment (or ``for`` target) whose right-hand side mentions
    a derived name makes its targets derived.  This is deliberately
    generous about *how* the derivation happens (``int(pairs[i, 0])``,
    tuple unpacking, ``enumerate`` over a derived slice, arithmetic) —
    the point of RA001 is writes with **no** connection to the partition.
    """
    derived = set(ctx.partition)
    body = _function_body(ctx.node)
    stmts = body if isinstance(body, list) else [body]

    def mentions_derived(expr: ast.AST) -> bool:
        if any(n in derived for n in names_loaded(expr)):
            return True
        for node in ast.walk(expr):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, (ast.Name, ast.Attribute))):
                fname = (node.func.id if isinstance(node.func, ast.Name)
                         else node.func.attr)
                if fname in PARTITION_SOURCES:
                    return True
        return False

    changed = True
    while changed:
        changed = False
        for stmt in stmts:
            for node in _walk_same_scope(stmt) if isinstance(stmt, ast.stmt) \
                    else ast.walk(stmt):
                targets: list[ast.AST] = []
                source: ast.AST | None = None
                if isinstance(node, ast.Assign):
                    targets, source = node.targets, node.value
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if node.value is not None:
                        targets, source = [node.target], node.value
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    targets, source = [node.target], node.iter
                if source is None or not mentions_derived(source):
                    continue
                for t in targets:
                    new = _target_names(t) - derived
                    if new:
                        derived |= new
                        changed = True
    return derived
