"""Dispatch-contract rules: RA009 (obs accounting) and RA010 (surfaces).

The dispatch table in :mod:`repro.core.dispatch` is the repo's kernel
contract: every method name in ``MTTKRP_METHODS`` that resolves to a
kernel must stay (a) *accountable* — the kernel (or something it calls)
attaches flop/byte counters to the obs tracer, so
``bytes_lower_bound``-vs-achieved reporting cannot silently rot when a
kernel is added — and (b) *covered* — the method appears in the
differential oracle's method list, the autotuner's candidate set, a
bench suite, and the docs.  Both checks are static AST cross-references
over the :class:`~repro.analysis.callgraph.Project`.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    extract_dispatch_tables,
)
from repro.analysis.rules.base import ProjectRawFinding, ProjectRule

__all__ = ["RA009MissingCostCounters", "RA010ContractCompleteness"]

#: Counter names whose presence marks a kernel as cost-accounted.
_COST_COUNTERS = frozenset({
    "flops", "bytes_read", "bytes_written", "bytes_lower_bound",
})


def _adds_cost_counter(fn_node: ast.AST) -> bool:
    """Does this function attach a cost counter (``tr.add_counter("flops",
    ...)`` / ``span.add("bytes_read", ...)`` / ``tr.span(..., flops=...)``)?"""
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in ("add_counter", "add") and node.args:
                first = node.args[0]
                if (isinstance(first, ast.Constant)
                        and first.value in _COST_COUNTERS):
                    return True
            if node.func.attr == "span":
                if any(kw.arg in _COST_COUNTERS for kw in node.keywords):
                    return True
    return False


class RA009MissingCostCounters(ProjectRule):
    id = "RA009"
    severity = "error"
    title = "dispatch-registered kernel attaches no obs cost counters"
    hint = (
        "call repro.core.flops.record_mttkrp_cost(get_tracer(), ...) on "
        "kernel entry (before opening phase spans), or attach "
        "flops/bytes_* counters on a span the kernel owns; uncosted "
        "kernels make traced runs and bench records silently incomparable"
    )

    def check_project(self, project: Project) -> list[ProjectRawFinding]:
        findings: list[ProjectRawFinding] = []
        seen: set[str] = set()
        for mod in project.modules.values():
            for table in extract_dispatch_tables(project, mod):
                for method, kernel in table.entries.items():
                    if kernel.qualname in seen:
                        continue
                    seen.add(kernel.qualname)
                    if self._instrumented(project, kernel):
                        continue
                    findings.append(ProjectRawFinding(
                        kernel.path, kernel.line,
                        kernel.node.col_offset,
                        f"kernel {kernel.name!r} (dispatch method "
                        f"{method!r} in {table.function.name}) attaches no "
                        f"flops/bytes counters anywhere in its call graph",
                    ))
        return findings

    @staticmethod
    def _instrumented(project: Project, kernel: FunctionInfo) -> bool:
        return any(
            _adds_cost_counter(fn.node) for fn in project.reachable(kernel)
        )


# --------------------------------------------------------------------- #
# RA010: contract completeness
# --------------------------------------------------------------------- #

#: Surfaces every dispatched method must appear on.
_SURFACES = ("oracle", "tuner", "bench", "docs")


def _string_literals(node: ast.AST) -> set[str]:
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def _normalize(labels: set[str]) -> set[str]:
    """``"twostep:left"`` counts as coverage of ``"twostep"``."""
    return {lab.split(":")[0] for lab in labels} | labels


class RA010ContractCompleteness(ProjectRule):
    id = "RA010"
    severity = "error"
    title = "dispatched method missing from a contract surface"
    hint = (
        "add the method to the missing surface (differential-oracle "
        "method list, autotuner candidate_set, a bench suite, the docs) "
        "or, if the omission is deliberate, suppress on the method's "
        "MTTKRP_METHODS line with a justifying comment"
    )

    def check_project(self, project: Project) -> list[ProjectRawFinding]:
        findings: list[ProjectRawFinding] = []
        for mod in project.modules.values():
            tuple_info = self._methods_tuple(mod)
            if tuple_info is None:
                continue
            tuple_name, elems = tuple_info
            tables = extract_dispatch_tables(project, mod)
            if not tables:
                continue
            table_keys: set[str] = set()
            for t in tables:
                table_keys |= set(t.entries)
            surfaces = {
                "oracle": self._oracle_members(project, mod, tuple_name),
                "tuner": self._function_members(project, mod, "candidate_set"),
                "bench": self._bench_members(project, mod),
                "docs": self._docs_members(project, mod),
            }
            for method, line in elems.items():
                if method not in table_keys:
                    continue  # meta-methods (auto/autotune) rewrite first
                for surface in _SURFACES:
                    members = surfaces[surface]
                    if members is None:
                        continue  # surface absent from this project
                    if method not in members:
                        findings.append(ProjectRawFinding(
                            mod.path, line, 0,
                            f"dispatched method {method!r} is missing from "
                            f"the {surface} surface",
                        ))
        return findings

    # -- the methods tuple --------------------------------------------- #

    @staticmethod
    def _methods_tuple(mod: ModuleInfo) -> tuple[str, dict[str, int]] | None:
        """``(tuple_name, {method: element_line})`` for a module-level
        ``*METHODS = ("...", ...)`` declaration (the dispatch contract)."""
        for stmt in mod.tree.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not (isinstance(target, ast.Name)
                    and target.id.endswith("METHODS")
                    and not target.id.startswith("ORACLE")):
                continue
            if not isinstance(stmt.value, (ast.Tuple, ast.List)):
                continue
            elems: dict[str, int] = {}
            for e in stmt.value.elts:
                if isinstance(e, ast.Constant) and isinstance(e.value, str):
                    elems[e.value] = e.lineno
            if len(elems) >= 2:
                return target.id, elems
        return None

    # -- surfaces ------------------------------------------------------- #

    @staticmethod
    def _oracle_members(
        project: Project, mod: ModuleInfo, tuple_name: str
    ) -> set[str] | None:
        """The differential oracle's method list.

        An in-project ``ORACLE_METHODS`` assignment in the dispatch
        module wins (fixtures use this); otherwise an auxiliary oracle
        test module that iterates the dispatch tuple *by name* covers
        every method, and one that spells methods out contributes its
        string literals.  No oracle at all -> surface absent.
        """
        for stmt in mod.tree.body:
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "ORACLE_METHODS"):
                return _normalize(_string_literals(stmt.value))
        covered: set[str] | None = None
        for aux in project.aux_modules:
            names = {
                n.id for n in ast.walk(aux.tree) if isinstance(n, ast.Name)
            }
            if tuple_name in names:
                return None  # iterates the tuple itself: always complete
            covered = (covered or set()) | _normalize(_string_literals(aux.tree))
        return covered

    @staticmethod
    def _function_members(
        project: Project, mod: ModuleInfo, fn_name: str
    ) -> set[str] | None:
        """String literals inside functions named ``fn_name``; the
        dispatch module's own definition (fixtures) shadows project-wide
        ones so fixture files stay independent under a corpus-wide run."""
        local = [f for f in mod.functions.values() if f.name == fn_name]
        if local:
            out: set[str] = set()
            for f in local:
                out |= _string_literals(f.node)
            return _normalize(out)
        out = set()
        found = False
        for other in project.modules.values():
            for f in other.functions.values():
                if f.name == fn_name:
                    found = True
                    out |= _string_literals(f.node)
        return _normalize(out) if found else None

    def _bench_members(
        self, project: Project, mod: ModuleInfo
    ) -> set[str] | None:
        """Method labels visible to the bench harness: everything in
        bench-package/suites modules, or — for single-file projects —
        a local ``_mttkrp_algorithms``-style registry function."""
        local = self._function_members(project, mod, "_mttkrp_algorithms")
        bench_mods = [
            m for m in project.modules.values()
            if ".bench" in f".{m.name}" or m.name.endswith("suites")
        ]
        if not bench_mods:
            return local
        out: set[str] = set()
        for m in bench_mods:
            out |= _string_literals(m.tree)
        return _normalize(out) | (local or set())

    @staticmethod
    def _docs_members(project: Project, mod: ModuleInfo) -> set[str] | None:
        """Methods mentioned in the repo docs or the dispatch module's
        docstrings (word-boundary match, so ``onestep`` does not count as
        coverage of ``onestep-seq`` or vice versa)."""
        chunks = [project.docs_text or ""]
        doc = ast.get_docstring(mod.tree, clean=False)
        if doc:
            chunks.append(doc)
        for f in mod.functions.values():
            fdoc = ast.get_docstring(f.node, clean=False)
            if fdoc:
                chunks.append(fdoc)
        text = "\n".join(c for c in chunks if c)
        if not text.strip():
            return None
        members = {
            m.group(0)
            for m in re.finditer(r"[A-Za-z0-9_]+(?:-[A-Za-z0-9_]+)*", text)
        }
        return members
