"""Parallel-partition hazard rules: RA001, RA002, RA006.

These enforce the unstated invariants of the paper's Algorithms 1, 3 and 4
as this repo implements them (see ``docs/analysis.md`` for the catalog):

* **RA001** — every write to *shared* state inside a parallel region must
  go through an index derived from the worker's contiguous partition
  (``worker``/``start``/``stop``, ultimately ``contiguous_blocks``).
  A write that is not partition-indexed can land in another worker's block
  — a data race the thread backend cannot detect and the process backend
  silently turns into lost updates.
* **RA002** — a closure created inside a loop must not capture the loop
  variable by reference; all iterations would share the final value, so
  every task computes the *last* worker's block.  The repo's idiom is
  default-argument binding (``lambda t=t: ...``).
* **RA006** — worker code must not mutate module-level state (``global``
  rebinding, stores to imported modules' attributes).  Workers run
  concurrently under the thread backend and in *separate interpreters*
  under the process backend, where such writes are silently lost.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import (
    RawFinding,
    Rule,
    TaskContext,
    attach_parents,
    derived_names,
    find_task_contexts,
    names_loaded,
    parent_of,
    subscript_indices,
    subscript_root,
)

__all__ = ["RA001UnpartitionedWrite", "RA002LoopCapture", "RA006GlobalMutation"]


class RA001UnpartitionedWrite(Rule):
    id = "RA001"
    severity = "error"
    title = "shared write not indexed through the worker's partition"
    hint = (
        "index the write through the kernel's (worker, start, stop) "
        "parameters (or a value derived from contiguous_blocks); give each "
        "worker a disjoint block or accumulate into a private buffer and "
        "reduce"
    )

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        attach_parents(tree)
        findings: list[RawFinding] = []
        for ctx in find_task_contexts(tree):
            findings.extend(self._check_context(ctx))
        return findings

    def _check_context(self, ctx: TaskContext) -> list[RawFinding]:
        derived = derived_names(ctx)
        findings: list[RawFinding] = []

        def is_partition_indexed(sub: ast.Subscript) -> bool:
            return any(
                any(n in derived for n in names_loaded(idx))
                for idx in subscript_indices(sub)
            )

        def shared_root(expr: ast.expr) -> str | None:
            root = subscript_root(expr)
            if isinstance(root, ast.Name) and root.id in ctx.shared:
                return root.id
            return None

        def flag(node: ast.AST, name: str, how: str) -> None:
            findings.append(RawFinding(
                node.lineno, node.col_offset,
                f"worker code writes shared array {name!r} {how} without a "
                f"partition-derived index",
            ))

        body = ctx.node.body
        nodes = body if isinstance(body, list) else [body]
        for stmt in nodes:
            for node in ast.walk(stmt):
                # a) subscript stores: ``shared[idx] = ...`` / ``+=``
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for t in targets:
                        for sub in _subscript_targets(t):
                            name = shared_root(sub)
                            if name and not is_partition_indexed(sub):
                                flag(sub, name, "via subscript")
                    # b) in-place mutation of a whole shared array
                    if isinstance(node, ast.AugAssign) and isinstance(
                            node.target, ast.Name):
                        if node.target.id in ctx.shared:
                            flag(node, node.target.id, "in place (whole array)")
                # c) ``out=`` destinations of calls made by the worker
                elif isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg != "out":
                            continue
                        val = kw.value
                        name = shared_root(val)
                        if name is None:
                            continue
                        if isinstance(val, ast.Subscript):
                            if not is_partition_indexed(val):
                                flag(val, name, "via out=")
                        else:
                            flag(val, name, "via out= (whole array)")
        return findings


def _subscript_targets(target: ast.AST) -> list[ast.Subscript]:
    if isinstance(target, ast.Subscript):
        return [target]
    if isinstance(target, (ast.Tuple, ast.List)):
        subs: list[ast.Subscript] = []
        for elt in target.elts:
            subs.extend(_subscript_targets(elt))
        return subs
    return []


class RA002LoopCapture(Rule):
    id = "RA002"
    severity = "error"
    title = "closure captures a loop variable by reference"
    hint = (
        "bind the loop variable at definition time with a default argument "
        "(``lambda t=t: ...``) or a factory function; a by-reference "
        "capture makes every task see the final iteration's value"
    )

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        attach_parents(tree)
        findings: list[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Lambda, ast.FunctionDef)):
                continue
            if _immediately_called(node):
                continue
            captured = _free_body_names(node)
            if not captured:
                continue
            loop_vars = _enclosing_loop_targets(node)
            hit = sorted(captured & loop_vars)
            if hit:
                kind = "lambda" if isinstance(node, ast.Lambda) else (
                    f"function {node.name!r}")
                findings.append(RawFinding(
                    node.lineno, node.col_offset,
                    f"{kind} captures loop variable(s) "
                    f"{', '.join(repr(h) for h in hit)} by reference",
                ))
        return findings


def _immediately_called(fn: ast.AST) -> bool:
    parent = parent_of(fn)
    return isinstance(parent, ast.Call) and parent.func is fn


def _free_body_names(fn: ast.AST) -> set[str]:
    """Names the closure body reads that are not bound by the closure.

    Default-argument expressions are evaluated at definition time in the
    enclosing scope — referencing the loop variable there is exactly the
    safe binding idiom, so defaults are excluded from the body scan.
    """
    from repro.analysis.rules.base import bound_names

    body = fn.body if isinstance(fn, ast.Lambda) else fn.body
    loaded: set[str] = set()
    nodes = body if isinstance(body, list) else [body]
    for stmt in nodes:
        loaded |= names_loaded(stmt)
    return loaded - bound_names(fn)


def _enclosing_loop_targets(fn: ast.AST) -> set[str]:
    """Loop variables of every ``for``/comprehension enclosing ``fn``.

    Stops at the nearest enclosing function definition: a loop *outside*
    the factory that creates the closure rebinding its own parameters is
    not a capture hazard.
    """
    targets: set[str] = set()
    prev: ast.AST = fn
    cur = parent_of(fn)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            break
        if isinstance(cur, (ast.For, ast.AsyncFor)) and prev in cur.body:
            for n in ast.walk(cur.target):
                if isinstance(n, ast.Name):
                    targets.add(n.id)
        elif isinstance(cur, (ast.ListComp, ast.SetComp, ast.DictComp,
                              ast.GeneratorExp)):
            for gen in cur.generators:
                for n in ast.walk(gen.target):
                    if isinstance(n, ast.Name):
                        targets.add(n.id)
        prev = cur
        cur = parent_of(cur)
    return targets


class RA006GlobalMutation(Rule):
    id = "RA006"
    severity = "error"
    title = "worker code mutates module-level state"
    hint = (
        "pass state into the kernel as an argument and return results "
        "through partition-indexed shared arrays; module-level writes race "
        "under threads and are silently dropped by process workers"
    )

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        attach_parents(tree)
        module_names = _imported_module_names(tree)
        findings: list[RawFinding] = []
        for ctx in find_task_contexts(tree):
            body = ctx.node.body
            nodes = body if isinstance(body, list) else [body]
            declared_global: set[str] = set()
            for stmt in nodes:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Global):
                        declared_global |= set(node.names)
                        findings.append(RawFinding(
                            node.lineno, node.col_offset,
                            f"worker code declares global "
                            f"{', '.join(repr(n) for n in node.names)}",
                        ))
                    elif isinstance(node, (ast.Assign, ast.AugAssign)):
                        targets = (node.targets if isinstance(node, ast.Assign)
                                   else [node.target])
                        for t in targets:
                            if (isinstance(t, ast.Attribute)
                                    and isinstance(t.value, ast.Name)
                                    and t.value.id in module_names):
                                findings.append(RawFinding(
                                    t.lineno, t.col_offset,
                                    f"worker code stores to module attribute "
                                    f"{t.value.id}.{t.attr}",
                                ))
        return findings


def _imported_module_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names
