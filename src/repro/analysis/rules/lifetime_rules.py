"""Workspace buffer lifetime rule: RA008.

A :class:`~repro.parallel.workspace.Workspace` hands out *scratch* whose
validity is bounded by the arena's lifetime operations:

* ``ws.release(prefix)`` drops every buffer whose slot name starts with
  ``prefix`` — a local still referring to one of them aliases memory the
  arena may hand to a different slot (or, on the process backend, a shm
  segment already retired);
* ``ws.close()`` (or leaving a ``with Workspace(...) as ws:`` block,
  which closes it) drops everything.

RA008 flags any *use* of a name acquired via ``ws.buffer(...)`` /
``ws.private(...)`` after the acquiring arena released its slot prefix,
closed, or left its ``with`` scope.  Purely flow-insensitive aliasing is
out of scope; ordering is by source line within one function, matching
how the arena is used in this codebase (linear setup/loop/teardown).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.rules.base import (
    RawFinding,
    Rule,
    _walk_same_scope,
)

__all__ = ["RA008WorkspaceLifetime"]

_ACQUIRE_METHODS = frozenset({"buffer", "private"})


@dataclass
class _Acquired:
    """One ``name = ws.buffer("slot", ...)`` binding."""

    name: str  # local bound to the buffer
    ws: str  # arena variable name
    slot: str | None  # slot string literal, if statically known
    line: int
    dead_after: int | None = None  # line after which the buffer is invalid
    why: str = ""


def _attr_call(node: ast.AST) -> tuple[str, str, ast.Call] | None:
    """``(receiver, method, call)`` for a ``name.method(...)`` call."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)):
        return node.func.value.id, node.func.attr, node
    return None


def _literal_str(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


class RA008WorkspaceLifetime(Rule):
    id = "RA008"
    severity = "error"
    title = "workspace buffer used after release()/close()/with-scope exit"
    hint = (
        "re-acquire the buffer from the workspace after a release, or move "
        "the use before the lifetime boundary; a released slot's memory may "
        "be re-handed to another slot (and its shm segment retired on the "
        "process backend)"
    )

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        findings: list[RawFinding] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(node))
        return findings

    def _check_function(self, fn: ast.AST) -> list[RawFinding]:
        acquired: list[_Acquired] = []
        #: arena name -> line of the ``with`` block's last statement, for
        #: arenas bound by ``with Workspace(...) as ws:``.
        with_scope_end: dict[str, int] = {}
        #: name -> lines where the name is (re)bound; a rebinding after
        #: the lifetime boundary makes later uses fresh again.
        bind_lines: dict[str, list[int]] = {}

        def body_walk():
            for stmt in fn.body:
                yield from _walk_same_scope(stmt)

        for node in body_walk():
            # ``name = ws.buffer("slot", ...)`` / ``ws.private(...)``
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for t in ast.walk(target):
                        if isinstance(t, ast.Name):
                            bind_lines.setdefault(t.id, []).append(node.lineno)
                target = node.targets[0]
                ac = _attr_call(node.value)
                if (len(node.targets) == 1 and isinstance(target, ast.Name)
                        and ac is not None
                        and ac[1] in _ACQUIRE_METHODS):
                    ws_name, _, call = ac
                    slot = _literal_str(call.args[0]) if call.args else None
                    acquired.append(_Acquired(
                        target.id, ws_name, slot, node.lineno,
                    ))
            # ``with Workspace(...) as ws:`` — buffers die at block exit.
            elif isinstance(node, ast.With):
                for item in node.items:
                    ctx = item.context_expr
                    is_ws = (isinstance(ctx, ast.Call)
                             and isinstance(ctx.func, ast.Name)
                             and ctx.func.id == "Workspace")
                    if (is_ws and item.optional_vars is not None
                            and isinstance(item.optional_vars, ast.Name)):
                        end = max(
                            (getattr(s, "end_lineno", s.lineno) or s.lineno)
                            for s in node.body
                        )
                        with_scope_end[item.optional_vars.id] = end
            # ``ws.release("prefix")`` / ``ws.close()``
            ac = _attr_call(node)
            if ac is not None:
                ws_name, meth, call = ac
                if meth == "release":
                    prefix = (_literal_str(call.args[0])
                              if call.args else None)
                    for a in acquired:
                        if a.ws != ws_name or a.dead_after is not None:
                            continue
                        # Only a statically-provable prefix match kills a
                        # buffer; dynamic prefixes or slots stay quiet.
                        if (prefix is None or a.slot is None
                                or not a.slot.startswith(prefix)):
                            continue
                        a.dead_after = call.lineno
                        a.why = f"released by {ws_name}.release({prefix!r})"
                elif meth == "close":
                    for a in acquired:
                        if a.ws == ws_name and a.dead_after is None:
                            a.dead_after = call.lineno
                            a.why = f"closed by {ws_name}.close()"

        for ws_name, end in with_scope_end.items():
            for a in acquired:
                if a.ws == ws_name and (a.dead_after is None
                                        or a.dead_after > end):
                    a.dead_after = end
                    a.why = f"acquiring `with Workspace(...) as {ws_name}` " \
                            f"scope ends at line {end}"

        dead = [a for a in acquired if a.dead_after is not None]
        if not dead:
            return []

        def rebound_between(name: str, after: int, line: int) -> bool:
            return any(after < b <= line for b in bind_lines.get(name, ()))

        findings: list[RawFinding] = []
        flagged: set[tuple[str, int]] = set()
        for node in body_walk():
            if not (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)):
                continue
            for a in dead:
                if (node.id == a.name and node.lineno > a.dead_after
                        and not rebound_between(a.name, a.dead_after,
                                                node.lineno)
                        and (node.id, node.lineno) not in flagged):
                    flagged.add((node.id, node.lineno))
                    findings.append(RawFinding(
                        node.lineno, node.col_offset,
                        f"workspace buffer {a.name!r} (slot {a.slot!r}, "
                        f"acquired line {a.line}) used after it was "
                        f"{a.why}",
                    ))
        return findings
