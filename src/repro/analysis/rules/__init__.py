"""Rule registry for the parallel-hazard lint.

Every rule is instantiated once here; :func:`get_rules` returns the active
set, optionally restricted to specific ids (the CLI's ``--rules`` flag).
"""

from __future__ import annotations

from repro.analysis.rules.base import RawFinding, Rule
from repro.analysis.rules.layout_rules import (
    RA003UnpinnedAllocation,
    RA004HazardousView,
)
from repro.analysis.rules.parallel_rules import (
    RA001UnpartitionedWrite,
    RA002LoopCapture,
    RA006GlobalMutation,
)
from repro.analysis.rules.shm_rules import RA005RawSharedMemory

__all__ = ["ALL_RULES", "get_rules", "Rule", "RawFinding"]

ALL_RULES: tuple[Rule, ...] = (
    RA001UnpartitionedWrite(),
    RA002LoopCapture(),
    RA003UnpinnedAllocation(),
    RA004HazardousView(),
    RA005RawSharedMemory(),
    RA006GlobalMutation(),
)


def get_rules(ids: list[str] | None = None) -> tuple[Rule, ...]:
    """The active rule set, optionally restricted to ``ids``.

    Unknown ids raise ``ValueError`` so a typo in ``--rules RA01`` fails
    loudly instead of silently checking nothing.
    """
    if not ids:
        return ALL_RULES
    known = {r.id: r for r in ALL_RULES}
    missing = [i for i in ids if i not in known]
    if missing:
        raise ValueError(
            f"unknown rule id(s): {', '.join(missing)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return tuple(known[i] for i in ids)
