"""Rule registry for the parallel-hazard lint.

Every rule is instantiated once here; :func:`get_rules` returns the active
set, optionally restricted to specific ids (the CLI's ``--rules`` flag).
Per-file rules (:class:`Rule`) see one AST at a time; project rules
(:class:`ProjectRule`) see the whole
:class:`~repro.analysis.callgraph.Project` and may cross module
boundaries.
"""

from __future__ import annotations

from repro.analysis.rules.base import (
    ProjectRawFinding,
    ProjectRule,
    RawFinding,
    Rule,
)
from repro.analysis.rules.contract_rules import (
    RA009MissingCostCounters,
    RA010ContractCompleteness,
)
from repro.analysis.rules.interproc_rules import RA007InterprocViewEscape
from repro.analysis.rules.layout_rules import (
    RA003UnpinnedAllocation,
    RA004HazardousView,
)
from repro.analysis.rules.lifetime_rules import RA008WorkspaceLifetime
from repro.analysis.rules.parallel_rules import (
    RA001UnpartitionedWrite,
    RA002LoopCapture,
    RA006GlobalMutation,
)
from repro.analysis.rules.shm_rules import RA005RawSharedMemory

__all__ = [
    "ALL_RULES",
    "PROJECT_RULES",
    "get_rules",
    "get_project_rules",
    "Rule",
    "ProjectRule",
    "RawFinding",
    "ProjectRawFinding",
]

ALL_RULES: tuple[Rule, ...] = (
    RA001UnpartitionedWrite(),
    RA002LoopCapture(),
    RA003UnpinnedAllocation(),
    RA004HazardousView(),
    RA005RawSharedMemory(),
    RA006GlobalMutation(),
    RA008WorkspaceLifetime(),
)

PROJECT_RULES: tuple[ProjectRule, ...] = (
    RA007InterprocViewEscape(),
    RA009MissingCostCounters(),
    RA010ContractCompleteness(),
)


def get_rules(ids: list[str] | None = None) -> tuple[Rule, ...]:
    """The active per-file rule set, optionally restricted to ``ids``.

    Unknown ids raise ``ValueError`` so a typo in ``--rules RA01`` fails
    loudly instead of silently checking nothing.  Ids naming project
    rules are accepted (they select nothing here — use
    :func:`get_project_rules` for those) so ``--rules RA007`` works.
    """
    if not ids:
        return ALL_RULES
    known = {r.id: r for r in ALL_RULES}
    project_ids = {r.id for r in PROJECT_RULES}
    missing = [i for i in ids if i not in known and i not in project_ids]
    if missing:
        raise ValueError(
            f"unknown rule id(s): {', '.join(missing)} "
            f"(known: {', '.join(sorted(set(known) | project_ids))})"
        )
    return tuple(known[i] for i in ids if i in known)


def get_project_rules(ids: list[str] | None = None) -> tuple[ProjectRule, ...]:
    """The active project-level rule set, optionally restricted to ``ids``.

    Unknown ids are :func:`get_rules`'s problem — callers pass the same
    id list to both, and that one validates.
    """
    if not ids:
        return PROJECT_RULES
    return tuple(r for r in PROJECT_RULES if r.id in ids)
