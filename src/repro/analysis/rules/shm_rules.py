"""Shared-memory lifetime rule: RA005.

:mod:`repro.parallel.shm` defines strict segment ownership: the parent-side
:class:`~repro.parallel.shm.ShmArena` creates every segment, registers it,
and unlinks it exactly once in ``close()``; workers attach through
:func:`~repro.parallel.shm.attach`, which suppresses resource-tracker
registration because lifetime belongs to the arena (cpython#82300 would
otherwise double-unlink).  A raw ``SharedMemory(...)`` call anywhere else
either leaks the segment (no unlink), double-unlinks it (tracker), or
unmaps pages other views still reference.

**RA005** therefore flags any direct ``multiprocessing.shared_memory.
SharedMemory`` construction outside the owning module.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import RawFinding, Rule

__all__ = ["RA005RawSharedMemory"]


class RA005RawSharedMemory(Rule):
    id = "RA005"
    severity = "error"
    title = "raw SharedMemory construction outside the owning module"
    hint = (
        "allocate through repro.parallel.shm.ShmArena (parent side) or "
        "attach() (worker side); the arena owns segment lifetime and is "
        "the only place allowed to create or unlink segments"
    )
    allowed_paths = ("repro/parallel/shm.py",)

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        findings: list[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            name = None
            if isinstance(fn, ast.Name):
                name = fn.id
            elif isinstance(fn, ast.Attribute):
                name = fn.attr
            if name != "SharedMemory":
                continue
            creates = any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            what = "creates" if creates else "attaches to"
            findings.append(RawFinding(
                node.lineno, node.col_offset,
                f"direct SharedMemory call {what} a segment outside "
                f"repro.parallel.shm",
            ))
        return findings
