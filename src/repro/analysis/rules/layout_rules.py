"""Memory-layout contract rules: RA003, RA004.

PR 2 demonstrated that the reproduction's bit-exactness guarantees hang on
memory layout: a C-order transpose silently moved a GEMM onto a different
BLAS code path and shifted results by 1 ulp.  The paper's algorithms assume
``X(0:n)`` never needs reordering — every BLAS operand keeps the
contiguity the natural tensor layout gives it.  These rules make the two
load-bearing conventions checkable:

* **RA003** — an ``np.empty``/``np.zeros`` allocation that later receives
  BLAS output (as an ``out=`` destination, a ``@`` operand, or a store
  target fed by a matmul) must pin its ``order=`` explicitly.  NumPy's
  default is C order, but leaving it implicit is exactly how the PR 2
  regression slipped in: the allocation and the kernel made *different*
  assumptions.
* **RA004** — a definitely-layout-hazardous view must not be handed to a
  BLAS wrapper: a transposed/reshaped expression as the ``out=``
  destination (writes land through non-native strides and select a
  different GEMM path), or the transpose of a *stepped* slice as an
  operand (contiguous in neither order, forcing a hidden copy).
  A plain ``A.T`` operand is *not* flagged — BLAS consumes native
  transposes without copying, and the twostep kernels rely on that.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import RawFinding, Rule, attach_parents

__all__ = ["RA003UnpinnedAllocation", "RA004HazardousView"]

#: numpy allocators whose layout should be pinned when BLAS writes to them.
ALLOCATORS = frozenset({"empty", "zeros"})

#: Functions that wrap BLAS kernels (layout-sensitive code paths).
BLAS_FUNCS = frozenset({
    "matmul", "dot", "vdot", "inner", "tensordot", "einsum",
    "solve", "lstsq", "cholesky", "qr", "svd", "gemm",
})


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _is_blas_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and _call_name(node) in BLAS_FUNCS)


def _contains_blas(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if _is_blas_call(node):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            return True
    return False


def _root_name(expr: ast.expr) -> str | None:
    while isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class RA003UnpinnedAllocation(Rule):
    id = "RA003"
    severity = "warning"
    title = "order-unpinned allocation receives BLAS output"
    hint = (
        "pass an explicit order= ('C' or 'F') to the allocation so the "
        "layout the BLAS kernel writes through is a stated contract, not "
        "numpy's default"
    )

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        attach_parents(tree)
        findings: list[RawFinding] = []
        seen: set[tuple[int, int]] = set()
        for scope in self._scopes(tree):
            for f in self._check_scope(scope):
                key = (f.line, f.col)
                if key not in seen:
                    seen.add(key)
                    findings.append(f)
        return findings

    def _scopes(self, tree: ast.Module):
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_scope(self, scope: ast.AST) -> list[RawFinding]:
        # name -> allocation Call node, for multi-D np.empty/np.zeros
        # without order=; aliases through reshape/asarray/slicing inherit
        # the origin.
        unpinned: dict[str, ast.Call] = {}
        findings: list[RawFinding] = []
        body = scope.body if not isinstance(scope, ast.Module) else scope.body

        def record_finding(origin: ast.Call, use: ast.AST, how: str) -> None:
            findings.append(RawFinding(
                origin.lineno, origin.col_offset,
                f"allocation without explicit order= {how} "
                f"(line {use.lineno})",
            ))

        def alloc_origin(expr: ast.expr) -> ast.Call | None:
            name = _root_name(expr)
            return unpinned.get(name) if name else None

        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    tname = node.targets[0].id
                    origin = self._unpinned_alloc(node.value)
                    if origin is not None:
                        unpinned[tname] = origin
                        continue
                    alias = self._alias_source(node.value)
                    if alias is not None and alias in unpinned:
                        unpinned[tname] = unpinned[alias]
                    elif tname in unpinned:
                        del unpinned[tname]  # rebound to something else
                if isinstance(node, ast.Call) and _is_blas_call(node):
                    for arg in node.args:
                        origin = alloc_origin(arg)
                        if origin is not None:
                            record_finding(origin, node,
                                           "is a BLAS operand")
                    for kw in node.keywords:
                        if kw.arg == "out":
                            origin = alloc_origin(kw.value)
                            if origin is not None:
                                record_finding(origin, node,
                                               "is a BLAS out= destination")
                elif isinstance(node, ast.BinOp) and isinstance(
                        node.op, ast.MatMult):
                    for operand in (node.left, node.right):
                        origin = alloc_origin(operand)
                        if origin is not None:
                            record_finding(origin, node, "is a '@' operand")
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    value = node.value
                    if value is None or not _contains_blas(value):
                        continue
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for t in targets:
                        # Plain ``name = a @ b`` rebinds; only stores
                        # *through* the allocation count.
                        if isinstance(t, ast.Subscript) or isinstance(
                                node, ast.AugAssign):
                            origin = alloc_origin(t)
                            if origin is not None:
                                record_finding(origin, node,
                                               "receives a matmul result")
        return findings

    def _unpinned_alloc(self, expr: ast.expr) -> ast.Call | None:
        """The call node if ``expr`` is a multi-D np.empty/np.zeros without
        ``order=``; 1-D and unknown-rank allocations are skipped (order is
        meaningless or unknowable statically)."""
        if not isinstance(expr, ast.Call) or _call_name(expr) not in ALLOCATORS:
            return None
        if any(kw.arg == "order" for kw in expr.keywords):
            return None
        if not expr.args:
            return None
        shape = expr.args[0]
        if isinstance(shape, (ast.Tuple, ast.List)) and len(shape.elts) >= 2:
            return expr
        return None

    def _alias_source(self, expr: ast.expr) -> str | None:
        """Name whose layout ``expr`` inherits: reshape/asarray/slice views."""
        if isinstance(expr, ast.Subscript):
            return _root_name(expr)
        if isinstance(expr, ast.Call):
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in ("reshape", "view")
                    and isinstance(expr.func.value, ast.Name)):
                return expr.func.value.id
            if (_call_name(expr) in ("asarray", "ascontiguousarray")
                    and expr.args and isinstance(expr.args[0], ast.Name)):
                return expr.args[0].id
        return None


class RA004HazardousView(Rule):
    id = "RA004"
    severity = "warning"
    title = "definitely non-native view passed to a BLAS wrapper"
    hint = (
        "materialize the operand first (np.ascontiguousarray / an "
        "order-pinned copy) or write to a natural-order destination and "
        "transpose afterwards; writing BLAS output through foreign strides "
        "changes the code path and can shift results by ulps"
    )

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        attach_parents(tree)
        findings: list[RawFinding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _is_blas_call(node):
                for kw in node.keywords:
                    if kw.arg == "out" and self._is_reordering_view(kw.value):
                        findings.append(RawFinding(
                            kw.value.lineno, kw.value.col_offset,
                            "BLAS out= destination is a transposed/reshaped "
                            "view",
                        ))
                for arg in node.args:
                    if self._is_stepped_transpose(arg):
                        findings.append(RawFinding(
                            arg.lineno, arg.col_offset,
                            "BLAS operand is the transpose of a stepped "
                            "slice (contiguous in neither order)",
                        ))
            elif isinstance(node, ast.BinOp) and isinstance(
                    node.op, ast.MatMult):
                for operand in (node.left, node.right):
                    if self._is_stepped_transpose(operand):
                        findings.append(RawFinding(
                            operand.lineno, operand.col_offset,
                            "'@' operand is the transpose of a stepped "
                            "slice (contiguous in neither order)",
                        ))
        return findings

    def _is_reordering_view(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Attribute) and expr.attr == "T":
            return True
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            return name in ("transpose", "reshape", "swapaxes", "moveaxis")
        return False

    def _is_stepped_transpose(self, expr: ast.expr) -> bool:
        if not (isinstance(expr, ast.Attribute) and expr.attr == "T"):
            return False
        base = expr.value
        if not isinstance(base, ast.Subscript):
            return False
        return self._has_step(base.slice)

    def _has_step(self, sl: ast.expr) -> bool:
        if isinstance(sl, ast.Slice):
            return sl.step is not None and not (
                isinstance(sl.step, ast.Constant) and sl.step.value in (1, None)
            )
        if isinstance(sl, ast.Tuple):
            return any(self._has_step(e) for e in sl.elts)
        return False
