"""Interprocedural parallel-hazard rule: RA007.

RA001 sees one function at a time: a worker writing ``out[i] = x`` with
``i`` unrelated to the partition.  RA007 follows the same invariant
across the boundaries RA001 cannot cross:

* a worker calling ``helper(out)`` where ``helper`` (possibly through
  further calls) writes ``out`` at a location not derived from anything
  the worker controls — every worker collides on the same rows;
* a worker writing through an *unpartitioned alias* of a shared array
  (``flat = out.reshape(-1); flat[i] = x``) — the alias hides the shared
  root from RA001's name check;
* a ``parallel_for``/``run_tasks`` launch whose kernel lives in another
  module — the kernel body gets the full RA001 treatment there.

Both analyses come from :mod:`repro.analysis.dataflow`: per-function
write summaries propagated over the project call graph, and view
provenance inside each task context.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import FunctionInfo, ModuleInfo, Project
from repro.analysis.dataflow import (
    ParamWrite,
    WriteSummary,
    param_names_of,
    view_provenance,
    write_summaries,
)
from repro.analysis.rules.base import (
    ProjectRawFinding,
    ProjectRule,
    TaskContext,
    _kernel_context,
    attach_parents,
    derived_names,
    find_task_contexts,
    names_loaded,
    subscript_indices,
    subscript_root,
)

__all__ = ["RA007InterprocViewEscape"]


class RA007InterprocViewEscape(ProjectRule):
    id = "RA007"
    severity = "error"
    title = "aliased view or callee write escapes the worker's partition"
    hint = (
        "pass the worker's own block (a partition-derived slice) into the "
        "callee, or index the aliased view through the partition; a callee "
        "writing a fixed location of a shared argument collides across "
        "workers exactly like a direct unpartitioned write"
    )

    def check_project(self, project: Project) -> list[ProjectRawFinding]:
        summaries = write_summaries(project)
        findings: list[ProjectRawFinding] = []
        seen: set[tuple[str, int, str]] = set()

        def emit(path: str, line: int, col: int, message: str) -> None:
            key = (path, line, message)
            if key not in seen:
                seen.add(key)
                findings.append(ProjectRawFinding(path, line, col, message))

        for mod in project.modules.values():
            attach_parents(mod.tree)
            for ctx in find_task_contexts(mod.tree):
                self._check_context(project, mod, ctx, summaries, emit)
            # Cross-module kernels: ``ex.parallel_for(kernel, ...)`` where
            # ``kernel`` is imported — find_task_contexts only resolves
            # local defs, so give the remote body the same treatment.
            for target in self._imported_kernels(project, mod):
                attach_parents(target.module.tree)
                ctx = _kernel_context(target.node)
                self._check_context(
                    project, target.module, ctx, summaries, emit,
                )
        return findings

    # ----------------------------------------------------------------- #

    def _imported_kernels(
        self, project: Project, mod: ModuleInfo
    ) -> list[FunctionInfo]:
        out: list[FunctionInfo] = []
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "parallel_for"
                    and node.args
                    and isinstance(node.args[0], ast.Name)):
                continue
            name = node.args[0].id
            if name in mod.functions:
                continue  # local def: find_task_contexts already saw it
            target = project.resolve_name(mod, name)
            if target is not None:
                out.append(target)
        return out

    def _check_context(
        self,
        project: Project,
        mod: ModuleInfo,
        ctx: TaskContext,
        summaries: dict[str, WriteSummary],
        emit,
    ) -> None:
        derived = derived_names(ctx)
        body = ctx.node.body
        stmts = body if isinstance(body, list) else [body]
        # Lambda bodies are a single expression (no assignments), so the
        # provenance pass is a no-op there; view_provenance only inspects
        # Assign/AnnAssign nodes.
        prov = view_provenance(stmts, set(ctx.shared), derived)

        def partition_indexed(sub: ast.expr) -> bool:
            return any(
                any(n in derived for n in names_loaded(idx))
                for idx in subscript_indices(sub)
            )

        def unpartitioned_alias(name: str) -> str | None:
            """Shared base if ``name`` may be a whole-array alias of it."""
            for v in prov.get(name, ()):
                if v.base in ctx.shared and not v.partitioned:
                    return v.base
            return None

        # -- (a) writes through unpartitioned aliases of shared arrays -- #
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for t in targets:
                        if not isinstance(t, ast.Subscript):
                            continue
                        root = subscript_root(t)
                        if not isinstance(root, ast.Name):
                            continue
                        # Direct writes to shared names are RA001's case;
                        # for aliases, provenance (partitioned or not)
                        # decides — derived_names is too generous here,
                        # since assigning *into* a name with a derived RHS
                        # marks the name itself derived.
                        if root.id in ctx.shared:
                            continue
                        base = unpartitioned_alias(root.id)
                        if base is not None and not partition_indexed(t):
                            emit(
                                mod.path, t.lineno, t.col_offset,
                                f"worker code writes shared array {base!r} "
                                f"through unpartitioned alias {root.id!r} "
                                f"without a partition-derived index",
                            )

        # -- (b) shared arguments reaching callee writes ---------------- #
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                callee = project.resolve_call(mod, node)
                if callee is None:
                    continue
                summary = summaries.get(callee.qualname)
                if summary is None or not summary.writes:
                    continue
                arg_map = _map_call_args(node, callee.node)
                for w in summary.writes:
                    arg = arg_map.get(w.param)
                    if arg is None:
                        continue
                    shared_name = self._shared_arg_base(
                        arg, ctx, derived, unpartitioned_alias,
                    )
                    if shared_name is None:
                        continue
                    if isinstance(arg, ast.Subscript) and partition_indexed(arg):
                        continue  # worker passes its own block
                    if self._write_is_partitioned(w, arg_map, derived):
                        continue
                    emit(
                        mod.path, node.lineno, node.col_offset,
                        f"worker code passes shared array {shared_name!r} to "
                        f"{callee.name!r}, which writes parameter "
                        f"{w.param!r} ({w.how}, line {w.line}) at a location "
                        f"not derived from the worker's partition",
                    )

    @staticmethod
    def _shared_arg_base(arg, ctx, derived, unpartitioned_alias) -> str | None:
        root = subscript_root(arg)
        if not isinstance(root, ast.Name):
            return None
        if root.id in derived:
            return None
        if root.id in ctx.shared:
            return root.id
        return unpartitioned_alias(root.id)

    @staticmethod
    def _write_is_partitioned(
        w: ParamWrite, arg_map: dict[str, ast.expr], derived: set[str]
    ) -> bool:
        """True when the callee's written index traces to the partition.

        A fixed write (no parameter dependence) never is.  A dependent
        write is safe when *some* dependency parameter receives a
        partition-derived argument; if any dependency is unmapped (a
        defaulted parameter), stay quiet rather than guess.
        """
        if w.fixed:
            return False
        unmapped = [p for p in w.depends if p not in arg_map]
        if unmapped:
            return True  # can't see the default — err quiet
        return any(
            any(n in derived for n in names_loaded(arg_map[p]))
            for p in w.depends
        )


def _map_call_args(call: ast.Call, callee_node: ast.AST) -> dict[str, ast.expr]:
    """Callee parameter name -> caller argument expression."""
    params = param_names_of(callee_node)
    positional = [
        a.arg
        for a in callee_node.args.posonlyargs + callee_node.args.args
    ]
    mapping: dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(positional):
            mapping[positional[i]] = arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in params:
            mapping[kw.arg] = kw.value
    return mapping
