"""Runtime write-set race sanitizer for pool regions.

The thread backend's correctness rests on one property the static lint can
only approximate: during a parallel region, the byte ranges each worker
writes into a shared array are pairwise disjoint (the paper's Algorithm 1/3
contiguous-block contract).  This module checks that property *for real*:

* :func:`Sanitizer.wrap` returns a :class:`WriteLogArray` — an ndarray
  subclass that records the byte interval of every ``__setitem__`` /
  ``out=`` write, tagged with the worker index currently set on the
  recording thread;
* :class:`~repro.parallel.pool.ThreadPool` (when the sanitizer is enabled)
  brackets each region with :meth:`Sanitizer.region_begin` /
  :meth:`Sanitizer.region_end` and tags each task's thread with its worker
  index; ``region_end`` asserts pairwise disjointness of the recorded
  write sets and raises :class:`RaceError` naming both workers and their
  overlapping intervals.

Enabled via ``REPRO_SANITIZE=1`` or the :func:`sanitize` context manager.
When off, :data:`NULL_SANITIZER` (Null-object pattern, same as
``repro.obs``) makes every hook a no-op and ``wrap`` the identity, so the
production path pays nothing.

This module deliberately imports nothing from :mod:`repro.parallel` —
``pool.py`` imports *us*, and the sanitizer must stay usable from worker
processes before the parallel package is configured.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "SanitizerError",
    "RaceError",
    "Sanitizer",
    "NullSanitizer",
    "NULL_SANITIZER",
    "WriteLogArray",
    "get_sanitizer",
    "sanitize",
    "is_sanitizing",
]

_ENV_FLAG = "REPRO_SANITIZE"


class SanitizerError(RuntimeError):
    """A shared-memory bounds/lifetime contract violation."""


class RaceError(SanitizerError):
    """Two workers wrote overlapping byte ranges of a shared array."""


# --------------------------------------------------------------------- #
# Write-interval bookkeeping
# --------------------------------------------------------------------- #

#: A view whose strided write decomposes into more than this many
#: contiguous chunks is recorded as one covering interval instead
#: (conservative: may report a false overlap, never misses a true one...
#: except that widening can also merge with a neighbour; in practice the
#: repo's kernels write contiguous row blocks and never hit the cap).
_CHUNK_CAP = 4096


def _byte_spans(view: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous [lo, hi) byte intervals covered by ``view``, absolute
    (process address space) so intervals from different views of the same
    base buffer compare directly."""
    base_ptr = view.__array_interface__["data"][0]
    if view.size == 0:
        return []
    if view.flags["C_CONTIGUOUS"] or view.flags["F_CONTIGUOUS"]:
        return [(base_ptr, base_ptr + view.nbytes)]
    # Strided view: decompose along the outermost non-contiguous axes.
    spans: list[tuple[int, int]] = []
    itemsize = view.itemsize

    def rec(ptr: int, shape: tuple[int, ...], strides: tuple[int, ...]) -> bool:
        """Append spans; False if the cap was exceeded."""
        if not shape:
            spans.append((ptr, ptr + itemsize))
            return len(spans) <= _CHUNK_CAP
        # Fast path: remaining dims are C-contiguous.
        n = 1
        contig = True
        for dim, st in zip(reversed(shape), reversed(strides)):
            if st != n * itemsize:
                contig = False
                break
            n *= dim
        if contig:
            total = itemsize
            for dim in shape:
                total *= dim
            spans.append((ptr, ptr + total))
            return len(spans) <= _CHUNK_CAP
        for i in range(shape[0]):
            if not rec(ptr + i * strides[0], shape[1:], strides[1:]):
                return False
        return True

    if not rec(base_ptr, view.shape, view.strides):
        # Cap exceeded: cover the full extent touched by the view.
        lo = base_ptr
        hi = base_ptr + itemsize
        for dim, st in zip(view.shape, view.strides):
            if dim > 1:
                if st >= 0:
                    hi += (dim - 1) * st
                else:
                    lo += (dim - 1) * st
        return [(lo, hi)]
    return spans


def _merge(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        mlo, mhi = merged[-1]
        if lo <= mhi:
            merged[-1] = (mlo, max(mhi, hi))
        else:
            merged.append((lo, hi))
    return merged


#: ``ufunc.at`` index sets larger than this are logged as the covering
#: whole-array extent instead of per-row views (conservative, like
#: :data:`_CHUNK_CAP`: may report a false overlap, never misses one).
_AT_INDEX_CAP = 512


def _at_write_views(base: np.ndarray, indices) -> list[np.ndarray]:
    """Views of ``base`` covering the rows ``ufunc.at`` writes.

    Scatter indices produce *copies* under fancy indexing, so the byte
    spans must come from basic row slices instead: one ``base[k:k+1]``
    view per unique integer index.  Anything not a flat integer index
    set (tuples for multi-axis scatter, boolean masks, huge index
    arrays) falls back to the whole-array extent.
    """
    if indices is None or isinstance(indices, tuple) or base.ndim == 0:
        return [base]
    try:
        idx = np.asarray(indices)
    except (TypeError, ValueError):
        return [base]
    if idx.dtype.kind not in "iu":
        return [base]
    uniq = np.unique(idx.ravel())
    if uniq.size > _AT_INDEX_CAP:
        return [base]
    n = base.shape[0]
    views: list[np.ndarray] = []
    for k in uniq:
        k = int(k)
        if k < 0:
            k += n
        if 0 <= k < n:
            views.append(base[k:k + 1])
    return views or [base]


def _normalize_key(key, ndim: int):
    """Convert integer (and negative-integer) indices to slices so basic
    indexing yields a *view* we can take byte spans from."""
    def one(k):
        if isinstance(k, (int, np.integer)):
            k = int(k)
            return slice(k, None) if k == -1 else slice(k, k + 1)
        return k

    if isinstance(key, tuple):
        return tuple(one(k) for k in key)
    return one(key)


# --------------------------------------------------------------------- #
# The instrumented array
# --------------------------------------------------------------------- #


class WriteLogArray(np.ndarray):
    """ndarray subclass that reports its writes to the active sanitizer.

    Views derived from a wrapped array inherit the instrumentation (and
    the identity of the *root* buffer, so intervals from different slices
    of the same array land in one ledger).  Copies do not: a new buffer is
    a new, untracked allocation.
    """

    def __array_finalize__(self, obj):
        if obj is None:
            return
        san = getattr(obj, "_san", None)
        root = getattr(obj, "_san_root", None)
        if san is None or root is None:
            return
        # Only genuine views of the root buffer stay instrumented; a copy
        # (new buffer) inheriting the stale root would log nonsense.
        try:
            my_ptr = self.__array_interface__["data"][0]
            r_ptr = root.__array_interface__["data"][0]
            if r_ptr <= my_ptr < r_ptr + root.nbytes:
                self._san = san
                self._san_root = root
        except (TypeError, AttributeError):
            pass

    # -- write interception ------------------------------------------- #

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        san = getattr(self, "_san", None)
        if san is not None and san.active:
            try:
                view = np.asarray(self)[_normalize_key(key, self.ndim)]
            except (IndexError, TypeError):
                view = np.asarray(self)
            san.record_write(self._san_root, view)

    def __array_ufunc__(self, ufunc, method, *inputs, out=None, **kwargs):
        # Demote instrumented operands so numpy runs the plain-ndarray
        # loops, then log any instrumented out= target.
        plain_in = tuple(
            np.asarray(x) if isinstance(x, WriteLogArray) else x
            for x in inputs
        )
        if method == "at":
            # ``np.add.at(a, idx, v)`` mutates ``a`` in place and takes no
            # ``out=``; log the written rows (per unique index, with a
            # covering-extent fallback) against the root buffer.
            getattr(ufunc, method)(*plain_in, **kwargs)
            target = inputs[0] if inputs else None
            if isinstance(target, WriteLogArray):
                san = getattr(target, "_san", None)
                if san is not None and san.active:
                    indices = inputs[1] if len(inputs) > 1 else None
                    for view in _at_write_views(np.asarray(target), indices):
                        san.record_write(target._san_root, view)
            return None
        out_arrays = out if out is not None else ()
        plain_out = tuple(
            np.asarray(x) if isinstance(x, WriteLogArray) else x
            for x in out_arrays
        )
        result = getattr(ufunc, method)(
            *plain_in, out=plain_out or None, **kwargs
        )
        for target in out_arrays:
            if isinstance(target, WriteLogArray):
                san = getattr(target, "_san", None)
                if san is not None and san.active:
                    san.record_write(target._san_root, np.asarray(target))
        return result

    def __array_function__(self, func, types, args, kwargs):
        # np.copyto / np.einsum / etc.: demote and log out=/dst targets.
        def demote(x):
            return np.asarray(x) if isinstance(x, WriteLogArray) else x

        targets = []
        out = kwargs.get("out")
        if isinstance(out, WriteLogArray):
            targets.append(out)
        elif isinstance(out, tuple):
            targets.extend(t for t in out if isinstance(t, WriteLogArray))
        if func is np.copyto and args and isinstance(args[0], WriteLogArray):
            targets.append(args[0])

        plain_args = tuple(
            tuple(demote(a) for a in x) if isinstance(x, tuple) else demote(x)
            for x in args
        )
        plain_kwargs = {
            k: (tuple(demote(e) for e in v) if isinstance(v, tuple)
                else demote(v))
            for k, v in kwargs.items()
        }
        result = func(*plain_args, **plain_kwargs)
        for target in targets:
            san = getattr(target, "_san", None)
            if san is not None and san.active:
                san.record_write(target._san_root, np.asarray(target))
        return result


# --------------------------------------------------------------------- #
# Sanitizer objects
# --------------------------------------------------------------------- #


class NullSanitizer:
    """Disabled sanitizer: every hook is a no-op, ``wrap`` is identity."""

    enabled = False
    active = False

    def wrap(self, arr: np.ndarray) -> np.ndarray:
        return arr

    def set_worker(self, worker: int | None) -> None:
        pass

    def region_begin(self, label: str = "") -> None:
        pass

    def region_end(self, label: str = "", *, check: bool = True) -> None:
        pass

    def record_write(self, root: np.ndarray, view: np.ndarray) -> None:
        pass


NULL_SANITIZER = NullSanitizer()


class Sanitizer:
    """Active write-set sanitizer.

    Thread-safe: workers record concurrently under a lock; the region
    barrier (single-threaded by construction) runs the disjointness check.
    ``active`` is True only between ``region_begin`` and ``region_end`` so
    sequential (non-region) writes cost one attribute check and nothing
    else.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        # (id(root), worker) -> list of (lo, hi) byte intervals
        self._writes: dict[tuple[int, int], list[tuple[int, int]]] = {}
        self._roots: dict[int, np.ndarray] = {}
        self.active = False
        self._label = ""

    # -- wrapping ------------------------------------------------------ #

    def wrap(self, arr: np.ndarray) -> np.ndarray:
        """Return an instrumented view of ``arr`` (shares the buffer)."""
        if isinstance(arr, WriteLogArray):
            return arr
        wrapped = arr.view(WriteLogArray)
        wrapped._san = self
        wrapped._san_root = arr
        return wrapped

    # -- per-thread worker identity ------------------------------------ #

    def set_worker(self, worker: int | None) -> None:
        self._tls.worker = worker

    # -- region lifecycle ---------------------------------------------- #

    def region_begin(self, label: str = "") -> None:
        with self._lock:
            self._writes.clear()
            self._roots.clear()
            self._label = label
            self.active = True

    def region_end(self, label: str = "", *, check: bool = True) -> None:
        with self._lock:
            self.active = False
            writes = {k: _merge(v) for k, v in self._writes.items()}
            roots = dict(self._roots)
            self._writes.clear()
            self._roots.clear()
        if check:
            self._check_disjoint(writes, roots, label or self._label)

    def record_write(self, root: np.ndarray, view: np.ndarray) -> None:
        if not self.active:
            return
        worker = getattr(self._tls, "worker", None)
        if worker is None:
            # Write from the orchestrating (non-worker) thread during a
            # region — e.g. setup between dispatch and join.  Attribute it
            # to a sentinel owner so overlap with real workers is caught.
            worker = -1
        spans = _byte_spans(view)
        if not spans:
            return
        with self._lock:
            if not self.active:
                return
            self._roots.setdefault(id(root), root)
            self._writes.setdefault((id(root), worker), []).extend(spans)

    # -- the check ----------------------------------------------------- #

    def _check_disjoint(
        self,
        writes: dict[tuple[int, int], list[tuple[int, int]]],
        roots: dict[int, np.ndarray],
        label: str,
    ) -> None:
        by_root: dict[int, list[tuple[int, int, int]]] = {}
        for (root_id, worker), intervals in writes.items():
            for lo, hi in intervals:
                by_root.setdefault(root_id, []).append((lo, hi, worker))
        for root_id, entries in by_root.items():
            entries.sort()
            root = roots.get(root_id)
            itemsize = root.itemsize if root is not None else 1
            base = (root.__array_interface__["data"][0]
                    if root is not None else 0)
            prev_hi = -1
            prev: tuple[int, int, int] | None = None
            for lo, hi, worker in entries:
                if prev is not None and lo < prev_hi and worker != prev[2]:
                    plo, phi, pworker = prev

                    def fmt(a: int, b: int) -> str:
                        return (f"elements [{(a - base) // itemsize}, "
                                f"{(b - base) // itemsize}) "
                                f"(bytes [{a - base}, {b - base}))")

                    shape = root.shape if root is not None else "?"
                    raise RaceError(
                        f"overlapping writes to shared array "
                        f"(shape={shape}) in region {label!r}: "
                        f"worker {pworker} wrote {fmt(plo, phi)} and "
                        f"worker {worker} wrote {fmt(lo, hi)}"
                    )
                if hi > prev_hi:
                    prev_hi = hi
                    prev = (lo, hi, worker)

    # -- shm contract checks (process backend) ------------------------- #

    def check_shm_bounds(self, nbytes_needed: int, seg_size: int,
                         name: str) -> None:
        if nbytes_needed > seg_size:
            raise SanitizerError(
                f"shm segment {name!r} is {seg_size} bytes but the handle "
                f"describes an array of {nbytes_needed} bytes — stale or "
                f"corrupted handle"
            )


# --------------------------------------------------------------------- #
# Global accessor + context manager
# --------------------------------------------------------------------- #

_state_lock = threading.Lock()
_sanitizer: Sanitizer | None = None
_forced: bool | None = None  # sanitize() overrides the env var


def _env_enabled() -> bool:
    return os.environ.get(_ENV_FLAG, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def get_sanitizer() -> Sanitizer | NullSanitizer:
    """The active sanitizer: a real one when enabled, else the null object.

    Enabled when ``REPRO_SANITIZE`` is truthy or a :func:`sanitize` context
    is open.  The real sanitizer instance is a process-wide singleton so
    the pool's hooks and user wrapping agree on one ledger.
    """
    global _sanitizer
    on = _forced if _forced is not None else _env_enabled()
    if not on:
        return NULL_SANITIZER
    with _state_lock:
        if _sanitizer is None:
            _sanitizer = Sanitizer()
        return _sanitizer


def is_sanitizing() -> bool:
    return get_sanitizer().enabled


@contextmanager
def sanitize():
    """Force the sanitizer on for the duration of the block.

    Arrays allocated inside the block (through ``ThreadExecutor``) are
    instrumented; regions run inside it are checked at their barriers.
    """
    global _forced
    prev = _forced
    _forced = True
    try:
        yield get_sanitizer()
    finally:
        _forced = prev
